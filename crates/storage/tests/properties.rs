//! Property tests for the array simulator.

use proptest::collection::vec;
use proptest::prelude::*;
use simkit::{SimRng, SimTime};
use storage::{presets, CacheParams, RaidConfig, RaidLevel, StorageArray};
use vscsi::{IoDirection, Lba};

fn arb_raid() -> impl Strategy<Value = RaidConfig> {
    (3usize..16, 1u64..512, any::<bool>()).prop_map(|(disks, stripe, five)| {
        RaidConfig::new(
            if five {
                RaidLevel::Raid5
            } else {
                RaidLevel::Raid0
            },
            disks,
            stripe,
        )
    })
}

proptest! {
    /// RAID mapping conserves sectors, respects disk bounds, and never
    /// returns empty extents.
    #[test]
    fn raid_map_conserves(
        raid in arb_raid(),
        lba in 0u64..100_000_000,
        sectors in 1u64..65_536,
    ) {
        let extents = raid.map(Lba::new(lba), sectors);
        let total: u64 = extents.iter().map(|e| e.sectors).sum();
        prop_assert_eq!(total, sectors);
        for e in &extents {
            prop_assert!(e.disk < raid.disks);
            prop_assert!(e.sectors > 0);
            prop_assert!(e.sectors <= raid.stripe_sectors);
        }
    }

    /// Completion never precedes submission, and per workload the array is
    /// deterministic for a fixed seed.
    #[test]
    fn completions_causal_and_deterministic(
        ops in vec((any::<bool>(), 0u64..50_000_000, 1u64..1024, 0u64..5_000), 1..80),
    ) {
        let run = || {
            let mut array = StorageArray::new(presets::clariion_cx3(), SimRng::seed_from(11));
            let mut now = SimTime::ZERO;
            let mut out = Vec::new();
            for &(is_read, lba, sectors, gap_us) in &ops {
                now = now + simkit::SimDuration::from_micros(gap_us);
                let dir = if is_read { IoDirection::Read } else { IoDirection::Write };
                let done = array.submit(dir, Lba::new(lba), sectors, now);
                out.push(done);
            }
            out
        };
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b);
        let mut now = SimTime::ZERO;
        for (i, &(_, _, _, gap_us)) in ops.iter().enumerate() {
            now = now + simkit::SimDuration::from_micros(gap_us);
            prop_assert!(a[i] > now, "completion {} not after submission {}", a[i], now);
        }
    }

    /// Disabling the read cache never *reduces* a read's latency compared
    /// to running the same single read cold — and repeated reads of the
    /// same block are never slower with the cache on.
    #[test]
    fn cache_monotonicity(lba in 0u64..10_000_000, sectors in 1u64..256) {
        let mut with = StorageArray::new(presets::clariion_cx3(), SimRng::seed_from(5));
        let mut without = StorageArray::new(
            {
                let mut p = presets::clariion_cx3();
                p.cache = CacheParams::read_cache_off();
                p
            },
            SimRng::seed_from(5),
        );
        let t = SimTime::ZERO;
        let w1 = with.submit(IoDirection::Read, Lba::new(lba), sectors, t);
        let w2 = with.submit(IoDirection::Read, Lba::new(lba), sectors, w1);
        let n1 = without.submit(IoDirection::Read, Lba::new(lba), sectors, t);
        let n2 = without.submit(IoDirection::Read, Lba::new(lba), sectors, n1);
        // Second read with cache is a hit: strictly faster than its cold read.
        prop_assert!(w2 - w1 <= w1 - t);
        // Without cache, repeat reads are not hits (same block => contiguous
        // head position, so they may still be fast, but stats show no hits).
        prop_assert_eq!(without.stats().read_full_hits, 0);
        prop_assert!(n1 > t && n2 > n1);
    }
}
