//! Model-based property tests: the array cache against a reference LRU.

use proptest::collection::vec;
use proptest::prelude::*;
use storage::{ArrayCache, CacheParams, PAGE_SECTORS};
use vscsi::{Lba, SECTOR_SIZE};

/// Reference LRU over pages: a Vec ordered most-recent-first.
#[derive(Debug, Default)]
struct ModelLru {
    pages: Vec<u64>,
    capacity: usize,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        ModelLru {
            pages: Vec::new(),
            capacity,
        }
    }

    /// Returns `true` if resident; refreshes recency either way (inserting
    /// when absent) and evicts the least-recent page beyond capacity.
    fn touch(&mut self, page: u64) -> bool {
        let hit = if let Some(pos) = self.pages.iter().position(|&p| p == page) {
            self.pages.remove(pos);
            true
        } else {
            false
        };
        self.pages.insert(0, page);
        while self.pages.len() > self.capacity {
            self.pages.pop();
        }
        hit
    }
}

/// A cache op: read one page-aligned page (no read-ahead, no multi-page
/// spans, so the model stays exact).
fn arb_ops() -> impl Strategy<Value = Vec<u64>> {
    vec(0u64..64, 1..400)
}

proptest! {
    /// With read-ahead disabled and single-page accesses, the cache's
    /// hit/miss sequence must match the reference LRU exactly.
    #[test]
    fn cache_matches_reference_lru(pages in arb_ops(), capacity in 1usize..32) {
        let mut cache = ArrayCache::new(CacheParams {
            read_capacity_bytes: capacity as u64 * PAGE_SECTORS * SECTOR_SIZE,
            readahead_pages: 0,
            ..CacheParams::default()
        });
        let mut model = ModelLru::new(capacity);
        for &page in &pages {
            let outcome = cache.read(Lba::new(page * PAGE_SECTORS), PAGE_SECTORS);
            let model_hit = model.touch(page);
            prop_assert_eq!(
                outcome.is_full_hit(),
                model_hit,
                "divergence at page {} (capacity {})", page, capacity
            );
            prop_assert!(cache.resident_pages() <= capacity as u64);
        }
        prop_assert_eq!(cache.resident_pages(), model.pages.len() as u64);
    }

    /// Hit + miss counters always sum to the number of page touches, and
    /// the hit rate is within [0, 1].
    #[test]
    fn counters_consistent(pages in arb_ops()) {
        let mut cache = ArrayCache::new(CacheParams {
            read_capacity_bytes: 16 * PAGE_SECTORS * SECTOR_SIZE,
            readahead_pages: 0,
            ..CacheParams::default()
        });
        for &page in &pages {
            cache.read(Lba::new(page * PAGE_SECTORS), PAGE_SECTORS);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), pages.len() as u64);
        if let Some(rate) = cache.hit_rate() {
            prop_assert!((0.0..=1.0).contains(&rate));
        }
    }

    /// Writes admit pages (write-allocate): a write followed by a read of
    /// the same page always hits, regardless of history.
    #[test]
    fn read_after_write_hits(pages in arb_ops(), probe in 0u64..64) {
        let mut cache = ArrayCache::new(CacheParams {
            read_capacity_bytes: 128 * PAGE_SECTORS * SECTOR_SIZE,
            readahead_pages: 0,
            ..CacheParams::default()
        });
        for &page in &pages {
            cache.read(Lba::new(page * PAGE_SECTORS), PAGE_SECTORS);
        }
        cache.write(Lba::new(probe * PAGE_SECTORS), PAGE_SECTORS);
        let outcome = cache.read(Lba::new(probe * PAGE_SECTORS), PAGE_SECTORS);
        prop_assert!(outcome.is_full_hit());
    }
}
