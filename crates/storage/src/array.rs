//! The shared storage array: cache + RAID group + spindle calendars.
//!
//! [`StorageArray::submit`] is the array's whole interface: given a
//! physical extent, a direction, and the submission instant, it returns the
//! completion instant. Internally each spindle is a FIFO *calendar*
//! resource (`busy_until`), so queueing delay — the mechanism behind the
//! paper's multi-VM interference results (Figure 6) — emerges naturally
//! when several initiators share the group.

use crate::cache::{ArrayCache, CacheParams};
use crate::disk::{Disk, DiskParams};
use crate::raid::{RaidConfig, RaidLevel};
use faultkit::{FaultOutcome, FaultPlan};
use simkit::{SimDuration, SimRng, SimTime};
use vscsi::{IoDirection, Lba, ScsiStatus, SenseKey, SECTOR_SIZE};

/// Full configuration of an array.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayParams {
    /// Striping geometry.
    pub raid: RaidConfig,
    /// Cache behaviour.
    pub cache: CacheParams,
    /// Per-spindle mechanics.
    pub disk: DiskParams,
    /// Fixed controller/firmware cost added to every command.
    pub controller_overhead: SimDuration,
    /// Service time of a read served entirely from cache.
    pub cache_hit_latency: SimDuration,
    /// Latency to acknowledge a write absorbed by write-back cache.
    pub write_ack_latency: SimDuration,
    /// Host link bandwidth (4 Gb FC ≈ 400 MB/s), serializing data transfer.
    pub link_rate: u64,
    /// Time a command grinds inside the firmware (internal retries,
    /// re-reads) before surfacing `MEDIUM ERROR`.
    pub media_error_latency: SimDuration,
    /// Time to reject a command with `BUSY` / `UNIT ATTENTION` — a fast
    /// controller-level refusal, no media involved.
    pub fast_fail_latency: SimDuration,
}

impl Default for ArrayParams {
    fn default() -> Self {
        ArrayParams {
            raid: RaidConfig::new(RaidLevel::Raid0, 15, 128),
            cache: CacheParams::default(),
            disk: DiskParams::fc_15k(),
            controller_overhead: SimDuration::from_micros(30),
            cache_hit_latency: SimDuration::from_micros(120),
            write_ack_latency: SimDuration::from_micros(150),
            link_rate: 400_000_000,
            media_error_latency: SimDuration::from_millis(8),
            fast_fail_latency: SimDuration::from_micros(20),
        }
    }
}

/// Aggregate counters for evaluation harnesses.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ArrayStats {
    /// Read commands submitted.
    pub reads: u64,
    /// Write commands submitted.
    pub writes: u64,
    /// Sectors read.
    pub read_sectors: u64,
    /// Sectors written.
    pub write_sectors: u64,
    /// Reads served entirely from cache.
    pub read_full_hits: u64,
    /// Commands failed with `MEDIUM ERROR` by the fault plan.
    pub media_errors: u64,
    /// Commands refused with `BUSY` by the fault plan.
    pub busy_rejections: u64,
    /// Commands failed with `UNIT ATTENTION` by the fault plan.
    pub unit_attentions: u64,
    /// Commands swallowed (no completion) by the fault plan.
    pub hangs: u64,
}

/// What the array did with a command submitted through the fallible
/// entry point [`StorageArray::submit_with_faults`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submission {
    /// A completion (successful or failed) will surface at `at`.
    Completed {
        /// Completion instant.
        at: SimTime,
        /// SCSI outcome the completion carries.
        status: ScsiStatus,
    },
    /// The command was swallowed by a firmware hang: no completion will
    /// ever arrive. Only the initiator's timeout/abort path reclaims it.
    Hung,
}

/// A simulated storage array shared by all initiators that hold a
/// reference to it.
///
/// # Examples
///
/// ```
/// use simkit::{SimRng, SimTime};
/// use storage::{ArrayParams, StorageArray};
/// use vscsi::{IoDirection, Lba};
///
/// let mut array = StorageArray::new(ArrayParams::default(), SimRng::seed_from(1));
/// let done = array.submit(IoDirection::Read, Lba::new(0), 16, SimTime::ZERO);
/// assert!(done > SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct StorageArray {
    params: ArrayParams,
    disks: Vec<Disk>,
    /// Per-spindle FIFO calendar: when the spindle next becomes free.
    busy_until: Vec<SimTime>,
    /// Host-link calendar (shared data path).
    link_busy_until: SimTime,
    cache: ArrayCache,
    stats: ArrayStats,
    /// Injected-fault schedule, if any (see the `faultkit` crate).
    fault_plan: Option<FaultPlan>,
}

impl StorageArray {
    /// Builds an array; each spindle gets an independent RNG sub-stream.
    pub fn new(params: ArrayParams, rng: SimRng) -> Self {
        let disks = (0..params.raid.disks)
            .map(|i| Disk::new(params.disk.clone(), rng.fork(&format!("disk{i}"))))
            .collect::<Vec<_>>();
        let busy_until = vec![SimTime::ZERO; params.raid.disks];
        StorageArray {
            cache: ArrayCache::new(params.cache.clone()),
            params,
            disks,
            busy_until,
            link_busy_until: SimTime::ZERO,
            stats: ArrayStats::default(),
            fault_plan: None,
        }
    }

    /// Attaches a fault plan; subsequent [`StorageArray::submit_with_faults`]
    /// calls consult it. Replaces any previous plan.
    pub fn attach_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// The attached fault plan, if any (for injection accounting).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// The array's configuration.
    pub fn params(&self) -> &ArrayParams {
        &self.params
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ArrayStats {
        self.stats
    }

    /// Read-cache state (hit/miss counters, residency).
    pub fn cache(&self) -> &ArrayCache {
        &self.cache
    }

    /// Submits one command at time `now`; returns its completion instant.
    ///
    /// Commands on the same spindle queue FCFS in submission order, so the
    /// caller must submit in non-decreasing `now` order for results to be
    /// meaningful (the hypervisor's event loop guarantees this).
    pub fn submit(
        &mut self,
        direction: IoDirection,
        lba: Lba,
        sectors: u64,
        now: SimTime,
    ) -> SimTime {
        debug_assert!(sectors > 0, "zero-length array command");
        match direction {
            IoDirection::Read => self.submit_read(lba, sectors, now),
            IoDirection::Write => self.submit_write(lba, sectors, now),
        }
    }

    /// Fallible variant of [`StorageArray::submit`]: consults the
    /// attached [`FaultPlan`] (if any) before servicing.
    ///
    /// * No plan, or the plan passes the command: normal service; an
    ///   active latency-spike window inflates the service portion of the
    ///   latency (queueing state is charged at normal speed, modelling a
    ///   slow *return* path rather than a slow spindle).
    /// * Media error: the firmware grinds for
    ///   [`ArrayParams::media_error_latency`] and fails the command;
    ///   spindles are not charged.
    /// * BUSY / UNIT ATTENTION: fast controller-level refusal after
    ///   [`ArrayParams::fast_fail_latency`].
    /// * Hang: [`Submission::Hung`] — no completion will ever arrive.
    pub fn submit_with_faults(
        &mut self,
        direction: IoDirection,
        lba: Lba,
        sectors: u64,
        now: SimTime,
    ) -> Submission {
        let decision = match self.fault_plan.as_mut() {
            Some(plan) => plan.decide(direction, lba, sectors.min(u64::from(u32::MAX)) as u32, now),
            None => faultkit::FaultDecision::healthy(),
        };
        let overhead = self.params.controller_overhead;
        match decision.outcome {
            FaultOutcome::None => {
                let done = self.submit(direction, lba, sectors, now);
                let at = if decision.latency_multiplier != 1.0 {
                    now + done
                        .saturating_since(now)
                        .mul_f64(decision.latency_multiplier)
                } else {
                    done
                };
                Submission::Completed {
                    at,
                    status: ScsiStatus::Good,
                }
            }
            FaultOutcome::MediumError => {
                self.stats.media_errors += 1;
                Submission::Completed {
                    at: now + overhead + self.params.media_error_latency,
                    status: ScsiStatus::CheckCondition(SenseKey::MediumError),
                }
            }
            FaultOutcome::UnitAttention => {
                self.stats.unit_attentions += 1;
                Submission::Completed {
                    at: now + overhead + self.params.fast_fail_latency,
                    status: ScsiStatus::CheckCondition(SenseKey::UnitAttention),
                }
            }
            FaultOutcome::Busy => {
                self.stats.busy_rejections += 1;
                Submission::Completed {
                    at: now + overhead + self.params.fast_fail_latency,
                    status: ScsiStatus::Busy,
                }
            }
            FaultOutcome::Hang => {
                self.stats.hangs += 1;
                Submission::Hung
            }
        }
    }

    fn submit_read(&mut self, lba: Lba, sectors: u64, now: SimTime) -> SimTime {
        self.stats.reads += 1;
        self.stats.read_sectors += sectors;
        let outcome = self.cache.read(lba, sectors);
        let start = now + self.params.controller_overhead;
        let link_done = self.claim_link(start, sectors);
        if outcome.is_full_hit() {
            self.stats.read_full_hits += 1;
            return link_done.max(start + self.params.cache_hit_latency);
        }
        // Fetch the whole request from the spindles (misses dominate once
        // any page misses; read-ahead makes true sequential runs full hits).
        let media_done = self.charge_extents(lba, sectors, start, 1);
        // Read-ahead happens in the background: it occupies the spindles
        // after this request but does not delay its completion.
        if outcome.readahead_sectors > 0 {
            let ra_start = media_done;
            let _ =
                self.charge_extents(lba.advance(sectors), outcome.readahead_sectors, ra_start, 1);
        }
        media_done.max(link_done)
    }

    fn submit_write(&mut self, lba: Lba, sectors: u64, now: SimTime) -> SimTime {
        self.stats.writes += 1;
        self.stats.write_sectors += sectors;
        let absorbed = self.cache.write(lba, sectors);
        let start = now + self.params.controller_overhead;
        let link_done = self.claim_link(start, sectors);
        let ops = self.params.raid.write_ops_per_extent();
        if absorbed {
            // Write-back: ack fast, destage in the background.
            let ack = link_done.max(start + self.params.write_ack_latency);
            let _ = self.charge_extents(lba, sectors, ack, ops);
            ack
        } else {
            let media_done = self.charge_extents(lba, sectors, start, ops);
            media_done.max(link_done)
        }
    }

    /// Queues the mapped extents on their spindles starting no earlier than
    /// `start`; returns when the last extent finishes. `ops` replays each
    /// extent that many times (RAID-5 read-modify-write amplification).
    fn charge_extents(&mut self, lba: Lba, sectors: u64, start: SimTime, ops: u32) -> SimTime {
        let mut done = start;
        for extent in self.params.raid.map(lba, sectors) {
            for _ in 0..ops {
                let begin = self.busy_until[extent.disk].max(start);
                let service = self.disks[extent.disk].service(extent.lba, extent.sectors);
                let finish = begin + service;
                self.busy_until[extent.disk] = finish;
                if finish > done {
                    done = finish;
                }
            }
        }
        done
    }

    /// Serializes `sectors` of data transfer on the host link.
    fn claim_link(&mut self, start: SimTime, sectors: u64) -> SimTime {
        let begin = self.link_busy_until.max(start);
        let xfer = SimDuration::from_secs_f64(
            (sectors * SECTOR_SIZE) as f64 / self.params.link_rate as f64,
        );
        self.link_busy_until = begin + xfer;
        self.link_busy_until
    }

    /// Mean spindle utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        let busy: f64 = self
            .disks
            .iter()
            .map(|d| d.busy_total().as_secs_f64())
            .sum();
        busy / (self.disks.len() as f64 * horizon.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array(cache: CacheParams) -> StorageArray {
        StorageArray::new(
            ArrayParams {
                cache,
                ..Default::default()
            },
            SimRng::seed_from(1),
        )
    }

    #[test]
    fn cache_hit_is_much_faster_than_miss() {
        let mut a = array(CacheParams::default());
        let t0 = SimTime::ZERO;
        let miss = a.submit(IoDirection::Read, Lba::new(0), 16, t0);
        let t1 = miss;
        let hit = a.submit(IoDirection::Read, Lba::new(0), 16, t1);
        let miss_lat = miss - t0;
        let hit_lat = hit - t1;
        assert!(hit_lat < miss_lat / 4, "hit {hit_lat}, miss {miss_lat}");
        assert_eq!(a.stats().read_full_hits, 1);
    }

    #[test]
    fn cache_off_never_hits() {
        let mut a = array(CacheParams::read_cache_off());
        let mut now = SimTime::ZERO;
        for _ in 0..5 {
            now = a.submit(IoDirection::Read, Lba::new(0), 16, now);
        }
        assert_eq!(a.stats().read_full_hits, 0);
    }

    #[test]
    fn queueing_delay_builds_under_burst() {
        let mut a = array(CacheParams::read_cache_off());
        // 8 random reads to the same spindle, all at t=0.
        let stripe = a.params().raid.stripe_sectors;
        let data_disks = a.params().raid.data_disks() as u64;
        let mut latencies = Vec::new();
        for i in 0..8u64 {
            // Same column every time: stripe-unit index multiple of data_disks.
            let lba = Lba::new(i * stripe * data_disks * 1000);
            let done = a.submit(IoDirection::Read, lba, 16, SimTime::ZERO);
            latencies.push(done - SimTime::ZERO);
        }
        for w in latencies.windows(2) {
            assert!(w[1] > w[0], "later submissions must queue behind earlier");
        }
    }

    #[test]
    fn striping_spreads_load() {
        let mut a = array(CacheParams::read_cache_off());
        let stripe = a.params().raid.stripe_sectors;
        // Sequential whole-stripe-unit reads land on successive spindles;
        // their completions should overlap rather than strictly serialize.
        let done_serial = {
            let mut b = a.clone();
            let mut last = SimTime::ZERO;
            for i in 0..4u64 {
                // Same spindle (stride by many full rows, defeating the
                // settle window so each access pays a seek).
                let lba = Lba::new(i * stripe * b.params().raid.data_disks() as u64 * 1000);
                last = b.submit(IoDirection::Read, lba, stripe, SimTime::ZERO);
            }
            last
        };
        let done_striped = {
            let mut last = SimTime::ZERO;
            for i in 0..4u64 {
                let lba = Lba::new(i * stripe); // successive columns
                last = a.submit(IoDirection::Read, lba, stripe, SimTime::ZERO);
            }
            last
        };
        assert!(done_striped < done_serial);
    }

    #[test]
    fn write_back_ack_is_fast_write_through_is_slow() {
        let mut wb = array(CacheParams::default());
        let t = SimTime::ZERO;
        let ack = wb.submit(IoDirection::Write, Lba::new(0), 16, t) - t;
        let mut wt = array(CacheParams {
            write_back: false,
            ..Default::default()
        });
        let wt_done = wt.submit(IoDirection::Write, Lba::new(0), 16, t) - t;
        assert!(
            ack < wt_done,
            "write-back ack {ack} vs write-through {wt_done}"
        );
        assert!(ack.as_micros() < 1_000);
    }

    #[test]
    fn raid5_writes_slower_than_raid0() {
        let mk = |level| {
            StorageArray::new(
                ArrayParams {
                    raid: RaidConfig::new(level, 5, 128),
                    cache: CacheParams {
                        read_capacity_bytes: 0,
                        readahead_pages: 0,
                        write_back: false,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                SimRng::seed_from(3),
            )
        };
        let mut r0 = mk(RaidLevel::Raid0);
        let mut r5 = mk(RaidLevel::Raid5);
        let mut t0 = SimTime::ZERO;
        let mut t5 = SimTime::ZERO;
        for i in 0..10u64 {
            let lba = Lba::new(i * 1_000_000);
            t0 = r0.submit(IoDirection::Write, lba, 16, t0);
            t5 = r5.submit(IoDirection::Write, lba, 16, t5);
        }
        assert!(t5 > t0, "raid5 stream {t5} vs raid0 {t0}");
    }

    #[test]
    fn sequential_with_readahead_reaches_hits() {
        let mut a = array(CacheParams::default());
        let mut now = SimTime::ZERO;
        let mut last_latencies = Vec::new();
        for i in 0..40u64 {
            let lba = Lba::new(i * 16);
            let done = a.submit(IoDirection::Read, lba, 16, now);
            last_latencies.push((done - now).as_micros());
            now = done;
        }
        // After warmup the stream should be absorbed by read-ahead hits.
        let tail = &last_latencies[20..];
        let hits_in_tail = tail.iter().filter(|&&us| us < 1_000).count();
        assert!(hits_in_tail > tail.len() / 2, "tail latencies: {tail:?}");
    }

    #[test]
    fn stats_accumulate() {
        let mut a = array(CacheParams::default());
        a.submit(IoDirection::Read, Lba::new(0), 8, SimTime::ZERO);
        a.submit(IoDirection::Write, Lba::new(0), 8, SimTime::ZERO);
        let s = a.stats();
        assert_eq!((s.reads, s.writes), (1, 1));
        assert_eq!(s.read_sectors, 8);
        assert_eq!(s.write_sectors, 8);
    }

    #[test]
    fn submit_with_faults_no_plan_matches_submit() {
        let mut a = array(CacheParams::default());
        let mut b = a.clone();
        let done = a.submit(IoDirection::Read, Lba::new(64), 16, SimTime::ZERO);
        let sub = b.submit_with_faults(IoDirection::Read, Lba::new(64), 16, SimTime::ZERO);
        assert_eq!(
            sub,
            Submission::Completed {
                at: done,
                status: ScsiStatus::Good
            }
        );
    }

    #[test]
    fn media_error_fails_without_touching_spindles() {
        use faultkit::FaultPlanBuilder;
        let mut a = array(CacheParams::read_cache_off());
        a.attach_fault_plan(
            FaultPlanBuilder::new(1)
                .media_error(Lba::new(0), Lba::new(999), None)
                .build(),
        );
        let sub = a.submit_with_faults(IoDirection::Read, Lba::new(10), 8, SimTime::ZERO);
        match sub {
            Submission::Completed { at, status } => {
                assert_eq!(status, ScsiStatus::CheckCondition(SenseKey::MediumError));
                assert_eq!(
                    at,
                    SimTime::ZERO + a.params().controller_overhead + a.params().media_error_latency
                );
            }
            Submission::Hung => panic!("media error must complete"),
        }
        assert_eq!(a.stats().media_errors, 1);
        assert_eq!(a.stats().reads, 0, "failed command must not reach spindles");
    }

    #[test]
    fn busy_rejection_is_fast() {
        use faultkit::FaultPlanBuilder;
        let mut a = array(CacheParams::default());
        a.attach_fault_plan(
            FaultPlanBuilder::new(1)
                .transient_busy(SimTime::ZERO, SimTime::from_millis(10), 1.0)
                .build(),
        );
        let Submission::Completed { at, status } =
            a.submit_with_faults(IoDirection::Write, Lba::new(0), 8, SimTime::ZERO)
        else {
            panic!("busy must complete");
        };
        assert_eq!(status, ScsiStatus::Busy);
        assert!(at.as_micros() < 100, "busy refusal should be fast: {at}");
        assert_eq!(a.stats().busy_rejections, 1);
    }

    #[test]
    fn hang_swallows_the_command() {
        use faultkit::FaultPlanBuilder;
        let mut a = array(CacheParams::default());
        a.attach_fault_plan(
            FaultPlanBuilder::new(1)
                .hang(SimTime::ZERO, SimTime::from_millis(10), 1.0)
                .build(),
        );
        let sub = a.submit_with_faults(IoDirection::Read, Lba::new(0), 8, SimTime::ZERO);
        assert_eq!(sub, Submission::Hung);
        assert_eq!(a.stats().hangs, 1);
    }

    #[test]
    fn latency_spike_inflates_service_time() {
        use faultkit::FaultPlanBuilder;
        let mut healthy = array(CacheParams::read_cache_off());
        let mut spiked = healthy.clone();
        spiked.attach_fault_plan(
            FaultPlanBuilder::new(1)
                .latency_spike(SimTime::ZERO, SimTime::from_millis(100), 4.0)
                .build(),
        );
        let base = healthy.submit(IoDirection::Read, Lba::new(64), 16, SimTime::ZERO);
        let Submission::Completed { at, status } =
            spiked.submit_with_faults(IoDirection::Read, Lba::new(64), 16, SimTime::ZERO)
        else {
            panic!("spike must complete");
        };
        assert_eq!(status, ScsiStatus::Good);
        assert_eq!(
            at.saturating_since(SimTime::ZERO).as_nanos(),
            base.saturating_since(SimTime::ZERO).mul_f64(4.0).as_nanos()
        );
    }

    #[test]
    fn utilization_bounded() {
        let mut a = array(CacheParams::read_cache_off());
        let mut now = SimTime::ZERO;
        for i in 0..50u64 {
            now = a.submit(IoDirection::Read, Lba::new(i * 999_983), 16, now);
        }
        let u = a.utilization(now);
        assert!(u > 0.0 && u <= 1.0, "u = {u}");
    }
}
