//! RAID striping geometry.
//!
//! Maps a logical extent on the array to per-spindle extents. Covers the
//! paper's two array configurations: the Symmetrix volume (RAID-5, §4
//! Table 1) and the CLARiiON CX3 volume (RAID-0, §5.3). RAID-5 writes
//! carry the classic small-write penalty (read-modify-write on data +
//! parity).

use serde::{Deserialize, Serialize};
use vscsi::Lba;

/// RAID level of a disk group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RaidLevel {
    /// Striping, no redundancy.
    Raid0,
    /// Striping with rotating parity; small writes pay read-modify-write.
    Raid5,
}

/// Striping configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaidConfig {
    /// RAID level.
    pub level: RaidLevel,
    /// Number of spindles in the group (for RAID-5 this includes the
    /// parity spindle per stripe).
    pub disks: usize,
    /// Stripe unit per spindle, in sectors.
    pub stripe_sectors: u64,
}

impl RaidConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if `disks` is zero (or < 3 for RAID-5) or the stripe unit is
    /// zero.
    pub fn new(level: RaidLevel, disks: usize, stripe_sectors: u64) -> Self {
        assert!(disks >= 1, "raid group needs at least one disk");
        assert!(stripe_sectors >= 1, "stripe unit must be positive");
        if level == RaidLevel::Raid5 {
            assert!(disks >= 3, "raid5 needs at least 3 disks");
        }
        RaidConfig {
            level,
            disks,
            stripe_sectors,
        }
    }

    /// Data spindles per stripe (RAID-5 loses one to parity).
    pub fn data_disks(&self) -> usize {
        match self.level {
            RaidLevel::Raid0 => self.disks,
            RaidLevel::Raid5 => self.disks - 1,
        }
    }

    /// Splits the logical extent `[lba, lba + sectors)` into per-spindle
    /// pieces `(disk_index, disk_lba, sectors)`.
    ///
    /// Addresses use left-symmetric layout for RAID-5; the parity spindle
    /// rotates per stripe row and carries no logical data.
    pub fn map(&self, lba: Lba, sectors: u64) -> Vec<StripeExtent> {
        let mut out = Vec::new();
        if sectors == 0 {
            return out;
        }
        let data_disks = self.data_disks() as u64;
        let mut remaining = sectors;
        let mut logical = lba.sector();
        while remaining > 0 {
            let stripe_unit = logical / self.stripe_sectors;
            let offset_in_unit = logical % self.stripe_sectors;
            let run = (self.stripe_sectors - offset_in_unit).min(remaining);
            let row = stripe_unit / data_disks;
            let col = (stripe_unit % data_disks) as usize;
            let disk = match self.level {
                RaidLevel::Raid0 => col,
                RaidLevel::Raid5 => {
                    // Left-symmetric: parity on disk (disks-1 - row % disks);
                    // data columns shift around it.
                    let parity = self.disks - 1 - (row as usize % self.disks);
                    let d = (parity + 1 + col) % self.disks;
                    d
                }
            };
            let disk_lba = row * self.stripe_sectors + offset_in_unit;
            out.push(StripeExtent {
                disk,
                lba: Lba::new(disk_lba),
                sectors: run,
            });
            logical += run;
            remaining -= run;
        }
        out
    }

    /// RAID-5 small-write amplification: number of spindle operations per
    /// logical write extent (read old data, read old parity, write data,
    /// write parity = 4); RAID-0 writes are a single operation.
    pub fn write_ops_per_extent(&self) -> u32 {
        match self.level {
            RaidLevel::Raid0 => 1,
            RaidLevel::Raid5 => 4,
        }
    }
}

/// One spindle-local piece of a mapped extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeExtent {
    /// Spindle index within the group.
    pub disk: usize,
    /// Address on that spindle.
    pub lba: Lba,
    /// Length in sectors.
    pub sectors: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raid0_small_request_single_disk() {
        let cfg = RaidConfig::new(RaidLevel::Raid0, 4, 128);
        let m = cfg.map(Lba::new(0), 16);
        assert_eq!(
            m,
            vec![StripeExtent {
                disk: 0,
                lba: Lba::new(0),
                sectors: 16
            }]
        );
    }

    #[test]
    fn raid0_rotates_across_disks() {
        let cfg = RaidConfig::new(RaidLevel::Raid0, 4, 128);
        let disks: Vec<usize> = (0..4)
            .map(|i| cfg.map(Lba::new(i * 128), 8)[0].disk)
            .collect();
        assert_eq!(disks, vec![0, 1, 2, 3]);
        // Fifth stripe unit wraps to disk 0, next row.
        let e = cfg.map(Lba::new(4 * 128), 8)[0];
        assert_eq!(e.disk, 0);
        assert_eq!(e.lba, Lba::new(128));
    }

    #[test]
    fn large_request_spans_multiple_extents() {
        let cfg = RaidConfig::new(RaidLevel::Raid0, 2, 64);
        let m = cfg.map(Lba::new(32), 128);
        // 32..64 on disk0, 64..128 on disk1, 128..160 (row 1) on disk0.
        assert_eq!(m.len(), 3);
        assert_eq!(
            m[0],
            StripeExtent {
                disk: 0,
                lba: Lba::new(32),
                sectors: 32
            }
        );
        assert_eq!(
            m[1],
            StripeExtent {
                disk: 1,
                lba: Lba::new(0),
                sectors: 64
            }
        );
        assert_eq!(
            m[2],
            StripeExtent {
                disk: 0,
                lba: Lba::new(64),
                sectors: 32
            }
        );
        let total: u64 = m.iter().map(|e| e.sectors).sum();
        assert_eq!(total, 128);
    }

    #[test]
    fn raid5_avoids_parity_disk_and_rotates() {
        let cfg = RaidConfig::new(RaidLevel::Raid5, 4, 64);
        // Row 0: parity on disk 3; data columns on 0,1,2... shifted by parity+1.
        let row0: Vec<usize> = (0..3)
            .map(|i| cfg.map(Lba::new(i * 64), 8)[0].disk)
            .collect();
        assert_eq!(row0.len(), 3);
        assert!(
            !row0.contains(&3),
            "row 0 data must avoid parity disk 3: {row0:?}"
        );
        // Row 1: parity moves to disk 2.
        let row1: Vec<usize> = (3..6)
            .map(|i| cfg.map(Lba::new(i * 64), 8)[0].disk)
            .collect();
        assert!(
            !row1.contains(&2),
            "row 1 data must avoid parity disk 2: {row1:?}"
        );
    }

    #[test]
    fn raid5_write_penalty() {
        assert_eq!(
            RaidConfig::new(RaidLevel::Raid5, 4, 64).write_ops_per_extent(),
            4
        );
        assert_eq!(
            RaidConfig::new(RaidLevel::Raid0, 4, 64).write_ops_per_extent(),
            1
        );
    }

    #[test]
    fn map_conserves_sectors() {
        let cfg = RaidConfig::new(RaidLevel::Raid5, 5, 128);
        for (lba, n) in [(0u64, 1u64), (127, 2), (1000, 4096), (54321, 777)] {
            let total: u64 = cfg.map(Lba::new(lba), n).iter().map(|e| e.sectors).sum();
            assert_eq!(total, n, "lba={lba} n={n}");
        }
        assert!(cfg.map(Lba::new(0), 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "raid5 needs at least 3 disks")]
    fn raid5_disk_count_validated() {
        let _ = RaidConfig::new(RaidLevel::Raid5, 2, 64);
    }
}
