//! Mechanical disk model.
//!
//! First-principles service-time model for one spindle: seek (square-root
//! curve between track-to-track and full-stroke), rotational latency
//! (uniform up to one revolution, skipped when the access is contiguous
//! with the previous one), and media transfer. Defaults approximate the
//! 15k-RPM Fibre Channel drives behind the paper's arrays (Table 1 era).

use serde::{Deserialize, Serialize};
use simkit::{Dist, SimDuration, SimRng};
use vscsi::{Lba, SECTOR_SIZE};

/// Mechanical/geometry parameters of one disk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskParams {
    /// Usable capacity, in sectors.
    pub capacity_sectors: u64,
    /// Track-to-track (minimum non-zero) seek.
    pub seek_min: SimDuration,
    /// Full-stroke (maximum) seek.
    pub seek_max: SimDuration,
    /// Time of one platter revolution (4 ms at 15k RPM).
    pub revolution: SimDuration,
    /// Sustained media transfer rate at the *outer* edge (LBA 0), bytes
    /// per second. Modern drives map low LBAs to outer tracks, which pass
    /// more bits per revolution under the head.
    pub transfer_rate: u64,
    /// Transfer rate at the *inner* edge (highest LBA). Equal to
    /// `transfer_rate` disables zoning; a typical drive's inner rate is
    /// ~55–65% of its outer rate.
    pub transfer_rate_inner: u64,
    /// Sectors within which an access counts as contiguous (no seek, no
    /// rotational delay) with the previous one.
    pub settle_window: u64,
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams::fc_15k()
    }
}

impl DiskParams {
    /// A 146 GB 15k-RPM Fibre Channel drive, the kind populating a 2007
    /// Symmetrix/CLARiiON shelf.
    pub fn fc_15k() -> Self {
        DiskParams {
            capacity_sectors: 146 * 1024 * 1024 * 1024 / SECTOR_SIZE,
            seek_min: SimDuration::from_micros(200),
            seek_max: SimDuration::from_micros(7_500),
            revolution: SimDuration::from_micros(4_000),
            transfer_rate: 80_000_000,
            transfer_rate_inner: 48_000_000,
            settle_window: 256,
        }
    }

    /// A slower 10k-RPM SATA-class drive, for ablations.
    pub fn sata_10k() -> Self {
        DiskParams {
            capacity_sectors: 300 * 1024 * 1024 * 1024 / SECTOR_SIZE,
            seek_min: SimDuration::from_micros(400),
            seek_max: SimDuration::from_micros(12_000),
            revolution: SimDuration::from_micros(6_000),
            transfer_rate: 60_000_000,
            transfer_rate_inner: 36_000_000,
            settle_window: 256,
        }
    }
}

/// One spindle: tracks head position and serializes service.
///
/// The disk is a *calendar* resource: [`Disk::service`] computes how long a
/// request at the head's current position takes and advances internal
/// state; queueing (busy-until bookkeeping) is handled by the array layer.
///
/// # Examples
///
/// ```
/// use simkit::SimRng;
/// use storage::{Disk, DiskParams};
/// use vscsi::Lba;
///
/// let mut disk = Disk::new(DiskParams::fc_15k(), SimRng::seed_from(1));
/// // First access pays seek + rotation; an adjacent follow-up is cheap.
/// let far = disk.service(Lba::new(1_000_000), 16);
/// let near = disk.service(Lba::new(1_000_016), 16);
/// assert!(near < far);
/// ```
#[derive(Debug, Clone)]
pub struct Disk {
    params: DiskParams,
    rng: SimRng,
    /// Sector the head is parked after, or `None` before first access.
    head: Option<u64>,
    served: u64,
    busy_total: SimDuration,
}

impl Disk {
    /// Creates a disk with its own deterministic RNG stream.
    pub fn new(params: DiskParams, rng: SimRng) -> Self {
        Disk {
            params,
            rng,
            head: None,
            served: 0,
            busy_total: SimDuration::ZERO,
        }
    }

    /// The disk's parameters.
    pub fn params(&self) -> &DiskParams {
        &self.params
    }

    /// Number of requests serviced.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Total busy time accumulated.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Computes the service time for `sectors` starting at `lba`, moving the
    /// head there. Contiguous accesses (within `settle_window` of the
    /// previous end) skip the seek and rotational components.
    pub fn service(&mut self, lba: Lba, sectors: u64) -> SimDuration {
        let start = lba
            .sector()
            .min(self.params.capacity_sectors.saturating_sub(1));
        let positioning = match self.head {
            Some(head) if head.abs_diff(start) <= self.params.settle_window => SimDuration::ZERO,
            Some(head) => self.seek_time(head.abs_diff(start)) + self.rotational_latency(),
            None => self.seek_time(self.params.capacity_sectors / 3) + self.rotational_latency(),
        };
        let transfer = self.transfer_time_at(start, sectors);
        self.head = Some(start.saturating_add(sectors));
        self.served += 1;
        let total = positioning + transfer;
        self.busy_total += total;
        total
    }

    /// Seek time for a head movement of `distance` sectors: square-root
    /// interpolation between `seek_min` and `seek_max`.
    pub fn seek_time(&self, distance: u64) -> SimDuration {
        if distance == 0 {
            return SimDuration::ZERO;
        }
        let frac = (distance as f64 / self.params.capacity_sectors as f64).min(1.0);
        let min = self.params.seek_min.as_secs_f64();
        let max = self.params.seek_max.as_secs_f64();
        SimDuration::from_secs_f64(min + (max - min) * frac.sqrt())
    }

    /// A uniformly random fraction of one revolution.
    fn rotational_latency(&mut self) -> SimDuration {
        let frac = Dist::uniform(0.0, 1.0).sample(&mut self.rng);
        self.params.revolution.mul_f64(frac)
    }

    /// Media transfer time for `sectors` at the outer (fastest) zone.
    pub fn transfer_time(&self, sectors: u64) -> SimDuration {
        SimDuration::from_secs_f64(
            (sectors * SECTOR_SIZE) as f64 / self.params.transfer_rate as f64,
        )
    }

    /// Media transfer time for `sectors` at radial position `start`:
    /// zoned recording interpolates the rate linearly from the outer rate
    /// (LBA 0) to the inner rate (last LBA).
    pub fn transfer_time_at(&self, start: u64, sectors: u64) -> SimDuration {
        let frac = (start as f64 / self.params.capacity_sectors as f64).clamp(0.0, 1.0);
        let outer = self.params.transfer_rate as f64;
        let inner = self.params.transfer_rate_inner as f64;
        let rate = outer + (inner - outer) * frac;
        SimDuration::from_secs_f64((sectors * SECTOR_SIZE) as f64 / rate.max(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> Disk {
        Disk::new(DiskParams::fc_15k(), SimRng::seed_from(42))
    }

    #[test]
    fn seek_time_monotone_in_distance() {
        let d = disk();
        let near = d.seek_time(1_000);
        let mid = d.seek_time(10_000_000);
        let far = d.seek_time(d.params().capacity_sectors);
        assert!(SimDuration::ZERO < near);
        assert!(near < mid && mid < far);
        assert_eq!(d.seek_time(0), SimDuration::ZERO);
        assert!(far <= d.params().seek_max);
        assert!(near >= d.params().seek_min);
    }

    #[test]
    fn sequential_runs_pay_transfer_only() {
        let mut d = disk();
        let _ = d.service(Lba::new(0), 16);
        let s = d.service(Lba::new(16), 16);
        assert_eq!(s, d.transfer_time(16));
    }

    #[test]
    fn random_access_pays_positioning() {
        let mut d = disk();
        let _ = d.service(Lba::new(0), 16);
        let s = d.service(Lba::new(100_000_000), 16);
        assert!(s > d.transfer_time(16) + d.params().seek_min);
    }

    #[test]
    fn settle_window_tolerance() {
        let mut d = disk();
        let _ = d.service(Lba::new(1000), 16);
        // Head parked at 1016; anything within 256 sectors is "contiguous".
        let s = d.service(Lba::new(1016 + 256), 8);
        assert_eq!(s, d.transfer_time(8));
        let s2 = d.service(Lba::new(1016 + 256 + 8 + 257), 8);
        assert!(s2 > d.transfer_time(8));
    }

    #[test]
    fn transfer_scales_with_size() {
        let d = disk();
        let t8 = d.transfer_time(8);
        let t64 = d.transfer_time(64);
        assert!((t64.as_secs_f64() / t8.as_secs_f64() - 8.0).abs() < 1e-9);
        // 4 KiB at 80 MB/s = ~51 us.
        assert_eq!(d.transfer_time(8).as_micros(), 51);
    }

    #[test]
    fn typical_random_service_in_realistic_band() {
        // Mean random 8K service on a 15k drive should land in ~4-10 ms.
        let mut d = disk();
        let mut rng = SimRng::seed_from(7);
        let mut total = SimDuration::ZERO;
        let n = 500;
        for _ in 0..n {
            let lba = rng.range_inclusive(0, d.params().capacity_sectors - 64);
            total += d.service(Lba::new(lba), 16);
        }
        let mean_us = total.as_micros() / n;
        assert!(
            (3_000..10_000).contains(&mean_us),
            "mean random service = {mean_us} us"
        );
    }

    #[test]
    fn zoned_transfer_outer_faster_than_inner() {
        let d = disk();
        let cap = d.params().capacity_sectors;
        let outer = d.transfer_time_at(0, 128);
        let mid = d.transfer_time_at(cap / 2, 128);
        let inner = d.transfer_time_at(cap - 1, 128);
        assert!(outer < mid && mid < inner, "{outer} {mid} {inner}");
        assert_eq!(outer, d.transfer_time(128));
        // Inner rate = 60% of outer: inner time ~ 1.67x outer time.
        let ratio = inner.as_secs_f64() / outer.as_secs_f64();
        assert!((1.5..1.8).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn counters_accumulate() {
        let mut d = disk();
        assert_eq!(d.served(), 0);
        let s = d.service(Lba::new(0), 8);
        assert_eq!(d.served(), 1);
        assert_eq!(d.busy_total(), s);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Disk::new(DiskParams::fc_15k(), SimRng::seed_from(9));
        let mut b = Disk::new(DiskParams::fc_15k(), SimRng::seed_from(9));
        for i in 0..100u64 {
            let lba = Lba::new((i * 7_919_993) % 100_000_000);
            assert_eq!(a.service(lba, 16), b.service(lba, 16));
        }
    }
}
