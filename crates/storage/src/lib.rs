//! # storage — a discrete-event disk array simulator
//!
//! Stands in for the paper's physical SAN (EMC Symmetrix / CLARiiON CX3
//! behind 4 Gb Fibre Channel — Table 1, §5.3). The model is built from
//! first principles so the *relative* behaviours the paper's evaluation
//! depends on all emerge rather than being scripted:
//!
//! * cache hits ≪ cache misses ([`ArrayCache`], read-ahead streams);
//! * sequential ≪ random at the spindle ([`Disk`] seek/rotation model);
//! * RAID striping parallelism and the RAID-5 small-write penalty
//!   ([`RaidConfig`]);
//! * FIFO queueing delay when multiple initiators share the group
//!   ([`StorageArray`] per-spindle calendars) — the §3.7/Figure 6
//!   interference mechanism.
//!
//! # Examples
//!
//! ```
//! use simkit::{SimRng, SimTime};
//! use storage::{presets, StorageArray};
//! use vscsi::{IoDirection, Lba};
//!
//! let mut array = StorageArray::new(presets::clariion_cx3(), SimRng::seed_from(7));
//! let mut now = SimTime::ZERO;
//! // Sequential reads warm the prefetcher, then ride the cache.
//! for i in 0..32u64 {
//!     now = array.submit(IoDirection::Read, Lba::new(i * 16), 16, now);
//! }
//! assert!(array.cache().hits() > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod array;
mod cache;
mod disk;
pub mod presets;
mod raid;

pub use array::{ArrayParams, ArrayStats, StorageArray, Submission};
pub use cache::{ArrayCache, CacheParams, ReadOutcome, PAGE_SECTORS};
pub use disk::{Disk, DiskParams};
pub use raid::{RaidConfig, RaidLevel, StripeExtent};
