//! Array presets matching the paper's testbed (Table 1, §5.3).

use crate::array::ArrayParams;
use crate::cache::CacheParams;
use crate::disk::DiskParams;
use crate::raid::{RaidConfig, RaidLevel};
use simkit::SimDuration;

/// The reference array: "EMC Symmetrix 500 GB RAID-5" behind a 4 Gb FC
/// fabric (Table 1). Very large mirrored cache — §5.3 found interference
/// "likely \[hidden\] due to the very large cache and the striping pattern".
pub fn symmetrix() -> ArrayParams {
    ArrayParams {
        raid: RaidConfig::new(RaidLevel::Raid5, 16, 128),
        cache: CacheParams {
            read_capacity_bytes: 32 * 1024 * 1024 * 1024,
            readahead_pages: 32,
            max_streams: 128,
            write_back: true,
            ..CacheParams::default()
        },
        disk: DiskParams::fc_15k(),
        controller_overhead: SimDuration::from_micros(40),
        cache_hit_latency: SimDuration::from_micros(200),
        write_ack_latency: SimDuration::from_micros(250),
        link_rate: 400_000_000,
        ..ArrayParams::default()
    }
}

/// The "lower cost EMC CLARiiON CX3 RAID-0 with an active read cache
/// (2.5 GB)" from §5.3.
pub fn clariion_cx3() -> ArrayParams {
    ArrayParams {
        raid: RaidConfig::new(RaidLevel::Raid0, 15, 128),
        cache: CacheParams {
            read_capacity_bytes: 2_500 * 1024 * 1024,
            readahead_pages: 16,
            max_streams: 32,
            write_back: true,
            ..CacheParams::default()
        },
        disk: DiskParams::fc_15k(),
        controller_overhead: SimDuration::from_micros(30),
        cache_hit_latency: SimDuration::from_micros(120),
        write_ack_latency: SimDuration::from_micros(150),
        link_rate: 400_000_000,
        ..ArrayParams::default()
    }
}

/// The CX3 with its read cache turned off, "forcing all I/Os to hit the
/// disk" — the paper's extreme worst case for Figure 6.
pub fn clariion_cx3_cache_off() -> ArrayParams {
    let mut p = clariion_cx3();
    p.cache = CacheParams {
        read_capacity_bytes: 0,
        readahead_pages: 0,
        write_back: p.cache.write_back,
        ..p.cache
    };
    p
}

/// A single bare spindle, for unit-scale experiments and ablations.
pub fn single_disk() -> ArrayParams {
    ArrayParams {
        raid: RaidConfig::new(RaidLevel::Raid0, 1, 128),
        cache: CacheParams::read_cache_off(),
        disk: DiskParams::fc_15k(),
        controller_overhead: SimDuration::from_micros(20),
        cache_hit_latency: SimDuration::from_micros(100),
        write_ack_latency: SimDuration::from_micros(100),
        link_rate: 400_000_000,
        ..ArrayParams::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_internally_consistent() {
        for p in [
            symmetrix(),
            clariion_cx3(),
            clariion_cx3_cache_off(),
            single_disk(),
        ] {
            assert!(p.raid.disks >= 1);
            assert!(p.link_rate > 0);
        }
    }

    #[test]
    fn symmetrix_cache_dwarfs_cx3() {
        assert!(
            symmetrix().cache.read_capacity_bytes > 10 * clariion_cx3().cache.read_capacity_bytes
        );
    }

    #[test]
    fn cache_off_preserves_geometry() {
        let on = clariion_cx3();
        let off = clariion_cx3_cache_off();
        assert_eq!(on.raid, off.raid);
        assert_eq!(off.cache.read_capacity_bytes, 0);
        assert_eq!(off.cache.readahead_pages, 0);
    }

    #[test]
    fn raid_levels_match_table() {
        assert_eq!(symmetrix().raid.level, RaidLevel::Raid5);
        assert_eq!(clariion_cx3().raid.level, RaidLevel::Raid0);
    }
}
