//! Array read cache with sequential read-ahead, plus a write-back cache
//! admission model.
//!
//! The multi-VM experiments hinge on cache behaviour: the Symmetrix's
//! "very large cache" hides interference, the CLARiiON CX3's 2.5 GiB read
//! cache softens it, and with the read cache off "all I/Os hit the disk"
//! (§5.3). The model is a page-granular exact-LRU cache plus a small table
//! of detected sequential streams that triggers read-ahead.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use vscsi::{Lba, SECTOR_SIZE};

/// Cache page size: 16 KiB (32 sectors), a common array track-buffer unit.
pub const PAGE_SECTORS: u64 = 32;

/// Configuration of the array cache.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheParams {
    /// Read cache capacity in bytes; 0 disables read caching entirely.
    pub read_capacity_bytes: u64,
    /// Pages of read-ahead issued when a sequential stream is recognized.
    pub readahead_pages: u64,
    /// How many concurrent sequential streams the prefetcher can track.
    pub max_streams: usize,
    /// Maximum gap (sectors) between the end of a detected stream and the
    /// next access for the stream to continue.
    pub stream_gap_sectors: u64,
    /// `true` if writes are acknowledged from mirrored cache (write-back);
    /// `false` forces write-through to the spindles.
    pub write_back: bool,
}

impl Default for CacheParams {
    fn default() -> Self {
        CacheParams {
            read_capacity_bytes: 2_500 * 1024 * 1024, // the CX3's 2.5 GiB
            readahead_pages: 16,
            max_streams: 32,
            stream_gap_sectors: 2 * PAGE_SECTORS,
            write_back: true,
        }
    }
}

impl CacheParams {
    /// A disabled read cache ("turn off the CX3 read cache forcing all I/Os
    /// to hit the disk", §5.3). Write-back stays on; the experiments that
    /// need write-through set it explicitly.
    pub fn read_cache_off() -> Self {
        CacheParams {
            read_capacity_bytes: 0,
            readahead_pages: 0,
            ..Default::default()
        }
    }
}

/// Result of a read lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Sectors served from cache.
    pub hit_sectors: u64,
    /// Sectors that must be fetched from the spindles.
    pub miss_sectors: u64,
    /// Additional sectors the prefetcher wants fetched beyond the request.
    pub readahead_sectors: u64,
}

impl ReadOutcome {
    /// `true` when the entire request was served from cache.
    pub fn is_full_hit(&self) -> bool {
        self.miss_sectors == 0
    }
}

#[derive(Debug, Clone, Copy)]
struct Stream {
    /// Sector just past the last access of this stream.
    next: u64,
    /// Accesses observed on this stream.
    length: u64,
    /// LRU stamp.
    last_used: u64,
}

/// Page-granular exact-LRU read cache with stream-based read-ahead.
///
/// # Examples
///
/// ```
/// use storage::{ArrayCache, CacheParams};
/// use vscsi::Lba;
///
/// let mut cache = ArrayCache::new(CacheParams::default());
/// // Cold read misses...
/// let first = cache.read(Lba::new(0), 16);
/// assert!(!first.is_full_hit());
/// // ...but the fetched range is now resident.
/// let again = cache.read(Lba::new(0), 16);
/// assert!(again.is_full_hit());
/// ```
#[derive(Debug, Clone)]
pub struct ArrayCache {
    params: CacheParams,
    capacity_pages: u64,
    /// page -> LRU stamp.
    resident: HashMap<u64, u64>,
    /// LRU stamp -> page (inverse index for O(log n) eviction).
    lru: BTreeMap<u64, u64>,
    tick: u64,
    streams: Vec<Stream>,
    hits: u64,
    misses: u64,
    prefetched_pages: u64,
}

impl ArrayCache {
    /// Creates a cache.
    pub fn new(params: CacheParams) -> Self {
        let capacity_pages = params.read_capacity_bytes / (PAGE_SECTORS * SECTOR_SIZE);
        ArrayCache {
            params,
            capacity_pages,
            resident: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            streams: Vec::new(),
            hits: 0,
            misses: 0,
            prefetched_pages: 0,
        }
    }

    /// The cache parameters.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Page-hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Page-misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Pages brought in by read-ahead so far.
    pub fn prefetched_pages(&self) -> u64 {
        self.prefetched_pages
    }

    /// Hit rate over pages (`None` before any lookup).
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        (total > 0).then(|| self.hits as f64 / total as f64)
    }

    /// Pages currently resident.
    pub fn resident_pages(&self) -> u64 {
        self.resident.len() as u64
    }

    /// Looks up a read, updates residency/stream state, and reports what
    /// must be fetched. The missing pages and any read-ahead pages are
    /// inserted as resident (the caller charges the spindle time).
    pub fn read(&mut self, lba: Lba, sectors: u64) -> ReadOutcome {
        if self.capacity_pages == 0 {
            // Read cache disabled: everything hits the disk; no read-ahead.
            return ReadOutcome {
                hit_sectors: 0,
                miss_sectors: sectors,
                readahead_sectors: 0,
            };
        }
        let first_page = lba.sector() / PAGE_SECTORS;
        let last_page = (lba.sector() + sectors.max(1) - 1) / PAGE_SECTORS;
        let mut hit_pages = 0u64;
        let mut miss_pages = 0u64;
        for page in first_page..=last_page {
            if self.touch(page) {
                hit_pages += 1;
            } else {
                miss_pages += 1;
                self.insert(page);
            }
        }
        self.hits += hit_pages;
        self.misses += miss_pages;

        let readahead_pages = self.update_streams(lba.sector(), sectors);
        for i in 0..readahead_pages {
            self.insert(last_page + 1 + i);
        }
        self.prefetched_pages += readahead_pages;

        // Attribute sectors proportionally to page hits/misses; exact at
        // page granularity, approximate at the request edges.
        let total_pages = hit_pages + miss_pages;
        let miss_sectors = sectors * miss_pages / total_pages.max(1);
        ReadOutcome {
            hit_sectors: sectors - miss_sectors,
            miss_sectors,
            readahead_sectors: readahead_pages * PAGE_SECTORS,
        }
    }

    /// Admits written data. Returns `true` if the write is absorbed by the
    /// write-back cache (fast ack), `false` if it must go straight to disk.
    pub fn write(&mut self, lba: Lba, sectors: u64) -> bool {
        if self.capacity_pages > 0 {
            // Write-allocate into the read cache so read-after-write hits.
            let first_page = lba.sector() / PAGE_SECTORS;
            let last_page = (lba.sector() + sectors.max(1) - 1) / PAGE_SECTORS;
            for page in first_page..=last_page {
                if !self.touch(page) {
                    self.insert(page);
                }
            }
        }
        self.params.write_back
    }

    /// Drops all resident pages and stream state (cache flush).
    pub fn invalidate_all(&mut self) {
        self.resident.clear();
        self.lru.clear();
        self.streams.clear();
    }

    /// Touches `page`, refreshing its LRU stamp; `true` if it was resident.
    fn touch(&mut self, page: u64) -> bool {
        self.tick += 1;
        match self.resident.get_mut(&page) {
            Some(stamp) => {
                self.lru.remove(stamp);
                *stamp = self.tick;
                self.lru.insert(self.tick, page);
                true
            }
            None => false,
        }
    }

    fn insert(&mut self, page: u64) {
        if self.capacity_pages == 0 {
            return;
        }
        self.tick += 1;
        if let Some(old) = self.resident.insert(page, self.tick) {
            self.lru.remove(&old);
        }
        self.lru.insert(self.tick, page);
        while self.resident.len() as u64 > self.capacity_pages {
            let (&stamp, &victim) = self.lru.iter().next().expect("lru nonempty");
            self.lru.remove(&stamp);
            self.resident.remove(&victim);
        }
    }

    /// Advances stream detection; returns pages of read-ahead to fetch.
    fn update_streams(&mut self, start: u64, sectors: u64) -> u64 {
        if self.params.readahead_pages == 0 {
            return 0;
        }
        self.tick += 1;
        let end = start + sectors;
        if let Some(s) = self.streams.iter_mut().find(|s| {
            start >= s.next.saturating_sub(1) && start <= s.next + self.params.stream_gap_sectors
        }) {
            s.next = end;
            s.length += 1;
            s.last_used = self.tick;
            // Read-ahead once the stream is established (3+ accesses).
            if s.length >= 3 {
                return self.params.readahead_pages;
            }
            return 0;
        }
        // New candidate stream; evict the stalest if the table is full.
        if self.streams.len() >= self.params.max_streams {
            if let Some(idx) = self
                .streams
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_used)
                .map(|(i, _)| i)
            {
                self.streams.swap_remove(idx);
            }
        }
        self.streams.push(Stream {
            next: end,
            length: 1,
            last_used: self.tick,
        });
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(pages: u64) -> ArrayCache {
        ArrayCache::new(CacheParams {
            read_capacity_bytes: pages * PAGE_SECTORS * SECTOR_SIZE,
            ..Default::default()
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small_cache(64);
        let first = c.read(Lba::new(0), PAGE_SECTORS);
        assert_eq!(first.miss_sectors, PAGE_SECTORS);
        let second = c.read(Lba::new(0), PAGE_SECTORS);
        assert!(second.is_full_hit());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hit_rate(), Some(0.5));
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = ArrayCache::new(CacheParams::read_cache_off());
        for _ in 0..3 {
            let r = c.read(Lba::new(0), 8);
            assert_eq!(r.miss_sectors, 8);
            assert_eq!(r.readahead_sectors, 0);
        }
        assert_eq!(c.resident_pages(), 0);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small_cache(2);
        c.read(Lba::new(0), PAGE_SECTORS); // page 0
        c.read(Lba::new(PAGE_SECTORS * 10), PAGE_SECTORS); // page 10
                                                           // Touch page 0 so page 10 is LRU.
        c.read(Lba::new(0), PAGE_SECTORS);
        // Bring in page 20, evicting page 10.
        c.read(Lba::new(PAGE_SECTORS * 20), PAGE_SECTORS);
        assert!(c.read(Lba::new(0), PAGE_SECTORS).is_full_hit());
        assert!(!c
            .read(Lba::new(PAGE_SECTORS * 10), PAGE_SECTORS)
            .is_full_hit());
    }

    #[test]
    fn sequential_stream_triggers_readahead() {
        let mut c = small_cache(1024);
        let mut ra = 0;
        for i in 0..6u64 {
            let r = c.read(Lba::new(i * PAGE_SECTORS), PAGE_SECTORS);
            ra += r.readahead_sectors;
        }
        assert!(ra > 0, "no read-ahead on a pure sequential stream");
        // After read-ahead kicks in, subsequent sequential reads are hits.
        let r = c.read(Lba::new(6 * PAGE_SECTORS), PAGE_SECTORS);
        assert!(r.is_full_hit());
    }

    #[test]
    fn random_access_never_triggers_readahead() {
        let mut c = small_cache(1024);
        let mut ra = 0;
        for i in 0..50u64 {
            let lba = (i * 7_777_777) % 50_000_000;
            ra += c.read(Lba::new(lba), 16).readahead_sectors;
        }
        assert_eq!(ra, 0);
    }

    #[test]
    fn interleaved_streams_both_get_readahead() {
        let mut c = small_cache(4096);
        let mut ra_a = 0;
        let mut ra_b = 0;
        for i in 0..8u64 {
            ra_a += c
                .read(Lba::new(i * PAGE_SECTORS), PAGE_SECTORS)
                .readahead_sectors;
            ra_b += c
                .read(Lba::new(40_000_000 + i * PAGE_SECTORS), PAGE_SECTORS)
                .readahead_sectors;
        }
        assert!(ra_a > 0 && ra_b > 0);
    }

    #[test]
    fn write_back_policy() {
        let mut c = small_cache(16);
        assert!(c.write(Lba::new(0), 8));
        // Read-after-write hits.
        assert!(c.read(Lba::new(0), 8).is_full_hit());
        let mut wt = ArrayCache::new(CacheParams {
            write_back: false,
            ..Default::default()
        });
        assert!(!wt.write(Lba::new(0), 8));
    }

    #[test]
    fn invalidate_clears() {
        let mut c = small_cache(16);
        c.read(Lba::new(0), 8);
        c.invalidate_all();
        assert_eq!(c.resident_pages(), 0);
        assert!(!c.read(Lba::new(0), 8).is_full_hit());
    }

    #[test]
    fn partial_hit_attribution() {
        let mut c = small_cache(64);
        c.read(Lba::new(0), PAGE_SECTORS); // page 0 resident
                                           // Read spanning resident page 0 and cold page 1.
        let r = c.read(Lba::new(0), PAGE_SECTORS * 2);
        assert_eq!(r.hit_sectors, PAGE_SECTORS);
        assert_eq!(r.miss_sectors, PAGE_SECTORS);
    }

    #[test]
    fn stream_table_bounded() {
        let mut c = ArrayCache::new(CacheParams {
            read_capacity_bytes: 1024 * PAGE_SECTORS * SECTOR_SIZE,
            max_streams: 4,
            ..Default::default()
        });
        // 100 distinct streams: table must stay bounded at 4.
        for s in 0..100u64 {
            c.read(Lba::new(s * 10_000_000), 8);
        }
        assert!(c.streams.len() <= 4);
    }

    #[test]
    fn capacity_bound_respected() {
        let mut c = small_cache(8);
        for i in 0..100u64 {
            c.read(Lba::new(i * PAGE_SECTORS), PAGE_SECTORS);
        }
        assert!(c.resident_pages() <= 8);
    }
}
