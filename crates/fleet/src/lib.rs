//! Fleet aggregation plane: hierarchical histogram rollup over a
//! `FetchAllHistograms` wire protocol.
//!
//! The paper characterizes one host's I/O with per-(VM, disk) histograms
//! of pure counters. Because counters merge losslessly, the same
//! histograms aggregate *exactly* across a fleet — this crate is that
//! plane, in three layers:
//!
//! * [`wire`] — the `FetchAllHistograms` frame: every per-target,
//!   per-(metric, lens) histogram snapshot of a host, delta-encoded as
//!   varint counter vectors (reusing `tracestore::codec`) inside a
//!   CRC-checked envelope. Decoding is total: corrupt, truncated, or
//!   hostile bytes produce a [`WireError`], never a panic.
//! * [`collector`] — virtual-clock polling: a [`FleetCollector`] fetches
//!   frames from [`HostEndpoint`]s on a window schedule, keeps exact
//!   per-host ok/fetch-failure/decode-failure ledgers, and ages silent
//!   hosts into staleness so one bad host degrades only its own slice.
//! * [`rollup`] — the host → tenant → fleet tree: [`AggSet`] merges
//!   target sets, [`FleetView::assemble`] builds the tree, and
//!   [`FleetView::conserves`] proves the root is bin-for-bin the sum of
//!   its live leaves.
//!
//! # Examples
//!
//! ```
//! use fleet::{
//!     decode_frame, encode_frame, FleetCollector, FrameEndpoint, HostFrame, PollConfig,
//! };
//! use simkit::SimTime;
//!
//! // A host with nothing recorded still frames and decodes exactly.
//! let frame = HostFrame { host_id: 7, captured_at_us: 0, epoch: 0, seq: 0, targets: Vec::new() };
//! let bytes = encode_frame(&frame).unwrap();
//! assert_eq!(decode_frame(&bytes).unwrap(), frame);
//!
//! let mut collector = FleetCollector::new(
//!     PollConfig::default(),
//!     vec![FrameEndpoint::new(7, 0, vec![Ok(bytes)])],
//! );
//! collector.run_until(SimTime::ZERO);
//! let view = collector.view(SimTime::ZERO);
//! assert_eq!(view.fleet.hosts, 1);
//! assert!(view.conserves());
//! ```

pub mod collector;
pub mod rollup;
pub mod wire;

pub use collector::{
    BreakerPolicy, BreakerState, ChaosEndpoint, ChaosLedger, FetchError, FleetCollector,
    FrameEndpoint, HostEndpoint, HostStatus, PollConfig, RetryPolicy, ServiceEndpoint,
};
pub use rollup::{AggSet, FleetView, HostId, HostView, RollupNode, TenantId};
pub use wire::{
    decode_frame, encode_frame, encode_frame_v1, layout_of, slot_index, slots, HostFrame,
    TargetHistograms, WireError, FRAME_MAGIC, FRAME_MAGIC_V1, SLOTS_PER_TARGET,
};
