//! Hierarchical rollup: host → tenant → fleet.
//!
//! The paper's histograms are pure counter vectors, so they merge
//! losslessly ([`Histogram::merge`] is commutative and associative, and
//! merge-of-parts equals ingest-of-union — property-tested in the histo
//! crate). That makes fleet aggregation *exact*: the root of the rollup
//! tree carries precisely the sum of its leaves, bin for bin, and
//! [`FleetView::conserves`] re-derives the tree from the leaves to prove
//! it. No sketches, no sampling error — the same numbers vCenter would
//! show for one host, summed across thousands.

use crate::wire::{layout_of, slot_index, slots, TargetHistograms, SLOTS_PER_TARGET};
use histo::{Histogram, MergeError};
use std::collections::BTreeMap;
use vscsi_stats::{Lens, Metric};

/// Identifies a simulated host within the fleet.
pub type HostId = u64;

/// Identifies a tenant (a group of hosts rolled up together).
pub type TenantId = u64;

/// A full metric × lens histogram set, mergeable with any other — the
/// aggregation state of one rollup node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSet {
    histograms: Vec<Histogram>,
}

impl Default for AggSet {
    fn default() -> Self {
        AggSet::new()
    }
}

impl AggSet {
    /// An empty set: one zeroed histogram per slot, in [`slots`] order.
    pub fn new() -> Self {
        AggSet {
            histograms: slots()
                .map(|(metric, _)| Histogram::new(layout_of(metric).edges()))
                .collect(),
        }
    }

    /// The histogram for one (metric, lens) slot.
    pub fn histogram(&self, metric: Metric, lens: Lens) -> &Histogram {
        &self.histograms[slot_index(metric, lens)]
    }

    /// All slots, in [`slots`] order.
    pub fn iter(&self) -> impl Iterator<Item = &Histogram> {
        self.histograms.iter()
    }

    /// Merges one target's decoded histogram set into this node.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::LayoutMismatch`] if the set carries the wrong
    /// slot count or a slot whose layout disagrees — nothing is merged in
    /// that case (the caller treats the whole frame as bad).
    pub fn merge_target(&mut self, target: &TargetHistograms) -> Result<(), MergeError> {
        if target.histograms.len() != SLOTS_PER_TARGET {
            return Err(MergeError::LayoutMismatch);
        }
        for (mine, theirs) in self.histograms.iter().zip(&target.histograms) {
            if mine.edges() != theirs.edges() {
                return Err(MergeError::LayoutMismatch);
            }
        }
        for (mine, theirs) in self.histograms.iter_mut().zip(&target.histograms) {
            mine.merge(theirs).expect("layouts verified above");
        }
        Ok(())
    }

    /// Merges another node's whole set into this one.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::LayoutMismatch`] on any slot disagreement;
    /// nothing is merged in that case.
    pub fn merge(&mut self, other: &AggSet) -> Result<(), MergeError> {
        if self.histograms.len() != other.histograms.len() {
            return Err(MergeError::LayoutMismatch);
        }
        for (mine, theirs) in self.histograms.iter().zip(&other.histograms) {
            if mine.edges() != theirs.edges() {
                return Err(MergeError::LayoutMismatch);
            }
        }
        for (mine, theirs) in self.histograms.iter_mut().zip(&other.histograms) {
            mine.merge(theirs).expect("layouts verified above");
        }
        Ok(())
    }

    /// Total observations across every slot.
    pub fn total_events(&self) -> u64 {
        self.histograms.iter().map(Histogram::total).sum()
    }

    /// The cumulative difference `self − prev`, slot by slot, or `None`
    /// when any bin count regressed or any slot disagrees on layout —
    /// the signature of a host restart (counters are monotone within one
    /// service lifetime; sums are not, because seek distances go
    /// negative, so regression detection uses counts alone).
    ///
    /// Each delta slot that gained events carries the *cumulative*
    /// min/max at capture time, not the window's own extrema. Cumulative
    /// min is non-increasing and max non-decreasing, and both move only
    /// in windows where the slot gained events, so merging every
    /// windowed delta of an epoch reproduces the cumulative snapshot
    /// bit for bit — counts, totals, sums, and min/max.
    pub fn try_delta(&self, prev: &AggSet) -> Option<AggSet> {
        if self.histograms.len() != prev.histograms.len() {
            return None;
        }
        let mut histograms = Vec::with_capacity(self.histograms.len());
        for (cur, old) in self.histograms.iter().zip(&prev.histograms) {
            if cur.edges() != old.edges() {
                return None;
            }
            let mut counts = Vec::with_capacity(cur.counts().len());
            let mut gained = false;
            for (&c, &o) in cur.counts().iter().zip(old.counts()) {
                let d = c.checked_sub(o)?;
                gained |= d > 0;
                counts.push(d);
            }
            let (sum, min_max) = if gained {
                let bounds = (
                    cur.min().expect("gained implies occupied"),
                    cur.max().expect("gained implies occupied"),
                );
                (cur.sum() - old.sum(), Some(bounds))
            } else if cur.sum() != old.sum() {
                // Identical counts but a moved sum: a restart that landed
                // on the same bin pattern. Still a regression.
                return None;
            } else {
                (0, None)
            };
            histograms.push(Histogram::from_parts(
                cur.edges().clone(),
                counts,
                sum,
                min_max,
            ));
        }
        Some(AggSet { histograms })
    }

    /// `true` when every slot's counters, totals, sums, and min/max match.
    pub fn same_counters(&self, other: &AggSet) -> bool {
        self == other
    }
}

/// One rollup node: an aggregated histogram set plus how much it covers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RollupNode {
    /// The merged histograms.
    pub agg: AggSet,
    /// Distinct (VM, disk) targets under this node.
    pub targets: usize,
    /// Hosts contributing to this node.
    pub hosts: usize,
}

/// One host's contribution to a view: its latest good snapshot plus
/// liveness metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct HostView {
    /// The host.
    pub host: HostId,
    /// Its tenant.
    pub tenant: TenantId,
    /// `true` if the host missed enough polls that its snapshot is no
    /// longer trusted — stale hosts are excluded from fleet/tenant sums.
    pub stale: bool,
    /// Targets in the host's latest good snapshot.
    pub targets: usize,
    /// Latest good snapshot (empty if the host never answered).
    pub agg: AggSet,
    /// Virtual-clock capture time of that snapshot, microseconds.
    pub captured_at_us: u64,
}

/// A consistent fleet picture assembled from the latest good snapshot of
/// every live host: the fleet root, per-tenant nodes, and per-host leaves.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetView {
    /// Poll-window index (virtual time / poll interval) the view was
    /// assembled in.
    pub window: u64,
    /// The root: every live host merged.
    pub fleet: RollupNode,
    /// Tenant-level nodes, keyed by tenant.
    pub tenants: BTreeMap<TenantId, RollupNode>,
    /// Per-host leaves, including stale ones (marked, not merged).
    pub hosts: Vec<HostView>,
    /// Hosts evicted from the live fleet (dead past the eviction
    /// horizon). They have no leaf here at all — this count books them so
    /// view-level accounting still covers every host ever enrolled.
    pub evicted: usize,
}

impl FleetView {
    /// Assembles the tree from per-host leaves. Stale hosts are carried in
    /// [`FleetView::hosts`] but contribute nothing to tenant or fleet
    /// nodes.
    pub fn assemble(window: u64, hosts: Vec<HostView>) -> FleetView {
        FleetView::assemble_with_evicted(window, hosts, 0)
    }

    /// [`FleetView::assemble`], booking `evicted` hosts that no longer
    /// have a leaf.
    pub fn assemble_with_evicted(window: u64, hosts: Vec<HostView>, evicted: usize) -> FleetView {
        let mut fleet = RollupNode::default();
        let mut tenants: BTreeMap<TenantId, RollupNode> = BTreeMap::new();
        for h in hosts.iter().filter(|h| !h.stale) {
            let tenant = tenants.entry(h.tenant).or_default();
            for node in [&mut fleet, tenant] {
                node.agg
                    .merge(&h.agg)
                    .expect("hosts share the slot layouts");
                node.targets += h.targets;
                node.hosts += 1;
            }
        }
        FleetView {
            window,
            fleet,
            tenants,
            hosts,
            evicted,
        }
    }

    /// Exact conservation: re-derives every tenant node and the fleet root
    /// from the per-host leaves and compares whole histogram states
    /// (counters, totals, sums, min/max). Also checks the tenant layer
    /// partitions the fleet: summed tenant nodes equal the root.
    pub fn conserves(&self) -> bool {
        let rebuilt =
            FleetView::assemble_with_evicted(self.window, self.hosts.clone(), self.evicted);
        if rebuilt.fleet != self.fleet || rebuilt.tenants != self.tenants {
            return false;
        }
        let mut tenant_sum = AggSet::new();
        let mut tenant_targets = 0usize;
        for node in self.tenants.values() {
            if tenant_sum.merge(&node.agg).is_err() {
                return false;
            }
            tenant_targets += node.targets;
        }
        tenant_sum == self.fleet.agg && tenant_targets == self.fleet.targets
    }

    /// Hosts currently marked stale.
    pub fn stale_hosts(&self) -> usize {
        self.hosts.iter().filter(|h| h.stale).count()
    }

    /// A compact human-readable summary: fleet totals, per-tenant totals,
    /// and staleness — the "fleet view" surface the CLI dumps.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet: {} host(s) live, {} stale, {} evicted, {} target(s), {} event(s)",
            self.fleet.hosts,
            self.stale_hosts(),
            self.evicted,
            self.fleet.targets,
            self.fleet.agg.total_events(),
        );
        for (tenant, node) in &self.tenants {
            let _ = writeln!(
                out,
                "  tenant {tenant}: {} host(s), {} target(s), {} event(s)",
                node.hosts,
                node.targets,
                node.agg.total_events(),
            );
        }
        let lat = self.fleet.agg.histogram(Metric::Latency, Lens::All);
        if !lat.is_empty() {
            let _ = writeln!(out, "fleet latency (all):");
            let _ = writeln!(out, "{lat}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::slots;
    use vscsi::{TargetId, VDiskId, VmId};

    fn target_set(seed: i64) -> TargetHistograms {
        let mut histograms = Vec::new();
        for (metric, _) in slots() {
            let mut h = Histogram::new(layout_of(metric).edges());
            h.record(seed);
            h.record(seed * 3 + 1);
            histograms.push(h);
        }
        TargetHistograms {
            target: TargetId::new(VmId(0), VDiskId(0)),
            histograms,
        }
    }

    fn host(id: HostId, tenant: TenantId, seeds: &[i64], stale: bool) -> HostView {
        let mut agg = AggSet::new();
        for &s in seeds {
            agg.merge_target(&target_set(s)).unwrap();
        }
        HostView {
            host: id,
            tenant,
            stale,
            targets: seeds.len(),
            agg,
            captured_at_us: 0,
        }
    }

    #[test]
    fn assemble_sums_exactly_and_conserves() {
        let hosts = vec![
            host(0, 0, &[5, 9], false),
            host(1, 0, &[100], false),
            host(2, 1, &[7, 8, 2000], false),
        ];
        let view = FleetView::assemble(3, hosts);
        assert_eq!(view.fleet.hosts, 3);
        assert_eq!(view.fleet.targets, 6);
        assert_eq!(view.tenants.len(), 2);
        // 6 target sets × SLOTS_PER_TARGET slots × 2 records each.
        assert_eq!(
            view.fleet.agg.total_events(),
            6 * SLOTS_PER_TARGET as u64 * 2
        );
        assert!(view.conserves());
    }

    #[test]
    fn stale_hosts_are_reported_but_not_merged() {
        let hosts = vec![host(0, 0, &[5], false), host(1, 0, &[9], true)];
        let view = FleetView::assemble(0, hosts);
        assert_eq!(view.fleet.hosts, 1);
        assert_eq!(view.stale_hosts(), 1);
        assert_eq!(view.fleet.agg.total_events(), SLOTS_PER_TARGET as u64 * 2);
        assert!(view.conserves());
    }

    #[test]
    fn try_delta_telescopes_bit_for_bit() {
        let base = host(0, 0, &[5, 9], false).agg;
        let mut cum = base.clone();
        cum.merge_target(&target_set(100)).unwrap();
        let delta = cum.try_delta(&base).unwrap();
        let mut resum = base.clone();
        resum.merge(&delta).unwrap();
        assert!(resum.same_counters(&cum));
        // A no-change window deltas to all-empty slots.
        assert_eq!(base.try_delta(&base).unwrap().total_events(), 0);
    }

    #[test]
    fn try_delta_flags_regression_and_layout_mismatch() {
        let base = host(0, 0, &[5], false).agg;
        let mut cum = base.clone();
        cum.merge_target(&target_set(9)).unwrap();
        assert!(base.try_delta(&cum).is_none(), "count regression");
        let mut other = AggSet::new();
        other.histograms[0] = Histogram::with_edges(vec![1]).unwrap();
        assert!(base.try_delta(&other).is_none(), "layout mismatch");
    }

    #[test]
    fn merge_target_rejects_short_sets_atomically() {
        let mut agg = AggSet::new();
        let mut bad = target_set(5);
        bad.histograms.pop();
        assert_eq!(agg.merge_target(&bad), Err(MergeError::LayoutMismatch));
        assert_eq!(agg.total_events(), 0, "nothing was merged");
    }

    #[test]
    fn merge_rejects_layout_mismatch_atomically() {
        let mut agg = AggSet::new();
        agg.merge_target(&target_set(1)).unwrap();
        let before = agg.clone();
        let mut other = AggSet::new();
        other.histograms[0] = Histogram::with_edges(vec![1]).unwrap();
        assert_eq!(agg.merge(&other), Err(MergeError::LayoutMismatch));
        assert_eq!(agg, before);
    }

    #[test]
    fn render_mentions_tenants_and_staleness() {
        let view = FleetView::assemble(0, vec![host(0, 7, &[64], false), host(1, 8, &[9], true)]);
        let text = view.render();
        assert!(text.contains("tenant 7"));
        assert!(text.contains("1 stale"));
        assert!(text.contains("fleet latency"));
    }
}
