//! The collector tier: virtual-clock host polling with staleness and
//! failure accounting.
//!
//! A [`FleetCollector`] owns a set of [`HostEndpoint`]s and polls each on
//! a fixed [`PollConfig::interval`], time-aligning snapshots to poll
//! *windows* (window `k` covers virtual time `[k·interval, (k+1)·interval)`).
//! Every fetch ends in exactly one of three ledger buckets:
//!
//! * **ok** — the frame decoded and merged; it replaces the host's
//!   snapshot (host counters are cumulative, so replacement — not
//!   addition — is the lossless operation).
//! * **fetch failure** — the host was unreachable; the previous snapshot
//!   stays current and ages toward staleness.
//! * **decode failure** — the host answered with a corrupt, truncated, or
//!   layout-incompatible frame; ditto.
//!
//! A host that misses [`PollConfig::stale_after`] consecutive windows is
//! *stale*: still listed in every [`FleetView`], but excluded from tenant
//! and fleet sums so the root stays an exact sum of trusted leaves. This
//! is the graceful-degradation contract: one wedged host (or one flaky
//! wire) costs the fleet view that host's slice, never the rollup's
//! integrity and never a panic.

use crate::rollup::{AggSet, FleetView, HostId, HostView, TenantId};
use crate::wire::{decode_frame, encode_frame, HostFrame, WireError};
use simkit::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::sync::Arc;
use vscsi_stats::StatsService;

/// A fetch-side failure: the host could not be reached at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchError {
    /// Why the fetch failed.
    pub msg: &'static str,
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fleet fetch: {}", self.msg)
    }
}

impl std::error::Error for FetchError {}

/// One pollable host: an address (host + tenant) and a way to fetch its
/// `FetchAllHistograms` frame at a virtual instant.
pub trait HostEndpoint {
    /// The host's fleet-wide id.
    fn host_id(&self) -> HostId;
    /// The tenant the host belongs to.
    fn tenant_id(&self) -> TenantId;
    /// Fetches one encoded frame at virtual time `now`.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] when the host is unreachable.
    fn fetch(&mut self, now: SimTime) -> Result<Vec<u8>, FetchError>;
}

/// The in-simulation endpoint: snapshots a live [`StatsService`] and
/// encodes the frame, exactly what a real host would ship.
#[derive(Debug, Clone)]
pub struct ServiceEndpoint {
    host: HostId,
    tenant: TenantId,
    service: Arc<StatsService>,
}

impl ServiceEndpoint {
    /// Wraps a host's stats service.
    pub fn new(host: HostId, tenant: TenantId, service: Arc<StatsService>) -> Self {
        ServiceEndpoint {
            host,
            tenant,
            service,
        }
    }

    /// The wrapped service.
    pub fn service(&self) -> &Arc<StatsService> {
        &self.service
    }
}

impl HostEndpoint for ServiceEndpoint {
    fn host_id(&self) -> HostId {
        self.host
    }

    fn tenant_id(&self) -> TenantId {
        self.tenant
    }

    fn fetch(&mut self, now: SimTime) -> Result<Vec<u8>, FetchError> {
        let frame = HostFrame::snapshot(self.host, now.as_micros(), &self.service);
        encode_frame(&frame).map_err(|_| FetchError {
            msg: "snapshot failed to encode",
        })
    }
}

/// A scripted endpoint for tests: hands out a fixed sequence of responses
/// and becomes unreachable when the script runs dry.
#[derive(Debug, Clone)]
pub struct FrameEndpoint {
    host: HostId,
    tenant: TenantId,
    script: VecDeque<Result<Vec<u8>, FetchError>>,
}

impl FrameEndpoint {
    /// Builds a scripted endpoint.
    pub fn new(
        host: HostId,
        tenant: TenantId,
        script: impl IntoIterator<Item = Result<Vec<u8>, FetchError>>,
    ) -> Self {
        FrameEndpoint {
            host,
            tenant,
            script: script.into_iter().collect(),
        }
    }
}

impl HostEndpoint for FrameEndpoint {
    fn host_id(&self) -> HostId {
        self.host
    }

    fn tenant_id(&self) -> TenantId {
        self.tenant
    }

    fn fetch(&mut self, _now: SimTime) -> Result<Vec<u8>, FetchError> {
        self.script.pop_front().unwrap_or(Err(FetchError {
            msg: "script exhausted",
        }))
    }
}

/// splitmix64 — the workspace's standard seeded mixer, here deciding
/// chaos outcomes purely in `(seed, host, poll index)`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exact ledger of what a [`ChaosEndpoint`] injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosLedger {
    /// Polls answered with a fetch error.
    pub unreachable: u64,
    /// Polls answered with a bit-flipped frame.
    pub corrupted: u64,
    /// Polls answered with a truncated frame.
    pub truncated: u64,
}

impl ChaosLedger {
    /// Total injected faults.
    pub fn total(&self) -> u64 {
        self.unreachable + self.corrupted + self.truncated
    }
}

/// Wraps any endpoint with deterministic, seeded fault injection:
/// per poll it either passes the inner frame through, drops the fetch,
/// flips one payload bit, or truncates the frame. Decisions are pure in
/// `(seed, host id, poll index)`, so same-seed runs inject identically —
/// and the ledger lets tests demand *exact* failure accounting.
#[derive(Debug, Clone)]
pub struct ChaosEndpoint<E> {
    inner: E,
    seed: u64,
    polls: u64,
    unreachable_pct: u64,
    corrupt_pct: u64,
    truncate_pct: u64,
    ledger: ChaosLedger,
}

impl<E: HostEndpoint> ChaosEndpoint<E> {
    /// Wraps `inner`; the three percentages (each 0–100, summing to at
    /// most 100) set the per-poll fault mix.
    pub fn new(
        inner: E,
        seed: u64,
        unreachable_pct: u64,
        corrupt_pct: u64,
        truncate_pct: u64,
    ) -> Self {
        assert!(
            unreachable_pct + corrupt_pct + truncate_pct <= 100,
            "fault percentages exceed 100"
        );
        ChaosEndpoint {
            inner,
            seed,
            polls: 0,
            unreachable_pct,
            corrupt_pct,
            truncate_pct,
            ledger: ChaosLedger::default(),
        }
    }

    /// What was injected so far.
    pub fn ledger(&self) -> ChaosLedger {
        self.ledger
    }
}

impl<E: HostEndpoint> HostEndpoint for ChaosEndpoint<E> {
    fn host_id(&self) -> HostId {
        self.inner.host_id()
    }

    fn tenant_id(&self) -> TenantId {
        self.inner.tenant_id()
    }

    fn fetch(&mut self, now: SimTime) -> Result<Vec<u8>, FetchError> {
        let roll = splitmix64(
            self.seed ^ self.inner.host_id().wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.polls,
        );
        self.polls += 1;
        let pick = roll % 100;
        if pick < self.unreachable_pct {
            self.ledger.unreachable += 1;
            return Err(FetchError {
                msg: "injected: host unreachable",
            });
        }
        let mut bytes = self.inner.fetch(now)?;
        if pick < self.unreachable_pct + self.corrupt_pct {
            self.ledger.corrupted += 1;
            if !bytes.is_empty() {
                let at = (splitmix64(roll) as usize) % bytes.len();
                bytes[at] ^= 1 << (roll % 8);
            }
        } else if pick < self.unreachable_pct + self.corrupt_pct + self.truncate_pct {
            self.ledger.truncated += 1;
            let keep = (splitmix64(roll) as usize) % bytes.len().max(1);
            bytes.truncate(keep);
        }
        Ok(bytes)
    }
}

/// Polling schedule and staleness policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollConfig {
    /// Poll every host once per this interval (one *window*).
    pub interval: SimDuration,
    /// Consecutive windows without a good frame before the host's
    /// snapshot is considered stale and leaves the rollup.
    pub stale_after: u64,
}

impl Default for PollConfig {
    /// 6-second windows (the paper's esxtop cadence), stale after 2
    /// missed windows.
    fn default() -> Self {
        PollConfig {
            interval: SimDuration::from_secs(6),
            stale_after: 2,
        }
    }
}

/// Per-host poll accounting: the three-bucket ledger plus the latest good
/// snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct HostStatus {
    /// The host.
    pub host: HostId,
    /// Its tenant.
    pub tenant: TenantId,
    /// Frames fetched, decoded, and merged.
    pub frames_ok: u64,
    /// Fetches that failed outright (unreachable host).
    pub fetch_failures: u64,
    /// Frames that arrived but failed to decode or merge.
    pub decode_failures: u64,
    /// Failures since the last good frame.
    pub consecutive_failures: u64,
    /// When the last good frame arrived.
    pub last_success: Option<SimTime>,
    /// The most recent failure's description.
    pub last_error: Option<&'static str>,
    /// Targets in the latest good snapshot.
    pub targets: usize,
    /// Capture timestamp of the latest good snapshot, microseconds.
    pub captured_at_us: u64,
    agg: AggSet,
}

impl HostStatus {
    fn new(host: HostId, tenant: TenantId) -> Self {
        HostStatus {
            host,
            tenant,
            frames_ok: 0,
            fetch_failures: 0,
            decode_failures: 0,
            consecutive_failures: 0,
            last_success: None,
            last_error: None,
            targets: 0,
            captured_at_us: 0,
            agg: AggSet::new(),
        }
    }

    /// The latest good snapshot (empty until the first good frame).
    pub fn agg(&self) -> &AggSet {
        &self.agg
    }

    /// Total polls attempted against this host.
    pub fn polls(&self) -> u64 {
        self.frames_ok + self.fetch_failures + self.decode_failures
    }
}

fn aggregate(frame: &HostFrame) -> Result<(AggSet, usize), WireError> {
    let mut agg = AggSet::new();
    for t in &frame.targets {
        agg.merge_target(t).map_err(|_| WireError {
            msg: "frame slot layout mismatch",
        })?;
    }
    Ok((agg, frame.targets.len()))
}

/// The collector: polls every endpoint on the shared schedule, keeps the
/// per-host ledgers, and assembles [`FleetView`]s on demand.
#[derive(Debug)]
pub struct FleetCollector<E> {
    config: PollConfig,
    endpoints: Vec<E>,
    next_poll: Vec<SimTime>,
    status: Vec<HostStatus>,
}

impl<E: HostEndpoint> FleetCollector<E> {
    /// Builds a collector; every host's first poll is due at time zero.
    pub fn new(config: PollConfig, endpoints: Vec<E>) -> Self {
        assert!(!config.interval.is_zero(), "poll interval must be positive");
        let status = endpoints
            .iter()
            .map(|e| HostStatus::new(e.host_id(), e.tenant_id()))
            .collect();
        let next_poll = vec![SimTime::ZERO; endpoints.len()];
        FleetCollector {
            config,
            endpoints,
            next_poll,
            status,
        }
    }

    /// The poll-window index containing virtual time `t`.
    pub fn window_of(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.config.interval.as_nanos()
    }

    /// Polls every endpoint whose next poll is due at or before `now`,
    /// then reschedules it one interval later. Returns how many polls ran.
    pub fn poll_due(&mut self, now: SimTime) -> usize {
        let mut ran = 0;
        for idx in 0..self.endpoints.len() {
            if self.next_poll[idx] > now {
                continue;
            }
            self.poll_one(idx, now);
            self.next_poll[idx] = self.next_poll[idx].saturating_add(self.config.interval);
            ran += 1;
        }
        ran
    }

    /// Advances the poll schedule through every instant up to and
    /// including `until`, firing due polls in time order.
    pub fn run_until(&mut self, until: SimTime) {
        loop {
            let Some(next) = self.next_poll.iter().copied().min() else {
                return;
            };
            if next > until {
                return;
            }
            self.poll_due(next);
        }
    }

    fn poll_one(&mut self, idx: usize, now: SimTime) {
        let status = &mut self.status[idx];
        match self.endpoints[idx].fetch(now) {
            Err(e) => {
                status.fetch_failures += 1;
                status.consecutive_failures += 1;
                status.last_error = Some(e.msg);
            }
            Ok(bytes) => {
                let outcome = decode_frame(&bytes).and_then(|frame| {
                    if frame.host_id != status.host {
                        return Err(WireError {
                            msg: "frame names a different host",
                        });
                    }
                    aggregate(&frame).map(|(agg, targets)| (frame, agg, targets))
                });
                match outcome {
                    Err(e) => {
                        status.decode_failures += 1;
                        status.consecutive_failures += 1;
                        status.last_error = Some(e.msg);
                    }
                    Ok((frame, agg, targets)) => {
                        status.frames_ok += 1;
                        status.consecutive_failures = 0;
                        status.last_success = Some(now);
                        status.last_error = None;
                        status.targets = targets;
                        status.captured_at_us = frame.captured_at_us;
                        status.agg = agg;
                    }
                }
            }
        }
    }

    /// Per-host ledgers, in endpoint order.
    pub fn status(&self) -> &[HostStatus] {
        &self.status
    }

    /// The endpoints (e.g. to read a [`ChaosEndpoint`] ledger back).
    pub fn endpoints(&self) -> &[E] {
        &self.endpoints
    }

    /// Whether `status` counts as stale at `now`: no good frame yet, or
    /// the last one is at least [`PollConfig::stale_after`] windows old.
    pub fn is_stale(&self, status: &HostStatus, now: SimTime) -> bool {
        match status.last_success {
            None => true,
            Some(t) => self.window_of(now) - self.window_of(t) >= self.config.stale_after,
        }
    }

    /// Assembles the rollup tree from every host's latest good snapshot,
    /// marking (and excluding) stale hosts.
    pub fn view(&self, now: SimTime) -> FleetView {
        let hosts = self
            .status
            .iter()
            .map(|s| HostView {
                host: s.host,
                tenant: s.tenant,
                stale: self.is_stale(s, now),
                targets: s.targets,
                agg: s.agg.clone(),
                captured_at_us: s.captured_at_us,
            })
            .collect();
        FleetView::assemble(self.window_of(now), hosts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{layout_of, slots, TargetHistograms, SLOTS_PER_TARGET};
    use histo::Histogram;
    use vscsi::{TargetId, VDiskId, VmId};

    fn frame_bytes(host: HostId, records: &[i64]) -> Vec<u8> {
        let histograms = slots()
            .map(|(metric, _)| {
                let mut h = Histogram::new(layout_of(metric).edges());
                for &v in records {
                    h.record(v);
                }
                h
            })
            .collect();
        encode_frame(&HostFrame {
            host_id: host,
            captured_at_us: 1,
            targets: vec![TargetHistograms {
                target: TargetId::new(VmId(0), VDiskId(0)),
                histograms,
            }],
        })
        .unwrap()
    }

    fn cfg() -> PollConfig {
        PollConfig {
            interval: SimDuration::from_secs(1),
            stale_after: 2,
        }
    }

    #[test]
    fn polls_on_schedule_and_rolls_up() {
        let eps = vec![
            FrameEndpoint::new(
                0,
                0,
                vec![Ok(frame_bytes(0, &[5])), Ok(frame_bytes(0, &[5, 6]))],
            ),
            FrameEndpoint::new(
                1,
                1,
                vec![Ok(frame_bytes(1, &[7])), Ok(frame_bytes(1, &[7, 8]))],
            ),
        ];
        let mut c = FleetCollector::new(cfg(), eps);
        c.run_until(SimTime::ZERO);
        let v0 = c.view(SimTime::ZERO);
        assert_eq!(v0.fleet.hosts, 2);
        assert_eq!(v0.fleet.agg.total_events(), 2 * SLOTS_PER_TARGET as u64);
        assert!(v0.conserves());
        // Second window: cumulative snapshots replace, never double-count.
        c.run_until(SimTime::from_secs(1));
        let v1 = c.view(SimTime::from_secs(1));
        assert_eq!(v1.fleet.agg.total_events(), 4 * SLOTS_PER_TARGET as u64);
        assert!(v1.conserves());
        assert_eq!(c.status()[0].frames_ok, 2);
        assert_eq!(c.status()[0].polls(), 2);
    }

    #[test]
    fn failures_age_into_staleness_and_recover() {
        let eps = vec![FrameEndpoint::new(
            0,
            0,
            vec![
                Ok(frame_bytes(0, &[5])),
                Err(FetchError { msg: "down" }),
                Err(FetchError { msg: "down" }),
                Ok(frame_bytes(0, &[5, 6, 7])),
            ],
        )];
        let mut c = FleetCollector::new(cfg(), eps);
        c.run_until(SimTime::ZERO);
        assert!(!c.is_stale(&c.status()[0], SimTime::ZERO));
        // Two failed windows age the window-0 snapshot to stale.
        c.run_until(SimTime::from_secs(2));
        let s = &c.status()[0];
        assert_eq!(s.fetch_failures, 2);
        assert_eq!(s.consecutive_failures, 2);
        assert_eq!(s.last_error, Some("down"));
        assert!(c.is_stale(s, SimTime::from_secs(2)));
        let v = c.view(SimTime::from_secs(2));
        assert_eq!(v.fleet.hosts, 0);
        assert_eq!(v.stale_hosts(), 1);
        assert!(v.conserves());
        // A good frame brings the host straight back.
        c.run_until(SimTime::from_secs(3));
        assert!(!c.is_stale(&c.status()[0], SimTime::from_secs(3)));
        let v = c.view(SimTime::from_secs(3));
        assert_eq!(v.fleet.hosts, 1);
        assert_eq!(v.fleet.agg.total_events(), 3 * SLOTS_PER_TARGET as u64);
    }

    #[test]
    fn corrupt_frames_count_as_decode_failures() {
        let mut bad = frame_bytes(0, &[5]);
        let flip = bad.len() / 2;
        bad[flip] ^= 0xff;
        let eps = vec![FrameEndpoint::new(
            0,
            0,
            vec![Ok(bad), Ok(frame_bytes(99, &[5])), Ok(frame_bytes(0, &[5]))],
        )];
        let mut c = FleetCollector::new(cfg(), eps);
        c.run_until(SimTime::from_secs(2));
        let s = &c.status()[0];
        assert_eq!(s.decode_failures, 2, "corrupt + misaddressed");
        assert_eq!(s.frames_ok, 1);
        assert_eq!(s.fetch_failures, 0);
    }

    #[test]
    fn chaos_endpoint_is_deterministic_and_accounted() {
        let mk = || {
            ChaosEndpoint::new(
                FrameEndpoint::new(3, 0, (0..50).map(|i| Ok(frame_bytes(3, &[i])))),
                99,
                20,
                20,
                20,
            )
        };
        let mut a = mk();
        let mut b = mk();
        let mut outcomes_a = Vec::new();
        let mut outcomes_b = Vec::new();
        for i in 0..50 {
            outcomes_a.push(a.fetch(SimTime::from_secs(i)));
            outcomes_b.push(b.fetch(SimTime::from_secs(i)));
        }
        assert_eq!(outcomes_a, outcomes_b, "same seed, same chaos");
        assert_eq!(a.ledger(), b.ledger());
        assert!(a.ledger().total() > 0);
        // Every injected fault surfaces as a collector failure, exactly.
        let mut c = FleetCollector::new(cfg(), vec![mk()]);
        c.run_until(SimTime::from_secs(49));
        let s = &c.status()[0];
        let ledger = c.endpoints()[0].ledger();
        assert_eq!(s.fetch_failures, ledger.unreachable);
        assert_eq!(s.decode_failures, ledger.corrupted + ledger.truncated);
        assert_eq!(s.frames_ok, 50 - ledger.total());
    }
}
