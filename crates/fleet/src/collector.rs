//! The collector tier: virtual-clock host polling with staleness and
//! failure accounting.
//!
//! A [`FleetCollector`] owns a set of [`HostEndpoint`]s and polls each on
//! a fixed [`PollConfig::interval`], time-aligning snapshots to poll
//! *windows* (window `k` covers virtual time `[k·interval, (k+1)·interval)`).
//! Every fetch ends in exactly one of three ledger buckets:
//!
//! * **ok** — the frame decoded and merged; it replaces the host's
//!   snapshot (host counters are cumulative, so replacement — not
//!   addition — is the lossless operation).
//! * **fetch failure** — the host was unreachable; the previous snapshot
//!   stays current and ages toward staleness.
//! * **decode failure** — the host answered with a corrupt, truncated, or
//!   layout-incompatible frame; ditto.
//!
//! A host that misses [`PollConfig::stale_after`] consecutive windows is
//! *stale*: still listed in every [`FleetView`], but excluded from tenant
//! and fleet sums so the root stays an exact sum of trusted leaves. This
//! is the graceful-degradation contract: one wedged host (or one flaky
//! wire) costs the fleet view that host's slice, never the rollup's
//! integrity and never a panic.
//!
//! On top of that sits the hardened fetch discipline:
//!
//! * **retry/backoff** ([`RetryPolicy`]) — each window gets a bounded
//!   attempt budget with exponential backoff and deterministic
//!   splitmix64 jitter, pure in `(seed, host, window, attempt)`; backoff
//!   never crosses the window edge.
//! * **quarantine** ([`BreakerPolicy`]) — after N consecutive failed
//!   windows a host's breaker opens: its windows are *suppressed* (no
//!   fetch) except for periodic half-open probes. Entries, exits, probe
//!   outcomes, and suppressed windows are ledgered exactly; dead hosts
//!   past [`PollConfig::evict_after`] are evicted from the live view
//!   with the eviction booked in [`FleetView::evicted`].
//! * **restart-safe windowed rollup** — every good frame yields a
//!   per-window *delta* against the previous snapshot. A wire-epoch
//!   change ([`crate::wire::HostFrame::epoch`]) or a bin-count
//!   regression re-bases the chain: the dead epoch's last snapshot is
//!   banked, unrecoverable windows are booked `lost_windows`, and the
//!   running total ([`HostStatus::windowed_total`]) stays exact across
//!   restarts — no double-counting, no silent regression. Per-window
//!   delta views ([`FleetCollector::window_view`]) and the running-total
//!   view ([`FleetCollector::windowed_total_view`]) sit alongside the
//!   cumulative tree.

use crate::rollup::{AggSet, FleetView, HostId, HostView, TenantId};
use crate::wire::{decode_frame, encode_frame, HostFrame, WireError};
use simkit::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::sync::Arc;
use vscsi_stats::StatsService;

/// A fetch-side failure: the host could not be reached at all.
///
/// Endpoints raise it without a window (`FetchError::new`); the
/// collector stamps the poll window it observed the failure in
/// (`at_window`), so `last_error` diagnostics in bench/CLI output are
/// greppable by window index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchError {
    /// Why the fetch failed.
    pub msg: &'static str,
    /// The poll window the collector observed the failure in, if known.
    pub window: Option<u64>,
}

impl FetchError {
    /// An unstamped failure, as endpoints raise them.
    pub fn new(msg: &'static str) -> Self {
        FetchError { msg, window: None }
    }

    /// The same failure stamped with the poll window it landed in.
    pub fn at_window(self, window: u64) -> Self {
        FetchError {
            msg: self.msg,
            window: Some(window),
        }
    }
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.window {
            Some(w) => write!(f, "fleet fetch [window {w}]: {}", self.msg),
            None => write!(f, "fleet fetch: {}", self.msg),
        }
    }
}

impl std::error::Error for FetchError {}

/// One pollable host: an address (host + tenant) and a way to fetch its
/// `FetchAllHistograms` frame at a virtual instant.
pub trait HostEndpoint {
    /// The host's fleet-wide id.
    fn host_id(&self) -> HostId;
    /// The tenant the host belongs to.
    fn tenant_id(&self) -> TenantId;
    /// Fetches one encoded frame at virtual time `now`.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] when the host is unreachable.
    fn fetch(&mut self, now: SimTime) -> Result<Vec<u8>, FetchError>;
}

impl<E: HostEndpoint + ?Sized> HostEndpoint for Box<E> {
    fn host_id(&self) -> HostId {
        (**self).host_id()
    }

    fn tenant_id(&self) -> TenantId {
        (**self).tenant_id()
    }

    fn fetch(&mut self, now: SimTime) -> Result<Vec<u8>, FetchError> {
        (**self).fetch(now)
    }
}

/// The in-simulation endpoint: snapshots a live [`StatsService`] and
/// encodes the frame, exactly what a real host would ship.
#[derive(Debug, Clone)]
pub struct ServiceEndpoint {
    host: HostId,
    tenant: TenantId,
    service: Arc<StatsService>,
}

impl ServiceEndpoint {
    /// Wraps a host's stats service. Frames it emits are sequenced from
    /// 1 (0 on the wire means "unsequenced"); the counter lives in the
    /// service itself, so a host restored from a durable checkpoint
    /// continues its sequence instead of replaying old numbers.
    pub fn new(host: HostId, tenant: TenantId, service: Arc<StatsService>) -> Self {
        ServiceEndpoint {
            host,
            tenant,
            service,
        }
    }

    /// The wrapped service.
    pub fn service(&self) -> &Arc<StatsService> {
        &self.service
    }

    /// Swaps in a replacement service — a host restart. A fresh service
    /// re-sequences from 1, exactly as a rebooted emitter would; a
    /// checkpoint-recovered one picks up where the checkpoint left off.
    pub fn restart_with(&mut self, service: Arc<StatsService>) {
        self.service = service;
    }
}

impl HostEndpoint for ServiceEndpoint {
    fn host_id(&self) -> HostId {
        self.host
    }

    fn tenant_id(&self) -> TenantId {
        self.tenant
    }

    fn fetch(&mut self, now: SimTime) -> Result<Vec<u8>, FetchError> {
        let seq = self.service.next_frame_seq();
        let frame = HostFrame::snapshot(self.host, now.as_micros(), seq, &self.service);
        encode_frame(&frame).map_err(|_| FetchError::new("snapshot failed to encode"))
    }
}

/// A scripted endpoint for tests: hands out a fixed sequence of responses
/// and becomes unreachable when the script runs dry.
#[derive(Debug, Clone)]
pub struct FrameEndpoint {
    host: HostId,
    tenant: TenantId,
    script: VecDeque<Result<Vec<u8>, FetchError>>,
}

impl FrameEndpoint {
    /// Builds a scripted endpoint.
    pub fn new(
        host: HostId,
        tenant: TenantId,
        script: impl IntoIterator<Item = Result<Vec<u8>, FetchError>>,
    ) -> Self {
        FrameEndpoint {
            host,
            tenant,
            script: script.into_iter().collect(),
        }
    }
}

impl HostEndpoint for FrameEndpoint {
    fn host_id(&self) -> HostId {
        self.host
    }

    fn tenant_id(&self) -> TenantId {
        self.tenant
    }

    fn fetch(&mut self, _now: SimTime) -> Result<Vec<u8>, FetchError> {
        self.script
            .pop_front()
            .unwrap_or(Err(FetchError::new("script exhausted")))
    }
}

/// splitmix64 — the workspace's standard seeded mixer, here deciding
/// chaos outcomes purely in `(seed, host, poll index)`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exact ledger of what a [`ChaosEndpoint`] injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosLedger {
    /// Polls answered with a fetch error.
    pub unreachable: u64,
    /// Polls answered with a bit-flipped frame.
    pub corrupted: u64,
    /// Polls answered with a truncated frame.
    pub truncated: u64,
}

impl ChaosLedger {
    /// Total injected faults.
    pub fn total(&self) -> u64 {
        self.unreachable + self.corrupted + self.truncated
    }
}

impl std::fmt::Display for ChaosLedger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "chaos ledger: {} fault(s) ({} unreachable, {} corrupted, {} truncated)",
            self.total(),
            self.unreachable,
            self.corrupted,
            self.truncated,
        )
    }
}

/// Wraps any endpoint with deterministic, seeded fault injection:
/// per poll it either passes the inner frame through, drops the fetch,
/// flips one payload bit, or truncates the frame. Decisions are pure in
/// `(seed, host id, poll index)`, so same-seed runs inject identically —
/// and the ledger lets tests demand *exact* failure accounting.
#[derive(Debug, Clone)]
pub struct ChaosEndpoint<E> {
    inner: E,
    seed: u64,
    polls: u64,
    unreachable_pct: u64,
    corrupt_pct: u64,
    truncate_pct: u64,
    ledger: ChaosLedger,
}

impl<E: HostEndpoint> ChaosEndpoint<E> {
    /// Wraps `inner`; the three percentages (each 0–100, summing to at
    /// most 100) set the per-poll fault mix.
    pub fn new(
        inner: E,
        seed: u64,
        unreachable_pct: u64,
        corrupt_pct: u64,
        truncate_pct: u64,
    ) -> Self {
        assert!(
            unreachable_pct + corrupt_pct + truncate_pct <= 100,
            "fault percentages exceed 100"
        );
        ChaosEndpoint {
            inner,
            seed,
            polls: 0,
            unreachable_pct,
            corrupt_pct,
            truncate_pct,
            ledger: ChaosLedger::default(),
        }
    }

    /// What was injected so far.
    pub fn ledger(&self) -> ChaosLedger {
        self.ledger
    }
}

impl<E: HostEndpoint> HostEndpoint for ChaosEndpoint<E> {
    fn host_id(&self) -> HostId {
        self.inner.host_id()
    }

    fn tenant_id(&self) -> TenantId {
        self.inner.tenant_id()
    }

    fn fetch(&mut self, now: SimTime) -> Result<Vec<u8>, FetchError> {
        let roll = splitmix64(
            self.seed ^ self.inner.host_id().wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ self.polls,
        );
        self.polls += 1;
        let pick = roll % 100;
        if pick < self.unreachable_pct {
            self.ledger.unreachable += 1;
            return Err(FetchError::new("injected: host unreachable"));
        }
        let mut bytes = self.inner.fetch(now)?;
        if pick < self.unreachable_pct + self.corrupt_pct {
            self.ledger.corrupted += 1;
            if !bytes.is_empty() {
                let at = (splitmix64(roll) as usize) % bytes.len();
                bytes[at] ^= 1 << (roll % 8);
            }
        } else if pick < self.unreachable_pct + self.corrupt_pct + self.truncate_pct {
            self.ledger.truncated += 1;
            let keep = (splitmix64(roll) as usize) % bytes.len().max(1);
            bytes.truncate(keep);
        }
        Ok(bytes)
    }
}

/// Per-window fetch retry discipline: bounded attempts with exponential
/// backoff and deterministic splitmix64 jitter, pure in
/// `(seed, host, window, attempt)` — same-seed runs back off identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Fetch attempts allowed per window (≥ 1; 1 disables retries).
    pub attempts: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub backoff_base: SimDuration,
    /// Backoff ceiling (before jitter).
    pub backoff_max: SimDuration,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// Three attempts, 250 ms base doubling to a 2 s cap — comfortably
    /// inside a 6 s poll window.
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            backoff_base: SimDuration::from_millis(250),
            backoff_max: SimDuration::from_secs(2),
            seed: 0x000F_1EE7,
        }
    }
}

impl RetryPolicy {
    /// The wait before retry `attempt` (1-based) of `window` against
    /// `host`: `min(base · 2^(attempt−1), max)` plus a deterministic
    /// jitter in `[0, capped/4]`.
    pub fn backoff(&self, host: HostId, window: u64, attempt: u32) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(20);
        let base_ns = self.backoff_base.as_nanos().saturating_mul(1u64 << exp);
        let capped = base_ns.min(self.backoff_max.as_nanos());
        let key = splitmix64(
            self.seed
                ^ host.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ window.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
                ^ u64::from(attempt).wrapping_mul(0x1656_67B1_9E37_79F9),
        );
        let jitter = if capped == 0 {
            0
        } else {
            key % (capped / 4 + 1)
        };
        SimDuration::from_nanos(capped.saturating_add(jitter))
    }
}

/// Circuit-breaker policy: quarantine a host after consecutive failed
/// windows, then probe it on a fixed cadence until it answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive *failed windows* (not attempts) before the breaker
    /// opens; 0 disables the breaker entirely.
    pub open_after: u64,
    /// Open-state windows between half-open probes (≥ 1).
    pub probe_every: u64,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            open_after: 3,
            probe_every: 2,
        }
    }
}

/// Where a host's circuit breaker stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Normal polling.
    #[default]
    Closed,
    /// Quarantined: windows are suppressed (no fetch at all) until
    /// `next_probe`, when a single half-open probe attempt runs. A probe
    /// success closes the breaker; a failure re-arms the cadence.
    Open {
        /// First window a half-open probe will run in.
        next_probe: u64,
    },
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Open { next_probe } => write!(f, "open(next probe w{next_probe})"),
        }
    }
}

/// Polling schedule, staleness, retry, quarantine, and eviction policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PollConfig {
    /// Poll every host once per this interval (one *window*).
    pub interval: SimDuration,
    /// Consecutive windows without a good frame before the host's
    /// snapshot is considered stale and leaves the rollup.
    pub stale_after: u64,
    /// Windows without a good frame before the host is *evicted*: its
    /// leaf leaves the live view entirely (booked in
    /// [`FleetView::evicted`]) and polling stops. 0 = never evict.
    pub evict_after: u64,
    /// Per-window fetch retry discipline.
    pub retry: RetryPolicy,
    /// Quarantine policy.
    pub breaker: BreakerPolicy,
}

impl Default for PollConfig {
    /// 6-second windows (the paper's esxtop cadence), stale after 2
    /// missed windows, hardened fetch discipline, no eviction.
    fn default() -> Self {
        PollConfig {
            interval: SimDuration::from_secs(6),
            stale_after: 2,
            evict_after: 0,
            retry: RetryPolicy::default(),
            breaker: BreakerPolicy::default(),
        }
    }
}

impl PollConfig {
    /// The minimal discipline: exactly one fetch attempt per window, no
    /// breaker, no eviction — every scheduled window maps 1:1 to one
    /// endpoint fetch, which is what script-driven tests and exact
    /// chaos-ledger accounting want.
    pub fn basic() -> Self {
        PollConfig {
            retry: RetryPolicy {
                attempts: 1,
                ..RetryPolicy::default()
            },
            breaker: BreakerPolicy {
                open_after: 0,
                ..BreakerPolicy::default()
            },
            ..PollConfig::default()
        }
    }
}

/// Per-host poll accounting: the attempt-level three-bucket ledger, the
/// window-level outcome ledger, breaker and epoch state, and the latest
/// good snapshot plus its windowed-delta companions.
///
/// Two conservation laws hold at all times and are what bench/test
/// accounting leans on:
///
/// * attempts: `polls() == frames_ok + fetch_failures + decode_failures`;
/// * windows: `windows_scheduled == ok_windows + failed_windows +
///   suppressed_windows`.
#[derive(Debug, Clone, PartialEq)]
pub struct HostStatus {
    /// The host.
    pub host: HostId,
    /// Its tenant.
    pub tenant: TenantId,
    /// Frames fetched, decoded, and merged.
    pub frames_ok: u64,
    /// Fetches that failed outright (unreachable host).
    pub fetch_failures: u64,
    /// Frames that arrived but failed to decode, merge, or sequence.
    pub decode_failures: u64,
    /// Extra attempts beyond each window's first (retry discipline).
    pub retries: u64,
    /// Windows rescued by a retry after a failed first attempt.
    pub retry_successes: u64,
    /// Windows the scheduler fired for this host.
    pub windows_scheduled: u64,
    /// Windows that ended with a good frame.
    pub ok_windows: u64,
    /// Windows where every allowed attempt failed.
    pub failed_windows: u64,
    /// Windows suppressed by an open breaker (no fetch at all).
    pub suppressed_windows: u64,
    /// Closed→Open transitions.
    pub quarantine_entries: u64,
    /// Open→Closed transitions (successful probes).
    pub quarantine_exits: u64,
    /// Half-open probe windows run.
    pub probe_attempts: u64,
    /// Probes that answered with a good frame.
    pub probe_successes: u64,
    /// Probes that failed and re-armed the quarantine.
    pub probe_failures: u64,
    /// The host's current epoch label: the wire epoch of the latest
    /// frame, or a local bump past it when a restart was detected by
    /// counter regression alone (legacy v1 emitters).
    pub epoch: u64,
    /// Epoch carried by the last accepted frame.
    pub wire_epoch: u64,
    /// Sequence number of the last accepted frame (0 = unsequenced).
    pub last_seq: u64,
    /// Rebases performed (explicit wire-epoch changes + implicit
    /// counter-regression detections).
    pub epoch_bumps: u64,
    /// Explicit epoch changes whose counters continued cleanly — a host
    /// restored from a durable checkpoint. No banking, nothing lost.
    pub resumed_epochs: u64,
    /// Rebases detected by counter regression alone.
    pub regressions: u64,
    /// Frames rejected as replays (sequence not advancing in-epoch).
    pub seq_rejects: u64,
    /// Windows whose delta was unrecoverable because a restart landed
    /// between good frames: on each rebase, every window since the last
    /// good one is booked lost.
    pub lost_windows: u64,
    /// Failed windows later recovered by a cumulative frame (a gap with
    /// no restart: the next delta covers them, nothing is lost).
    pub bridged_windows: u64,
    /// Attempt-level failures since the last good frame.
    pub consecutive_failures: u64,
    /// Consecutive failed windows (feeds the breaker; suppressed windows
    /// don't count — nothing was observed).
    pub failed_window_streak: u64,
    /// When the last good frame arrived.
    pub last_success: Option<SimTime>,
    /// Window of the last good frame.
    pub last_good_window: Option<u64>,
    /// The most recent failure, stamped with its window.
    pub last_error: Option<FetchError>,
    /// `true` once the host was evicted: its leaf left the live view and
    /// polling stopped.
    pub evicted: bool,
    /// Targets in the latest good snapshot.
    pub targets: usize,
    /// Capture timestamp of the latest good snapshot, microseconds.
    pub captured_at_us: u64,
    breaker: BreakerState,
    agg: AggSet,
    epoch_base: AggSet,
    delta: AggSet,
    delta_window: Option<u64>,
    delta_sum: AggSet,
}

impl HostStatus {
    fn new(host: HostId, tenant: TenantId) -> Self {
        HostStatus {
            host,
            tenant,
            frames_ok: 0,
            fetch_failures: 0,
            decode_failures: 0,
            retries: 0,
            retry_successes: 0,
            windows_scheduled: 0,
            ok_windows: 0,
            failed_windows: 0,
            suppressed_windows: 0,
            quarantine_entries: 0,
            quarantine_exits: 0,
            probe_attempts: 0,
            probe_successes: 0,
            probe_failures: 0,
            epoch: 0,
            wire_epoch: 0,
            last_seq: 0,
            epoch_bumps: 0,
            resumed_epochs: 0,
            regressions: 0,
            seq_rejects: 0,
            lost_windows: 0,
            bridged_windows: 0,
            consecutive_failures: 0,
            failed_window_streak: 0,
            last_success: None,
            last_good_window: None,
            last_error: None,
            evicted: false,
            targets: 0,
            captured_at_us: 0,
            breaker: BreakerState::Closed,
            agg: AggSet::new(),
            epoch_base: AggSet::new(),
            delta: AggSet::new(),
            delta_window: None,
            delta_sum: AggSet::new(),
        }
    }

    /// The latest good cumulative snapshot (empty until the first good
    /// frame; covers only the current epoch).
    pub fn agg(&self) -> &AggSet {
        &self.agg
    }

    /// The delta the latest good frame contributed, and the window it
    /// landed in. After a rebase this is the fresh epoch's full snapshot.
    pub fn delta(&self) -> (&AggSet, Option<u64>) {
        (&self.delta, self.delta_window)
    }

    /// Closed epochs banked at rebase time: the last good snapshot of
    /// every epoch before the current one, merged.
    pub fn epoch_base(&self) -> &AggSet {
        &self.epoch_base
    }

    /// The restart-safe running total: every windowed delta ever
    /// absorbed, merged. Bit-for-bit equal to
    /// `epoch_base + agg` — that identity is the no-double-counting
    /// proof across restarts.
    pub fn windowed_total(&self) -> &AggSet {
        &self.delta_sum
    }

    /// Where this host's circuit breaker stands.
    pub fn breaker(&self) -> BreakerState {
        self.breaker
    }

    /// Total fetch attempts against this host (including retries and
    /// probes; excluding suppressed windows, which never fetch).
    pub fn polls(&self) -> u64 {
        self.frames_ok + self.fetch_failures + self.decode_failures
    }
}

fn aggregate(frame: &HostFrame) -> Result<(AggSet, usize), WireError> {
    let mut agg = AggSet::new();
    for t in &frame.targets {
        agg.merge_target(t).map_err(|_| WireError {
            msg: "frame slot layout mismatch",
        })?;
    }
    Ok((agg, frame.targets.len()))
}

/// The collector: polls every endpoint on the shared schedule, keeps the
/// per-host ledgers, and assembles [`FleetView`]s on demand.
#[derive(Debug)]
pub struct FleetCollector<E> {
    config: PollConfig,
    endpoints: Vec<E>,
    next_poll: Vec<SimTime>,
    status: Vec<HostStatus>,
}

impl<E: HostEndpoint> FleetCollector<E> {
    /// Builds a collector; every host's first poll is due at time zero.
    pub fn new(config: PollConfig, endpoints: Vec<E>) -> Self {
        assert!(!config.interval.is_zero(), "poll interval must be positive");
        let status = endpoints
            .iter()
            .map(|e| HostStatus::new(e.host_id(), e.tenant_id()))
            .collect();
        let next_poll = vec![SimTime::ZERO; endpoints.len()];
        FleetCollector {
            config,
            endpoints,
            next_poll,
            status,
        }
    }

    /// The poll-window index containing virtual time `t`.
    pub fn window_of(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.config.interval.as_nanos()
    }

    /// Polls every endpoint whose next poll is due at or before `now`,
    /// then reschedules it one interval later. Returns how many polls ran.
    pub fn poll_due(&mut self, now: SimTime) -> usize {
        let mut ran = 0;
        for idx in 0..self.endpoints.len() {
            if self.next_poll[idx] > now {
                continue;
            }
            self.poll_one(idx, now);
            self.next_poll[idx] = self.next_poll[idx].saturating_add(self.config.interval);
            ran += 1;
        }
        ran
    }

    /// Advances the poll schedule through every instant up to and
    /// including `until`, firing due polls in time order.
    pub fn run_until(&mut self, until: SimTime) {
        loop {
            let Some(next) = self.next_poll.iter().copied().min() else {
                return;
            };
            if next > until {
                return;
            }
            self.poll_due(next);
        }
    }

    /// One scheduled window for one host: breaker gate, then the bounded
    /// retry loop, then window-outcome and eviction bookkeeping.
    fn poll_one(&mut self, idx: usize, now: SimTime) {
        let w = self.window_of(now);
        let host = self.status[idx].host;
        self.status[idx].windows_scheduled += 1;

        let mut probe = false;
        match self.status[idx].breaker {
            BreakerState::Open { next_probe } if w < next_probe => {
                self.status[idx].suppressed_windows += 1;
                self.maybe_evict(idx, w);
                return;
            }
            BreakerState::Open { .. } => probe = true,
            BreakerState::Closed => {}
        }
        if probe {
            self.status[idx].probe_attempts += 1;
        }

        // A probe is a single attempt; a normal window gets the retry
        // budget, truncated where backoff would cross the window edge.
        let budget = if probe {
            1
        } else {
            self.config.retry.attempts.max(1)
        };
        let mut attempt: u32 = 0;
        let mut t = now;
        let mut good = None;
        while attempt < budget {
            if attempt > 0 {
                let wait = self.config.retry.backoff(host, w, attempt);
                let shifted = t.saturating_add(wait);
                if self.window_of(shifted) != w {
                    break;
                }
                t = shifted;
                self.status[idx].retries += 1;
            }
            match self.attempt_fetch(idx, t, w) {
                Some(hit) => {
                    if attempt > 0 {
                        self.status[idx].retry_successes += 1;
                    }
                    good = Some(hit);
                    break;
                }
                None => attempt += 1,
            }
        }

        match good {
            Some((frame, agg, targets)) => {
                self.absorb_good(idx, frame, agg, targets, t, w);
                let s = &mut self.status[idx];
                s.ok_windows += 1;
                s.failed_window_streak = 0;
                if probe {
                    s.probe_successes += 1;
                    s.quarantine_exits += 1;
                    s.breaker = BreakerState::Closed;
                }
            }
            None => {
                let open_after = self.config.breaker.open_after;
                let probe_every = self.config.breaker.probe_every.max(1);
                let s = &mut self.status[idx];
                s.failed_windows += 1;
                s.failed_window_streak += 1;
                if probe {
                    s.probe_failures += 1;
                    s.breaker = BreakerState::Open {
                        next_probe: w + probe_every,
                    };
                } else if open_after > 0
                    && s.breaker == BreakerState::Closed
                    && s.failed_window_streak >= open_after
                {
                    s.quarantine_entries += 1;
                    s.breaker = BreakerState::Open {
                        next_probe: w + probe_every,
                    };
                }
            }
        }
        self.maybe_evict(idx, w);
    }

    /// One fetch attempt at `t`: books failures into the attempt-level
    /// ledger; returns the decoded, host-checked, sequence-checked frame
    /// on success (booking happens in `absorb_good`).
    fn attempt_fetch(
        &mut self,
        idx: usize,
        t: SimTime,
        window: u64,
    ) -> Option<(HostFrame, AggSet, usize)> {
        match self.endpoints[idx].fetch(t) {
            Err(e) => {
                let s = &mut self.status[idx];
                s.fetch_failures += 1;
                s.consecutive_failures += 1;
                s.last_error = Some(e.at_window(window));
                None
            }
            Ok(bytes) => {
                let s = &mut self.status[idx];
                let outcome = decode_frame(&bytes).and_then(|frame| {
                    if frame.host_id != s.host {
                        return Err(WireError {
                            msg: "frame names a different host",
                        });
                    }
                    aggregate(&frame).map(|(agg, targets)| (frame, agg, targets))
                });
                match outcome {
                    Err(e) => {
                        s.decode_failures += 1;
                        s.consecutive_failures += 1;
                        s.last_error = Some(FetchError::new(e.msg).at_window(window));
                        None
                    }
                    Ok((frame, agg, targets)) => {
                        // Replay rejection: a sequenced frame must advance
                        // within its epoch. seq 0 (legacy v1) is exempt.
                        if frame.seq != 0
                            && frame.epoch == s.wire_epoch
                            && s.last_seq != 0
                            && frame.seq <= s.last_seq
                        {
                            s.decode_failures += 1;
                            s.seq_rejects += 1;
                            s.consecutive_failures += 1;
                            s.last_error =
                                Some(FetchError::new("stale frame sequence").at_window(window));
                            None
                        } else {
                            Some((frame, agg, targets))
                        }
                    }
                }
            }
        }
    }

    /// Absorbs a good frame into window `w`: detects restarts (explicit
    /// wire-epoch change, or implicit counter regression), rebases the
    /// delta chain, and keeps the windowed running total exact.
    fn absorb_good(
        &mut self,
        idx: usize,
        frame: HostFrame,
        agg: AggSet,
        targets: usize,
        t: SimTime,
        w: u64,
    ) {
        let s = &mut self.status[idx];
        let delta = match s.last_good_window {
            None => {
                // First frame ever: the whole snapshot is the delta.
                s.epoch = frame.epoch;
                agg.clone()
            }
            Some(prev_w) => {
                let explicit = frame.epoch != s.wire_epoch;
                // Counters are tried even across an explicit epoch change:
                // a host restored from a durable checkpoint advertises a
                // new epoch but *continues* its counters, and its first
                // frame still deltas cleanly against our last snapshot —
                // a resumed restart, absorbed with zero double-count and
                // zero banking. Only when the delta fails (fresh service,
                // lost tail beyond what replay recovered) does the
                // classic bank-and-rebase run.
                let stepwise = agg.try_delta(&s.agg);
                match stepwise {
                    Some(d) if !explicit => {
                        // Plain window (possibly after a failure gap —
                        // the cumulative frame recovers those windows).
                        s.bridged_windows += w - prev_w - 1;
                        d
                    }
                    Some(d) => {
                        // Resumed restart: epoch label moves, delta chain
                        // does not. Nothing was lost across the crash.
                        s.resumed_epochs += 1;
                        s.epoch = frame.epoch;
                        s.bridged_windows += w - prev_w - 1;
                        d
                    }
                    None => {
                        // Restart: bank the dead epoch's last snapshot,
                        // book the unrecoverable windows, re-base on the
                        // fresh snapshot.
                        s.epoch_bumps += 1;
                        s.lost_windows += w - prev_w;
                        s.epoch_base
                            .merge(&s.agg)
                            .expect("one host keeps one slot layout");
                        s.epoch = if explicit {
                            frame.epoch
                        } else {
                            s.regressions += 1;
                            s.epoch + 1
                        };
                        agg.clone()
                    }
                }
            }
        };
        s.wire_epoch = frame.epoch;
        s.last_seq = frame.seq;
        s.delta_sum
            .merge(&delta)
            .expect("one host keeps one slot layout");
        s.delta = delta;
        s.delta_window = Some(w);
        s.agg = agg;
        s.targets = targets;
        s.captured_at_us = frame.captured_at_us;
        s.frames_ok += 1;
        s.consecutive_failures = 0;
        s.last_success = Some(t);
        s.last_good_window = Some(w);
        s.last_error = None;
    }

    /// Evicts the host if it has gone `evict_after` windows without a
    /// good frame: polling stops and its leaf leaves the live view.
    fn maybe_evict(&mut self, idx: usize, w: u64) {
        if self.config.evict_after == 0 {
            return;
        }
        let s = &mut self.status[idx];
        if s.evicted {
            return;
        }
        let missed = match s.last_good_window {
            Some(g) => w.saturating_sub(g),
            None => w + 1,
        };
        if missed >= self.config.evict_after {
            s.evicted = true;
            self.next_poll[idx] = SimTime::MAX;
        }
    }

    /// Per-host ledgers, in endpoint order.
    pub fn status(&self) -> &[HostStatus] {
        &self.status
    }

    /// The endpoints (e.g. to read a [`ChaosEndpoint`] ledger back).
    pub fn endpoints(&self) -> &[E] {
        &self.endpoints
    }

    /// Mutable endpoint access — e.g. to restart a
    /// [`ServiceEndpoint`]'s backing service mid-run, simulating a host
    /// reboot.
    pub fn endpoints_mut(&mut self) -> &mut [E] {
        &mut self.endpoints
    }

    /// Whether `status` counts as stale at `now`: no good frame yet, or
    /// the last one is at least [`PollConfig::stale_after`] windows old.
    pub fn is_stale(&self, status: &HostStatus, now: SimTime) -> bool {
        match status.last_success {
            None => true,
            Some(t) => self.window_of(now) - self.window_of(t) >= self.config.stale_after,
        }
    }

    /// Hosts evicted so far.
    pub fn evicted_hosts(&self) -> usize {
        self.status.iter().filter(|s| s.evicted).count()
    }

    /// Assembles the rollup tree from every live host's latest good
    /// cumulative snapshot, marking (and excluding) stale hosts; evicted
    /// hosts have no leaf and are booked in [`FleetView::evicted`].
    pub fn view(&self, now: SimTime) -> FleetView {
        let hosts = self
            .status
            .iter()
            .filter(|s| !s.evicted)
            .map(|s| HostView {
                host: s.host,
                tenant: s.tenant,
                stale: self.is_stale(s, now),
                targets: s.targets,
                agg: s.agg.clone(),
                captured_at_us: s.captured_at_us,
            })
            .collect();
        FleetView::assemble_with_evicted(self.window_of(now), hosts, self.evicted_hosts())
    }

    /// The per-window delta view at `now`: each live host contributes
    /// only what its good frame in *this* window added. Hosts with no
    /// good frame this window are carried stale (excluded from sums).
    pub fn window_view(&self, now: SimTime) -> FleetView {
        let w = self.window_of(now);
        let hosts = self
            .status
            .iter()
            .filter(|s| !s.evicted)
            .map(|s| {
                let fresh = s.delta_window == Some(w);
                HostView {
                    host: s.host,
                    tenant: s.tenant,
                    stale: !fresh,
                    targets: if fresh { s.targets } else { 0 },
                    agg: if fresh {
                        s.delta.clone()
                    } else {
                        AggSet::new()
                    },
                    captured_at_us: s.captured_at_us,
                }
            })
            .collect();
        FleetView::assemble_with_evicted(w, hosts, self.evicted_hosts())
    }

    /// The restart-safe running total view at `now`: each live host
    /// contributes every windowed delta it ever produced, merged across
    /// epochs — immune to counter regression, no double-counting.
    pub fn windowed_total_view(&self, now: SimTime) -> FleetView {
        let hosts = self
            .status
            .iter()
            .filter(|s| !s.evicted)
            .map(|s| HostView {
                host: s.host,
                tenant: s.tenant,
                stale: self.is_stale(s, now),
                targets: s.targets,
                agg: s.delta_sum.clone(),
                captured_at_us: s.captured_at_us,
            })
            .collect();
        FleetView::assemble_with_evicted(self.window_of(now), hosts, self.evicted_hosts())
    }

    /// The fleet status pane: fleet-wide discipline counters plus one
    /// line per unhealthy (quarantined, evicted, or stale) host — the
    /// `command("health")`-style surface for the collector tier.
    pub fn render_status(&self, now: SimTime) -> String {
        use std::fmt::Write as _;
        let w = self.window_of(now);
        let mut quarantined = 0usize;
        let mut stale = 0usize;
        let (mut retries, mut rescued, mut suppressed) = (0u64, 0u64, 0u64);
        let (mut probes, mut probe_ok, mut probe_fail) = (0u64, 0u64, 0u64);
        let (mut bumps, mut regress, mut lost, mut rejects) = (0u64, 0u64, 0u64, 0u64);
        let mut resumed = 0u64;
        for s in &self.status {
            if !s.evicted && matches!(s.breaker, BreakerState::Open { .. }) {
                quarantined += 1;
            }
            if !s.evicted && self.is_stale(s, now) {
                stale += 1;
            }
            retries += s.retries;
            rescued += s.retry_successes;
            suppressed += s.suppressed_windows;
            probes += s.probe_attempts;
            probe_ok += s.probe_successes;
            probe_fail += s.probe_failures;
            bumps += s.epoch_bumps;
            resumed += s.resumed_epochs;
            regress += s.regressions;
            lost += s.lost_windows;
            rejects += s.seq_rejects;
        }
        let evicted = self.evicted_hosts();
        let live = self.status.len() - evicted;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet status (window {w}): {live} host(s) live, {quarantined} quarantined, {stale} stale, {evicted} evicted",
        );
        let _ = writeln!(
            out,
            "  retries {retries} (rescued {rescued}), suppressed windows {suppressed}, probes {probes} (ok {probe_ok} / fail {probe_fail})",
        );
        let _ = writeln!(
            out,
            "  epoch bumps {bumps} ({regress} by regression), resumed epochs {resumed}, lost windows {lost}, seq rejects {rejects}",
        );
        for s in &self.status {
            let unhealthy = s.evicted
                || matches!(s.breaker, BreakerState::Open { .. })
                || self.is_stale(s, now);
            if !unhealthy {
                continue;
            }
            let state = if s.evicted {
                "EVICTED".to_string()
            } else {
                s.breaker.to_string()
            };
            let _ = write!(
                out,
                "  host {} [tenant {}] {state} epoch {} ok {}/{} window(s)",
                s.host, s.tenant, s.epoch, s.ok_windows, s.windows_scheduled,
            );
            match s.last_error {
                Some(e) => {
                    let _ = writeln!(out, ", last error: {e}");
                }
                None => {
                    let _ = writeln!(out);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{layout_of, slots, TargetHistograms, SLOTS_PER_TARGET};
    use histo::Histogram;
    use vscsi::{TargetId, VDiskId, VmId};

    fn frame_bytes_with(host: HostId, records: &[i64], epoch: u64, seq: u64) -> Vec<u8> {
        let histograms = slots()
            .map(|(metric, _)| {
                let mut h = Histogram::new(layout_of(metric).edges());
                for &v in records {
                    h.record(v);
                }
                h
            })
            .collect();
        encode_frame(&HostFrame {
            host_id: host,
            captured_at_us: 1,
            epoch,
            seq,
            targets: vec![TargetHistograms {
                target: TargetId::new(VmId(0), VDiskId(0)),
                histograms,
            }],
        })
        .unwrap()
    }

    fn frame_bytes(host: HostId, records: &[i64]) -> Vec<u8> {
        frame_bytes_with(host, records, 0, 0)
    }

    fn cfg() -> PollConfig {
        PollConfig {
            interval: SimDuration::from_secs(1),
            ..PollConfig::basic()
        }
    }

    #[test]
    fn polls_on_schedule_and_rolls_up() {
        let eps = vec![
            FrameEndpoint::new(
                0,
                0,
                vec![Ok(frame_bytes(0, &[5])), Ok(frame_bytes(0, &[5, 6]))],
            ),
            FrameEndpoint::new(
                1,
                1,
                vec![Ok(frame_bytes(1, &[7])), Ok(frame_bytes(1, &[7, 8]))],
            ),
        ];
        let mut c = FleetCollector::new(cfg(), eps);
        c.run_until(SimTime::ZERO);
        let v0 = c.view(SimTime::ZERO);
        assert_eq!(v0.fleet.hosts, 2);
        assert_eq!(v0.fleet.agg.total_events(), 2 * SLOTS_PER_TARGET as u64);
        assert!(v0.conserves());
        // Second window: cumulative snapshots replace, never double-count.
        c.run_until(SimTime::from_secs(1));
        let v1 = c.view(SimTime::from_secs(1));
        assert_eq!(v1.fleet.agg.total_events(), 4 * SLOTS_PER_TARGET as u64);
        assert!(v1.conserves());
        assert_eq!(c.status()[0].frames_ok, 2);
        assert_eq!(c.status()[0].polls(), 2);
    }

    #[test]
    fn failures_age_into_staleness_and_recover() {
        let eps = vec![FrameEndpoint::new(
            0,
            0,
            vec![
                Ok(frame_bytes(0, &[5])),
                Err(FetchError::new("down")),
                Err(FetchError::new("down")),
                Ok(frame_bytes(0, &[5, 6, 7])),
            ],
        )];
        let mut c = FleetCollector::new(cfg(), eps);
        c.run_until(SimTime::ZERO);
        assert!(!c.is_stale(&c.status()[0], SimTime::ZERO));
        // Two failed windows age the window-0 snapshot to stale.
        c.run_until(SimTime::from_secs(2));
        let s = &c.status()[0];
        assert_eq!(s.fetch_failures, 2);
        assert_eq!(s.consecutive_failures, 2);
        assert_eq!(s.last_error, Some(FetchError::new("down").at_window(2)));
        assert_eq!(
            s.last_error.unwrap().to_string(),
            "fleet fetch [window 2]: down"
        );
        assert!(c.is_stale(s, SimTime::from_secs(2)));
        let v = c.view(SimTime::from_secs(2));
        assert_eq!(v.fleet.hosts, 0);
        assert_eq!(v.stale_hosts(), 1);
        assert!(v.conserves());
        // A good frame brings the host straight back.
        c.run_until(SimTime::from_secs(3));
        assert!(!c.is_stale(&c.status()[0], SimTime::from_secs(3)));
        let v = c.view(SimTime::from_secs(3));
        assert_eq!(v.fleet.hosts, 1);
        assert_eq!(v.fleet.agg.total_events(), 3 * SLOTS_PER_TARGET as u64);
    }

    #[test]
    fn corrupt_frames_count_as_decode_failures() {
        let mut bad = frame_bytes(0, &[5]);
        let flip = bad.len() / 2;
        bad[flip] ^= 0xff;
        let eps = vec![FrameEndpoint::new(
            0,
            0,
            vec![Ok(bad), Ok(frame_bytes(99, &[5])), Ok(frame_bytes(0, &[5]))],
        )];
        let mut c = FleetCollector::new(cfg(), eps);
        c.run_until(SimTime::from_secs(2));
        let s = &c.status()[0];
        assert_eq!(s.decode_failures, 2, "corrupt + misaddressed");
        assert_eq!(s.frames_ok, 1);
        assert_eq!(s.fetch_failures, 0);
    }

    #[test]
    fn chaos_endpoint_is_deterministic_and_accounted() {
        let mk = || {
            ChaosEndpoint::new(
                FrameEndpoint::new(3, 0, (0..50).map(|i| Ok(frame_bytes(3, &[i])))),
                99,
                20,
                20,
                20,
            )
        };
        let mut a = mk();
        let mut b = mk();
        let mut outcomes_a = Vec::new();
        let mut outcomes_b = Vec::new();
        for i in 0..50 {
            outcomes_a.push(a.fetch(SimTime::from_secs(i)));
            outcomes_b.push(b.fetch(SimTime::from_secs(i)));
        }
        assert_eq!(outcomes_a, outcomes_b, "same seed, same chaos");
        assert_eq!(a.ledger(), b.ledger());
        assert!(a.ledger().total() > 0);
        // Every injected fault surfaces as a collector failure, exactly.
        let mut c = FleetCollector::new(cfg(), vec![mk()]);
        c.run_until(SimTime::from_secs(49));
        let s = &c.status()[0];
        let ledger = c.endpoints()[0].ledger();
        assert_eq!(s.fetch_failures, ledger.unreachable);
        assert_eq!(s.decode_failures, ledger.corrupted + ledger.truncated);
        assert_eq!(s.frames_ok, 50 - ledger.total());
    }

    fn retry_cfg(attempts: u32) -> PollConfig {
        PollConfig {
            interval: SimDuration::from_secs(1),
            retry: RetryPolicy {
                attempts,
                backoff_base: SimDuration::from_millis(10),
                backoff_max: SimDuration::from_millis(50),
                seed: 7,
            },
            ..PollConfig::basic()
        }
    }

    #[test]
    fn retry_rescues_a_window_and_books_it() {
        let eps = vec![FrameEndpoint::new(
            0,
            0,
            vec![Err(FetchError::new("down")), Ok(frame_bytes(0, &[5]))],
        )];
        let mut c = FleetCollector::new(retry_cfg(3), eps);
        c.run_until(SimTime::ZERO);
        let s = &c.status()[0];
        assert_eq!((s.frames_ok, s.fetch_failures), (1, 1));
        assert_eq!((s.retries, s.retry_successes), (1, 1));
        assert_eq!(
            (s.windows_scheduled, s.ok_windows, s.failed_windows),
            (1, 1, 0)
        );
        assert_eq!(s.polls(), 2);
        assert!(
            s.last_success.unwrap() > SimTime::ZERO,
            "retry ran after backoff"
        );
        assert!(c.view(SimTime::ZERO).conserves());
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy {
            attempts: 4,
            backoff_base: SimDuration::from_millis(100),
            backoff_max: SimDuration::from_millis(400),
            seed: 42,
        };
        assert_eq!(p.backoff(1, 2, 1), p.backoff(1, 2, 1), "pure in its key");
        assert_ne!(p.backoff(1, 2, 1), p.backoff(1, 2, 2));
        assert_ne!(p.backoff(1, 2, 1), p.backoff(1, 3, 1));
        assert_ne!(p.backoff(1, 2, 1), p.backoff(9, 2, 1));
        for attempt in 1..=6 {
            let capped = (100u64 << (attempt - 1)).min(400) * 1_000_000;
            let b = p.backoff(9, 3, attempt).as_nanos();
            assert!(
                b >= capped && b <= capped + capped / 4,
                "attempt {attempt}: {b}"
            );
        }
    }

    #[test]
    fn breaker_opens_probes_and_recovers() {
        let config = PollConfig {
            interval: SimDuration::from_secs(1),
            breaker: BreakerPolicy {
                open_after: 2,
                probe_every: 2,
            },
            ..PollConfig::basic()
        };
        // w0 fail, w1 fail -> open(next probe w3); w2 suppressed;
        // w3 probe fails -> re-armed to w5; w4 suppressed; w5 probe ok.
        let eps = vec![FrameEndpoint::new(
            0,
            0,
            vec![
                Err(FetchError::new("down")),
                Err(FetchError::new("down")),
                Err(FetchError::new("down")),
                Ok(frame_bytes(0, &[5])),
            ],
        )];
        let mut c = FleetCollector::new(config, eps);
        c.run_until(SimTime::from_secs(1));
        assert_eq!(
            c.status()[0].breaker(),
            BreakerState::Open { next_probe: 3 }
        );
        c.run_until(SimTime::from_secs(5));
        let s = &c.status()[0];
        assert_eq!(s.windows_scheduled, 6);
        assert_eq!(
            (s.ok_windows, s.failed_windows, s.suppressed_windows),
            (1, 3, 2)
        );
        assert_eq!((s.quarantine_entries, s.quarantine_exits), (1, 1));
        assert_eq!(
            (s.probe_attempts, s.probe_successes, s.probe_failures),
            (2, 1, 1)
        );
        assert_eq!(s.breaker(), BreakerState::Closed);
        assert_eq!(s.polls(), 4, "suppressed windows never fetched");
        let pane = c.render_status(SimTime::from_secs(5));
        assert!(pane.contains("suppressed windows 2"), "{pane}");
    }

    #[test]
    fn dead_host_is_evicted_and_booked() {
        let config = PollConfig {
            interval: SimDuration::from_secs(1),
            evict_after: 3,
            ..PollConfig::basic()
        };
        let eps = vec![
            FrameEndpoint::new(0, 0, (0..20).map(|_| Err(FetchError::new("down")))),
            FrameEndpoint::new(1, 0, (0..20).map(|i| Ok(frame_bytes(1, &[i])))),
        ];
        let mut c = FleetCollector::new(config, eps);
        c.run_until(SimTime::from_secs(10));
        let s = &c.status()[0];
        assert!(s.evicted);
        assert_eq!(s.windows_scheduled, 3, "polling stopped at eviction");
        assert_eq!(c.evicted_hosts(), 1);
        let v = c.view(SimTime::from_secs(10));
        assert_eq!(v.evicted, 1);
        assert_eq!(v.hosts.len(), 1, "evicted host has no leaf");
        assert_eq!(v.fleet.hosts, 1);
        assert!(v.conserves());
        assert!(c.render_status(SimTime::from_secs(10)).contains("EVICTED"));
    }

    #[test]
    fn counter_regression_rebases_and_books_lost_windows() {
        // w0: 3 records/slot; w1: a *smaller* snapshot — an implicit
        // restart under legacy (epoch-less) frames.
        let eps = vec![FrameEndpoint::new(
            0,
            0,
            vec![Ok(frame_bytes(0, &[1, 2, 3])), Ok(frame_bytes(0, &[5]))],
        )];
        let mut c = FleetCollector::new(cfg(), eps);
        c.run_until(SimTime::from_secs(1));
        let s = &c.status()[0];
        assert_eq!((s.epoch_bumps, s.regressions, s.lost_windows), (1, 1, 1));
        assert_eq!(s.epoch, 1, "local epoch bump");
        let slots = SLOTS_PER_TARGET as u64;
        assert_eq!(s.agg().total_events(), slots, "cumulative = fresh epoch");
        assert_eq!(
            s.windowed_total().total_events(),
            4 * slots,
            "running total keeps the dead epoch's events"
        );
        let mut rebuilt = s.epoch_base().clone();
        rebuilt.merge(s.agg()).unwrap();
        assert!(
            rebuilt.same_counters(s.windowed_total()),
            "windowed_total == epoch_base + agg, bit for bit"
        );
        assert!(c.windowed_total_view(SimTime::from_secs(1)).conserves());
    }

    #[test]
    fn explicit_epoch_change_rebases_without_regression() {
        let eps = vec![FrameEndpoint::new(
            0,
            0,
            vec![
                Ok(frame_bytes_with(0, &[1, 2], 1, 1)),
                Ok(frame_bytes_with(0, &[9], 2, 1)),
            ],
        )];
        let mut c = FleetCollector::new(cfg(), eps);
        c.run_until(SimTime::from_secs(1));
        let s = &c.status()[0];
        assert_eq!((s.epoch_bumps, s.regressions, s.lost_windows), (1, 0, 1));
        assert_eq!((s.epoch, s.wire_epoch), (2, 2));
        assert_eq!(s.seq_rejects, 0, "seq restarts with the epoch");
        assert_eq!(
            s.windowed_total().total_events(),
            3 * SLOTS_PER_TARGET as u64
        );
    }

    #[test]
    fn checkpoint_resume_bumps_epoch_without_banking() {
        let slots = SLOTS_PER_TARGET as u64;
        // Epoch 1 seq 3, then a restored-from-checkpoint restart: epoch 2
        // with *continued* counters and sequence. The delta chain never
        // breaks, so nothing is banked and nothing is lost.
        let eps = vec![FrameEndpoint::new(
            0,
            0,
            vec![
                Ok(frame_bytes_with(0, &[1, 2], 1, 3)),
                Ok(frame_bytes_with(0, &[1, 2, 9], 2, 4)),
            ],
        )];
        let mut c = FleetCollector::new(cfg(), eps);
        c.run_until(SimTime::from_secs(1));
        let s = &c.status()[0];
        assert_eq!(
            (s.epoch_bumps, s.resumed_epochs, s.lost_windows),
            (0, 1, 0),
            "resume is not a rebase"
        );
        assert_eq!((s.epoch, s.wire_epoch, s.last_seq), (2, 2, 4));
        assert_eq!(s.seq_rejects, 0);
        assert_eq!(s.epoch_base().total_events(), 0, "nothing banked");
        assert_eq!(s.windowed_total().total_events(), 3 * slots);
        assert!(
            s.windowed_total().same_counters(s.agg()),
            "resumed restart keeps running total == cumulative, bit for bit"
        );
    }

    #[test]
    fn replayed_frames_are_rejected_by_sequence() {
        let eps = vec![FrameEndpoint::new(
            0,
            0,
            vec![
                Ok(frame_bytes_with(0, &[1], 1, 2)),
                Ok(frame_bytes_with(0, &[1, 2], 1, 1)),
            ],
        )];
        let mut c = FleetCollector::new(cfg(), eps);
        c.run_until(SimTime::from_secs(1));
        let s = &c.status()[0];
        assert_eq!((s.frames_ok, s.decode_failures, s.seq_rejects), (1, 1, 1));
        assert_eq!(s.last_error.unwrap().msg, "stale frame sequence");
        assert_eq!(s.agg().total_events(), SLOTS_PER_TARGET as u64);
    }

    #[test]
    fn window_deltas_resum_to_cumulative_across_gaps() {
        let slots = SLOTS_PER_TARGET as u64;
        // w0 ok, w1 down, w2 ok (bridges w1), w3 ok.
        let eps = vec![FrameEndpoint::new(
            0,
            0,
            vec![
                Ok(frame_bytes(0, &[5])),
                Err(FetchError::new("down")),
                Ok(frame_bytes(0, &[5, 6, 7])),
                Ok(frame_bytes(0, &[5, 6, 7, 8])),
            ],
        )];
        let mut c = FleetCollector::new(cfg(), eps);
        for (t, want_delta) in [(0u64, slots), (2, 2 * slots), (3, slots)] {
            c.run_until(SimTime::from_secs(t));
            let wv = c.window_view(SimTime::from_secs(t));
            assert_eq!(wv.fleet.agg.total_events(), want_delta, "window {t}");
            assert!(wv.conserves());
        }
        // A window with no good frame contributes nothing.
        let s = &c.status()[0];
        assert_eq!(s.bridged_windows, 1, "the w1 gap was recovered at w2");
        assert_eq!(s.lost_windows, 0);
        assert!(
            s.windowed_total().same_counters(s.agg()),
            "no restart: running total == cumulative, bit for bit"
        );
        let tv = c.windowed_total_view(SimTime::from_secs(3));
        let cv = c.view(SimTime::from_secs(3));
        assert_eq!(tv.fleet.agg, cv.fleet.agg);
    }

    #[test]
    fn boxed_endpoints_poll_like_concrete_ones() {
        let eps: Vec<Box<dyn HostEndpoint>> = vec![
            Box::new(FrameEndpoint::new(0, 0, vec![Ok(frame_bytes(0, &[5]))])),
            Box::new(ChaosEndpoint::new(
                FrameEndpoint::new(1, 1, vec![Ok(frame_bytes(1, &[6]))]),
                3,
                0,
                0,
                0,
            )),
        ];
        let mut c = FleetCollector::new(cfg(), eps);
        c.run_until(SimTime::ZERO);
        assert_eq!(c.view(SimTime::ZERO).fleet.hosts, 2);
    }

    #[test]
    fn ledger_and_error_displays_are_greppable() {
        let ledger = ChaosLedger {
            unreachable: 2,
            corrupted: 1,
            truncated: 0,
        };
        assert_eq!(
            ledger.to_string(),
            "chaos ledger: 3 fault(s) (2 unreachable, 1 corrupted, 0 truncated)"
        );
        assert_eq!(FetchError::new("down").to_string(), "fleet fetch: down");
        assert_eq!(
            FetchError::new("down").at_window(7).to_string(),
            "fleet fetch [window 7]: down"
        );
    }
}
