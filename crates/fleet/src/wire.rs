//! The `FetchAllHistograms` wire format.
//!
//! A host answers a fetch with one **frame**: every (VM, disk) target's
//! full histogram set — all [`Metric`] × [`Lens`] slots, in a fixed order
//! both sides derive from [`slots`] — serialized as delta-encoded varint
//! counter vectors. The integer primitives are
//! [`tracestore::codec`]'s public LEB128/zigzag API, so this format and
//! the trace segment format share one bit-level vocabulary.
//!
//! ```text
//! magic[8] = "VFLHIST2"   payload_len:u32le   crc32(magic ‖ payload):u32le
//! payload:
//!   host_id:varint  captured_at_us:varint
//!   epoch:varint  seq:varint              -- v2 only
//!   target_count:varint
//!   per target:
//!     vm:varint  disk:varint
//!     per slot (Metric::ALL × Lens::ALL, fixed order):
//!       bins:varint            -- must equal the slot layout's bin count
//!       count[0..bins]:Δvarint -- delta-chained from 0, zigzag-wrapped
//!       if any count > 0:
//!         sum:zz128 (lo:varint hi:varint)  min:zz  max:zz
//! ```
//!
//! `VFLHIST2` adds two fields the restart-safe windowed rollup needs: the
//! host's **epoch** (bumped by every deliberate counter regression — a
//! stats reset or a host restart) and a **frame sequence number**
//! (monotone per epoch, so a collector can reject replayed or reordered
//! frames). Legacy `VFLHIST1` frames — identical except that the two
//! fields are absent and the CRC covers the payload alone — still decode
//! under the same reader, yielding epoch 0 and the unsequenced seq 0.
//! Folding the magic into the v2 CRC keeps single-byte corruption of the
//! version byte detectable in *both* directions: a v1 frame whose magic
//! flips to `…2` fails the v2 CRC rule, and vice versa.
//!
//! Counts across consecutive bins of a real histogram are close in
//! magnitude (the distributions are peaky), so the zigzagged wrapping
//! delta keeps most bins at one byte; an idle slot is `bins` bytes of
//! zeros plus the header varint. The layouts themselves never travel:
//! they are process-lifetime statics ([`LayoutId`]) on both ends, and the
//! per-slot `bins` field plus the CRC catch any disagreement.
//!
//! Decoding is total: corrupt, truncated, or oversized input yields a
//! [`WireError`], never a panic — the collector tier counts these per
//! host and carries on.

use histo::{Histogram, LayoutId};
use tracestore::codec::{apply_delta, decode_u64, delta, encode_u64, unzigzag, zigzag};
use tracestore::crc32::crc32;
use vscsi::{TargetId, VDiskId, VmId};
use vscsi_stats::{Lens, Metric, StatsService};

/// Current frame magic: format name + version. [`encode_frame`] always
/// emits this; [`decode_frame`] accepts it alongside [`FRAME_MAGIC_V1`].
pub const FRAME_MAGIC: [u8; 8] = *b"VFLHIST2";

/// Legacy frame magic: the PR-7 format without epoch/seq. Still decoded
/// (epoch and seq come back 0), never emitted except by
/// [`encode_frame_v1`].
pub const FRAME_MAGIC_V1: [u8; 8] = *b"VFLHIST1";

/// Bytes of framing around the payload: magic + length + CRC.
pub const FRAME_HEADER_BYTES: usize = 8 + 4 + 4;

/// Number of histogram slots per target (every metric × lens pair).
pub const SLOTS_PER_TARGET: usize = Metric::ALL.len() * Lens::ALL.len();

/// Error decoding (or encoding) a frame. Carries a static description so
/// the collector tier can account failures without allocating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError {
    /// What was wrong with the bytes.
    pub msg: &'static str,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fleet wire: {}", self.msg)
    }
}

impl std::error::Error for WireError {}

const fn err(msg: &'static str) -> WireError {
    WireError { msg }
}

/// The fixed slot order: metrics in [`Metric::ALL`] order, each split into
/// lenses in [`Lens::ALL`] order. Both encoder and decoder iterate this.
pub fn slots() -> impl Iterator<Item = (Metric, Lens)> {
    Metric::ALL
        .into_iter()
        .flat_map(|m| Lens::ALL.into_iter().map(move |l| (m, l)))
}

/// Index of a (metric, lens) pair in the fixed slot order.
pub fn slot_index(metric: Metric, lens: Lens) -> usize {
    let m = Metric::ALL
        .iter()
        .position(|&x| x == metric)
        .expect("metric is registered");
    let l = Lens::ALL
        .iter()
        .position(|&x| x == lens)
        .expect("lens is registered");
    m * Lens::ALL.len() + l
}

/// The registered layout each metric's histograms use. Mirrors the stats
/// collector's binning; the encoder cross-checks it against the actual
/// histogram edges so drift fails loudly instead of corrupting frames.
pub fn layout_of(metric: Metric) -> LayoutId {
    match metric {
        Metric::IoLength => LayoutId::IoLengthBytes,
        Metric::SeekDistance | Metric::SeekDistanceWindowed => LayoutId::SeekDistanceSectors,
        Metric::Interarrival => LayoutId::InterarrivalUs,
        Metric::OutstandingIos => LayoutId::OutstandingIos,
        Metric::Latency => LayoutId::LatencyUs,
        Metric::Errors => LayoutId::ScsiOutcomes,
    }
}

/// One target's full histogram set, in [`slots`] order.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetHistograms {
    /// The (VM, disk) pair the histograms describe.
    pub target: TargetId,
    /// Exactly [`SLOTS_PER_TARGET`] histograms, in [`slots`] order.
    pub histograms: Vec<Histogram>,
}

/// One host's answer to `FetchAllHistograms`: a capture timestamp plus
/// every target's histogram set, in target order.
#[derive(Debug, Clone, PartialEq)]
pub struct HostFrame {
    /// The responding host.
    pub host_id: u64,
    /// Virtual-clock capture time, microseconds.
    pub captured_at_us: u64,
    /// The host's restart epoch ([`StatsService::epoch`]): bumped by every
    /// deliberate counter regression, so collectors re-base deltas instead
    /// of booking the drop as corruption. 0 for legacy `VFLHIST1` frames.
    pub epoch: u64,
    /// Frame sequence number, monotone within an epoch. 0 means
    /// *unsequenced* (a legacy `VFLHIST1` frame); sequenced emitters start
    /// at 1.
    pub seq: u64,
    /// Per-target histogram sets, sorted by target.
    pub targets: Vec<TargetHistograms>,
}

impl HostFrame {
    /// Snapshots every collector of `service` into a frame, stamping the
    /// service's current [`epoch`](StatsService::epoch) and the caller's
    /// sequence number. Locks one service shard at a time (via
    /// [`StatsService::collectors`]), so a fetch never stalls ingestion
    /// fleet-wide.
    pub fn snapshot(
        host_id: u64,
        captured_at_us: u64,
        seq: u64,
        service: &StatsService,
    ) -> HostFrame {
        let targets = service
            .collectors()
            .into_iter()
            .map(|(target, collector)| TargetHistograms {
                target,
                histograms: slots()
                    .map(|(metric, lens)| collector.histogram(metric, lens))
                    .collect(),
            })
            .collect();
        HostFrame {
            host_id,
            captured_at_us,
            epoch: service.epoch(),
            seq,
            targets,
        }
    }

    /// Total observations across every target and slot — the conservation
    /// numerator fleet rollups are checked against.
    pub fn total_events(&self) -> u64 {
        self.targets
            .iter()
            .flat_map(|t| t.histograms.iter())
            .map(Histogram::total)
            .sum()
    }
}

fn zigzag128(v: i128) -> u128 {
    ((v << 1) ^ (v >> 127)) as u128
}

fn unzigzag128(v: u128) -> i128 {
    ((v >> 1) as i128) ^ -((v & 1) as i128)
}

fn encode_histogram(h: &Histogram, expect: LayoutId, out: &mut Vec<u8>) -> Result<(), WireError> {
    if h.edges() != &expect.edges() {
        return Err(err(
            "histogram layout drifted from the registered slot layout",
        ));
    }
    encode_u64(h.counts().len() as u64, out);
    let mut prev = 0u64;
    for &c in h.counts() {
        encode_u64(delta(prev, c), out);
        prev = c;
    }
    if h.total() > 0 {
        let z = zigzag128(h.sum());
        encode_u64(z as u64, out);
        encode_u64((z >> 64) as u64, out);
        encode_u64(zigzag(h.min().expect("non-empty")), out);
        encode_u64(zigzag(h.max().expect("non-empty")), out);
    }
    Ok(())
}

fn decode_histogram(
    payload: &[u8],
    pos: &mut usize,
    layout: LayoutId,
) -> Result<Histogram, WireError> {
    let edges = layout.edges();
    let bins = decode_u64(payload, pos).ok_or(err("truncated bin count"))? as usize;
    if bins != edges.bin_count() {
        return Err(err("bin count disagrees with the registered layout"));
    }
    let mut counts = Vec::with_capacity(bins);
    let mut prev = 0u64;
    let mut total = 0u64;
    for _ in 0..bins {
        let d = decode_u64(payload, pos).ok_or(err("truncated counter"))?;
        let c = apply_delta(prev, d);
        total = total.checked_add(c).ok_or(err("counter total overflows"))?;
        counts.push(c);
        prev = c;
    }
    let (sum, min_max) = if total > 0 {
        let lo = decode_u64(payload, pos).ok_or(err("truncated sum"))?;
        let hi = decode_u64(payload, pos).ok_or(err("truncated sum"))?;
        let sum = unzigzag128(u128::from(lo) | (u128::from(hi) << 64));
        let min = unzigzag(decode_u64(payload, pos).ok_or(err("truncated min"))?);
        let max = unzigzag(decode_u64(payload, pos).ok_or(err("truncated max"))?);
        if min > max {
            return Err(err("min exceeds max"));
        }
        (sum, Some((min, max)))
    } else {
        (0, None)
    };
    Ok(Histogram::from_parts(edges, counts, sum, min_max))
}

fn encode_targets(frame: &HostFrame, payload: &mut Vec<u8>) -> Result<(), WireError> {
    encode_u64(frame.targets.len() as u64, payload);
    for t in &frame.targets {
        if t.histograms.len() != SLOTS_PER_TARGET {
            return Err(err("target does not carry every metric × lens slot"));
        }
        encode_u64(u64::from(t.target.vm.0), payload);
        encode_u64(u64::from(t.target.disk.0), payload);
        for ((metric, _), h) in slots().zip(&t.histograms) {
            encode_histogram(h, layout_of(metric), payload)?;
        }
    }
    Ok(())
}

fn seal(magic: [u8; 8], crc_covers_magic: bool, payload: Vec<u8>) -> Result<Vec<u8>, WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| err("payload exceeds frame size"))?;
    let crc = if crc_covers_magic {
        let mut covered = Vec::with_capacity(8 + payload.len());
        covered.extend_from_slice(&magic);
        covered.extend_from_slice(&payload);
        crc32(&covered)
    } else {
        crc32(&payload)
    };
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&magic);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Serializes a frame: a `VFLHIST2` CRC-framed envelope around a
/// delta-varint payload. The CRC covers the magic too, so flipping the
/// version byte of a sealed frame can never produce another valid frame.
///
/// # Errors
///
/// Fails if any histogram's layout disagrees with its slot's registered
/// layout, if a target carries the wrong number of slots, or if the
/// payload exceeds the `u32` length field.
pub fn encode_frame(frame: &HostFrame) -> Result<Vec<u8>, WireError> {
    let mut payload = Vec::with_capacity(64 + frame.targets.len() * 512);
    encode_u64(frame.host_id, &mut payload);
    encode_u64(frame.captured_at_us, &mut payload);
    encode_u64(frame.epoch, &mut payload);
    encode_u64(frame.seq, &mut payload);
    encode_targets(frame, &mut payload)?;
    seal(FRAME_MAGIC, true, payload)
}

/// Serializes a frame in the legacy `VFLHIST1` layout — what a host that
/// predates the epoch/seq fields would ship. The frame's `epoch` and
/// `seq` do **not** travel: decoding the result yields 0 for both. Kept
/// so compatibility is a tested property, not an assumption.
///
/// # Errors
///
/// Same conditions as [`encode_frame`].
pub fn encode_frame_v1(frame: &HostFrame) -> Result<Vec<u8>, WireError> {
    let mut payload = Vec::with_capacity(64 + frame.targets.len() * 512);
    encode_u64(frame.host_id, &mut payload);
    encode_u64(frame.captured_at_us, &mut payload);
    encode_targets(frame, &mut payload)?;
    seal(FRAME_MAGIC_V1, false, payload)
}

/// Decodes one frame — current `VFLHIST2` or legacy `VFLHIST1` — after
/// verifying magic, length, CRC, and every field.
///
/// Total: any malformed input — truncation anywhere, a flipped bit, an
/// overlong varint, trailing garbage — returns a [`WireError`]. A decoded
/// `VFLHIST2` frame is bit-exact: re-encoding it reproduces the input
/// bytes. A `VFLHIST1` frame decodes with `epoch == 0` and `seq == 0`
/// (the fields don't exist on that wire), so re-encoding upgrades it to
/// `VFLHIST2`.
///
/// # Errors
///
/// Returns a [`WireError`] naming the first malformed field.
pub fn decode_frame(buf: &[u8]) -> Result<HostFrame, WireError> {
    if buf.len() < FRAME_HEADER_BYTES {
        return Err(err("frame shorter than its header"));
    }
    let v2 = match &buf[..8] {
        m if *m == FRAME_MAGIC => true,
        m if *m == FRAME_MAGIC_V1 => false,
        _ => return Err(err("bad frame magic")),
    };
    let len = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")) as usize;
    let want_crc = u32::from_le_bytes(buf[12..16].try_into().expect("4 bytes"));
    let payload = &buf[FRAME_HEADER_BYTES..];
    if payload.len() < len {
        return Err(err("frame truncated mid-payload"));
    }
    if payload.len() > len {
        return Err(err("trailing bytes after frame"));
    }
    let got_crc = if v2 {
        // The v2 CRC covers the magic so version-byte flips are caught.
        let mut hasher_input = Vec::with_capacity(8 + payload.len());
        hasher_input.extend_from_slice(&buf[..8]);
        hasher_input.extend_from_slice(payload);
        crc32(&hasher_input)
    } else {
        crc32(payload)
    };
    if got_crc != want_crc {
        return Err(err("payload CRC mismatch"));
    }
    let mut pos = 0usize;
    let host_id = decode_u64(payload, &mut pos).ok_or(err("truncated host id"))?;
    let captured_at_us = decode_u64(payload, &mut pos).ok_or(err("truncated capture time"))?;
    let (epoch, seq) = if v2 {
        (
            decode_u64(payload, &mut pos).ok_or(err("truncated epoch"))?,
            decode_u64(payload, &mut pos).ok_or(err("truncated frame seq"))?,
        )
    } else {
        (0, 0)
    };
    let target_count = decode_u64(payload, &mut pos).ok_or(err("truncated target count"))?;
    // Each target needs at least 2 id bytes + one byte per slot, so this
    // bound rejects absurd counts before any allocation.
    if target_count > (payload.len() as u64) / (2 + SLOTS_PER_TARGET as u64) + 1 {
        return Err(err("target count exceeds payload size"));
    }
    let mut targets = Vec::with_capacity(target_count as usize);
    for _ in 0..target_count {
        let vm = decode_u64(payload, &mut pos).ok_or(err("truncated vm id"))?;
        let disk = decode_u64(payload, &mut pos).ok_or(err("truncated disk id"))?;
        let vm = u32::try_from(vm).map_err(|_| err("vm id exceeds 32 bits"))?;
        let disk = u32::try_from(disk).map_err(|_| err("disk id exceeds 32 bits"))?;
        let mut histograms = Vec::with_capacity(SLOTS_PER_TARGET);
        for (metric, _) in slots() {
            histograms.push(decode_histogram(payload, &mut pos, layout_of(metric))?);
        }
        targets.push(TargetHistograms {
            target: TargetId::new(VmId(vm), VDiskId(disk)),
            histograms,
        });
    }
    if pos != payload.len() {
        return Err(err("trailing bytes inside payload"));
    }
    Ok(HostFrame {
        host_id,
        captured_at_us,
        epoch,
        seq,
        targets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> HostFrame {
        let mut targets = Vec::new();
        for vm in 0..3u32 {
            let mut histograms = Vec::new();
            for (metric, lens) in slots() {
                let mut h = Histogram::new(layout_of(metric).edges());
                if lens != Lens::Writes {
                    h.record(i64::from(vm) * 7 + 1);
                    h.record(4096);
                }
                histograms.push(h);
            }
            targets.push(TargetHistograms {
                target: TargetId::new(VmId(vm), VDiskId(0)),
                histograms,
            });
        }
        HostFrame {
            host_id: 42,
            captured_at_us: 6_000_000,
            epoch: 3,
            seq: 17,
            targets,
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let frame = sample_frame();
        let bytes = encode_frame(&frame).unwrap();
        let back = decode_frame(&bytes).unwrap();
        assert_eq!(back, frame);
        // And re-encoding the decoded frame reproduces the bytes.
        assert_eq!(encode_frame(&back).unwrap(), bytes);
    }

    #[test]
    fn empty_frame_roundtrips() {
        let frame = HostFrame {
            host_id: 0,
            captured_at_us: 0,
            epoch: 0,
            seq: 0,
            targets: Vec::new(),
        };
        let bytes = encode_frame(&frame).unwrap();
        assert_eq!(decode_frame(&bytes).unwrap(), frame);
    }

    #[test]
    fn v1_frames_decode_with_zero_epoch_and_seq() {
        let frame = sample_frame();
        let bytes = encode_frame_v1(&frame).unwrap();
        assert_eq!(&bytes[..8], &FRAME_MAGIC_V1);
        let back = decode_frame(&bytes).unwrap();
        // Epoch and seq never traveled on the v1 wire.
        assert_eq!(back.epoch, 0);
        assert_eq!(back.seq, 0);
        let mut expect = frame;
        expect.epoch = 0;
        expect.seq = 0;
        assert_eq!(back, expect);
    }

    #[test]
    fn every_v1_truncation_and_flip_errors() {
        let bytes = encode_frame_v1(&sample_frame()).unwrap();
        for cut in 0..bytes.len() {
            assert!(decode_frame(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        for i in 0..bytes.len() {
            for flip in [0x01u8, 0x03, 0x40] {
                let mut bad = bytes.clone();
                bad[i] ^= flip;
                assert!(decode_frame(&bad).is_err(), "flip {flip:#x} at byte {i}");
            }
        }
    }

    #[test]
    fn version_byte_flips_never_cross_decode() {
        // "VFLHIST1" and "VFLHIST2" differ by one bit in the last magic
        // byte; the v2 CRC covers the magic so neither direction of that
        // flip yields a valid frame of the *other* version.
        let v2 = encode_frame(&sample_frame()).unwrap();
        let mut as_v1 = v2.clone();
        as_v1[7] = b'1';
        assert_eq!(
            decode_frame(&as_v1).unwrap_err().msg,
            "payload CRC mismatch"
        );
        let v1 = encode_frame_v1(&sample_frame()).unwrap();
        let mut as_v2 = v1.clone();
        as_v2[7] = b'2';
        assert_eq!(
            decode_frame(&as_v2).unwrap_err().msg,
            "payload CRC mismatch"
        );
    }

    #[test]
    fn every_truncation_errors() {
        let bytes = encode_frame(&sample_frame()).unwrap();
        for cut in 0..bytes.len() {
            assert!(decode_frame(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn every_single_byte_flip_errors_or_roundtrips_consistently() {
        // A flip in the payload must be caught by the CRC; a flip in the
        // header by magic/length/CRC checks. No flip may panic, and none
        // may silently decode to a *different* frame.
        let frame = sample_frame();
        let bytes = encode_frame(&frame).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            match decode_frame(&bad) {
                Err(_) => {}
                Ok(got) => panic!(
                    "flip at byte {i} decoded silently ({})",
                    if got == frame {
                        "same frame"
                    } else {
                        "different frame"
                    }
                ),
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_frame(&sample_frame()).unwrap();
        bytes.push(0);
        assert_eq!(
            decode_frame(&bytes).unwrap_err().msg,
            "trailing bytes after frame"
        );
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut bytes = encode_frame(&sample_frame()).unwrap();
        bytes[0] = b'X';
        assert_eq!(decode_frame(&bytes).unwrap_err().msg, "bad frame magic");
    }

    #[test]
    fn layout_drift_rejected_at_encode_time() {
        let mut frame = sample_frame();
        frame.targets[0].histograms[0] = Histogram::with_edges(vec![1, 2, 3]).unwrap();
        assert!(encode_frame(&frame).is_err());
    }

    #[test]
    fn slot_order_is_stable_and_complete() {
        let all: Vec<_> = slots().collect();
        assert_eq!(all.len(), SLOTS_PER_TARGET);
        for (i, &(m, l)) in all.iter().enumerate() {
            assert_eq!(slot_index(m, l), i);
        }
    }

    #[test]
    fn zigzag128_roundtrips_extremes() {
        for v in [0i128, 1, -1, i128::MAX, i128::MIN, 1 << 64, -(1 << 64)] {
            assert_eq!(unzigzag128(zigzag128(v)), v);
        }
    }

    #[test]
    fn wire_is_compact_for_sparse_histograms() {
        let frame = sample_frame();
        let bytes = encode_frame(&frame).unwrap();
        // 3 targets × 21 slots: mostly-empty histograms should cost around
        // one byte per bin, far below the 8 bytes/counter resident form.
        let resident: usize = frame
            .targets
            .iter()
            .flat_map(|t| t.histograms.iter())
            .map(|h| h.counts().len() * 8)
            .sum();
        assert!(
            bytes.len() * 3 < resident,
            "wire {} vs resident {resident}",
            bytes.len()
        );
    }
}
