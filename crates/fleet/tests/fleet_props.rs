//! Property tests for the fleet plane: the wire format round-trips
//! bit-exactly for arbitrary histogram states, and the collector survives
//! arbitrary corruption with exact per-host failure accounting.

use fleet::{
    decode_frame, encode_frame, encode_frame_v1, layout_of, slots, AggSet, FetchError,
    FleetCollector, FrameEndpoint, HostFrame, PollConfig, TargetHistograms, SLOTS_PER_TARGET,
};
use histo::Histogram;
use proptest::collection::vec;
use proptest::prelude::*;
use simkit::{SimDuration, SimTime};
use vscsi::{TargetId, VDiskId, VmId};

/// An arbitrary but *valid* full slot set for one target: per-slot counts
/// are free, the exact sum is free, and min/max are present (ordered) iff
/// occupied — exactly the states a live collector slab can reach. All 21
/// slots are carved from one flat counter vector so each slot gets its own
/// layout's bin count.
fn arb_target() -> impl Strategy<Value = TargetHistograms> {
    let total_bins: usize = slots()
        .map(|(metric, _)| layout_of(metric).edges().bin_count())
        .sum();
    (
        any::<u32>(),
        any::<u32>(),
        vec(0u64..1_000_000u64, total_bins),
        vec(any::<(i64, i64, i64)>(), SLOTS_PER_TARGET),
    )
        .prop_map(|(vm, disk, all_counts, seeds)| {
            let mut offset = 0;
            let histograms = slots()
                .zip(seeds)
                .map(|((metric, _), (sum, m1, m2))| {
                    let edges = layout_of(metric).edges();
                    let bins = edges.bin_count();
                    let counts = all_counts[offset..offset + bins].to_vec();
                    offset += bins;
                    let occupied = counts.iter().any(|&c| c > 0);
                    let min_max = occupied.then(|| (m1.min(m2), m1.max(m2)));
                    let sum = if occupied { i128::from(sum) } else { 0 };
                    Histogram::from_parts(edges.clone(), counts, sum, min_max)
                })
                .collect();
            TargetHistograms {
                target: TargetId::new(VmId(vm), VDiskId(disk)),
                histograms,
            }
        })
}

fn arb_frame() -> impl Strategy<Value = HostFrame> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        vec(arb_target(), 0..4),
    )
        .prop_map(|(host_id, captured_at_us, epoch, seq, targets)| HostFrame {
            host_id,
            captured_at_us,
            epoch,
            seq,
            targets,
        })
}

/// A legacy frame: `VFLHIST1` has no epoch/seq fields, so they are 0.
fn arb_frame_v1() -> impl Strategy<Value = HostFrame> {
    arb_frame().prop_map(|mut f| {
        f.epoch = 0;
        f.seq = 0;
        f
    })
}

/// One-target frame for host 1 holding `records` in every slot, stamped
/// with an explicit epoch and sequence.
fn frame_with(records: &[i64], epoch: u64, seq: u64) -> Vec<u8> {
    let histograms = slots()
        .map(|(metric, _)| {
            let mut h = Histogram::new(layout_of(metric).edges());
            for &v in records {
                h.record(v);
            }
            h
        })
        .collect();
    encode_frame(&HostFrame {
        host_id: 1,
        captured_at_us: 0,
        epoch,
        seq,
        targets: vec![TargetHistograms {
            target: TargetId::new(VmId(0), VDiskId(0)),
            histograms,
        }],
    })
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode → encode is the identity on both the frame and
    /// the bytes, for arbitrary histogram states.
    #[test]
    fn encode_decode_is_bit_exact(frame in arb_frame()) {
        let bytes = encode_frame(&frame).unwrap();
        let back = decode_frame(&bytes).unwrap();
        prop_assert_eq!(&back, &frame);
        prop_assert_eq!(encode_frame(&back).unwrap(), bytes);
    }

    /// Any truncation of a valid frame is rejected, never mis-decoded.
    #[test]
    fn truncations_never_decode(frame in arb_frame(), cut in any::<prop::sample::Index>()) {
        let bytes = encode_frame(&frame).unwrap();
        let cut = cut.index(bytes.len());
        prop_assert!(decode_frame(&bytes[..cut]).is_err());
    }

    /// Any single-byte corruption of a valid frame is rejected — the CRC
    /// (payload) or header checks (magic/length) catch it, without panics.
    #[test]
    fn byte_flips_never_decode(
        frame in arb_frame(),
        at in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_frame(&frame).unwrap();
        let at = at.index(bytes.len());
        bytes[at] ^= flip;
        prop_assert!(decode_frame(&bytes).is_err());
    }

    /// Arbitrary garbage never decodes into a frame by accident (the
    /// magic alone rejects virtually everything) and never panics.
    #[test]
    fn random_bytes_never_panic(bytes in vec(any::<u8>(), 0..512)) {
        let _ = decode_frame(&bytes);
    }

    /// A fleet poll schedule over a mixed script of good, corrupt,
    /// truncated, and unreachable responses: every poll lands in exactly
    /// one ledger bucket, the rollup only ever reflects good frames, and
    /// conservation holds at every window.
    #[test]
    fn collector_accounts_every_fault_exactly(
        polls in vec(0u8..4, 1..20),
        flip in 1u8..=255,
        at in any::<prop::sample::Index>(),
    ) {
        let good = {
            let histograms = slots()
                .map(|(metric, _)| {
                    let mut h = Histogram::new(layout_of(metric).edges());
                    h.record(4096);
                    h
                })
                .collect();
            encode_frame(&HostFrame {
                host_id: 1,
                captured_at_us: 0,
                epoch: 0,
                seq: 0,
                targets: vec![TargetHistograms {
                    target: TargetId::new(VmId(0), VDiskId(0)),
                    histograms,
                }],
            })
            .unwrap()
        };
        let mut expect_ok = 0u64;
        let mut expect_fetch = 0u64;
        let mut expect_decode = 0u64;
        let script: Vec<Result<Vec<u8>, FetchError>> = polls
            .iter()
            .map(|&kind| match kind {
                0 => {
                    expect_ok += 1;
                    Ok(good.clone())
                }
                1 => {
                    expect_fetch += 1;
                    Err(FetchError::new("down"))
                }
                2 => {
                    expect_decode += 1;
                    let mut bad = good.clone();
                    let i = at.index(bad.len());
                    bad[i] ^= flip;
                    Ok(bad)
                }
                _ => {
                    expect_decode += 1;
                    Ok(good[..at.index(good.len())].to_vec())
                }
            })
            .collect();
        let windows = script.len() as u64;
        // The minimal discipline keeps the script-entry ↔ window mapping
        // 1:1, which is what this exact-accounting property needs.
        let config = PollConfig {
            interval: SimDuration::from_secs(1),
            ..PollConfig::basic()
        };
        let mut collector = FleetCollector::new(config, vec![FrameEndpoint::new(1, 0, script)]);
        for w in 0..windows {
            let now = SimTime::from_secs(w);
            collector.run_until(now);
            let view = collector.view(now);
            prop_assert!(view.conserves());
            prop_assert!(view.fleet.hosts + view.stale_hosts() == 1);
        }
        let status = &collector.status()[0];
        prop_assert_eq!(status.frames_ok, expect_ok);
        prop_assert_eq!(status.fetch_failures, expect_fetch);
        prop_assert_eq!(status.decode_failures, expect_decode);
        prop_assert_eq!(status.polls(), windows);
        // The rollup reflects good frames only: if the host ever answered,
        // its snapshot is the good frame's aggregate, untouched by faults.
        if expect_ok > 0 {
            prop_assert_eq!(
                status.agg().total_events(),
                SLOTS_PER_TARGET as u64
            );
        } else {
            prop_assert_eq!(status.agg().total_events(), 0);
        }
    }

    /// For an arbitrary poll schedule (monotone host, arbitrary fetch
    /// outages), merging every per-window delta view re-sums bit-for-bit
    /// to the cumulative snapshot: counts, totals, sums, and min/max.
    #[test]
    fn window_deltas_resum_bit_for_bit(
        plan in vec((vec(-5000i64..5000, 0..3), any::<bool>()), 1..16),
    ) {
        let mut records: Vec<i64> = Vec::new();
        let mut seq = 0u64;
        let mut script = Vec::new();
        for (adds, reachable) in &plan {
            if *reachable {
                records.extend(adds.iter().copied());
                seq += 1;
                script.push(Ok(frame_with(&records, 1, seq)));
            } else {
                script.push(Err(FetchError::new("down")));
            }
        }
        let windows = script.len() as u64;
        let config = PollConfig {
            interval: SimDuration::from_secs(1),
            ..PollConfig::basic()
        };
        let mut collector = FleetCollector::new(config, vec![FrameEndpoint::new(1, 0, script)]);
        let mut resum = AggSet::new();
        for w in 0..windows {
            let now = SimTime::from_secs(w);
            collector.run_until(now);
            let wv = collector.window_view(now);
            prop_assert!(wv.conserves());
            resum.merge(&wv.fleet.agg).unwrap();
        }
        let status = &collector.status()[0];
        prop_assert!(resum.same_counters(status.agg()), "delta re-sum drifted");
        prop_assert!(status.windowed_total().same_counters(status.agg()));
        prop_assert_eq!(status.lost_windows, 0);
    }

    /// Arbitrary epoch-reset (restart) sequences never panic, and
    /// lost-window/banked-event accounting is exact: each restart between
    /// good windows books exactly one lost window, and the running total
    /// carries every epoch's events exactly once.
    #[test]
    fn epoch_resets_account_lost_windows_exactly(
        plan in vec((any::<bool>(), vec(1i64..4096, 1..3)), 1..12),
    ) {
        let mut records: Vec<i64> = Vec::new();
        let mut epoch = 1u64;
        let mut seq = 0u64;
        let mut banked = 0u64;
        let mut restarts = 0u64;
        let mut script = Vec::new();
        for (i, (restart, adds)) in plan.iter().enumerate() {
            if *restart && i > 0 {
                banked += records.len() as u64;
                records.clear();
                epoch += 1;
                seq = 0;
                restarts += 1;
            }
            records.extend(adds.iter().copied());
            seq += 1;
            script.push(Ok(frame_with(&records, epoch, seq)));
        }
        let windows = script.len() as u64;
        let config = PollConfig {
            interval: SimDuration::from_secs(1),
            ..PollConfig::basic()
        };
        let mut collector = FleetCollector::new(config, vec![FrameEndpoint::new(1, 0, script)]);
        collector.run_until(SimTime::from_secs(windows - 1));
        let s = &collector.status()[0];
        prop_assert_eq!(s.epoch_bumps, restarts);
        prop_assert_eq!(s.lost_windows, restarts, "one lost window per restart");
        prop_assert_eq!(s.seq_rejects, 0);
        prop_assert_eq!(
            s.windowed_total().total_events(),
            (banked + records.len() as u64) * SLOTS_PER_TARGET as u64,
            "every epoch's events counted exactly once"
        );
        let mut rebuilt = s.epoch_base().clone();
        rebuilt.merge(s.agg()).unwrap();
        prop_assert!(rebuilt.same_counters(s.windowed_total()));
        let tv = collector.windowed_total_view(SimTime::from_secs(windows - 1));
        prop_assert!(tv.conserves());
    }

    /// Legacy `VFLHIST1` frames decode bit-exactly under the `VFLHIST2`
    /// reader (epoch/seq read back as 0), and corrupting them still
    /// never mis-decodes.
    #[test]
    fn v1_frames_decode_under_v2_reader(frame in arb_frame_v1()) {
        let bytes = encode_frame_v1(&frame).unwrap();
        let back = decode_frame(&bytes).unwrap();
        prop_assert_eq!(&back, &frame);
        prop_assert_eq!((back.epoch, back.seq), (0, 0));
    }

    /// Any single-byte corruption of a v1 frame is rejected by the v2
    /// reader — including flips that turn the magic into `VFLHIST2`.
    #[test]
    fn v1_byte_flips_never_decode(
        frame in arb_frame_v1(),
        at in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = encode_frame_v1(&frame).unwrap();
        let at = at.index(bytes.len());
        bytes[at] ^= flip;
        prop_assert!(decode_frame(&bytes).is_err());
    }
}
