//! Property-based tests for the histogram core.

use histo::{layouts, BinEdges, Histogram, LayoutId, SeekWindow};
use proptest::collection::vec;
use proptest::prelude::*;

/// Arbitrary strictly increasing edge lists.
fn arb_edges() -> impl Strategy<Value = Vec<i64>> {
    vec(-1_000_000i64..1_000_000, 1..24).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

proptest! {
    /// Every value lands in exactly one bin, and that bin's range contains it.
    #[test]
    fn bin_index_is_consistent_with_range(edges in arb_edges(), value in any::<i64>()) {
        let e = BinEdges::new(edges).unwrap();
        let idx = e.bin_index(value);
        prop_assert!(idx < e.bin_count());
        let (lo, hi) = e.bin_range(idx);
        if let Some(lo) = lo {
            prop_assert!(value > lo, "value {value} <= lo {lo}");
        }
        if let Some(hi) = hi {
            prop_assert!(value <= hi, "value {value} > hi {hi}");
        }
    }

    /// Linear scan and binary search always agree.
    #[test]
    fn linear_equals_binary(edges in arb_edges(), values in vec(any::<i64>(), 1..100)) {
        let e = BinEdges::new(edges).unwrap();
        for v in values {
            prop_assert_eq!(e.bin_index(v), e.bin_index_binary(v));
        }
    }

    /// Total count equals number of inserts; per-bin counts sum to total.
    #[test]
    fn totals_conserved(values in vec(-600_000i64..600_000, 0..500)) {
        let mut h = Histogram::new(layouts::seek_distance_sectors());
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.total(), values.len() as u64);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), h.total());
        if !values.is_empty() {
            prop_assert_eq!(h.min(), values.iter().min().copied());
            prop_assert_eq!(h.max(), values.iter().max().copied());
            let exact: f64 = values.iter().map(|&v| v as f64).sum::<f64>() / values.len() as f64;
            prop_assert!((h.mean().unwrap() - exact).abs() < 1e-6);
        }
    }

    /// merge(a, b) is equivalent to inserting both value sets into one histogram.
    #[test]
    fn merge_equals_union(
        xs in vec(-1_000_000i64..1_000_000, 0..200),
        ys in vec(-1_000_000i64..1_000_000, 0..200),
    ) {
        let edges = layouts::seek_distance_sectors();
        let mut a = Histogram::new(edges.clone());
        let mut b = Histogram::new(edges.clone());
        let mut u = Histogram::new(edges);
        for &x in &xs { a.record(x); u.record(x); }
        for &y in &ys { b.record(y); u.record(y); }
        a.merge(&b).unwrap();
        prop_assert_eq!(a.counts(), u.counts());
        prop_assert_eq!(a.total(), u.total());
        prop_assert_eq!(a.min(), u.min());
        prop_assert_eq!(a.max(), u.max());
    }

    /// Quantile upper bounds are monotone in q and bracket the data.
    #[test]
    fn quantiles_monotone(values in vec(0i64..1_000_000, 1..300)) {
        let mut h = Histogram::new(layouts::io_length_bytes());
        for &v in &values { h.record(v); }
        let q25 = h.quantile_upper_bound(0.25).unwrap();
        let q50 = h.quantile_upper_bound(0.50).unwrap();
        let q99 = h.quantile_upper_bound(0.99).unwrap();
        prop_assert!(q25 <= q50 && q50 <= q99);
        // The max value must be <= the q=1.0 bin's upper representative
        // unless it fell in the overflow bin.
        let q100 = h.quantile_upper_bound(1.0).unwrap();
        let top_edge = *h.edges().edges().last().unwrap();
        if h.max().unwrap() <= top_edge {
            prop_assert!(h.max().unwrap() <= q100);
        }
    }

    /// A window of capacity 1 reproduces plain last-I/O seek distance.
    #[test]
    fn window1_equals_plain_distance(ios in vec((0u64..1_000_000, 1u64..256), 2..100)) {
        let mut w = SeekWindow::new(1);
        let mut last_end: Option<u64> = None;
        for &(first, len) in &ios {
            let got = w.observe(first, len);
            let want = last_end.map(|e| histo::signed_distance(e, first));
            prop_assert_eq!(got, want);
            last_end = Some(first + len - 1);
        }
    }

    /// The windowed distance is never larger in magnitude than the plain
    /// last-I/O distance (the window can only find something closer).
    #[test]
    fn window_min_never_worse(ios in vec((0u64..1_000_000, 1u64..256), 2..100)) {
        let mut w16 = SeekWindow::new(16);
        let mut w1 = SeekWindow::new(1);
        for &(first, len) in &ios {
            let d16 = w16.observe(first, len);
            let d1 = w1.observe(first, len);
            if let (Some(a), Some(b)) = (d16, d1) {
                prop_assert!(a.unsigned_abs() <= b.unsigned_abs());
            }
        }
    }

    /// Histogram2d marginals agree with direct 1-D histograms.
    #[test]
    fn hist2d_marginals(pts in vec((-600_000i64..600_000, 0i64..200_000), 0..200)) {
        let mut h2 = histo::Histogram2d::new(
            layouts::seek_distance_sectors(),
            layouts::latency_us(),
        );
        let mut hx = Histogram::new(layouts::seek_distance_sectors());
        let mut hy = Histogram::new(layouts::latency_us());
        for &(x, y) in &pts {
            h2.record(x, y);
            hx.record(x);
            hy.record(y);
        }
        let mx = h2.marginal_x();
        let my = h2.marginal_y();
        prop_assert_eq!(mx.counts(), hx.counts());
        prop_assert_eq!(my.counts(), hy.counts());
    }

    /// Rebinning to any coarser layout preserves totals.
    #[test]
    fn rebin_preserves_total(values in vec(0i64..2_000_000, 0..200)) {
        let mut h = Histogram::new(layouts::io_length_bytes());
        for &v in &values { h.record(v); }
        let coarse = histo::export::rebin(&h, layouts::pow2(24));
        prop_assert_eq!(coarse.total(), h.total());
    }

    /// Cumulative counts are monotone and end at the total; fraction_at_most
    /// is monotone in its bound and consistent with the cumulative counts.
    #[test]
    fn cumulative_and_at_most_consistent(values in vec(-600_000i64..600_000, 0..300)) {
        let mut h = Histogram::new(layouts::seek_distance_sectors());
        for &v in &values { h.record(v); }
        let cum = h.cumulative_counts();
        prop_assert_eq!(cum.len(), h.edges().bin_count());
        for w in cum.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert_eq!(*cum.last().unwrap(), h.total());
        let mut last = -1.0f64;
        for &hi in h.edges().edges() {
            let f = h.fraction_at_most(hi);
            prop_assert!(f >= last - 1e-12, "not monotone at {hi}");
            last = f;
            if h.total() > 0 {
                // fraction_at_most(edge i) == cumulative up to bin i / total.
                let i = h.edges().bin_index(hi);
                prop_assert!((f - cum[i] as f64 / h.total() as f64).abs() < 1e-12);
            }
        }
    }

    /// For every registered layout and arbitrary values, the branchless
    /// fast path agrees with both scan strategies.
    #[test]
    fn fast_binner_matches_both_scans(values in vec(any::<i64>(), 1..200)) {
        for id in LayoutId::ALL {
            let edges = id.edges();
            let fast = id.binner();
            for &v in &values {
                let linear = edges.bin_index(v);
                prop_assert_eq!(fast.bin_index(v), linear, "{:?} v={}", id, v);
                prop_assert_eq!(edges.bin_index_binary(v), linear, "{:?} v={}", id, v);
            }
        }
    }

    /// Distance metrics are symmetric, bounded, and zero on identity.
    #[test]
    fn distances_well_behaved(
        xs in vec(0i64..200_000, 1..150),
        ys in vec(0i64..200_000, 1..150),
    ) {
        let mut a = Histogram::new(layouts::latency_us());
        let mut b = Histogram::new(layouts::latency_us());
        for &x in &xs { a.record(x); }
        for &y in &ys { b.record(y); }
        let tv_ab = histo::distance::total_variation(&a, &b).unwrap();
        let tv_ba = histo::distance::total_variation(&b, &a).unwrap();
        prop_assert!((tv_ab - tv_ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&tv_ab));
        prop_assert!(histo::distance::total_variation(&a, &a).unwrap() < 1e-12);
        let hel = histo::distance::hellinger_sq(&a, &b).unwrap();
        prop_assert!((0.0..=1.0 + 1e-12).contains(&hel));
        prop_assert!(histo::distance::hellinger_sq(&b, &b).unwrap() < 1e-12);
        // TV and Hellinger agree on "identical" and "disjoint" extremes:
        // if TV is 0 then Hellinger is 0.
        if tv_ab < 1e-12 {
            prop_assert!(hel < 1e-9);
        }
    }
}

/// Deterministic companion to `fast_binner_matches_both_scans`: the domain
/// extremes and every exact edge (± 1) of every registered layout, which
/// random sampling of `i64` would essentially never hit.
#[test]
fn fast_binner_matches_on_extremes_and_exact_edges() {
    for id in LayoutId::ALL {
        let edges = id.edges();
        let fast = id.binner();
        let mut probes = vec![i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX];
        for &e in edges.edges() {
            probes.push(e.saturating_sub(1));
            probes.push(e);
            probes.push(e.saturating_add(1));
        }
        for v in probes {
            let linear = edges.bin_index(v);
            assert_eq!(fast.bin_index(v), linear, "{id:?} v={v}");
            assert_eq!(edges.bin_index_binary(v), linear, "{id:?} v={v}");
        }
    }
}

proptest! {
    /// Batched binning is the scalar binner, elementwise — over arbitrary
    /// layouts the binner accepts and arbitrary values, covering both the
    /// full 8-lane blocks and the ragged tail of `bin_slice`.
    #[test]
    fn bin_batch_equals_scalar(edges in arb_edges(), values in vec(any::<i64>(), 1..64)) {
        let e = BinEdges::new(edges).unwrap();
        let Some(fast) = histo::FastBinner::try_new(&e) else {
            // Layout too dense for the class tables — no batch path either.
            return Ok(());
        };
        let mut out = vec![0u16; values.len()];
        fast.bin_slice(&values, &mut out);
        for (v, got) in values.iter().zip(&out) {
            prop_assert_eq!(usize::from(*got), fast.bin_index(*v));
            prop_assert_eq!(usize::from(*got), e.bin_index(*v));
        }
        // The fixed-size form agrees wherever a full block exists.
        if values.len() >= 8 {
            let block: &[i64; 8] = values[..8].try_into().unwrap();
            prop_assert_eq!(&fast.bin_batch(block)[..], &out[..8]);
        }
    }

    /// The explicit SSE2 lane is bit-identical to the scalar lane over
    /// arbitrary layouts and arbitrary `i64` values — including values far
    /// outside the `i32` range the SIMD kernel saturates into. On targets
    /// without the SSE2 lane both binners coerce to scalar and the check
    /// is trivially true, so the test stays portable.
    #[test]
    fn sse2_lane_equals_scalar_lane(edges in arb_edges(), values in vec(any::<i64>(), 1..96)) {
        let e = BinEdges::new(edges).unwrap();
        let Some(fast) = histo::FastBinner::try_new(&e) else {
            return Ok(());
        };
        if cfg!(target_arch = "x86_64") {
            // arb_edges stays within ±1e6, so narrowing always succeeds.
            prop_assert_eq!(fast.lane(), histo::BinLane::Sse2);
        }
        let scalar = fast.clone().with_lane(histo::BinLane::Scalar);
        let simd = fast.clone().with_lane(histo::BinLane::Sse2);
        let mut out_scalar = vec![0u16; values.len()];
        let mut out_simd = vec![0u16; values.len()];
        scalar.bin_slice(&values, &mut out_scalar);
        simd.bin_slice(&values, &mut out_simd);
        prop_assert_eq!(out_scalar, out_simd);
    }
}

/// Arbitrary registered layout.
fn arb_layout() -> impl Strategy<Value = LayoutId> {
    prop::sample::select(&LayoutId::ALL[..])
}

/// Arbitrary histogram over `id`'s layout, built from raw parts exactly the
/// way an external deserializer (the fleet wire format) reassembles one:
/// counts, exact sum, and a min/max pair present iff any count is nonzero.
fn arb_histogram(id: LayoutId) -> impl Strategy<Value = Histogram> {
    let edges = id.edges();
    let bins = edges.bin_count();
    (
        vec(0u64..1_000_000u64, bins),
        any::<i64>(),
        any::<i64>(),
        any::<i64>(),
    )
        .prop_map(move |(counts, sum, m1, m2)| {
            let occupied = counts.iter().any(|&c| c > 0);
            let min_max = occupied.then(|| (m1.min(m2), m1.max(m2)));
            let sum = if occupied { i128::from(sum) } else { 0 };
            Histogram::from_parts(id.edges(), counts, sum, min_max)
        })
}

proptest! {
    /// Merge is commutative: a ⊕ b == b ⊕ a, for the *whole* state —
    /// counts, total, exact sum, and min/max — not just the counters.
    #[test]
    fn merge_commutes(
        (a, b) in arb_layout().prop_flat_map(|id| (arb_histogram(id), arb_histogram(id))),
    ) {
        let mut ab = a.clone();
        ab.merge(&b).unwrap();
        let mut ba = b.clone();
        ba.merge(&a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    /// Merge is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn merge_associates(
        (a, b, c) in arb_layout().prop_flat_map(|id| {
            (arb_histogram(id), arb_histogram(id), arb_histogram(id))
        }),
    ) {
        let mut left = a.clone();
        left.merge(&b).unwrap();
        left.merge(&c).unwrap();
        let mut bc = b.clone();
        bc.merge(&c).unwrap();
        let mut right = a.clone();
        right.merge(&bc).unwrap();
        prop_assert_eq!(left, right);
    }

    /// The empty histogram is a two-sided identity, and in particular never
    /// clobbers the other side's min/max or sum.
    #[test]
    fn empty_is_merge_identity(a in arb_layout().prop_flat_map(arb_histogram)) {
        let empty = Histogram::new(a.edges().clone());
        let mut l = a.clone();
        l.merge(&empty).unwrap();
        prop_assert_eq!(&l, &a);
        let mut r = empty.clone();
        r.merge(&a).unwrap();
        prop_assert_eq!(&r, &a);
    }

    /// Merging separately ingested parts equals ingesting the union — for
    /// any number of parts, including empty ones, and for the exact sum,
    /// min, and max, not only the counters. This is the invariant the
    /// fleet rollup tree (host → tenant → fleet) rests on.
    #[test]
    fn merge_of_parts_equals_ingest_of_union(
        parts in vec(vec(-1_000_000i64..1_000_000, 0..80), 1..6),
    ) {
        let edges = layouts::seek_distance_sectors();
        let mut union = Histogram::new(edges.clone());
        let mut merged = Histogram::new(edges.clone());
        for part in &parts {
            let mut h = Histogram::new(edges.clone());
            for &v in part {
                h.record(v);
                union.record(v);
            }
            merged.merge(&h).unwrap();
        }
        prop_assert_eq!(&merged, &union);
        prop_assert_eq!(merged.sum(), union.sum());
        prop_assert_eq!(merged.min(), union.min());
        prop_assert_eq!(merged.max(), union.max());
    }

    /// Merging across different layouts is always rejected and leaves the
    /// receiver untouched.
    #[test]
    fn merge_layout_mismatch_rejected(
        (a_id, b_id) in (arb_layout(), arb_layout()),
        values in vec(0i64..100_000, 0..40),
    ) {
        prop_assume!(a_id.edges() != b_id.edges());
        let mut a = Histogram::new(a_id.edges());
        for &v in &values { a.record(v); }
        let before = a.clone();
        let b = Histogram::new(b_id.edges());
        prop_assert_eq!(a.merge(&b), Err(histo::MergeError::LayoutMismatch));
        prop_assert_eq!(a, before);
    }
}

/// Deterministic batch-binning companion: every registered layout, probing
/// each exact edge and its neighbours *through the batched path*, so the
/// bin-boundary compares are pinned lane-for-lane against the scalar
/// binner (the ISSUE-6 cross-check).
#[test]
fn bin_batch_matches_scalar_on_registered_layouts() {
    for id in LayoutId::ALL {
        let edges = id.edges();
        let fast = id.binner();
        let mut probes = vec![i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX];
        for &e in edges.edges() {
            probes.extend([e.saturating_sub(1), e, e.saturating_add(1)]);
        }
        let mut out = vec![0u16; probes.len()];
        fast.bin_slice(&probes, &mut out);
        for (v, got) in probes.iter().zip(&out) {
            assert_eq!(usize::from(*got), edges.bin_index(*v), "{id:?} v={v}");
        }
    }
}
