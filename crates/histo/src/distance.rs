//! Distances between histograms.
//!
//! Support for the paper's stated future work (§7): "automatic
//! categorization of workloads". Categorization needs a notion of how far
//! apart two binned distributions are; this module provides the standard
//! ones over *normalized* histograms sharing a layout.

use crate::histogram::{Histogram, MergeError};

/// Normalizes a histogram's counts to a probability vector (sums to 1).
/// Returns an empty vector for an empty histogram.
pub fn normalize(h: &Histogram) -> Vec<f64> {
    let total = h.total();
    if total == 0 {
        return Vec::new();
    }
    h.counts()
        .iter()
        .map(|&c| c as f64 / total as f64)
        .collect()
}

fn check_layouts(a: &Histogram, b: &Histogram) -> Result<(), MergeError> {
    if a.edges() != b.edges() {
        return Err(MergeError::LayoutMismatch);
    }
    Ok(())
}

/// Total-variation distance: `0.5 * Σ |p_i - q_i|`, in `[0, 1]`.
/// Empty histograms are treated as uniform over nothing (distance 1 to any
/// non-empty histogram, 0 to another empty one).
///
/// # Errors
///
/// Returns [`MergeError::LayoutMismatch`] if the layouts differ.
///
/// # Examples
///
/// ```
/// use histo::{distance, Histogram};
///
/// let mut a = Histogram::with_edges(vec![0, 10])?;
/// let mut b = Histogram::with_edges(vec![0, 10])?;
/// a.record(5);
/// b.record(5);
/// assert_eq!(distance::total_variation(&a, &b)?, 0.0);
/// b.record(100);
/// assert!(distance::total_variation(&a, &b)? > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn total_variation(a: &Histogram, b: &Histogram) -> Result<f64, MergeError> {
    check_layouts(a, b)?;
    let pa = normalize(a);
    let pb = normalize(b);
    Ok(match (pa.is_empty(), pb.is_empty()) {
        (true, true) => 0.0,
        (true, false) | (false, true) => 1.0,
        (false, false) => 0.5 * pa.iter().zip(&pb).map(|(x, y)| (x - y).abs()).sum::<f64>(),
    })
}

/// Squared Hellinger distance: `1 - Σ sqrt(p_i q_i)`, in `[0, 1]`.
/// Symmetric and bounded, well-defined with zero bins — the workhorse for
/// fingerprint similarity.
///
/// # Errors
///
/// Returns [`MergeError::LayoutMismatch`] if the layouts differ.
pub fn hellinger_sq(a: &Histogram, b: &Histogram) -> Result<f64, MergeError> {
    check_layouts(a, b)?;
    let pa = normalize(a);
    let pb = normalize(b);
    Ok(match (pa.is_empty(), pb.is_empty()) {
        (true, true) => 0.0,
        (true, false) | (false, true) => 1.0,
        (false, false) => {
            let bc: f64 = pa.iter().zip(&pb).map(|(x, y)| (x * y).sqrt()).sum();
            (1.0 - bc).max(0.0)
        }
    })
}

/// Chi-square statistic `Σ (o_i - e_i)^2 / e_i` comparing observed counts
/// in `a` against the distribution of `b` scaled to `a`'s total. Bins where
/// both are zero are skipped; bins where only `b` is zero contribute the
/// observed count (a pseudo-count of 1 is used as the expected value).
///
/// # Errors
///
/// Returns [`MergeError::LayoutMismatch`] if the layouts differ.
pub fn chi_square(a: &Histogram, b: &Histogram) -> Result<f64, MergeError> {
    check_layouts(a, b)?;
    if a.total() == 0 || b.total() == 0 {
        return Ok(if a.total() == b.total() {
            0.0
        } else {
            f64::INFINITY
        });
    }
    let scale = a.total() as f64 / b.total() as f64;
    let mut stat = 0.0;
    for (&o, &e_raw) in a.counts().iter().zip(b.counts()) {
        let e = e_raw as f64 * scale;
        if o == 0 && e == 0.0 {
            continue;
        }
        let e = e.max(1.0);
        let d = o as f64 - e;
        stat += d * d / e;
    }
    Ok(stat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layouts;

    fn pair() -> (Histogram, Histogram) {
        (
            Histogram::new(layouts::latency_us()),
            Histogram::new(layouts::latency_us()),
        )
    }

    #[test]
    fn identical_histograms_distance_zero() {
        let (mut a, mut b) = pair();
        for v in [5, 50, 500, 5_000] {
            a.record(v);
            b.record(v);
        }
        assert_eq!(total_variation(&a, &b).unwrap(), 0.0);
        assert!(hellinger_sq(&a, &b).unwrap() < 1e-12);
        assert!(chi_square(&a, &b).unwrap() < 1e-12);
    }

    #[test]
    fn disjoint_histograms_distance_one() {
        let (mut a, mut b) = pair();
        a.record_n(5, 100);
        b.record_n(50_000, 100);
        assert_eq!(total_variation(&a, &b).unwrap(), 1.0);
        assert!((hellinger_sq(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert!(chi_square(&a, &b).unwrap() > 100.0);
    }

    #[test]
    fn scale_invariance() {
        // Same shape at different totals: zero TV/Hellinger distance.
        let (mut a, mut b) = pair();
        a.record_n(5, 10);
        a.record_n(500, 30);
        b.record_n(5, 100);
        b.record_n(500, 300);
        assert!(total_variation(&a, &b).unwrap() < 1e-12);
        assert!(hellinger_sq(&a, &b).unwrap() < 1e-12);
    }

    #[test]
    fn symmetry() {
        let (mut a, mut b) = pair();
        a.record_n(5, 7);
        a.record_n(5_000, 3);
        b.record_n(50, 4);
        b.record_n(5_000, 9);
        assert_eq!(
            total_variation(&a, &b).unwrap(),
            total_variation(&b, &a).unwrap()
        );
        assert!((hellinger_sq(&a, &b).unwrap() - hellinger_sq(&b, &a).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        let (a, b) = pair();
        assert_eq!(total_variation(&a, &b).unwrap(), 0.0);
        assert_eq!(hellinger_sq(&a, &b).unwrap(), 0.0);
        assert_eq!(chi_square(&a, &b).unwrap(), 0.0);
        let mut c = Histogram::new(layouts::latency_us());
        c.record(5);
        assert_eq!(total_variation(&a, &c).unwrap(), 1.0);
        assert_eq!(chi_square(&c, &a).unwrap(), f64::INFINITY);
    }

    #[test]
    fn layout_mismatch_rejected() {
        let a = Histogram::new(layouts::latency_us());
        let b = Histogram::new(layouts::io_length_bytes());
        assert_eq!(total_variation(&a, &b), Err(MergeError::LayoutMismatch));
        assert_eq!(hellinger_sq(&a, &b), Err(MergeError::LayoutMismatch));
        assert_eq!(chi_square(&a, &b), Err(MergeError::LayoutMismatch));
    }

    #[test]
    fn normalize_sums_to_one() {
        let mut a = Histogram::new(layouts::outstanding_ios());
        for v in 0..100 {
            a.record(v % 40);
        }
        let p = normalize(&a);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(normalize(&Histogram::new(layouts::outstanding_ios())).is_empty());
    }
}
