//! Histograms bucketed over wall-clock intervals.
//!
//! Figures 4(d) and 6(c) of the paper plot a full histogram per 6-second
//! interval, producing a surface that shows workload *phases* (e.g. the
//! latency histogram shifting right when a second VM starts hammering the
//! same device). [`HistogramSeries`] maintains one [`Histogram`] per
//! fixed-width interval.

use crate::bins::BinEdges;
use crate::histogram::{Histogram, MergeError};
use serde::{Deserialize, Serialize};
use simkit::{SimDuration, SimTime};
use std::fmt;

/// A sequence of equal-width-interval histograms sharing one bin layout.
///
/// # Examples
///
/// ```
/// use histo::{BinEdges, HistogramSeries};
/// use simkit::{SimDuration, SimTime};
///
/// let edges = BinEdges::new(vec![10, 100])?;
/// let mut s = HistogramSeries::new(edges, SimDuration::from_secs(6));
/// s.record(SimTime::from_secs(1), 5);
/// s.record(SimTime::from_secs(7), 50);
/// assert_eq!(s.interval_count(), 2);
/// assert_eq!(s.interval(0).unwrap().total(), 1);
/// # Ok::<(), histo::BinEdgesError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSeries {
    edges: BinEdges,
    width: SimDuration,
    intervals: Vec<Histogram>,
}

impl HistogramSeries {
    /// Creates an empty series with the given layout and interval width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(edges: BinEdges, width: SimDuration) -> Self {
        assert!(!width.is_zero(), "interval width must be positive");
        HistogramSeries {
            edges,
            width,
            intervals: Vec::new(),
        }
    }

    /// Rebuilds a series from externally maintained state: the shared
    /// layout, interval width, and the materialized interval histograms in
    /// order. The inverse of walking [`HistogramSeries::iter`] — external
    /// serializers (the checkpoint plane) round-trip a series bit-exactly
    /// through this.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or any interval's layout differs from
    /// `edges` (untrusted inputs must be validated before this call).
    pub fn from_parts(edges: BinEdges, width: SimDuration, intervals: Vec<Histogram>) -> Self {
        assert!(!width.is_zero(), "interval width must be positive");
        assert!(
            intervals.iter().all(|h| *h.edges() == edges),
            "interval layout differs from series layout"
        );
        HistogramSeries {
            edges,
            width,
            intervals,
        }
    }

    /// The shared bin layout.
    #[inline]
    pub fn edges(&self) -> &BinEdges {
        &self.edges
    }

    /// The interval width.
    #[inline]
    pub fn width(&self) -> SimDuration {
        self.width
    }

    /// Records `value` in the interval containing time `t`, creating empty
    /// intervening intervals as needed.
    pub fn record(&mut self, t: SimTime, value: i64) {
        let idx = (t.as_nanos() / self.width.as_nanos()) as usize;
        while self.intervals.len() <= idx {
            self.intervals.push(Histogram::new(self.edges.clone()));
        }
        self.intervals[idx].record(value);
    }

    /// Number of intervals materialized so far.
    #[inline]
    pub fn interval_count(&self) -> usize {
        self.intervals.len()
    }

    /// The histogram for interval `idx`, if materialized.
    pub fn interval(&self, idx: usize) -> Option<&Histogram> {
        self.intervals.get(idx)
    }

    /// Iterates over `(interval_index, histogram)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Histogram)> {
        self.intervals.iter().enumerate()
    }

    /// Collapses the whole series into a single histogram.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::LayoutMismatch`] if any interval's layout
    /// differs from the series layout. [`HistogramSeries::record`] only
    /// ever creates intervals with the shared layout, but a series built
    /// from untrusted serialized state can carry mismatched intervals —
    /// flattening one must surface the error, not panic.
    pub fn flatten(&self) -> Result<Histogram, MergeError> {
        let mut out = Histogram::new(self.edges.clone());
        for h in &self.intervals {
            out.merge(h)?;
        }
        Ok(out)
    }

    /// Index of the most populated bin per interval — the "ridge line" of
    /// the paper's 3-D surface plots; `None` entries are empty intervals.
    pub fn mode_ridge(&self) -> Vec<Option<usize>> {
        self.intervals.iter().map(Histogram::mode_bin).collect()
    }

    /// Total observations across all intervals.
    pub fn total(&self) -> u64 {
        self.intervals.iter().map(Histogram::total).sum()
    }
}

impl fmt::Display for HistogramSeries {
    /// Renders the surface as rows = intervals, columns = bins, with counts.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>6}", "intvl")?;
        for i in 0..self.edges.bin_count() {
            write!(f, " {:>9}", self.edges.bin_label(i))?;
        }
        writeln!(f)?;
        for (i, h) in self.iter() {
            write!(f, "S{:<5}", i + 1)?;
            for &c in h.counts() {
                write!(f, " {c:>9}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> HistogramSeries {
        HistogramSeries::new(
            BinEdges::new(vec![10, 100]).unwrap(),
            SimDuration::from_secs(6),
        )
    }

    #[test]
    fn records_into_correct_interval() {
        let mut s = series();
        s.record(SimTime::from_secs(0), 5);
        s.record(SimTime::from_secs(5), 5);
        s.record(SimTime::from_secs(6), 50);
        s.record(SimTime::from_secs(17), 500);
        assert_eq!(s.interval_count(), 3);
        assert_eq!(s.interval(0).unwrap().total(), 2);
        assert_eq!(s.interval(1).unwrap().total(), 1);
        assert_eq!(s.interval(2).unwrap().total(), 1);
    }

    #[test]
    fn gaps_materialize_empty_intervals() {
        let mut s = series();
        s.record(SimTime::from_secs(20), 1);
        assert_eq!(s.interval_count(), 4);
        assert_eq!(s.interval(0).unwrap().total(), 0);
        assert_eq!(s.interval(3).unwrap().total(), 1);
    }

    #[test]
    fn flatten_preserves_totals() {
        let mut s = series();
        for sec in 0..30 {
            s.record(SimTime::from_secs(sec), (sec as i64) * 7);
        }
        let flat = s.flatten().unwrap();
        assert_eq!(flat.total(), 30);
        assert_eq!(flat.total(), s.total());
    }

    #[test]
    fn flatten_surfaces_layout_mismatch() {
        // A series whose intervals disagree with the series layout can only
        // arise from untrusted serialized state; simulate one via serde.
        let mut s = series();
        s.record(SimTime::from_secs(1), 5);
        s.intervals[0] = Histogram::with_edges(vec![1, 2, 3]).unwrap();
        assert_eq!(s.flatten(), Err(MergeError::LayoutMismatch));
    }

    #[test]
    fn mode_ridge_tracks_phase_shift() {
        let mut s = series();
        // Phase 1: small values; phase 2: large values (like Fig. 6(c)).
        for i in 0..10 {
            s.record(SimTime::from_millis(i * 100), 5);
        }
        for i in 0..10 {
            s.record(
                SimTime::from_secs(6) + SimDuration::from_millis(i * 100),
                500,
            );
        }
        assert_eq!(s.mode_ridge(), vec![Some(0), Some(2)]);
    }

    #[test]
    fn display_has_header_and_rows() {
        let mut s = series();
        s.record(SimTime::from_secs(1), 5);
        let out = s.to_string();
        assert!(out.contains(">100"));
        assert!(out.contains("S1"));
    }
}
