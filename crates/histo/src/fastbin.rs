//! Branchless bin lookup for the registered layouts.
//!
//! The linear scan in [`BinEdges::bin_index`] is already cheap for the
//! paper's bin counts (m ≈ 12–20 compares), but the hot path pays it for
//! every metric of every command. A [`FastBinner`] precomputes, per
//! *bit-width class* of the value, how many edges lie entirely below the
//! class and which (at most [`CLASS_SLOTS`]) edges fall inside it. A lookup
//! is then: one `leading_zeros` (a single machine instruction), one table
//! row, and [`CLASS_SLOTS`] branch-free compares — independent of the
//! layout's total edge count.
//!
//! Negative values are handled by a sign-split: for `v <= 0` the bin index
//! equals `neg_count - |{negative edges e : e >= v}|`, and the magnitude
//! comparison runs through a mirrored class table over `|e|`. This covers
//! the full `i64` domain including `i64::MIN` (whose magnitude does not fit
//! in `i64` — the tables store magnitudes as `u64`).
//!
//! Construction falls back (returns `None`) when a layout packs more than
//! [`CLASS_SLOTS`] edges into one power-of-two span; callers keep the
//! linear scan for such layouts. All six paper layouts fit (the densest is
//! the outstanding-I/O layout with `{16, 20, 24, 28}` in `[16, 31]`), and
//! the `fastbin_props` proptest pins agreement with both scan strategies
//! over arbitrary `i64` input.
//!
//! ## Batched lanes
//!
//! [`FastBinner::bin_slice`] dispatches between two batch implementations
//! chosen at construction time (see [`BinLane`]):
//!
//! * **Scalar** — the autovectorizer-shaped [`FastBinner::bin_batch`]
//!   loop over 8-lane blocks. Always available, on every architecture.
//! * **Sse2** — explicit `core::arch::x86_64` intrinsics. The kernel uses
//!   the identity `bin_index(v) == |{edges e : e < v}|` (which holds over
//!   the whole `i64` domain — it is [`BinEdges::bin_index`]'s definition):
//!   when every edge fits strictly below `i32::MAX`, values can be
//!   *saturated* into `i32` without changing any edge comparison, and the
//!   count runs four lanes at a time on native `_mm_cmpgt_epi32` — SSE2
//!   has no 64-bit signed compare, so narrowing is what makes the lane
//!   profitable. Layouts with an edge outside that range (none of the
//!   paper's) simply keep the scalar lane.
//!
//! SSE2 is part of the `x86_64` baseline, so dispatch is `cfg`-static —
//! no runtime feature probe is needed. The two lanes are bit-identical;
//! the `sse2_lane_equals_scalar_lane` proptest pins it over arbitrary
//! `i64` input including values far outside the `i32` range.

use crate::bins::BinEdges;

/// Which batch implementation [`FastBinner::bin_slice`] runs; see the
/// module docs. Selected automatically at construction, overridable with
/// [`FastBinner::with_lane`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinLane {
    /// Portable scalar blocks shaped for the autovectorizer.
    Scalar,
    /// Explicit SSE2 intrinsics over `i32`-narrowed edges (`x86_64` only,
    /// and only when the layout's edges permit narrowing).
    Sse2,
}

/// Maximum number of edges sharing one power-of-two class. Chosen to cover
/// the densest registered layout; see the module docs.
pub const CLASS_SLOTS: usize = 4;

/// Number of bit-width classes: widths 0 (value 0) through 64
/// (magnitude `2^63`, i.e. `i64::MIN`), inclusive.
const CLASSES: usize = 65;

/// Precomputed branchless bin-lookup tables for one [`BinEdges`] layout.
#[derive(Debug, Clone)]
pub struct FastBinner {
    /// `pos_base[w]` = number of edges `< 2^(w-1)` — every edge strictly
    /// below the positive class `w` span `[2^(w-1), 2^w - 1]`.
    pos_base: [u16; CLASSES],
    /// Edges inside positive class `w`, padded with `i64::MAX` (a pad never
    /// satisfies `v > pad`, so it contributes nothing).
    pos_class: [[i64; CLASS_SLOTS]; CLASSES],
    /// `neg_base[w]` = number of negative-edge magnitudes `< 2^(w-1)`.
    neg_base: [u16; CLASSES],
    /// Negative-edge magnitudes inside class `w`, padded with `u64::MAX`
    /// (unreachable: magnitudes are at most `2^63`).
    neg_class: [[u64; CLASS_SLOTS]; CLASSES],
    /// Total number of strictly negative edges.
    neg_count: u16,
    /// Every edge narrowed to `i32`, in layout order, for the SSE2 lane.
    /// Empty when some edge is `>= i32::MAX` or `< i32::MIN` — saturating
    /// values into `i32` is only comparison-preserving when all edges lie
    /// strictly below the saturation ceiling (`i32::MIN` itself is fine:
    /// nothing can sit strictly below a floor edge).
    narrow_edges: Vec<i32>,
    /// Which batch lane [`FastBinner::bin_slice`] dispatches to.
    lane: BinLane,
}

/// Bit-width class of a non-negative magnitude: 0 for 0, otherwise
/// `floor(log2(m)) + 1`.
#[inline]
fn width(m: u64) -> usize {
    (u64::BITS - m.leading_zeros()) as usize
}

impl FastBinner {
    /// Builds the lookup tables for `edges`, or `None` if any power-of-two
    /// span holds more than [`CLASS_SLOTS`] edges (keep the linear scan for
    /// such layouts).
    pub fn try_new(edges: &BinEdges) -> Option<FastBinner> {
        Self::try_from_edges(edges.edges())
    }

    /// [`FastBinner::try_new`] over a raw (strictly increasing, non-empty)
    /// edge slice.
    pub fn try_from_edges(edges: &[i64]) -> Option<FastBinner> {
        if edges.is_empty() || edges.len() > usize::from(u16::MAX) {
            return None;
        }
        let mut pos_base = [0u16; CLASSES];
        let mut pos_class = [[i64::MAX; CLASS_SLOTS]; CLASSES];
        let mut pos_fill = [0usize; CLASSES];
        let mut neg_base = [0u16; CLASSES];
        let mut neg_class = [[u64::MAX; CLASS_SLOTS]; CLASSES];
        let mut neg_fill = [0usize; CLASSES];
        let mut neg_count = 0u16;

        for &e in edges {
            if e > 0 {
                let w = width(e as u64);
                let slot = pos_fill[w];
                if slot >= CLASS_SLOTS {
                    return None;
                }
                pos_class[w][slot] = e;
                pos_fill[w] = slot + 1;
            } else if e < 0 {
                neg_count += 1;
                let w = width(e.unsigned_abs());
                let slot = neg_fill[w];
                if slot >= CLASS_SLOTS {
                    return None;
                }
                neg_class[w][slot] = e.unsigned_abs();
                neg_fill[w] = slot + 1;
            }
            // e == 0 needs no slot: it is below every positive class span
            // (counted by pos_base) and outside every `v <= 0` lookup
            // (no edge `0` is ever `< v` for `v <= 0`).
        }

        // pos_base[w] counts edges of any sign strictly below 2^(w-1);
        // neg_base[w] counts negative-edge magnitudes strictly below the
        // same threshold. Class 0 is only reachable for v == 0 / u == 0 and
        // has an empty span, so its base stays 0 (neg) / unused (pos).
        for w in 1..CLASSES {
            let lo = 1u64 << (w - 1);
            pos_base[w] = edges.iter().filter(|&&e| e < 0 || (e as u64) < lo).count() as u16;
            neg_base[w] = edges
                .iter()
                .filter(|&&e| e < 0 && e.unsigned_abs() < lo)
                .count() as u16;
        }

        // Narrowing gate for the SSE2 lane: saturating a value into i32
        // preserves every `e < v` comparison iff no edge equals i32::MAX
        // (a value above the ceiling must still count *all* edges below
        // it) and every edge fits in i32 at all.
        let narrow_edges: Vec<i32> = edges
            .iter()
            .map(|&e| i32::try_from(e).ok().filter(|&x| x < i32::MAX))
            .collect::<Option<Vec<i32>>>()
            .unwrap_or_default();
        let lane = if cfg!(target_arch = "x86_64") && !narrow_edges.is_empty() {
            BinLane::Sse2
        } else {
            BinLane::Scalar
        };

        Some(FastBinner {
            pos_base,
            pos_class,
            neg_base,
            neg_class,
            neg_count,
            narrow_edges,
            lane,
        })
    }

    /// The batch lane [`FastBinner::bin_slice`] currently dispatches to.
    pub fn lane(&self) -> BinLane {
        self.lane
    }

    /// Requests a specific batch lane, returning the binner. The request
    /// is coerced to [`BinLane::Scalar`] when the SSE2 lane is unavailable
    /// (non-`x86_64`, or a layout whose edges do not narrow to `i32`);
    /// check [`FastBinner::lane`] for the lane actually in effect. Both
    /// lanes produce bit-identical indices — this exists for benchmarks
    /// and the lane-equivalence tests.
    pub fn with_lane(mut self, lane: BinLane) -> FastBinner {
        self.lane = if lane == BinLane::Sse2
            && cfg!(target_arch = "x86_64")
            && !self.narrow_edges.is_empty()
        {
            BinLane::Sse2
        } else {
            BinLane::Scalar
        };
        self
    }

    /// Maps a small fixed-size array of values to bin indices in one
    /// sweep. Semantically identical to calling [`FastBinner::bin_index`]
    /// elementwise (the `fastbin_props` proptest pins the equivalence);
    /// the point is the *shape*: a counted loop over a stack array of
    /// branch-free lane computations, which the compiler can unroll and
    /// autovectorize, where the one-at-a-time call sites cannot. The
    /// collector's batched ingest path runs each metric's gathered
    /// values through this before a single slab-apply pass.
    ///
    /// Indices are returned as `u16` (layouts never exceed `u16::MAX`
    /// edges by construction), which quarters the result footprint and
    /// helps the vectorizer pack lanes.
    #[inline]
    pub fn bin_batch<const N: usize>(&self, values: &[i64; N]) -> [u16; N] {
        let mut out = [0u16; N];
        for (o, v) in out.iter_mut().zip(values) {
            *o = self.bin_index(*v) as u16;
        }
        out
    }

    /// [`FastBinner::bin_batch`] over runtime-sized slices: bins
    /// `values[i]` into `out[i]`, processing full 8-lane blocks through
    /// the active [`BinLane`] and the tail elementwise. The lanes are
    /// bit-identical; see the module docs for how each works.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `values`.
    pub fn bin_slice(&self, values: &[i64], out: &mut [u16]) {
        assert!(
            out.len() >= values.len(),
            "bin_slice: output buffer too short"
        );
        #[cfg(target_arch = "x86_64")]
        if self.lane == BinLane::Sse2 {
            return self.bin_slice_sse2(values, out);
        }
        self.bin_slice_scalar(values, out);
    }

    /// The autovectorizer-shaped scalar lane: full 8-lane blocks through
    /// [`FastBinner::bin_batch`], ragged tail elementwise.
    fn bin_slice_scalar(&self, values: &[i64], out: &mut [u16]) {
        const LANES: usize = 8;
        let mut i = 0;
        while i + LANES <= values.len() {
            let block: &[i64; LANES] = values[i..i + LANES].try_into().expect("exact block");
            out[i..i + LANES].copy_from_slice(&self.bin_batch(block));
            i += LANES;
        }
        for (o, v) in out[i..values.len()].iter_mut().zip(&values[i..]) {
            *o = self.bin_index(*v) as u16;
        }
    }

    /// The explicit SSE2 lane: 8 values per block, each saturated into
    /// `i32` (comparison-preserving given the narrowing gate in
    /// [`FastBinner::try_from_edges`]) and compared against every edge
    /// four lanes at a time. Per-lane counts accumulate by subtracting
    /// the all-ones compare masks, exactly the branch-free idiom of the
    /// scalar path — just four bins wide.
    #[cfg(target_arch = "x86_64")]
    fn bin_slice_sse2(&self, values: &[i64], out: &mut [u16]) {
        debug_assert!(!self.narrow_edges.is_empty());
        const LANES: usize = 8;
        let mut i = 0;
        while i + LANES <= values.len() {
            let block: &[i64; LANES] = values[i..i + LANES].try_into().expect("exact block");
            // SAFETY: SSE2 is part of the x86_64 baseline target, so the
            // required feature is unconditionally available here.
            unsafe { sse2_bin_block8(&self.narrow_edges, block, &mut out[i..i + LANES]) };
            i += LANES;
        }
        for (o, v) in out[i..values.len()].iter_mut().zip(&values[i..]) {
            *o = self.bin_index(*v) as u16;
        }
    }

    /// Maps a value to its bin index. Always agrees with
    /// [`BinEdges::bin_index`] and [`BinEdges::bin_index_binary`] for the
    /// layout the binner was built from.
    #[inline]
    pub fn bin_index(&self, v: i64) -> usize {
        if v > 0 {
            // idx = |{edges e : e < v}| = pos_base[w] + in-class compares.
            let w = width(v as u64);
            let class = &self.pos_class[w];
            let mut idx = usize::from(self.pos_base[w]);
            for &e in class {
                idx += usize::from(v > e);
            }
            idx
        } else {
            // For v <= 0 only negative edges can lie below v:
            // idx = neg_count - |{negative e : |e| <= |v|}|.
            let u = v.unsigned_abs();
            let w = width(u);
            let class = &self.neg_class[w];
            let mut le = usize::from(self.neg_base[w]);
            for &m in class {
                le += usize::from(u >= m);
            }
            usize::from(self.neg_count) - le
        }
    }
}

/// SSE2 kernel for one 8-value block: `out[j] = |{edges e : e < values[j]}|`.
///
/// Values are clamped into `i32` first; the caller guarantees every edge
/// is `>= i32::MIN` and `< i32::MAX`, which makes the clamp invisible to
/// the comparisons (a value at or above the ceiling still beats every
/// edge, a value at the floor still beats none). Counts never exceed the
/// edge count (`<= u16::MAX` by construction), so the `i32` accumulator
/// lanes narrow losslessly.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
fn sse2_bin_block8(edges: &[i32], values: &[i64; 8], out: &mut [u16]) {
    use std::arch::x86_64::{
        __m128i, _mm_cmpgt_epi32, _mm_set1_epi32, _mm_set_epi32, _mm_setzero_si128, _mm_sub_epi32,
    };

    #[inline]
    fn clamp32(v: i64) -> i32 {
        v.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32
    }

    let lo = _mm_set_epi32(
        clamp32(values[3]),
        clamp32(values[2]),
        clamp32(values[1]),
        clamp32(values[0]),
    );
    let hi = _mm_set_epi32(
        clamp32(values[7]),
        clamp32(values[6]),
        clamp32(values[5]),
        clamp32(values[4]),
    );
    let mut acc_lo = _mm_setzero_si128();
    let mut acc_hi = _mm_setzero_si128();
    for &e in edges {
        let ev = _mm_set1_epi32(e);
        // cmpgt yields -1 per lane where v > e, i.e. where edge e < v;
        // subtracting the mask increments that lane's count.
        acc_lo = _mm_sub_epi32(acc_lo, _mm_cmpgt_epi32(lo, ev));
        acc_hi = _mm_sub_epi32(acc_hi, _mm_cmpgt_epi32(hi, ev));
    }
    // SAFETY: __m128i and [i32; 4] are both 16 plain bytes.
    let a: [i32; 4] = unsafe { core::mem::transmute::<__m128i, [i32; 4]>(acc_lo) };
    let b: [i32; 4] = unsafe { core::mem::transmute::<__m128i, [i32; 4]>(acc_hi) };
    for j in 0..4 {
        out[j] = a[j] as u16;
        out[j + 4] = b[j] as u16;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_all(edges: Vec<i64>, probes: &[i64]) {
        let be = BinEdges::new(edges).unwrap();
        let fast = FastBinner::try_new(&be).expect("layout fits");
        for &v in probes {
            assert_eq!(fast.bin_index(v), be.bin_index(v), "v = {v}");
            assert_eq!(fast.bin_index(v), be.bin_index_binary(v), "v = {v}");
        }
    }

    fn probes_for(edges: &[i64]) -> Vec<i64> {
        let mut p = vec![0, 1, -1, i64::MIN, i64::MIN + 1, i64::MAX, i64::MAX - 1];
        for &e in edges {
            for d in [-2i64, -1, 0, 1, 2] {
                p.push(e.saturating_add(d));
            }
        }
        p
    }

    #[test]
    fn agrees_on_paper_layouts() {
        use crate::layouts;
        for be in [
            layouts::io_length_bytes(),
            layouts::seek_distance_sectors(),
            layouts::latency_us(),
            layouts::interarrival_us(),
            layouts::outstanding_ios(),
            layouts::scsi_outcomes(),
        ] {
            let edges = be.edges().to_vec();
            check_all(edges.clone(), &probes_for(&edges));
        }
    }

    #[test]
    fn seek_layout_spot_values() {
        let be = crate::layouts::seek_distance_sectors();
        let fast = FastBinner::try_new(&be).unwrap();
        // Hand-derived anchors (9 negative edges, then 0, then 9 positive).
        assert_eq!(fast.bin_index(i64::MIN), 0);
        assert_eq!(fast.bin_index(-2), 7);
        assert_eq!(fast.bin_index(-1), 8);
        assert_eq!(fast.bin_index(0), 9);
        assert_eq!(fast.bin_index(1), 10);
        assert_eq!(fast.bin_index(i64::MAX), 19);
    }

    #[test]
    fn extreme_edges_are_handled() {
        check_all(
            vec![i64::MIN, -7, 0, 7, i64::MAX],
            &probes_for(&[i64::MIN, -7, 0, 7, i64::MAX]),
        );
        check_all(vec![i64::MIN], &probes_for(&[i64::MIN]));
        check_all(vec![i64::MAX], &probes_for(&[i64::MAX]));
        check_all(vec![0], &probes_for(&[0]));
    }

    #[test]
    fn overfull_class_falls_back() {
        // Five edges in one power-of-two span exceed CLASS_SLOTS.
        let be = BinEdges::new(vec![16, 17, 18, 19, 20]).unwrap();
        assert!(FastBinner::try_new(&be).is_none());
        // Negative side too.
        let be = BinEdges::new(vec![-20, -19, -18, -17, -16]).unwrap();
        assert!(FastBinner::try_new(&be).is_none());
    }

    #[test]
    fn dense_class_at_capacity_works() {
        // Exactly CLASS_SLOTS edges in [16, 31] — the outstanding-I/O shape.
        let edges = vec![16, 20, 24, 28];
        check_all(edges.clone(), &probes_for(&edges));
    }

    /// Runs both lanes over `values` and asserts they agree with each
    /// other and with elementwise `bin_index`.
    fn check_lanes(fast: &FastBinner, values: &[i64]) {
        let scalar = fast.clone().with_lane(BinLane::Scalar);
        let simd = fast.clone().with_lane(BinLane::Sse2);
        let mut out_scalar = vec![0u16; values.len()];
        let mut out_simd = vec![0u16; values.len()];
        scalar.bin_slice(values, &mut out_scalar);
        simd.bin_slice(values, &mut out_simd);
        assert_eq!(out_scalar, out_simd);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(usize::from(out_scalar[i]), fast.bin_index(v), "v = {v}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn sse2_lane_is_default_and_bit_identical_on_paper_layouts() {
        use crate::layouts;
        for be in [
            layouts::io_length_bytes(),
            layouts::seek_distance_sectors(),
            layouts::latency_us(),
            layouts::interarrival_us(),
            layouts::outstanding_ios(),
            layouts::scsi_outcomes(),
        ] {
            let fast = FastBinner::try_new(&be).unwrap();
            assert_eq!(fast.lane(), BinLane::Sse2, "paper layouts narrow to i32");
            let mut probes = probes_for(be.edges());
            // Odd length exercises the ragged tail of both lanes.
            probes.push(42);
            check_lanes(&fast, &probes);
        }
    }

    #[test]
    fn wide_edges_coerce_sse2_request_to_scalar() {
        // i32::MAX itself and anything beyond defeats the i32 narrowing,
        // so the SSE2 lane must refuse and stay correct via scalar.
        for edges in [
            vec![0, i64::from(i32::MAX)],
            vec![0, i64::from(i32::MAX) + 1],
            vec![i64::from(i32::MIN) - 1, 0],
            vec![i64::MIN, 0, i64::MAX],
        ] {
            let fast = FastBinner::try_from_edges(&edges).unwrap();
            assert_eq!(fast.lane(), BinLane::Scalar, "edges {edges:?}");
            assert_eq!(
                fast.clone().with_lane(BinLane::Sse2).lane(),
                BinLane::Scalar
            );
            check_all(edges.clone(), &probes_for(&edges));
        }
        // i32::MIN as an edge is fine: no value sits strictly below the
        // saturation floor, so narrowing stays comparison-preserving.
        let edges = vec![i64::from(i32::MIN), 0, 7];
        let fast = FastBinner::try_from_edges(&edges).unwrap();
        if cfg!(target_arch = "x86_64") {
            assert_eq!(fast.lane(), BinLane::Sse2);
        }
        check_lanes(&fast, &probes_for(&edges));
    }

    #[test]
    fn lanes_agree_across_clamp_boundaries() {
        let edges = vec![-500_000, -64, -1, 0, 1, 64, 500_000];
        let fast = FastBinner::try_from_edges(&edges).unwrap();
        let mut probes = probes_for(&edges);
        probes.extend([
            i64::from(i32::MIN) - 1,
            i64::from(i32::MIN),
            i64::from(i32::MIN) + 1,
            i64::from(i32::MAX) - 1,
            i64::from(i32::MAX),
            i64::from(i32::MAX) + 1,
        ]);
        check_lanes(&fast, &probes);
    }
}
