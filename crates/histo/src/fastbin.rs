//! Branchless bin lookup for the registered layouts.
//!
//! The linear scan in [`BinEdges::bin_index`] is already cheap for the
//! paper's bin counts (m ≈ 12–20 compares), but the hot path pays it for
//! every metric of every command. A [`FastBinner`] precomputes, per
//! *bit-width class* of the value, how many edges lie entirely below the
//! class and which (at most [`CLASS_SLOTS`]) edges fall inside it. A lookup
//! is then: one `leading_zeros` (a single machine instruction), one table
//! row, and [`CLASS_SLOTS`] branch-free compares — independent of the
//! layout's total edge count.
//!
//! Negative values are handled by a sign-split: for `v <= 0` the bin index
//! equals `neg_count - |{negative edges e : e >= v}|`, and the magnitude
//! comparison runs through a mirrored class table over `|e|`. This covers
//! the full `i64` domain including `i64::MIN` (whose magnitude does not fit
//! in `i64` — the tables store magnitudes as `u64`).
//!
//! Construction falls back (returns `None`) when a layout packs more than
//! [`CLASS_SLOTS`] edges into one power-of-two span; callers keep the
//! linear scan for such layouts. All six paper layouts fit (the densest is
//! the outstanding-I/O layout with `{16, 20, 24, 28}` in `[16, 31]`), and
//! the `fastbin_props` proptest pins agreement with both scan strategies
//! over arbitrary `i64` input.

use crate::bins::BinEdges;

/// Maximum number of edges sharing one power-of-two class. Chosen to cover
/// the densest registered layout; see the module docs.
pub const CLASS_SLOTS: usize = 4;

/// Number of bit-width classes: widths 0 (value 0) through 64
/// (magnitude `2^63`, i.e. `i64::MIN`), inclusive.
const CLASSES: usize = 65;

/// Precomputed branchless bin-lookup tables for one [`BinEdges`] layout.
#[derive(Debug, Clone)]
pub struct FastBinner {
    /// `pos_base[w]` = number of edges `< 2^(w-1)` — every edge strictly
    /// below the positive class `w` span `[2^(w-1), 2^w - 1]`.
    pos_base: [u16; CLASSES],
    /// Edges inside positive class `w`, padded with `i64::MAX` (a pad never
    /// satisfies `v > pad`, so it contributes nothing).
    pos_class: [[i64; CLASS_SLOTS]; CLASSES],
    /// `neg_base[w]` = number of negative-edge magnitudes `< 2^(w-1)`.
    neg_base: [u16; CLASSES],
    /// Negative-edge magnitudes inside class `w`, padded with `u64::MAX`
    /// (unreachable: magnitudes are at most `2^63`).
    neg_class: [[u64; CLASS_SLOTS]; CLASSES],
    /// Total number of strictly negative edges.
    neg_count: u16,
}

/// Bit-width class of a non-negative magnitude: 0 for 0, otherwise
/// `floor(log2(m)) + 1`.
#[inline]
fn width(m: u64) -> usize {
    (u64::BITS - m.leading_zeros()) as usize
}

impl FastBinner {
    /// Builds the lookup tables for `edges`, or `None` if any power-of-two
    /// span holds more than [`CLASS_SLOTS`] edges (keep the linear scan for
    /// such layouts).
    pub fn try_new(edges: &BinEdges) -> Option<FastBinner> {
        Self::try_from_edges(edges.edges())
    }

    /// [`FastBinner::try_new`] over a raw (strictly increasing, non-empty)
    /// edge slice.
    pub fn try_from_edges(edges: &[i64]) -> Option<FastBinner> {
        if edges.is_empty() || edges.len() > usize::from(u16::MAX) {
            return None;
        }
        let mut pos_base = [0u16; CLASSES];
        let mut pos_class = [[i64::MAX; CLASS_SLOTS]; CLASSES];
        let mut pos_fill = [0usize; CLASSES];
        let mut neg_base = [0u16; CLASSES];
        let mut neg_class = [[u64::MAX; CLASS_SLOTS]; CLASSES];
        let mut neg_fill = [0usize; CLASSES];
        let mut neg_count = 0u16;

        for &e in edges {
            if e > 0 {
                let w = width(e as u64);
                let slot = pos_fill[w];
                if slot >= CLASS_SLOTS {
                    return None;
                }
                pos_class[w][slot] = e;
                pos_fill[w] = slot + 1;
            } else if e < 0 {
                neg_count += 1;
                let w = width(e.unsigned_abs());
                let slot = neg_fill[w];
                if slot >= CLASS_SLOTS {
                    return None;
                }
                neg_class[w][slot] = e.unsigned_abs();
                neg_fill[w] = slot + 1;
            }
            // e == 0 needs no slot: it is below every positive class span
            // (counted by pos_base) and outside every `v <= 0` lookup
            // (no edge `0` is ever `< v` for `v <= 0`).
        }

        // pos_base[w] counts edges of any sign strictly below 2^(w-1);
        // neg_base[w] counts negative-edge magnitudes strictly below the
        // same threshold. Class 0 is only reachable for v == 0 / u == 0 and
        // has an empty span, so its base stays 0 (neg) / unused (pos).
        for w in 1..CLASSES {
            let lo = 1u64 << (w - 1);
            pos_base[w] = edges
                .iter()
                .filter(|&&e| e < 0 || ((e as u64) < lo && e >= 0))
                .count() as u16;
            neg_base[w] = edges
                .iter()
                .filter(|&&e| e < 0 && e.unsigned_abs() < lo)
                .count() as u16;
        }

        Some(FastBinner {
            pos_base,
            pos_class,
            neg_base,
            neg_class,
            neg_count,
        })
    }

    /// Maps a small fixed-size array of values to bin indices in one
    /// sweep. Semantically identical to calling [`FastBinner::bin_index`]
    /// elementwise (the `fastbin_props` proptest pins the equivalence);
    /// the point is the *shape*: a counted loop over a stack array of
    /// branch-free lane computations, which the compiler can unroll and
    /// autovectorize, where the one-at-a-time call sites cannot. The
    /// collector's batched ingest path runs each metric's gathered
    /// values through this before a single slab-apply pass.
    ///
    /// Indices are returned as `u16` (layouts never exceed `u16::MAX`
    /// edges by construction), which quarters the result footprint and
    /// helps the vectorizer pack lanes.
    #[inline]
    pub fn bin_batch<const N: usize>(&self, values: &[i64; N]) -> [u16; N] {
        let mut out = [0u16; N];
        for (o, v) in out.iter_mut().zip(values) {
            *o = self.bin_index(*v) as u16;
        }
        out
    }

    /// [`FastBinner::bin_batch`] over runtime-sized slices: bins
    /// `values[i]` into `out[i]`, processing full 8-lane blocks through
    /// the fixed-size path and the tail elementwise.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than `values`.
    pub fn bin_slice(&self, values: &[i64], out: &mut [u16]) {
        assert!(
            out.len() >= values.len(),
            "bin_slice: output buffer too short"
        );
        const LANES: usize = 8;
        let mut i = 0;
        while i + LANES <= values.len() {
            let block: &[i64; LANES] = values[i..i + LANES].try_into().expect("exact block");
            out[i..i + LANES].copy_from_slice(&self.bin_batch(block));
            i += LANES;
        }
        for (o, v) in out[i..values.len()].iter_mut().zip(&values[i..]) {
            *o = self.bin_index(*v) as u16;
        }
    }

    /// Maps a value to its bin index. Always agrees with
    /// [`BinEdges::bin_index`] and [`BinEdges::bin_index_binary`] for the
    /// layout the binner was built from.
    #[inline]
    pub fn bin_index(&self, v: i64) -> usize {
        if v > 0 {
            // idx = |{edges e : e < v}| = pos_base[w] + in-class compares.
            let w = width(v as u64);
            let class = &self.pos_class[w];
            let mut idx = usize::from(self.pos_base[w]);
            for &e in class {
                idx += usize::from(v > e);
            }
            idx
        } else {
            // For v <= 0 only negative edges can lie below v:
            // idx = neg_count - |{negative e : |e| <= |v|}|.
            let u = v.unsigned_abs();
            let w = width(u);
            let class = &self.neg_class[w];
            let mut le = usize::from(self.neg_base[w]);
            for &m in class {
                le += usize::from(u >= m);
            }
            usize::from(self.neg_count) - le
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_all(edges: Vec<i64>, probes: &[i64]) {
        let be = BinEdges::new(edges).unwrap();
        let fast = FastBinner::try_new(&be).expect("layout fits");
        for &v in probes {
            assert_eq!(fast.bin_index(v), be.bin_index(v), "v = {v}");
            assert_eq!(fast.bin_index(v), be.bin_index_binary(v), "v = {v}");
        }
    }

    fn probes_for(edges: &[i64]) -> Vec<i64> {
        let mut p = vec![0, 1, -1, i64::MIN, i64::MIN + 1, i64::MAX, i64::MAX - 1];
        for &e in edges {
            for d in [-2i64, -1, 0, 1, 2] {
                p.push(e.saturating_add(d));
            }
        }
        p
    }

    #[test]
    fn agrees_on_paper_layouts() {
        use crate::layouts;
        for be in [
            layouts::io_length_bytes(),
            layouts::seek_distance_sectors(),
            layouts::latency_us(),
            layouts::interarrival_us(),
            layouts::outstanding_ios(),
            layouts::scsi_outcomes(),
        ] {
            let edges = be.edges().to_vec();
            check_all(edges.clone(), &probes_for(&edges));
        }
    }

    #[test]
    fn seek_layout_spot_values() {
        let be = crate::layouts::seek_distance_sectors();
        let fast = FastBinner::try_new(&be).unwrap();
        // Hand-derived anchors (9 negative edges, then 0, then 9 positive).
        assert_eq!(fast.bin_index(i64::MIN), 0);
        assert_eq!(fast.bin_index(-2), 7);
        assert_eq!(fast.bin_index(-1), 8);
        assert_eq!(fast.bin_index(0), 9);
        assert_eq!(fast.bin_index(1), 10);
        assert_eq!(fast.bin_index(i64::MAX), 19);
    }

    #[test]
    fn extreme_edges_are_handled() {
        check_all(
            vec![i64::MIN, -7, 0, 7, i64::MAX],
            &probes_for(&[i64::MIN, -7, 0, 7, i64::MAX]),
        );
        check_all(vec![i64::MIN], &probes_for(&[i64::MIN]));
        check_all(vec![i64::MAX], &probes_for(&[i64::MAX]));
        check_all(vec![0], &probes_for(&[0]));
    }

    #[test]
    fn overfull_class_falls_back() {
        // Five edges in one power-of-two span exceed CLASS_SLOTS.
        let be = BinEdges::new(vec![16, 17, 18, 19, 20]).unwrap();
        assert!(FastBinner::try_new(&be).is_none());
        // Negative side too.
        let be = BinEdges::new(vec![-20, -19, -18, -17, -16]).unwrap();
        assert!(FastBinner::try_new(&be).is_none());
    }

    #[test]
    fn dense_class_at_capacity_works() {
        // Exactly CLASS_SLOTS edges in [16, 31] — the outstanding-I/O shape.
        let edges = vec![16, 20, 24, 28];
        check_all(edges.clone(), &probes_for(&edges));
    }
}
