//! Two-dimensional histograms.
//!
//! §3.6 of the paper notes that correlating metrics (e.g. seek distance with
//! latency) "is possible using online techniques including with the use of
//! 2d histograms" but leaves it as future work — the published system only
//! ships 1-D histograms. We implement the extension: a [`Histogram2d`] is a
//! counts matrix over two independent [`BinEdges`] layouts, still O(1) per
//! insert and constant space.

use crate::bins::BinEdges;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A joint histogram over two metrics.
///
/// # Examples
///
/// Correlating seek distance (x) with latency (y):
///
/// ```
/// use histo::{layouts, Histogram2d};
///
/// let mut h = Histogram2d::new(layouts::seek_distance_sectors(), layouts::latency_us());
/// h.record(1, 200);        // sequential, fast
/// h.record(400_000, 9000); // long seek, slow
/// assert_eq!(h.total(), 2);
///
/// // Marginalizing recovers the 1-D histograms.
/// let seek = h.marginal_x();
/// assert_eq!(seek.total(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram2d {
    x_edges: BinEdges,
    y_edges: BinEdges,
    /// Row-major: `counts[y * x_bins + x]`.
    counts: Vec<u64>,
    total: u64,
}

impl Histogram2d {
    /// Creates an empty 2-D histogram with the given axis layouts.
    pub fn new(x_edges: BinEdges, y_edges: BinEdges) -> Self {
        let n = x_edges.bin_count() * y_edges.bin_count();
        Histogram2d {
            x_edges,
            y_edges,
            counts: vec![0; n],
            total: 0,
        }
    }

    /// X-axis layout.
    #[inline]
    pub fn x_edges(&self) -> &BinEdges {
        &self.x_edges
    }

    /// Y-axis layout.
    #[inline]
    pub fn y_edges(&self) -> &BinEdges {
        &self.y_edges
    }

    /// Records one `(x, y)` observation.
    #[inline]
    pub fn record(&mut self, x: i64, y: i64) {
        let xi = self.x_edges.bin_index(x);
        let yi = self.y_edges.bin_index(y);
        self.counts[yi * self.x_edges.bin_count() + xi] += 1;
        self.total += 1;
    }

    /// Count in cell `(xi, yi)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn count(&self, xi: usize, yi: usize) -> u64 {
        assert!(xi < self.x_edges.bin_count(), "x bin out of range");
        assert!(yi < self.y_edges.bin_count(), "y bin out of range");
        self.counts[yi * self.x_edges.bin_count() + xi]
    }

    /// Total observations.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The raw row-major counts matrix (`counts[y * x_bins + x]`), for
    /// external serializers that need a bit-exact export.
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Rebuilds a 2-D histogram from its axis layouts and a row-major
    /// counts matrix; the total is derived from `counts`.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != x_bins * y_bins`.
    pub fn from_parts(x_edges: BinEdges, y_edges: BinEdges, counts: Vec<u64>) -> Self {
        assert_eq!(
            counts.len(),
            x_edges.bin_count() * y_edges.bin_count(),
            "counts matrix does not match axis layouts"
        );
        let total = counts.iter().sum();
        Histogram2d {
            x_edges,
            y_edges,
            counts,
            total,
        }
    }

    /// Sums over y, producing the x-axis marginal histogram.
    pub fn marginal_x(&self) -> crate::Histogram {
        let mut h = crate::Histogram::new(self.x_edges.clone());
        for xi in 0..self.x_edges.bin_count() {
            let col: u64 = (0..self.y_edges.bin_count())
                .map(|yi| self.count(xi, yi))
                .sum();
            // Use a representative in-bin value so counts route to bin xi.
            h.record_n(representative(&self.x_edges, xi), col);
        }
        h
    }

    /// Sums over x, producing the y-axis marginal histogram.
    pub fn marginal_y(&self) -> crate::Histogram {
        let mut h = crate::Histogram::new(self.y_edges.clone());
        for yi in 0..self.y_edges.bin_count() {
            let row: u64 = (0..self.x_edges.bin_count())
                .map(|xi| self.count(xi, yi))
                .sum();
            h.record_n(representative(&self.y_edges, yi), row);
        }
        h
    }

    /// For each x bin, the mean y value estimated from y-bin midpoints —
    /// e.g. "average latency as a function of seek distance". Empty x bins
    /// yield `None`.
    pub fn conditional_mean_y(&self) -> Vec<Option<f64>> {
        (0..self.x_edges.bin_count())
            .map(|xi| {
                let mut n = 0u64;
                let mut s = 0.0f64;
                for yi in 0..self.y_edges.bin_count() {
                    let c = self.count(xi, yi);
                    n += c;
                    s += self.y_edges.bin_midpoint(yi) * c as f64;
                }
                (n > 0).then(|| s / n as f64)
            })
            .collect()
    }

    /// Resets all counts.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
    }
}

/// A value guaranteed to fall inside bin `idx` of `edges`.
fn representative(edges: &BinEdges, idx: usize) -> i64 {
    match edges.bin_range(idx) {
        (_, Some(hi)) => hi,
        (Some(lo), None) => lo.saturating_add(1),
        (None, None) => unreachable!("edges are never empty"),
    }
}

impl fmt::Display for Histogram2d {
    /// Renders a compact matrix: rows = y bins, columns = x bins.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>10}", "y\\x")?;
        for xi in 0..self.x_edges.bin_count() {
            write!(f, " {:>8}", self.x_edges.bin_label(xi))?;
        }
        writeln!(f)?;
        for yi in 0..self.y_edges.bin_count() {
            write!(f, "{:>10}", self.y_edges.bin_label(yi))?;
            for xi in 0..self.x_edges.bin_count() {
                write!(f, " {:>8}", self.count(xi, yi))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Histogram2d {
        Histogram2d::new(
            BinEdges::new(vec![0, 10]).unwrap(),
            BinEdges::new(vec![100]).unwrap(),
        )
    }

    #[test]
    fn record_and_count() {
        let mut h = small();
        h.record(-5, 50); // x bin 0, y bin 0
        h.record(5, 500); // x bin 1, y bin 1
        h.record(50, 500); // x bin 2, y bin 1
        assert_eq!(h.total(), 3);
        assert_eq!(h.count(0, 0), 1);
        assert_eq!(h.count(1, 1), 1);
        assert_eq!(h.count(2, 1), 1);
        assert_eq!(h.count(0, 1), 0);
    }

    #[test]
    fn marginals_match_direct_1d() {
        let mut h2 = Histogram2d::new(
            BinEdges::new(vec![0, 10, 100]).unwrap(),
            BinEdges::new(vec![1, 50]).unwrap(),
        );
        let mut hx = crate::Histogram::with_edges(vec![0, 10, 100]).unwrap();
        let mut hy = crate::Histogram::with_edges(vec![1, 50]).unwrap();
        let pts = [(-3i64, 0i64), (5, 2), (5, 60), (99, 40), (500, 1), (7, 7)];
        for (x, y) in pts {
            h2.record(x, y);
            hx.record(x);
            hy.record(y);
        }
        assert_eq!(h2.marginal_x().counts(), hx.counts());
        assert_eq!(h2.marginal_y().counts(), hy.counts());
        assert_eq!(h2.marginal_x().total(), 6);
    }

    #[test]
    fn conditional_mean_reflects_correlation() {
        // y grows with x: small x -> y=10, large x -> y=1000.
        let mut h = Histogram2d::new(
            BinEdges::new(vec![10, 1000]).unwrap(),
            BinEdges::new(vec![100, 10_000]).unwrap(),
        );
        for _ in 0..10 {
            h.record(5, 10);
            h.record(5000, 1000);
        }
        let means = h.conditional_mean_y();
        assert!(means[0].unwrap() < means[2].unwrap());
        assert_eq!(means[1], None);
    }

    #[test]
    fn reset_zeroes() {
        let mut h = small();
        h.record(1, 1);
        h.reset();
        assert_eq!(h.total(), 0);
        assert_eq!(h.count(1, 0), 0);
    }

    #[test]
    fn display_matrix_shape() {
        let mut h = small();
        h.record(5, 5);
        let s = h.to_string();
        assert!(s.contains("y\\x"));
        assert!(s.contains(">10"));
        assert!(s.contains(">100"));
    }
}
