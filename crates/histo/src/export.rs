//! Plain-text exports (CSV) for post-processing.
//!
//! The paper notes "a post-processing script could easily compress ranges
//! back into powers of two or some other desired scheme" (§4); these
//! exporters produce the machine-readable form such scripts consume. The
//! format is dependency-free CSV: labels never contain commas or quotes by
//! construction.

use crate::histogram::Histogram;
use crate::series::HistogramSeries;
use crate::Histogram2d;
use std::io::{self, Write};

/// Writes `histogram` as CSV rows `bin_upper_bound,count` with a header.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
///
/// # Examples
///
/// ```
/// use histo::{export, Histogram};
///
/// let mut h = Histogram::with_edges(vec![0, 10])?;
/// h.record(5);
/// let mut out = Vec::new();
/// export::histogram_csv(&h, &mut out)?;
/// let text = String::from_utf8(out).unwrap();
/// assert!(text.starts_with("bin,count\n"));
/// assert!(text.contains("10,1"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn histogram_csv<W: Write>(histogram: &Histogram, mut w: W) -> io::Result<()> {
    writeln!(w, "bin,count")?;
    for (label, count) in histogram.iter_labeled() {
        writeln!(w, "{label},{count}")?;
    }
    Ok(())
}

/// Writes a [`HistogramSeries`] as CSV: one row per interval, one column per
/// bin, with an `interval` leading column.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn series_csv<W: Write>(series: &HistogramSeries, mut w: W) -> io::Result<()> {
    write!(w, "interval")?;
    for i in 0..series.edges().bin_count() {
        write!(w, ",{}", series.edges().bin_label(i))?;
    }
    writeln!(w)?;
    for (i, h) in series.iter() {
        write!(w, "{i}")?;
        for &c in h.counts() {
            write!(w, ",{c}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Writes a [`Histogram2d`] as CSV: one row per y bin, one column per x bin.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn histogram2d_csv<W: Write>(h: &Histogram2d, mut w: W) -> io::Result<()> {
    write!(w, "y_bin")?;
    for xi in 0..h.x_edges().bin_count() {
        write!(w, ",{}", h.x_edges().bin_label(xi))?;
    }
    writeln!(w)?;
    for yi in 0..h.y_edges().bin_count() {
        write!(w, "{}", h.y_edges().bin_label(yi))?;
        for xi in 0..h.x_edges().bin_count() {
            write!(w, ",{}", h.count(xi, yi))?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Error returned by [`histogram_from_csv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCsvError {
    /// 1-based line number of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseCsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "histogram csv parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseCsvError {}

/// Parses a histogram previously produced by [`histogram_csv`]: the bin
/// layout is reconstructed from the labels (plain upper bounds plus the
/// final `">edge"` overflow label) and counts are re-inserted via
/// representative values.
///
/// # Errors
///
/// Returns [`ParseCsvError`] on a malformed header, label, count, or an
/// invalid (non-increasing) reconstructed layout.
///
/// # Examples
///
/// ```
/// use histo::{export, Histogram};
///
/// let mut h = Histogram::with_edges(vec![0, 10])?;
/// h.record(5);
/// h.record(99);
/// let mut buf = Vec::new();
/// export::histogram_csv(&h, &mut buf)?;
/// let back = export::histogram_from_csv(std::str::from_utf8(&buf).unwrap())?;
/// assert_eq!(back.counts(), h.counts());
/// assert_eq!(back.edges(), h.edges());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn histogram_from_csv(text: &str) -> Result<Histogram, ParseCsvError> {
    let err = |line: usize, message: &str| ParseCsvError {
        line,
        message: message.to_owned(),
    };
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, "bin,count")) => {}
        _ => return Err(err(1, "expected header 'bin,count'")),
    }
    let mut edges: Vec<i64> = Vec::new();
    let mut counts: Vec<u64> = Vec::new();
    let mut saw_overflow = false;
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let (label, count) = line
            .split_once(',')
            .ok_or_else(|| err(lineno, "expected 'bin,count'"))?;
        let count: u64 = count.trim().parse().map_err(|_| err(lineno, "bad count"))?;
        if let Some(rest) = label.strip_prefix('>') {
            if saw_overflow {
                return Err(err(lineno, "multiple overflow bins"));
            }
            let edge: i64 = rest
                .parse()
                .map_err(|_| err(lineno, "bad overflow label"))?;
            if edges.last() != Some(&edge) {
                return Err(err(lineno, "overflow label must repeat the last edge"));
            }
            saw_overflow = true;
        } else {
            if saw_overflow {
                return Err(err(lineno, "rows after the overflow bin"));
            }
            edges.push(label.parse().map_err(|_| err(lineno, "bad bin label"))?);
        }
        counts.push(count);
    }
    if !saw_overflow {
        return Err(err(text.lines().count(), "missing overflow (>edge) row"));
    }
    let layout = crate::BinEdges::new(edges)
        .map_err(|e| err(0, &format!("reconstructed layout invalid: {e}")))?;
    let mut h = Histogram::new(layout);
    for (i, &c) in counts.iter().enumerate() {
        let rep = match h.edges().bin_range(i) {
            (_, Some(hi)) => hi,
            (Some(lo), None) => lo.saturating_add(1),
            (None, None) => unreachable!(),
        };
        h.record_n(rep, c);
    }
    Ok(h)
}

/// Re-bins a histogram's counts onto a coarser power-of-two-style layout for
/// post-processing, assigning each source bin's count to the target bin of
/// its representative value. This is lossy exactly the way §4 describes:
/// precise special-size information is folded into the enclosing range.
pub fn rebin(source: &Histogram, target_edges: crate::BinEdges) -> Histogram {
    let mut out = Histogram::new(target_edges);
    for (i, &c) in source.counts().iter().enumerate() {
        let (lo, hi) = source.edges().bin_range(i);
        let rep = match (lo, hi) {
            (_, Some(hi)) => hi,
            (Some(lo), None) => lo.saturating_add(1),
            (None, None) => unreachable!(),
        };
        out.record_n(rep, c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{layouts, BinEdges, HistogramSeries};
    use simkit::{SimDuration, SimTime};

    #[test]
    fn histogram_csv_round_shape() {
        let mut h = Histogram::with_edges(vec![0, 10]).unwrap();
        h.record(1);
        h.record(100);
        let mut buf = Vec::new();
        histogram_csv(&h, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["bin,count", "0,0", "10,1", ">10,1"]);
    }

    #[test]
    fn series_csv_shape() {
        let mut s =
            HistogramSeries::new(BinEdges::new(vec![5]).unwrap(), SimDuration::from_secs(1));
        s.record(SimTime::from_millis(100), 1);
        s.record(SimTime::from_millis(1500), 10);
        let mut buf = Vec::new();
        series_csv(&s, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec!["interval,5,>5", "0,1,0", "1,0,1"]);
    }

    #[test]
    fn hist2d_csv_shape() {
        let mut h = crate::Histogram2d::new(
            BinEdges::new(vec![0]).unwrap(),
            BinEdges::new(vec![0]).unwrap(),
        );
        h.record(1, -1);
        let mut buf = Vec::new();
        histogram2d_csv(&h, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3); // header + 2 y bins
        assert!(text.contains("0,0,1"));
    }

    #[test]
    fn csv_roundtrip_all_paper_layouts() {
        for edges in [
            layouts::io_length_bytes(),
            layouts::seek_distance_sectors(),
            layouts::latency_us(),
            layouts::outstanding_ios(),
        ] {
            let mut h = Histogram::new(edges);
            for v in [-100i64, 0, 1, 4096, 99_999, 10_000_000] {
                h.record(v);
            }
            let mut buf = Vec::new();
            histogram_csv(&h, &mut buf).unwrap();
            let back = histogram_from_csv(std::str::from_utf8(&buf).unwrap()).unwrap();
            assert_eq!(back.edges(), h.edges());
            assert_eq!(back.counts(), h.counts());
            assert_eq!(back.total(), h.total());
        }
    }

    #[test]
    fn csv_import_rejects_garbage() {
        assert!(histogram_from_csv("").is_err());
        assert!(
            histogram_from_csv("nope\n0,1\n>0,2\n").is_err(),
            "bad header"
        );
        assert!(
            histogram_from_csv("bin,count\n0,x\n>0,1\n").is_err(),
            "bad count"
        );
        assert!(
            histogram_from_csv("bin,count\n0,1\n").is_err(),
            "missing overflow"
        );
        assert!(
            histogram_from_csv("bin,count\n0,1\n>5,1\n").is_err(),
            "overflow label mismatch"
        );
        assert!(
            histogram_from_csv("bin,count\n5,1\n0,1\n>0,1\n").is_err(),
            "non-increasing edges"
        );
        assert!(
            histogram_from_csv("bin,count\n0,1\n>0,1\n7,2\n").is_err(),
            "rows after overflow"
        );
        assert!(
            histogram_from_csv("bin,count\n0,1\n>0,1\n\n").is_ok(),
            "trailing blank ok"
        );
    }

    #[test]
    fn rebin_to_pow2_preserves_total() {
        let mut h = Histogram::new(layouts::io_length_bytes());
        for v in [512i64, 4096, 4096, 16_384, 700_000] {
            h.record(v);
        }
        let coarse = rebin(&h, layouts::pow2(20));
        assert_eq!(coarse.total(), h.total());
        // 4095/4096 distinction is folded away: both 4096s are in the 4096 pow2 bin.
        let idx = coarse.edges().bin_index(4096);
        assert_eq!(coarse.count(idx), 2);
    }
}
