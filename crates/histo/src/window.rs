//! Min-of-last-N seek distance tracking (§3.1 of the paper).
//!
//! A single look-behind of 1 cannot recognize *interleaved* sequential
//! streams: with two streams the measured distance is the gap between the
//! streams, not 1. The paper's fix is a circular array of the last `N`
//! I/Os' final blocks; each new I/O records the minimum distance to any of
//! them, so any stream within the window shows up as sequential. `N = 16`
//! by default.

use serde::{Deserialize, Serialize};

/// Circular look-behind window over the last `N` I/O end positions.
///
/// Positions are logical block numbers (`u64`); distances are signed
/// (`i64`), negative for reverse seeks.
///
/// # Examples
///
/// Two interleaved sequential streams both appear sequential through the
/// window, while the plain last-I/O distance ping-pongs:
///
/// ```
/// use histo::SeekWindow;
///
/// let mut w = SeekWindow::new(16);
/// // Stream A at block ~1000, stream B at block ~900000, interleaved.
/// assert_eq!(w.observe(1000, 8), None); // first I/O: no distance yet
/// w.observe(900_000, 8);
/// let d_a = w.observe(1008, 8).unwrap(); // continues stream A
/// let d_b = w.observe(900_008, 8).unwrap(); // continues stream B
/// assert_eq!(d_a, 1);
/// assert_eq!(d_b, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeekWindow {
    /// End positions (last block + 1... see `observe`) of recent I/Os.
    ends: Vec<u64>,
    /// Next slot to overwrite.
    cursor: usize,
    /// Number of valid entries (saturates at capacity).
    filled: usize,
    capacity: usize,
}

impl SeekWindow {
    /// Creates a window remembering the last `capacity` I/Os.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "seek window capacity must be positive");
        SeekWindow {
            ends: vec![0; capacity],
            cursor: 0,
            filled: 0,
            capacity,
        }
    }

    /// The paper's default window size.
    pub const DEFAULT_CAPACITY: usize = 16;

    /// Window capacity `N`.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of I/Os currently remembered.
    #[inline]
    pub fn len(&self) -> usize {
        self.filled
    }

    /// `true` before any I/O has been observed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// Observes an I/O starting at logical block `first_block` spanning
    /// `num_blocks` blocks, and returns the signed distance from the
    /// *closest* remembered I/O end to this I/O's start — the value §3.1
    /// inserts into the windowed seek-distance histogram. Returns `None`
    /// for the very first I/O.
    ///
    /// Distance follows the paper's definition: "the number of logical
    /// blocks between the starting block of a request and the last block in
    /// the previous I/O", so a perfectly sequential successor has distance 1.
    /// "Closest" means minimum absolute value; the sign is preserved so
    /// reverse scans remain visible. Saturates at `i64::MIN/MAX` for
    /// pathological virtual disk sizes.
    pub fn observe(&mut self, first_block: u64, num_blocks: u64) -> Option<i64> {
        let min = self.min_distance_to(first_block);
        let last_block = first_block.saturating_add(num_blocks.saturating_sub(1));
        self.push_end(last_block);
        min
    }

    /// The signed min-abs distance from any remembered end to `first_block`
    /// without recording anything.
    pub fn min_distance_to(&self, first_block: u64) -> Option<i64> {
        self.ends[..self.filled]
            .iter()
            .map(|&end| signed_distance(end, first_block))
            .min_by_key(|d| d.unsigned_abs())
    }

    /// Forgets all remembered I/Os.
    pub fn reset(&mut self) {
        self.filled = 0;
        self.cursor = 0;
    }

    fn push_end(&mut self, last_block: u64) {
        self.ends[self.cursor] = last_block;
        self.cursor = (self.cursor + 1) % self.capacity;
        if self.filled < self.capacity {
            self.filled += 1;
        }
    }

    /// The window's raw state — `(ends, cursor, filled)` — for external
    /// serializers (the checkpoint plane) that need a bit-exact export.
    /// `ends` always has `capacity` slots; slots at or past `filled`
    /// (relative to the ring order) hold stale values that still
    /// participate in equality, so they must round-trip too.
    pub fn to_parts(&self) -> (&[u64], usize, usize) {
        (&self.ends, self.cursor, self.filled)
    }

    /// Rebuilds a window from [`SeekWindow::to_parts`] output.
    ///
    /// # Panics
    ///
    /// Panics if `ends` is empty, or `cursor`/`filled` are out of range
    /// for its length.
    pub fn from_parts(ends: Vec<u64>, cursor: usize, filled: usize) -> Self {
        let capacity = ends.len();
        assert!(capacity > 0, "seek window capacity must be positive");
        assert!(cursor < capacity, "cursor out of range");
        assert!(filled <= capacity, "filled out of range");
        SeekWindow {
            ends,
            cursor,
            filled,
            capacity,
        }
    }
}

/// Signed distance from a previous I/O's last block to the next I/O's first
/// block: `first_block - last_block`, saturating on overflow.
#[inline]
pub fn signed_distance(prev_last_block: u64, next_first_block: u64) -> i64 {
    if next_first_block >= prev_last_block {
        let d = next_first_block - prev_last_block;
        if d > i64::MAX as u64 {
            i64::MAX
        } else {
            d as i64
        }
    } else {
        let d = prev_last_block - next_first_block;
        if d > i64::MAX as u64 {
            i64::MIN
        } else {
            -(d as i64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_io_yields_none() {
        let mut w = SeekWindow::new(4);
        assert_eq!(w.observe(100, 8), None);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn window_of_one_is_plain_seek_distance() {
        let mut w = SeekWindow::new(1);
        w.observe(0, 8); // blocks 0..=7
        assert_eq!(w.observe(8, 8), Some(1)); // sequential
        assert_eq!(w.observe(15, 1), Some(0)); // same as last block
        assert_eq!(w.observe(0, 1), Some(-15)); // reverse seek
    }

    #[test]
    fn sequential_stream_distance_is_one() {
        let mut w = SeekWindow::new(16);
        w.observe(0, 16);
        for i in 1..100u64 {
            assert_eq!(w.observe(i * 16, 16), Some(1), "i = {i}");
        }
    }

    #[test]
    fn interleaved_streams_look_sequential_with_big_window() {
        let mut w = SeekWindow::new(16);
        let mut a = 0u64;
        let mut b = 1_000_000u64;
        w.observe(a, 8);
        w.observe(b, 8);
        a += 8;
        b += 8;
        for _ in 0..50 {
            assert_eq!(w.observe(a, 8), Some(1));
            assert_eq!(w.observe(b, 8), Some(1));
            a += 8;
            b += 8;
        }
    }

    #[test]
    fn interleaved_streams_break_down_with_window_of_one() {
        let mut w = SeekWindow::new(1);
        let mut a = 0u64;
        let mut b = 1_000_000u64;
        w.observe(a, 8);
        a += 8;
        // Alternate streams: every observed distance is the inter-stream gap.
        let mut big = 0;
        for _ in 0..20 {
            if w.observe(b, 8).unwrap().unsigned_abs() > 100_000 {
                big += 1;
            }
            b += 8;
            if w.observe(a, 8).unwrap().unsigned_abs() > 100_000 {
                big += 1;
            }
            a += 8;
        }
        assert_eq!(big, 40);
    }

    #[test]
    fn eviction_after_capacity() {
        let mut w = SeekWindow::new(2);
        w.observe(0, 1); // ends: [0]
        w.observe(1000, 1); // ends: [0, 1000]
        w.observe(2000, 1); // evicts 0; ends: [1000, 2000]
                            // Distance to 1 should now be measured against 1000, not 0.
        assert_eq!(w.min_distance_to(1001), Some(1));
        assert_eq!(w.min_distance_to(1), Some(-999));
    }

    #[test]
    fn sign_preserved_for_min_abs() {
        let mut w = SeekWindow::new(4);
        w.observe(100, 1); // end: 100
                           // 98 is 2 behind; nothing closer ahead.
        assert_eq!(w.min_distance_to(98), Some(-2));
    }

    #[test]
    fn reset_forgets_history() {
        let mut w = SeekWindow::new(4);
        w.observe(5, 1);
        w.reset();
        assert!(w.is_empty());
        assert_eq!(w.observe(1_000, 1), None);
    }

    #[test]
    fn signed_distance_saturation() {
        assert_eq!(signed_distance(0, u64::MAX), i64::MAX);
        assert_eq!(signed_distance(u64::MAX, 0), i64::MIN);
        assert_eq!(signed_distance(7, 7), 0);
        assert_eq!(signed_distance(8, 7), -1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SeekWindow::new(0);
    }
}
