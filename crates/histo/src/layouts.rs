//! The paper's bin layouts, one constructor per metric.
//!
//! Edges transcribed from the x-axes of Figures 2–6 of the paper. Two small
//! deliberate deviations, both documented in `DESIGN.md`:
//!
//! * the seek-distance layout adds explicit `-1`/`1` bins (the production
//!   `vscsiStats` tool has them; the figure axis elides them for space, yet
//!   §3.1 expects the sequential peak "centered around 1");
//! * the interarrival layout reuses the latency edges with two extra
//!   fine-grained low buckets (the paper does not print its interarrival
//!   axis).

use crate::bins::BinEdges;
use crate::fastbin::FastBinner;
use std::sync::OnceLock;

/// Identifies one of the six registered paper layouts.
///
/// Each layout (its validated [`BinEdges`] plus the precomputed
/// [`FastBinner`] tables) is built once per process and cached in a
/// [`OnceLock`]; every later access is a pointer read plus — for
/// [`LayoutId::edges`] — an `Arc` refcount bump. The hot path in the stats
/// collector resolves its seven histogram layouts through this registry at
/// construction time and never touches a `Vec<i64>` again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutId {
    /// [`io_length_bytes`]
    IoLengthBytes,
    /// [`seek_distance_sectors`]
    SeekDistanceSectors,
    /// [`latency_us`]
    LatencyUs,
    /// [`interarrival_us`]
    InterarrivalUs,
    /// [`outstanding_ios`]
    OutstandingIos,
    /// [`scsi_outcomes`]
    ScsiOutcomes,
}

impl LayoutId {
    /// Every registered layout, for exhaustive iteration in tests and the
    /// ablation bench.
    pub const ALL: [LayoutId; 6] = [
        LayoutId::IoLengthBytes,
        LayoutId::SeekDistanceSectors,
        LayoutId::LatencyUs,
        LayoutId::InterarrivalUs,
        LayoutId::OutstandingIos,
        LayoutId::ScsiOutcomes,
    ];

    /// The layout's edges. Allocation-free: clones the cached `Arc`-backed
    /// [`BinEdges`].
    pub fn edges(self) -> BinEdges {
        self.entry().0.clone()
    }

    /// The layout's precomputed branchless binner. Lives for the process
    /// lifetime, so collectors can cache the reference.
    pub fn binner(self) -> &'static FastBinner {
        &self.entry().1
    }

    fn entry(self) -> &'static (BinEdges, FastBinner) {
        fn build(edges: Vec<i64>) -> (BinEdges, FastBinner) {
            let be = BinEdges::new(edges).expect("static layout is valid");
            let fast = FastBinner::try_new(&be).expect("static layout fits the branchless binner");
            (be, fast)
        }
        match self {
            LayoutId::IoLengthBytes => {
                static CELL: OnceLock<(BinEdges, FastBinner)> = OnceLock::new();
                CELL.get_or_init(|| {
                    build(vec![
                        512, 1024, 2048, 4095, 4096, 8191, 8192, 16383, 16384, 32768, 49152, 65535,
                        65536, 81920, 131072, 262144, 524288,
                    ])
                })
            }
            LayoutId::SeekDistanceSectors => {
                static CELL: OnceLock<(BinEdges, FastBinner)> = OnceLock::new();
                CELL.get_or_init(|| {
                    build(vec![
                        -500_000, -50_000, -5_000, -500, -64, -16, -6, -2, -1, 0, 1, 2, 6, 16, 64,
                        500, 5_000, 50_000, 500_000,
                    ])
                })
            }
            LayoutId::LatencyUs => {
                static CELL: OnceLock<(BinEdges, FastBinner)> = OnceLock::new();
                CELL.get_or_init(|| {
                    build(vec![
                        1, 10, 100, 500, 1_000, 5_000, 15_000, 30_000, 50_000, 100_000,
                    ])
                })
            }
            LayoutId::InterarrivalUs => {
                static CELL: OnceLock<(BinEdges, FastBinner)> = OnceLock::new();
                CELL.get_or_init(|| {
                    build(vec![
                        1, 10, 30, 100, 500, 1_000, 5_000, 15_000, 30_000, 50_000, 100_000,
                    ])
                })
            }
            LayoutId::OutstandingIos => {
                static CELL: OnceLock<(BinEdges, FastBinner)> = OnceLock::new();
                CELL.get_or_init(|| build(vec![1, 2, 4, 6, 8, 12, 16, 20, 24, 28, 32, 64]))
            }
            LayoutId::ScsiOutcomes => {
                static CELL: OnceLock<(BinEdges, FastBinner)> = OnceLock::new();
                CELL.get_or_init(|| build(vec![0, 1, 2, 3, 4]))
            }
        }
    }
}

/// I/O length histogram edges, in **bytes** (Figures 2(a), 3(a), 4(b), 5(b)).
///
/// Irregular on purpose: 4095/4096 and similar pairs single out the sizes
/// storage subsystems optimize for, so an exactly-16 KiB command is
/// distinguishable from "something in (8 KiB, 16 KiB)".
///
/// # Examples
///
/// ```
/// use histo::layouts;
///
/// let e = layouts::io_length_bytes();
/// assert_eq!(e.bin_label(e.bin_index(4096)), "4096");
/// assert_eq!(e.bin_label(e.bin_index(4097)), "8191");
/// ```
pub fn io_length_bytes() -> BinEdges {
    LayoutId::IoLengthBytes.edges()
}

/// Seek distance histogram edges, in **sectors**, signed (Figures 2(b)–(d),
/// 3(b)–(d), 4(a), 5(c)). Negative distances are reverse seeks (§3.1).
pub fn seek_distance_sectors() -> BinEdges {
    LayoutId::SeekDistanceSectors.edges()
}

/// Device latency histogram edges, in **microseconds** (Figures 5(a), 6).
pub fn latency_us() -> BinEdges {
    LayoutId::LatencyUs.edges()
}

/// I/O interarrival-time histogram edges, in **microseconds** (§3.2).
pub fn interarrival_us() -> BinEdges {
    LayoutId::InterarrivalUs.edges()
}

/// Outstanding-I/Os-at-arrival histogram edges (Figure 4(c)–(d)).
pub fn outstanding_ios() -> BinEdges {
    LayoutId::OutstandingIos.edges()
}

/// SCSI outcome-code histogram edges: one bin per outcome in
/// `ScsiStatus::outcome_code` order (0 = GOOD, 1 = MEDIUM ERROR,
/// 2 = UNIT ATTENTION, 3 = BUSY, 4 = TASK ABORTED).
pub fn scsi_outcomes() -> BinEdges {
    LayoutId::ScsiOutcomes.edges()
}

/// A plain power-of-two layout spanning `[1, 2^max_pow2]`, used by the
/// bins-ablation benchmark to contrast with the paper's irregular layout.
///
/// # Panics
///
/// Panics if `max_pow2 >= 63`.
pub fn pow2(max_pow2: u32) -> BinEdges {
    assert!(max_pow2 < 63, "pow2 layout exponent too large");
    BinEdges::new((0..=max_pow2).map(|p| 1i64 << p).collect()).expect("static layout is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_layouts_valid_and_sized() {
        assert_eq!(io_length_bytes().bin_count(), 18);
        assert_eq!(seek_distance_sectors().bin_count(), 20);
        assert_eq!(latency_us().bin_count(), 11);
        assert_eq!(interarrival_us().bin_count(), 12);
        assert_eq!(outstanding_ios().bin_count(), 13);
        assert_eq!(scsi_outcomes().bin_count(), 6);
    }

    #[test]
    fn scsi_outcomes_have_one_bin_each() {
        let e = scsi_outcomes();
        for code in 0..=4i64 {
            assert_eq!(e.bin_label(e.bin_index(code)), code.to_string());
        }
    }

    #[test]
    fn io_length_singles_out_special_sizes() {
        let e = io_length_bytes();
        // Exactly 16 KiB is distinguishable from (8 KiB, 16 KiB).
        assert_eq!(e.bin_label(e.bin_index(16_384)), "16384");
        assert_eq!(e.bin_label(e.bin_index(12_000)), "16383");
        assert_eq!(e.bin_label(e.bin_index(65_536)), "65536");
        assert_eq!(e.bin_label(e.bin_index(1_048_576)), ">524288");
        assert_eq!(e.bin_label(e.bin_index(512)), "512");
    }

    #[test]
    fn seek_distance_is_signed_and_symmetric() {
        let e = seek_distance_sectors();
        let edges = e.edges();
        // Symmetric around zero.
        for (a, b) in edges.iter().zip(edges.iter().rev()) {
            assert_eq!(*a, -b);
        }
        // Sequential I/O (distance 1) has its own bin.
        assert_eq!(e.bin_label(e.bin_index(1)), "1");
        assert_eq!(e.bin_label(e.bin_index(0)), "0");
        assert_eq!(e.bin_label(e.bin_index(-1)), "-1");
        // Far random seeks land at the extremes.
        assert_eq!(e.bin_label(e.bin_index(10_000_000)), ">500000");
        assert_eq!(e.bin_index(-10_000_000), 0);
    }

    #[test]
    fn latency_paper_windows_are_exact_bins() {
        // The paper quotes fractions for (5ms,15ms], (15ms,30ms], (100us,500us];
        // each must be representable as whole bins.
        let e = latency_us();
        let edges = e.edges();
        for pair in [(5_000, 15_000), (15_000, 30_000), (100, 500)] {
            assert!(edges.contains(&pair.0) && edges.contains(&pair.1));
        }
    }

    #[test]
    fn outstanding_matches_figure_axis() {
        let e = outstanding_ios();
        assert_eq!(e.bin_label(e.bin_index(32)), "32");
        assert_eq!(e.bin_label(e.bin_index(33)), "64");
        assert_eq!(e.bin_label(e.bin_index(65)), ">64");
        assert_eq!(e.bin_label(e.bin_index(1)), "1");
    }

    #[test]
    fn layouts_are_cached_statics() {
        // Two calls hand back the same Arc-backed edge storage.
        let a = io_length_bytes();
        let b = io_length_bytes();
        assert!(std::ptr::eq(a.edges(), b.edges()));
        // Every registered layout has a binner that agrees with the scan.
        for id in LayoutId::ALL {
            let edges = id.edges();
            let binner = id.binner();
            for &e in edges.edges() {
                for v in [e.saturating_sub(1), e, e.saturating_add(1)] {
                    assert_eq!(binner.bin_index(v), edges.bin_index(v), "{id:?} v={v}");
                }
            }
        }
    }

    #[test]
    fn pow2_layout() {
        let e = pow2(4);
        assert_eq!(e.edges(), &[1, 2, 4, 8, 16]);
        assert_eq!(e.bin_label(e.bin_index(9)), "16");
    }
}
