//! # histo — online histograms for disk I/O workload characterization
//!
//! The measurement core of the paper (§3): histograms that can be maintained
//! *online*, per command, in O(1) time and O(m) space, over irregular bin
//! layouts chosen to single out storage-significant values.
//!
//! * [`BinEdges`] — strictly increasing inclusive upper bounds (+ implicit
//!   overflow bin), with linear and binary bin lookup.
//! * [`Histogram`] — counts + exact running min/max/mean; merge, quantiles,
//!   mode, fraction-in-range, ASCII rendering.
//! * [`layouts`] — the paper's exact bin layouts (I/O length, signed seek
//!   distance, latency, interarrival, outstanding I/Os).
//! * [`SeekWindow`] — the §3.1 min-of-last-N look-behind window (N = 16).
//! * [`HistogramSeries`] — per-interval histograms (Figures 4(d), 6(c)).
//! * [`Histogram2d`] — the §3.6 "future work" metric-correlation extension.
//! * [`export`] — CSV export and post-processing re-binning.
//!
//! # Examples
//!
//! ```
//! use histo::{layouts, Histogram, SeekWindow};
//!
//! let mut lengths = Histogram::new(layouts::io_length_bytes());
//! let mut seeks = Histogram::new(layouts::seek_distance_sectors());
//! let mut window = SeekWindow::new(SeekWindow::DEFAULT_CAPACITY);
//!
//! // A tiny sequential 4 KiB workload: 8 sectors per I/O.
//! for i in 0..100u64 {
//!     let first_block = i * 8;
//!     lengths.record(4096);
//!     if let Some(d) = window.observe(first_block, 8) {
//!         seeks.record(d);
//!     }
//! }
//!
//! // Every command was exactly 4096 bytes...
//! let li = lengths.edges().bin_index(4096);
//! assert_eq!(lengths.count(li), 100);
//! // ...and the seek-distance peak is centered at 1 (sequential).
//! let si = seeks.edges().bin_index(1);
//! assert_eq!(seeks.mode_bin(), Some(si));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bins;
pub mod distance;
pub mod export;
mod fastbin;
mod hist2d;
mod histogram;
pub mod layouts;
mod series;
mod window;

pub use bins::{BinEdges, BinEdgesError};
pub use fastbin::{BinLane, FastBinner};
pub use hist2d::Histogram2d;
pub use histogram::{Histogram, MergeError};
pub use layouts::LayoutId;
pub use series::HistogramSeries;
pub use window::{signed_distance, SeekWindow};
