//! The online histogram itself.
//!
//! Following §3 of the paper: inserting a command's metric value is a single
//! bin lookup + counter increment — O(1) CPU and O(m) space where m is the
//! (small, fixed) number of bins, versus O(n) space for a trace.

use crate::bins::{BinEdges, BinEdgesError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned by operations combining two histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// The two histograms use different bin layouts.
    LayoutMismatch,
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::LayoutMismatch => write!(f, "histogram bin layouts differ"),
        }
    }
}

impl std::error::Error for MergeError {}

/// A constant-space online histogram over signed 64-bit values.
///
/// In addition to the per-bin counts the histogram tracks exact running
/// `min`, `max`, count and sum, so exact means are available alongside the
/// binned distribution (this mirrors what `vscsiStats` exports).
///
/// # Examples
///
/// ```
/// use histo::Histogram;
///
/// let mut h = Histogram::with_edges(vec![0, 10, 100])?;
/// for v in [-5, 0, 3, 50, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.total(), 5);
/// assert_eq!(h.counts(), &[2, 1, 1, 1]); // <=0, (0,10], (10,100], >100
/// assert_eq!(h.min(), Some(-5));
/// assert_eq!(h.max(), Some(1000));
/// # Ok::<(), histo::BinEdgesError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    edges: BinEdges,
    counts: Vec<u64>,
    total: u64,
    sum: i128,
    min: i64,
    max: i64,
}

impl Histogram {
    /// Creates an empty histogram over the given layout.
    pub fn new(edges: BinEdges) -> Self {
        let bins = edges.bin_count();
        Histogram {
            edges,
            counts: vec![0; bins],
            total: 0,
            sum: 0,
            min: i64::MAX,
            max: i64::MIN,
        }
    }

    /// Creates an empty histogram from raw inclusive upper bounds.
    ///
    /// # Errors
    ///
    /// Returns an error if the edges are empty or not strictly increasing.
    pub fn with_edges(edges: Vec<i64>) -> Result<Self, BinEdgesError> {
        Ok(Histogram::new(BinEdges::new(edges)?))
    }

    /// Reassembles a histogram from externally maintained state: a layout,
    /// per-bin counts, the exact running sum, and `Some((min, max))` when at
    /// least one value was observed. The total is derived from `counts`.
    ///
    /// This is how the stats collector materializes `Histogram` views from
    /// its flat counter slab at snapshot time — the hot path only bumps slab
    /// counters and never holds `Histogram`s.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != edges.bin_count()`.
    pub fn from_parts(
        edges: BinEdges,
        counts: Vec<u64>,
        sum: i128,
        min_max: Option<(i64, i64)>,
    ) -> Self {
        assert_eq!(
            counts.len(),
            edges.bin_count(),
            "count vector does not match bin layout"
        );
        let total = counts.iter().sum();
        let (min, max) = min_max.unwrap_or((i64::MAX, i64::MIN));
        Histogram {
            edges,
            counts,
            total,
            sum,
            min,
            max,
        }
    }

    /// The bin layout.
    #[inline]
    pub fn edges(&self) -> &BinEdges {
        &self.edges
    }

    /// Records one observation. O(m) in the (constant) bin count.
    #[inline]
    pub fn record(&mut self, value: i64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical observations.
    pub fn record_n(&mut self, value: i64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.edges.bin_index(value);
        self.counts[idx] += n;
        self.total += n;
        self.sum += i128::from(value) * i128::from(n);
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Per-bin counts (including the final overflow bin).
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count in a single bin.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    pub fn count(&self, index: usize) -> u64 {
        self.counts[index]
    }

    /// Total observations recorded.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `true` if nothing has been recorded.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact running sum of all recorded values. This is the numerator of
    /// [`Histogram::mean`], exposed exactly so external serializers (the
    /// fleet wire format) and [`Histogram::from_parts`] can round-trip a
    /// histogram bit-for-bit.
    #[inline]
    pub fn sum(&self) -> i128 {
        self.sum
    }

    /// Exact mean of all recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<i64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<i64> {
        (self.total > 0).then_some(self.max)
    }

    /// Resets all counts while keeping the layout.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum = 0;
        self.min = i64::MAX;
        self.max = i64::MIN;
    }

    /// Adds all of `other`'s counts into `self`.
    ///
    /// # Errors
    ///
    /// Returns [`MergeError::LayoutMismatch`] if the layouts differ.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), MergeError> {
        if self.edges != other.edges {
            return Err(MergeError::LayoutMismatch);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.total > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        Ok(())
    }

    /// Fraction (0–1) of observations in bins whose covered range lies
    /// entirely within `(lo, hi]`. Useful for statements like the paper's
    /// "91 % of I/Os had latency in (15 ms, 30 ms]". Returns 0 when empty.
    pub fn fraction_in(&self, lo: i64, hi: i64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut n = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            let (blo, bhi) = self.edges.bin_range(i);
            let lo_ok = blo.is_some_and(|b| b >= lo);
            let hi_ok = bhi.is_some_and(|b| b <= hi);
            if lo_ok && hi_ok {
                n += c;
            }
        }
        n as f64 / self.total as f64
    }

    /// Running cumulative counts per bin (last element == total).
    ///
    /// # Examples
    ///
    /// ```
    /// use histo::Histogram;
    ///
    /// let mut h = Histogram::with_edges(vec![0, 10])?;
    /// h.record(-1);
    /// h.record(5);
    /// h.record(99);
    /// assert_eq!(h.cumulative_counts(), vec![1, 2, 3]);
    /// # Ok::<(), histo::BinEdgesError>(())
    /// ```
    pub fn cumulative_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .scan(0u64, |acc, &c| {
                *acc += c;
                Some(*acc)
            })
            .collect()
    }

    /// Fraction (0–1) of observations in bins whose upper bound is ≤ `hi`,
    /// including the unbounded first bin (whose upper bound is the first
    /// edge). Complements [`Histogram::fraction_in`], which requires both
    /// bounds and therefore never counts the first bin. Returns 0 when
    /// empty.
    pub fn fraction_at_most(&self, hi: i64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut n = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if let (_, Some(bhi)) = self.edges.bin_range(i) {
                if bhi <= hi {
                    n += c;
                }
            }
        }
        n as f64 / self.total as f64
    }

    /// Index of the most populated bin (`None` when empty). Ties resolve to
    /// the lowest index.
    pub fn mode_bin(&self) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let (idx, _) = self
            .counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))?;
        Some(idx)
    }

    /// Approximate `q`-quantile from the binned data: returns the upper edge
    /// of the first bin at which the cumulative fraction reaches `q` (the
    /// lower edge + 1 for the overflow bin). `None` when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> Option<i64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(match self.edges.bin_range(i) {
                    (_, Some(hi)) => hi,
                    (Some(lo), None) => lo + 1,
                    (None, None) => unreachable!(),
                });
            }
        }
        // q == 1.0 lands here only via floating error; return the top.
        Some(self.edges.edges()[self.edges.edges().len() - 1] + 1)
    }

    /// Mean estimated *from the binned data only* using bin midpoints.
    /// Compare with [`Histogram::mean`] to quantify binning loss.
    pub fn binned_mean_estimate(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let s: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(i, &c)| self.edges.bin_midpoint(i) * c as f64)
            .sum();
        Some(s / self.total as f64)
    }

    /// Iterates `(label, count)` pairs for every bin, in order.
    pub fn iter_labeled(&self) -> impl Iterator<Item = (String, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.edges.bin_label(i), c))
    }
}

impl fmt::Display for Histogram {
    /// Renders the histogram as a two-column table with an ASCII bar chart,
    /// one row per bin.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let peak = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let label_w = (0..self.edges.bin_count())
            .map(|i| self.edges.bin_label(i).len())
            .max()
            .unwrap_or(1);
        for (i, &c) in self.counts.iter().enumerate() {
            let bar_len = ((c as f64 / peak as f64) * 40.0).round() as usize;
            writeln!(
                f,
                "{:>label_w$} | {:>8} {}",
                self.edges.bin_label(i),
                c,
                "#".repeat(bar_len),
            )?;
        }
        write!(f, "total={} ", self.total)?;
        match self.mean() {
            Some(m) => write!(f, "mean={m:.1}"),
            None => write!(f, "mean=n/a"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h3() -> Histogram {
        Histogram::with_edges(vec![0, 10, 100]).unwrap()
    }

    #[test]
    fn record_routes_to_bins() {
        let mut h = h3();
        h.record(-1); // bin 0
        h.record(0); // bin 0
        h.record(1); // bin 1
        h.record(10); // bin 1
        h.record(11); // bin 2
        h.record(100); // bin 2
        h.record(101); // bin 3
        assert_eq!(h.counts(), &[2, 2, 2, 1]);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn record_n_and_stats() {
        let mut h = h3();
        h.record_n(5, 4);
        h.record_n(50, 0); // no-op
        assert_eq!(h.total(), 4);
        assert_eq!(h.mean(), Some(5.0));
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(5));
    }

    #[test]
    fn empty_histogram_state() {
        let h = h3();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mode_bin(), None);
        assert_eq!(h.quantile_upper_bound(0.5), None);
        assert_eq!(h.fraction_in(0, 100), 0.0);
    }

    #[test]
    fn reset_clears() {
        let mut h = h3();
        h.record(5);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.counts(), &[0, 0, 0, 0]);
        assert_eq!(h.min(), None);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = h3();
        let mut b = h3();
        a.record(5);
        a.record(-3);
        b.record(200);
        b.record(5);
        a.merge(&b).unwrap();
        assert_eq!(a.total(), 4);
        assert_eq!(a.counts(), &[1, 2, 0, 1]);
        assert_eq!(a.min(), Some(-3));
        assert_eq!(a.max(), Some(200));
        assert_eq!(a.mean(), Some((5 - 3 + 200 + 5) as f64 / 4.0));
    }

    #[test]
    fn merge_rejects_mismatched_layouts() {
        let mut a = h3();
        let b = Histogram::with_edges(vec![0, 10]).unwrap();
        assert_eq!(a.merge(&b), Err(MergeError::LayoutMismatch));
    }

    #[test]
    fn merge_with_empty_keeps_min_max() {
        let mut a = h3();
        a.record(7);
        let b = h3();
        a.merge(&b).unwrap();
        assert_eq!(a.min(), Some(7));
        assert_eq!(a.max(), Some(7));
    }

    #[test]
    fn fraction_in_covers_exact_bins() {
        let mut h = Histogram::with_edges(vec![100, 500, 1000, 5000, 15000, 30000]).unwrap();
        for _ in 0..91 {
            h.record(20_000); // (15000, 30000]
        }
        for _ in 0..9 {
            h.record(50); // (<=100)
        }
        let f = h.fraction_in(15_000, 30_000);
        assert!((f - 0.91).abs() < 1e-12, "f = {f}");
        // Wider window includes more bins.
        assert!(h.fraction_in(100, 30_000) >= f);
    }

    #[test]
    fn fraction_at_most_includes_first_bin() {
        let mut h = h3(); // edges 0, 10, 100
        h.record(-5); // first bin (<= 0)
        h.record(5); // (0, 10]
        h.record(50); // (10, 100]
        h.record(5000); // overflow
        assert!((h.fraction_at_most(0) - 0.25).abs() < 1e-12);
        assert!((h.fraction_at_most(10) - 0.5).abs() < 1e-12);
        assert!((h.fraction_at_most(100) - 0.75).abs() < 1e-12);
        // The overflow bin has no upper bound: never included.
        assert!((h.fraction_at_most(i64::MAX) - 0.75).abs() < 1e-12);
        assert_eq!(
            Histogram::with_edges(vec![0]).unwrap().fraction_at_most(0),
            0.0
        );
    }

    #[test]
    fn mode_bin_prefers_lowest_on_tie() {
        let mut h = h3();
        h.record(-1);
        h.record(5);
        assert_eq!(h.mode_bin(), Some(0));
        h.record(5);
        assert_eq!(h.mode_bin(), Some(1));
    }

    #[test]
    fn quantiles_from_bins() {
        let mut h = h3();
        for _ in 0..50 {
            h.record(5);
        }
        for _ in 0..50 {
            h.record(50);
        }
        assert_eq!(h.quantile_upper_bound(0.25), Some(10));
        assert_eq!(h.quantile_upper_bound(0.75), Some(100));
        assert_eq!(h.quantile_upper_bound(1.0), Some(100));
        h.record(5000);
        assert_eq!(h.quantile_upper_bound(1.0), Some(101)); // overflow bin
    }

    #[test]
    fn binned_mean_tracks_exact_mean() {
        let mut h = Histogram::with_edges((0..=100).step_by(2).map(i64::from).collect()).unwrap();
        for v in 0..=100 {
            h.record(v);
        }
        let exact = h.mean().unwrap();
        let binned = h.binned_mean_estimate().unwrap();
        assert!(
            (exact - binned).abs() < 1.5,
            "exact {exact}, binned {binned}"
        );
    }

    #[test]
    fn display_contains_labels_and_total() {
        let mut h = h3();
        h.record(5);
        let s = h.to_string();
        assert!(s.contains(">100"));
        assert!(s.contains("total=1"));
        assert!(s.contains('#'));
    }

    #[test]
    fn iter_labeled_order() {
        let h = h3();
        let labels: Vec<String> = h.iter_labeled().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["0", "10", "100", ">100"]);
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = h3();
        h.record(i64::MAX);
        h.record(i64::MIN);
        assert_eq!(h.total(), 2);
        assert_eq!(h.mean(), Some(-0.5));
    }
}
