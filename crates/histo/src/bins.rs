//! Irregular bin layouts.
//!
//! The paper deliberately chooses *irregular* bin boundaries (§4): "certain
//! block sizes are really special since the underlying storage subsystems may
//! optimize for them. We want to single those out right from the start
//! because once inserted into the histogram, we'll lose that precise
//! information." A [`BinEdges`] is a strictly increasing list of signed
//! upper bounds; values map to bins in O(m) (or O(log m)) time where m is
//! tiny and constant, giving the paper's O(1)-per-command cost.

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;
use std::sync::Arc;

/// Error returned when a bin-edge list is not usable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinEdgesError {
    /// The edge list was empty.
    Empty,
    /// Two consecutive edges were equal or decreasing; payload is the index
    /// of the offending (second) edge.
    NotStrictlyIncreasing(usize),
}

impl fmt::Display for BinEdgesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinEdgesError::Empty => write!(f, "bin edge list is empty"),
            BinEdgesError::NotStrictlyIncreasing(i) => {
                write!(f, "bin edges not strictly increasing at index {i}")
            }
        }
    }
}

impl std::error::Error for BinEdgesError {}

/// A strictly increasing list of inclusive upper bounds defining a histogram
/// bin layout.
///
/// For edges `e_0 < e_1 < … < e_{k-1}` there are `k + 1` bins:
///
/// * bin `0` holds values `v <= e_0`,
/// * bin `i` (for `1 <= i <= k-1`) holds values `e_{i-1} < v <= e_i`,
/// * bin `k` (the *overflow* bin, labelled `> e_{k-1}`) holds `v > e_{k-1}`.
///
/// This matches the axis labels in the paper's figures: the "4096" bucket of
/// the I/O length histogram holds exactly-4096-byte commands because the
/// preceding edge is 4095.
///
/// # Examples
///
/// ```
/// use histo::BinEdges;
///
/// let edges = BinEdges::new(vec![-2, 0, 2])?;
/// assert_eq!(edges.bin_count(), 4);
/// assert_eq!(edges.bin_index(-5), 0); // <= -2
/// assert_eq!(edges.bin_index(-2), 0);
/// assert_eq!(edges.bin_index(-1), 1); // (-2, 0]
/// assert_eq!(edges.bin_index(1), 2);  // (0, 2]
/// assert_eq!(edges.bin_index(99), 3); // > 2
/// # Ok::<(), histo::BinEdgesError>(())
/// ```
///
/// The edge list is stored behind an [`Arc`], so cloning a layout — which
/// the hot path's histogram-materialization and the static layout registry
/// in [`crate::layouts`] both rely on — is a reference-count bump, never a
/// heap allocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BinEdges {
    edges: Arc<[i64]>,
}

impl BinEdges {
    /// Creates a layout from inclusive upper bounds.
    ///
    /// # Errors
    ///
    /// Returns [`BinEdgesError::Empty`] for an empty list and
    /// [`BinEdgesError::NotStrictlyIncreasing`] if the list is not strictly
    /// increasing.
    pub fn new(edges: Vec<i64>) -> Result<Self, BinEdgesError> {
        if edges.is_empty() {
            return Err(BinEdgesError::Empty);
        }
        for i in 1..edges.len() {
            if edges[i] <= edges[i - 1] {
                return Err(BinEdgesError::NotStrictlyIncreasing(i));
            }
        }
        Ok(BinEdges {
            edges: edges.into(),
        })
    }

    /// The inclusive upper bounds (excludes the implicit overflow bin).
    #[inline]
    pub fn edges(&self) -> &[i64] {
        &self.edges
    }

    /// Total number of bins, including the overflow bin.
    #[inline]
    pub fn bin_count(&self) -> usize {
        self.edges.len() + 1
    }

    /// Maps a value to its bin index using a linear scan.
    ///
    /// For the paper's bin counts (m ≈ 12–20) a branch-predictable linear
    /// scan beats binary search; see the `bins_ablation` bench.
    #[inline]
    pub fn bin_index(&self, value: i64) -> usize {
        let mut idx = 0usize;
        for &e in self.edges.iter() {
            // Branch-free accumulate: counts how many edges are below `value`.
            idx += usize::from(value > e);
        }
        idx
    }

    /// Maps a value to its bin index using binary search (`partition_point`).
    ///
    /// Exposed for the layout ablation benchmark; always agrees with
    /// [`BinEdges::bin_index`].
    #[inline]
    pub fn bin_index_binary(&self, value: i64) -> usize {
        // Bin index == number of edges strictly below `value`.
        self.edges.partition_point(|&e| e < value)
    }

    /// The half-open (well, half-*closed*) range `(lo, hi]` covered by bin
    /// `index`, as `(Option<lo>, Option<hi>)` where `None` means unbounded.
    ///
    /// # Panics
    ///
    /// Panics if `index >= bin_count()`.
    pub fn bin_range(&self, index: usize) -> (Option<i64>, Option<i64>) {
        assert!(index < self.bin_count(), "bin index out of range");
        let lo = if index == 0 {
            None
        } else {
            Some(self.edges[index - 1])
        };
        let hi = self.edges.get(index).copied();
        (lo, hi)
    }

    /// Human-readable label for bin `index`, matching the paper's axis
    /// labels: the upper bound for bounded bins, `">e"` for the overflow bin.
    ///
    /// # Panics
    ///
    /// Panics if `index >= bin_count()`.
    pub fn bin_label(&self, index: usize) -> String {
        assert!(index < self.bin_count(), "bin index out of range");
        match self.edges.get(index) {
            Some(e) => e.to_string(),
            None => format!(">{}", self.edges[self.edges.len() - 1]),
        }
    }

    /// A representative point inside bin `index` (used for estimating means
    /// from binned data): the upper bound for bounded bins, midpoints where
    /// both bounds exist, and the lower edge + 1 for the overflow bin.
    pub fn bin_midpoint(&self, index: usize) -> f64 {
        let (lo, hi) = self.bin_range(index);
        match (lo, hi) {
            (Some(lo), Some(hi)) => (lo as f64 + hi as f64) / 2.0,
            (None, Some(hi)) => hi as f64,
            (Some(lo), None) => lo as f64 + 1.0,
            (None, None) => unreachable!("edges are never empty"),
        }
    }
}

// Manual serde impls: the derive would require serde's "rc" feature for
// `Arc<[i64]>`. Serializing as a one-field struct keeps the wire shape of
// the old `{ edges: Vec<i64> }` derive, and deserialization re-validates
// through `BinEdges::new`, so a corrupted edge list is rejected at the
// boundary instead of breaking bin lookups later.
impl Serialize for BinEdges {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use serde::ser::SerializeStruct;
        let mut st = serializer.serialize_struct("BinEdges", 1)?;
        st.serialize_field("edges", &*self.edges)?;
        st.end()
    }
}

impl<'de> Deserialize<'de> for BinEdges {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        #[derive(Deserialize)]
        struct Raw {
            edges: Vec<i64>,
        }
        let raw = Raw::deserialize(deserializer)?;
        BinEdges::new(raw.edges).map_err(D::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_edges() {
        assert_eq!(BinEdges::new(vec![]), Err(BinEdgesError::Empty));
        assert_eq!(
            BinEdges::new(vec![1, 1]),
            Err(BinEdgesError::NotStrictlyIncreasing(1))
        );
        assert_eq!(
            BinEdges::new(vec![5, 3]),
            Err(BinEdgesError::NotStrictlyIncreasing(1))
        );
    }

    #[test]
    fn single_edge_layout() {
        let e = BinEdges::new(vec![0]).unwrap();
        assert_eq!(e.bin_count(), 2);
        assert_eq!(e.bin_index(-1), 0);
        assert_eq!(e.bin_index(0), 0);
        assert_eq!(e.bin_index(1), 1);
        assert_eq!(e.bin_label(0), "0");
        assert_eq!(e.bin_label(1), ">0");
    }

    #[test]
    fn paper_length_semantics() {
        // 4095 / 4096 adjacency singles out exactly-4096-byte commands.
        let e = BinEdges::new(vec![2048, 4095, 4096, 8191, 8192]).unwrap();
        assert_eq!(e.bin_label(e.bin_index(4096)), "4096");
        assert_eq!(e.bin_label(e.bin_index(4095)), "4095");
        assert_eq!(e.bin_label(e.bin_index(3000)), "4095");
        assert_eq!(e.bin_label(e.bin_index(5000)), "8191");
        assert_eq!(e.bin_label(e.bin_index(8192)), "8192");
        assert_eq!(e.bin_label(e.bin_index(9000)), ">8192");
    }

    #[test]
    fn linear_and_binary_agree() {
        let e = BinEdges::new(vec![-500, -64, -16, -6, -2, 0, 2, 6, 16, 64, 500]).unwrap();
        for v in -600..600 {
            assert_eq!(e.bin_index(v), e.bin_index_binary(v), "v = {v}");
        }
        for v in [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX] {
            assert_eq!(e.bin_index(v), e.bin_index_binary(v), "v = {v}");
        }
    }

    #[test]
    fn bin_ranges() {
        let e = BinEdges::new(vec![0, 10]).unwrap();
        assert_eq!(e.bin_range(0), (None, Some(0)));
        assert_eq!(e.bin_range(1), (Some(0), Some(10)));
        assert_eq!(e.bin_range(2), (Some(10), None));
    }

    #[test]
    fn midpoints() {
        let e = BinEdges::new(vec![0, 10]).unwrap();
        assert_eq!(e.bin_midpoint(0), 0.0);
        assert_eq!(e.bin_midpoint(1), 5.0);
        assert_eq!(e.bin_midpoint(2), 11.0);
    }

    #[test]
    fn clone_shares_edge_storage() {
        let a = BinEdges::new(vec![1, 2, 3]).unwrap();
        let b = a.clone();
        assert_eq!(a, b);
        // Arc-backed: a clone points at the very same edge slice.
        assert!(std::ptr::eq(a.edges(), b.edges()));
    }

    #[test]
    #[should_panic(expected = "bin index out of range")]
    fn bin_range_bounds_checked() {
        let e = BinEdges::new(vec![0]).unwrap();
        let _ = e.bin_range(2);
    }
}
