//! Property tests for the filesystem and workload models.

use guests::fs::{Ext3, Ext3Params, FileId, Filesystem, Ufs, UfsParams, Zfs, ZfsParams};
use guests::{AccessSpec, IometerWorkload, Workload};
use proptest::collection::vec;
use proptest::prelude::*;
use simkit::{SimRng, SimTime};
use vscsi::{Lba, SECTOR_SIZE};

const UFS_CAP: u64 = 32 * 1024 * 1024 * 1024;

proptest! {
    /// UFS reads cover exactly the requested range rounded to fragments,
    /// and all extents stay within the managed capacity.
    #[test]
    fn ufs_read_extent_conservation(
        offset in 0u64..8_000_000_000,
        len in 1u64..1_000_000,
    ) {
        let mut fs = Ufs::new(UfsParams::default());
        let mut rng = SimRng::seed_from(1);
        let extents = fs.read(FileId(0), offset, len, &mut rng);
        let frag = fs.params().frag_bytes;
        let expected = (offset + len).div_ceil(frag) * frag - offset / frag * frag;
        let total: u64 = extents.iter().map(|e| u64::from(e.sectors) * SECTOR_SIZE).sum();
        prop_assert_eq!(total, expected);
        for e in &extents {
            prop_assert!(e.direction.is_read());
            prop_assert!(e.lba.as_bytes() + u64::from(e.sectors) * SECTOR_SIZE <= UFS_CAP);
        }
    }

    /// UFS writes cover whole blocks containing the range.
    #[test]
    fn ufs_write_block_rounding(
        offset in 0u64..8_000_000_000,
        len in 1u64..1_000_000,
    ) {
        let mut fs = Ufs::new(UfsParams::default());
        let mut rng = SimRng::seed_from(2);
        let extents = fs.write(FileId(1), offset, len, true, &mut rng);
        let block = fs.params().block_bytes;
        let expected = (offset + len).div_ceil(block) * block - offset / block * block;
        let total: u64 = extents.iter().map(|e| u64::from(e.sectors) * SECTOR_SIZE).sum();
        prop_assert_eq!(total, expected);
    }

    /// UFS layout is a pure function of (file, offset).
    #[test]
    fn ufs_layout_deterministic(
        file in 0u32..16,
        offsets in vec(0u64..8_000_000_000, 1..20),
    ) {
        let mut a = Ufs::new(UfsParams::default());
        let mut b = Ufs::new(UfsParams::default());
        let mut rng_a = SimRng::seed_from(3);
        let mut rng_b = SimRng::seed_from(99); // rng must not matter
        for &off in &offsets {
            prop_assert_eq!(
                a.read(FileId(file), off, 4096, &mut rng_a),
                b.read(FileId(file), off, 4096, &mut rng_b)
            );
        }
    }

    /// ZFS: every buffered record reappears in the flush exactly once
    /// (extent sectors == dirty records × record sectors), extents are
    /// frontier-consecutive, and each is at most the aggregation limit.
    #[test]
    fn zfs_flush_conservation(
        offsets in vec(0u64..10_000_000_000u64, 1..200),
    ) {
        let mut fs = Zfs::new(ZfsParams::default());
        let mut rng = SimRng::seed_from(4);
        let rec = fs.params().record_bytes;
        for &off in &offsets {
            fs.write(FileId(0), off, rec, false, &mut rng);
        }
        // An unaligned write of one record length spans two records.
        let distinct_records: std::collections::HashSet<u64> = offsets
            .iter()
            .flat_map(|o| (o / rec)..=((o + rec - 1) / rec))
            .collect();
        prop_assert_eq!(fs.dirty_records(), distinct_records.len());
        let extents = fs.flush(&mut rng);
        let total: u64 = extents.iter().map(|e| u64::from(e.sectors) * SECTOR_SIZE).sum();
        prop_assert_eq!(total, distinct_records.len() as u64 * rec);
        for e in &extents {
            prop_assert!(u64::from(e.sectors) * SECTOR_SIZE <= fs.params().aggregate_bytes);
            prop_assert!(e.direction.is_write());
        }
        for w in extents.windows(2) {
            prop_assert_eq!(w[0].lba.advance(u64::from(w[0].sectors)), w[1].lba);
        }
        // Second flush with nothing dirty is empty.
        prop_assert!(fs.flush(&mut rng).is_empty());
    }

    /// ZFS reads always return at least the requested bytes and stay in
    /// bounds, before and after rewrites.
    #[test]
    fn zfs_reads_cover_and_bound(
        offset in 0u64..10_000_000_000u64,
        rewrite in any::<bool>(),
    ) {
        let mut fs = Zfs::new(ZfsParams::default());
        let mut rng = SimRng::seed_from(5);
        let rec = fs.params().record_bytes;
        if rewrite {
            fs.write(FileId(0), offset, rec, false, &mut rng);
            let _ = fs.flush(&mut rng);
        }
        let extents = fs.read(FileId(0), offset, rec, &mut rng);
        let total: u64 = extents.iter().map(|e| u64::from(e.sectors) * SECTOR_SIZE).sum();
        prop_assert!(total >= rec);
        let cap = fs.params().capacity_bytes;
        for e in &extents {
            prop_assert!(e.lba.as_bytes() + u64::from(e.sectors) * SECTOR_SIZE <= cap,
                "extent {:?} beyond capacity {}", e, cap);
        }
    }

    /// ext3: journal commits stay inside the journal region; data writes
    /// stay outside it; flush drains all dirty blocks.
    #[test]
    fn ext3_journal_and_data_partition(
        ops in vec((0u64..40_000_000_000u64, 1u64..65_536, any::<bool>()), 1..60),
    ) {
        let mut fs = Ext3::new(Ext3Params::default());
        let mut rng = SimRng::seed_from(6);
        let journal = fs.params().journal_bytes;
        for &(off, len, sync) in &ops {
            let extents = fs.write(FileId(0), off, len, sync, &mut rng);
            if sync {
                prop_assert!(!extents.is_empty());
                // Exactly one extent (the last) is the journal commit.
                let commit = extents.last().unwrap();
                prop_assert!(commit.lba.as_bytes() < journal);
                for e in &extents[..extents.len() - 1] {
                    prop_assert!(e.lba.as_bytes() >= journal, "data in journal: {e:?}");
                }
            } else {
                prop_assert!(extents.is_empty());
            }
        }
        let flushed = fs.flush(&mut rng);
        prop_assert_eq!(fs.dirty_blocks(), 0);
        // After a final flush, a second one emits nothing.
        let _ = flushed;
        prop_assert!(fs.flush(&mut rng).is_empty());
    }

    /// Iometer never exceeds its region, always uses its block size, and
    /// keeps exactly `outstanding` tags in rotation.
    #[test]
    fn iometer_stays_in_region(
        block_pow in 9u32..17, // 512 B .. 64 KiB
        outstanding in 1u32..32,
        read_frac in 0.0f64..=1.0,
        rand_frac in 0.0f64..=1.0,
    ) {
        let block = 1u64 << block_pow;
        let region = 1024 * 1024 * 1024;
        let spec = AccessSpec {
            block_bytes: block,
            read_fraction: read_frac,
            random_fraction: rand_frac,
            outstanding,
            region_bytes: region,
            region_base: Lba::new(4096),
        };
        let mut w = IometerWorkload::new("p", spec, SimRng::seed_from(7));
        let start = w.start(SimTime::ZERO);
        prop_assert_eq!(start.issue.len(), outstanding as usize);
        let mut ios = start.issue;
        for k in 0..200u64 {
            let tag = ios[(k as usize) % ios.len()].tag;
            let next = w.on_complete(SimTime::from_micros(k), tag).issue;
            prop_assert_eq!(next.len(), 1);
            ios.extend(next);
        }
        for io in &ios {
            prop_assert_eq!(u64::from(io.sectors) * SECTOR_SIZE, block);
            prop_assert!(io.lba >= Lba::new(4096));
            prop_assert!(
                io.lba.as_bytes() + block <= 4096 * SECTOR_SIZE + region,
                "io beyond region: {io:?}"
            );
            prop_assert!(io.tag < u64::from(outstanding));
        }
    }
}
