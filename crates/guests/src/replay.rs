//! Open-loop trace replay.
//!
//! [`ReplayWorkload`] plays back a fixed schedule of block I/Os at their
//! recorded issue times, independent of completions. Combined with the
//! `vscsi-stats` tracing framework this enables the *what-if placement*
//! analysis the paper motivates (§1, §7): capture a workload's command
//! stream on one array, replay it against a different array model, and
//! compare the environment-dependent histograms (latency) while the
//! environment-independent ones stay fixed by construction.

use crate::workload::{BlockIo, Poll, Workload};
use simkit::SimTime;

/// One scheduled I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledIo {
    /// When to issue.
    pub at: SimTime,
    /// What to issue.
    pub io: BlockIo,
}

/// Replays a fixed schedule open-loop.
///
/// # Examples
///
/// ```
/// use guests::{BlockIo, ReplayWorkload, ScheduledIo, Workload};
/// use simkit::SimTime;
/// use vscsi::Lba;
///
/// let schedule = vec![
///     ScheduledIo { at: SimTime::from_micros(10), io: BlockIo::read(Lba::new(0), 8, 0) },
///     ScheduledIo { at: SimTime::from_micros(30), io: BlockIo::read(Lba::new(8), 8, 1) },
/// ];
/// let mut wl = ReplayWorkload::new("replay", schedule);
/// let p = wl.start(SimTime::ZERO);
/// assert_eq!(p.timer, Some(SimTime::from_micros(10)));
/// let p = wl.on_timer(SimTime::from_micros(10));
/// assert_eq!(p.issue.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ReplayWorkload {
    name: String,
    schedule: Vec<ScheduledIo>,
    pos: usize,
}

impl ReplayWorkload {
    /// Creates a replay from a schedule, which is sorted by issue time.
    pub fn new(name: &str, mut schedule: Vec<ScheduledIo>) -> Self {
        schedule.sort_by_key(|s| s.at);
        ReplayWorkload {
            name: name.to_owned(),
            schedule,
            pos: 0,
        }
    }

    /// I/Os not yet issued.
    pub fn remaining(&self) -> usize {
        self.schedule.len() - self.pos
    }

    /// `true` once the whole schedule has been issued.
    pub fn is_done(&self) -> bool {
        self.pos == self.schedule.len()
    }

    fn due(&mut self, now: SimTime) -> Poll {
        let mut issue = Vec::new();
        while self.pos < self.schedule.len() && self.schedule[self.pos].at <= now {
            issue.push(self.schedule[self.pos].io);
            self.pos += 1;
        }
        let timer = self.schedule.get(self.pos).map(|s| s.at);
        Poll { issue, timer }
    }
}

impl Workload for ReplayWorkload {
    fn start(&mut self, now: SimTime) -> Poll {
        self.due(now)
    }

    fn on_complete(&mut self, _now: SimTime, _tag: u64) -> Poll {
        Poll::idle() // open loop: completions don't trigger anything
    }

    fn on_timer(&mut self, now: SimTime) -> Poll {
        self.due(now)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vscsi::Lba;

    fn schedule() -> Vec<ScheduledIo> {
        (0..5u64)
            .map(|i| ScheduledIo {
                at: SimTime::from_micros(i * 100),
                io: BlockIo::read(Lba::new(i * 8), 8, i),
            })
            .collect()
    }

    #[test]
    fn issues_at_recorded_times() {
        let mut wl = ReplayWorkload::new("r", schedule());
        // t=0 item is due immediately.
        let p = wl.start(SimTime::ZERO);
        assert_eq!(p.issue.len(), 1);
        assert_eq!(p.timer, Some(SimTime::from_micros(100)));
        assert_eq!(wl.remaining(), 4);
        // Firing at t=250 releases items at 100 and 200.
        let p = wl.on_timer(SimTime::from_micros(250));
        assert_eq!(p.issue.len(), 2);
        assert_eq!(p.timer, Some(SimTime::from_micros(300)));
        // Completions do nothing.
        assert_eq!(wl.on_complete(SimTime::from_micros(260), 0), Poll::idle());
    }

    #[test]
    fn unsorted_schedules_are_sorted() {
        let mut sched = schedule();
        sched.reverse();
        let mut wl = ReplayWorkload::new("r", sched);
        let p = wl.start(SimTime::ZERO);
        assert_eq!(p.issue[0].tag, 0);
        assert_eq!(p.timer, Some(SimTime::from_micros(100)));
    }

    #[test]
    fn drains_to_done() {
        let mut wl = ReplayWorkload::new("r", schedule());
        wl.start(SimTime::ZERO);
        let p = wl.on_timer(SimTime::from_secs(1));
        assert_eq!(p.issue.len(), 4);
        assert_eq!(p.timer, None);
        assert!(wl.is_done());
        // Spurious timer after done: idle.
        assert_eq!(wl.on_timer(SimTime::from_secs(2)), Poll::idle());
    }

    #[test]
    fn empty_schedule() {
        let mut wl = ReplayWorkload::new("r", Vec::new());
        assert_eq!(wl.start(SimTime::ZERO), Poll::idle());
        assert!(wl.is_done());
    }
}
