//! The closed-loop workload abstraction the hypervisor driver consumes.
//!
//! A [`Workload`] models everything above the virtual disk: application
//! threads, think times, and the guest filesystem. The hypervisor driver
//! (in the `esx` crate) calls it at three points — start, I/O completion,
//! timer expiry — and the workload responds with block I/Os to issue and/or
//! the next timer it needs. This mirrors how real guests generate I/O: new
//! commands are triggered by completions (closed loop) or by clocks (think
//! time, periodic flushes).

use simkit::SimTime;
use vscsi::{IoDirection, Lba};

/// One block-level I/O a workload wants issued on its virtual disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockIo {
    /// Read or write.
    pub direction: IoDirection,
    /// First sector on the virtual disk.
    pub lba: Lba,
    /// Sectors to transfer (> 0).
    pub sectors: u32,
    /// Opaque tag returned to the workload on completion.
    pub tag: u64,
}

impl BlockIo {
    /// Convenience constructor.
    pub fn new(direction: IoDirection, lba: Lba, sectors: u32, tag: u64) -> Self {
        debug_assert!(sectors > 0, "zero-length BlockIo");
        BlockIo {
            direction,
            lba,
            sectors,
            tag,
        }
    }

    /// A read.
    pub fn read(lba: Lba, sectors: u32, tag: u64) -> Self {
        BlockIo::new(IoDirection::Read, lba, sectors, tag)
    }

    /// A write.
    pub fn write(lba: Lba, sectors: u32, tag: u64) -> Self {
        BlockIo::new(IoDirection::Write, lba, sectors, tag)
    }
}

/// A workload's response to a driver event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Poll {
    /// I/Os to issue immediately.
    pub issue: Vec<BlockIo>,
    /// The earliest instant the workload wants [`Workload::on_timer`]
    /// called, if any. Replaces any previously requested timer.
    pub timer: Option<SimTime>,
}

impl Poll {
    /// Nothing to do.
    pub fn idle() -> Poll {
        Poll::default()
    }

    /// Issue these I/Os, no timer change.
    pub fn issue(ios: Vec<BlockIo>) -> Poll {
        Poll {
            issue: ios,
            timer: None,
        }
    }

    /// Just arm a timer.
    pub fn timer(at: SimTime) -> Poll {
        Poll {
            issue: Vec::new(),
            timer: Some(at),
        }
    }

    /// Issue I/Os and arm a timer.
    pub fn issue_with_timer(ios: Vec<BlockIo>, at: SimTime) -> Poll {
        Poll {
            issue: ios,
            timer: Some(at),
        }
    }
}

/// A guest workload driven in closed loop by the hypervisor.
///
/// Implementations must be deterministic given their construction-time RNG;
/// the driver provides no randomness.
pub trait Workload {
    /// Called once when the simulation starts.
    fn start(&mut self, now: SimTime) -> Poll;

    /// Called when an I/O previously returned from any hook completes;
    /// `tag` is the [`BlockIo::tag`] of the completed I/O.
    fn on_complete(&mut self, now: SimTime, tag: u64) -> Poll;

    /// Called when the most recently requested timer expires.
    fn on_timer(&mut self, now: SimTime) -> Poll;

    /// A short human-readable name for reports.
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_constructors() {
        assert_eq!(
            Poll::idle(),
            Poll {
                issue: vec![],
                timer: None
            }
        );
        let io = BlockIo::read(Lba::new(0), 8, 7);
        assert_eq!(
            Poll::issue(vec![io]),
            Poll {
                issue: vec![io],
                timer: None
            }
        );
        let t = SimTime::from_micros(5);
        assert_eq!(Poll::timer(t).timer, Some(t));
        let p = Poll::issue_with_timer(vec![io], t);
        assert_eq!(p.issue.len(), 1);
        assert_eq!(p.timer, Some(t));
    }

    #[test]
    fn block_io_helpers() {
        let r = BlockIo::read(Lba::new(10), 8, 1);
        assert!(r.direction.is_read());
        let w = BlockIo::write(Lba::new(10), 8, 2);
        assert!(w.direction.is_write());
        assert_eq!(w.tag, 2);
    }
}
