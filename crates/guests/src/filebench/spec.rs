//! AST for the Filebench-style model language.
//!
//! Filebench (§4.1, \[16\]) is "a model based workload generator for file
//! systems ... The input to this program is a model file that specifies
//! processes and threads in a workflow." This module defines the parsed
//! representation of the subset we implement: file declarations and
//! process/thread/flowop trees with the attributes the OLTP personality
//! needs (iosize, random/sequential, sync, think values, instances).

use simkit::SimDuration;

/// A parsed model file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModelSpec {
    /// Declared files.
    pub files: Vec<FileSpec>,
    /// Declared processes.
    pub processes: Vec<ProcessSpec>,
}

impl ModelSpec {
    /// Total thread instances across all processes.
    pub fn total_threads(&self) -> usize {
        self.processes
            .iter()
            .map(|p| {
                p.instances as usize
                    * p.threads
                        .iter()
                        .map(|t| t.instances as usize)
                        .sum::<usize>()
            })
            .sum()
    }

    /// Looks up a file by name.
    pub fn file(&self, name: &str) -> Option<&FileSpec> {
        self.files.iter().find(|f| f.name == name)
    }
}

/// A `define file` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileSpec {
    /// Name referenced by flowops.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
}

/// A `define process` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessSpec {
    /// Process name.
    pub name: String,
    /// Parallel instances.
    pub instances: u32,
    /// Threads within each instance.
    pub threads: Vec<ThreadSpec>,
}

/// A `thread` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadSpec {
    /// Thread name.
    pub name: String,
    /// Parallel instances.
    pub instances: u32,
    /// The flowop program each instance loops over.
    pub flowops: Vec<FlowopSpec>,
}

/// One flowop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowopSpec {
    /// Flowop name (for reports).
    pub name: String,
    /// What it does.
    pub kind: FlowopKind,
}

/// Access pattern of an I/O flowop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Uniformly random offsets within the file.
    Random,
    /// Monotonically advancing offsets, wrapping at end of file.
    Sequential,
}

/// The flowop kinds the engine executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowopKind {
    /// Read `iosize` bytes from `file`.
    Read {
        /// Target file name.
        file: String,
        /// Bytes per operation.
        iosize: u64,
        /// Offset pattern.
        pattern: AccessPattern,
        /// Optional rate limit in operations per second (an *open* flow in
        /// Filebench terms; the paper: "Rate and throughput limits can be
        /// specified").
        rate: Option<u32>,
    },
    /// Write `iosize` bytes to `file`.
    Write {
        /// Target file name.
        file: String,
        /// Bytes per operation.
        iosize: u64,
        /// Offset pattern.
        pattern: AccessPattern,
        /// `true` forces the write (and any journal/log activity) to disk
        /// before the flowop completes.
        sync: bool,
        /// Optional rate limit in operations per second.
        rate: Option<u32>,
    },
    /// Append `iosize` bytes to `file` (shared per-file append cursor).
    Append {
        /// Target file name.
        file: String,
        /// Bytes per operation.
        iosize: u64,
        /// Synchronous append (log writes).
        sync: bool,
        /// Optional rate limit in operations per second.
        rate: Option<u32>,
    },
    /// Pause for a fixed think time.
    Think {
        /// Pause duration.
        duration: SimDuration,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_threads_multiplies_instances() {
        let spec = ModelSpec {
            files: vec![],
            processes: vec![ProcessSpec {
                name: "p".into(),
                instances: 2,
                threads: vec![
                    ThreadSpec {
                        name: "a".into(),
                        instances: 3,
                        flowops: vec![],
                    },
                    ThreadSpec {
                        name: "b".into(),
                        instances: 1,
                        flowops: vec![],
                    },
                ],
            }],
        };
        assert_eq!(spec.total_threads(), 8);
    }

    #[test]
    fn file_lookup() {
        let spec = ModelSpec {
            files: vec![FileSpec {
                name: "data".into(),
                size: 1024,
            }],
            processes: vec![],
        };
        assert_eq!(spec.file("data").unwrap().size, 1024);
        assert!(spec.file("nope").is_none());
    }
}
