//! Parser for the Filebench-style model language.
//!
//! Grammar (a faithful subset of Filebench's `.f` syntax):
//!
//! ```text
//! model      := (file_def | process_def)*
//! file_def   := "define" "file" attrs
//! process_def:= "define" "process" attrs "{" thread_def+ "}"
//! thread_def := "thread" attrs "{" flowop_def+ "}"
//! flowop_def := "flowop" kind attrs
//! kind       := "read" | "write" | "append" | "think"
//! attrs      := attr ("," attr)*
//! attr       := key "=" value | flag            (flags: random, sequential, sync)
//! value      := size (4k, 10g), duration (2ms, 100us), integer, or word
//! ```
//!
//! Comments run from `#` to end of line.

use super::spec::{
    AccessPattern, FileSpec, FlowopKind, FlowopSpec, ModelSpec, ProcessSpec, ThreadSpec,
};
use simkit::SimDuration;
use std::fmt;

/// Error produced when a model file does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelError {
    /// 1-based line of the failure.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "model parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseModelError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Eq,
    Comma,
    LBrace,
    RBrace,
}

struct Lexer {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Lexer {
    fn new(text: &str) -> Self {
        let mut toks = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("");
            let mut chars = line.chars().peekable();
            let mut word = String::new();
            let lineno = lineno + 1;
            let flush = |word: &mut String, toks: &mut Vec<(usize, Tok)>| {
                if !word.is_empty() {
                    toks.push((lineno, Tok::Word(std::mem::take(word))));
                }
            };
            while let Some(c) = chars.next() {
                match c {
                    '=' => {
                        flush(&mut word, &mut toks);
                        toks.push((lineno, Tok::Eq));
                    }
                    ',' => {
                        flush(&mut word, &mut toks);
                        toks.push((lineno, Tok::Comma));
                    }
                    '{' => {
                        flush(&mut word, &mut toks);
                        toks.push((lineno, Tok::LBrace));
                    }
                    '}' => {
                        flush(&mut word, &mut toks);
                        toks.push((lineno, Tok::RBrace));
                    }
                    c if c.is_whitespace() => flush(&mut word, &mut toks),
                    c => word.push(c),
                }
            }
            flush(&mut word, &mut toks);
        }
        Lexer { toks, pos: 0 }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |(l, _)| *l)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseModelError {
        ParseModelError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect_word(&mut self, what: &str) -> Result<String, ParseModelError> {
        match self.next() {
            Some(Tok::Word(w)) => Ok(w),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), ParseModelError> {
        match self.next() {
            Some(t) if t == tok => Ok(()),
            other => Err(self.err(format!("expected {tok:?}, found {other:?}"))),
        }
    }
}

/// A parsed `key=value` or bare-flag attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Attr {
    key: String,
    value: Option<String>,
}

/// Parses an attribute list: `a=1,b=2k,random`.
fn parse_attrs(lx: &mut Lexer) -> Result<Vec<Attr>, ParseModelError> {
    let mut attrs = Vec::new();
    loop {
        let key = lx.expect_word("attribute name")?;
        let value = if lx.peek() == Some(&Tok::Eq) {
            lx.next();
            Some(lx.expect_word("attribute value")?)
        } else {
            None
        };
        attrs.push(Attr { key, value });
        if lx.peek() == Some(&Tok::Comma) {
            lx.next();
        } else {
            break;
        }
    }
    Ok(attrs)
}

fn find<'a>(attrs: &'a [Attr], key: &str) -> Option<&'a Attr> {
    attrs.iter().find(|a| a.key == key)
}

fn required<'a>(lx: &Lexer, attrs: &'a [Attr], key: &str) -> Result<&'a str, ParseModelError> {
    find(attrs, key)
        .and_then(|a| a.value.as_deref())
        .ok_or_else(|| lx.err(format!("missing required attribute {key}")))
}

/// Parses a size literal: `4k`, `8192`, `10g`, `1m`.
pub fn parse_size(s: &str) -> Option<u64> {
    let lower = s.to_ascii_lowercase();
    let (digits, mult) = match lower.chars().last()? {
        'k' => (&lower[..lower.len() - 1], 1024u64),
        'm' => (&lower[..lower.len() - 1], 1024 * 1024),
        'g' => (&lower[..lower.len() - 1], 1024 * 1024 * 1024),
        't' => (&lower[..lower.len() - 1], 1024u64.pow(4)),
        _ => (lower.as_str(), 1),
    };
    digits.parse::<u64>().ok().map(|n| n * mult)
}

/// Parses a duration literal: `100us`, `2ms`, `1s`, bare integers = µs.
pub fn parse_duration(s: &str) -> Option<SimDuration> {
    let lower = s.to_ascii_lowercase();
    if let Some(d) = lower.strip_suffix("ms") {
        return d.parse::<u64>().ok().map(SimDuration::from_millis);
    }
    if let Some(d) = lower.strip_suffix("us") {
        return d.parse::<u64>().ok().map(SimDuration::from_micros);
    }
    if let Some(d) = lower.strip_suffix('s') {
        return d.parse::<u64>().ok().map(SimDuration::from_secs);
    }
    lower.parse::<u64>().ok().map(SimDuration::from_micros)
}

fn parse_pattern(attrs: &[Attr]) -> AccessPattern {
    if find(attrs, "random").is_some() {
        AccessPattern::Random
    } else {
        AccessPattern::Sequential
    }
}

fn parse_flowop(lx: &mut Lexer) -> Result<FlowopSpec, ParseModelError> {
    let kind_word = lx.expect_word("flowop kind")?;
    let attrs = parse_attrs(lx)?;
    let name = find(&attrs, "name")
        .and_then(|a| a.value.clone())
        .unwrap_or_else(|| kind_word.clone());
    let iosize = || -> Result<u64, ParseModelError> {
        let s = required(lx, &attrs, "iosize")?;
        parse_size(s).ok_or_else(|| lx.err(format!("bad iosize {s:?}")))
    };
    let rate = || -> Result<Option<u32>, ParseModelError> {
        match find(&attrs, "rate").and_then(|a| a.value.as_deref()) {
            None => Ok(None),
            Some(v) => v
                .parse::<u32>()
                .ok()
                .filter(|&r| r > 0)
                .map(Some)
                .ok_or_else(|| lx.err(format!("bad rate {v:?} (ops/sec, > 0)"))),
        }
    };
    let kind = match kind_word.as_str() {
        "read" => FlowopKind::Read {
            file: required(lx, &attrs, "file")?.to_owned(),
            iosize: iosize()?,
            pattern: parse_pattern(&attrs),
            rate: rate()?,
        },
        "write" => FlowopKind::Write {
            file: required(lx, &attrs, "file")?.to_owned(),
            iosize: iosize()?,
            pattern: parse_pattern(&attrs),
            sync: find(&attrs, "sync").is_some(),
            rate: rate()?,
        },
        "append" => FlowopKind::Append {
            file: required(lx, &attrs, "file")?.to_owned(),
            iosize: iosize()?,
            sync: find(&attrs, "sync").is_some(),
            rate: rate()?,
        },
        "think" => {
            let v = required(lx, &attrs, "value")?;
            FlowopKind::Think {
                duration: parse_duration(v)
                    .ok_or_else(|| lx.err(format!("bad think value {v:?}")))?,
            }
        }
        other => return Err(lx.err(format!("unknown flowop kind {other:?}"))),
    };
    Ok(FlowopSpec { name, kind })
}

fn parse_thread(lx: &mut Lexer) -> Result<ThreadSpec, ParseModelError> {
    let attrs = parse_attrs(lx)?;
    let name = required(lx, &attrs, "name")?.to_owned();
    let instances = match find(&attrs, "instances").and_then(|a| a.value.as_deref()) {
        Some(v) => v
            .parse::<u32>()
            .map_err(|e| lx.err(format!("bad instances: {e}")))?,
        None => 1,
    };
    lx.expect(Tok::LBrace)?;
    let mut flowops = Vec::new();
    loop {
        match lx.peek() {
            Some(Tok::RBrace) => {
                lx.next();
                break;
            }
            Some(Tok::Word(w)) if w == "flowop" => {
                lx.next();
                flowops.push(parse_flowop(lx)?);
            }
            other => return Err(lx.err(format!("expected flowop or '}}', found {other:?}"))),
        }
    }
    if flowops.is_empty() {
        return Err(lx.err(format!("thread {name:?} has no flowops")));
    }
    Ok(ThreadSpec {
        name,
        instances,
        flowops,
    })
}

/// Parses a complete model file.
///
/// # Errors
///
/// Returns a [`ParseModelError`] with the offending line on any syntax or
/// semantic problem (unknown flowop, missing attribute, undeclared file…).
///
/// # Examples
///
/// ```
/// use guests::filebench::parse_model;
///
/// let spec = parse_model(
///     "define file name=data,size=1g\n\
///      define process name=p,instances=1 {\n\
///        thread name=t,instances=2 {\n\
///          flowop read name=r,file=data,iosize=4k,random\n\
///          flowop think name=z,value=1ms\n\
///        }\n\
///      }\n",
/// )?;
/// assert_eq!(spec.total_threads(), 2);
/// # Ok::<(), guests::filebench::ParseModelError>(())
/// ```
pub fn parse_model(text: &str) -> Result<ModelSpec, ParseModelError> {
    let mut lx = Lexer::new(text);
    let mut spec = ModelSpec::default();
    while let Some(tok) = lx.next() {
        match tok {
            Tok::Word(w) if w == "define" => {
                let what = lx.expect_word("'file' or 'process'")?;
                match what.as_str() {
                    "file" => {
                        let attrs = parse_attrs(&mut lx)?;
                        let name = required(&lx, &attrs, "name")?.to_owned();
                        let size_str = required(&lx, &attrs, "size")?;
                        let size = parse_size(size_str)
                            .filter(|&s| s > 0)
                            .ok_or_else(|| lx.err(format!("bad file size {size_str:?}")))?;
                        spec.files.push(FileSpec { name, size });
                    }
                    "process" => {
                        let attrs = parse_attrs(&mut lx)?;
                        let name = required(&lx, &attrs, "name")?.to_owned();
                        let instances =
                            match find(&attrs, "instances").and_then(|a| a.value.as_deref()) {
                                Some(v) => v
                                    .parse::<u32>()
                                    .map_err(|e| lx.err(format!("bad instances: {e}")))?,
                                None => 1,
                            };
                        lx.expect(Tok::LBrace)?;
                        let mut threads = Vec::new();
                        loop {
                            match lx.peek() {
                                Some(Tok::RBrace) => {
                                    lx.next();
                                    break;
                                }
                                Some(Tok::Word(w)) if w == "thread" => {
                                    lx.next();
                                    threads.push(parse_thread(&mut lx)?);
                                }
                                other => {
                                    return Err(
                                        lx.err(format!("expected thread or '}}', found {other:?}"))
                                    )
                                }
                            }
                        }
                        if threads.is_empty() {
                            return Err(lx.err(format!("process {name:?} has no threads")));
                        }
                        spec.processes.push(ProcessSpec {
                            name,
                            instances,
                            threads,
                        });
                    }
                    other => return Err(lx.err(format!("cannot define {other:?}"))),
                }
            }
            other => return Err(lx.err(format!("expected 'define', found {other:?}"))),
        }
    }
    // Semantic check: every referenced file is declared.
    for p in &spec.processes {
        for t in &p.threads {
            for f in &t.flowops {
                let file = match &f.kind {
                    FlowopKind::Read { file, .. }
                    | FlowopKind::Write { file, .. }
                    | FlowopKind::Append { file, .. } => Some(file),
                    FlowopKind::Think { .. } => None,
                };
                if let Some(file) = file {
                    if spec.file(file).is_none() {
                        return Err(ParseModelError {
                            line: 0,
                            message: format!(
                                "flowop {:?} references undeclared file {file:?}",
                                f.name
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    const OK_MODEL: &str = "\
# a comment
define file name=data,size=10g
define file name=log,size=1g

define process name=oltp,instances=1 {
  thread name=reader,instances=20 {
    flowop read name=dbread,file=data,iosize=4k,random
    flowop think name=t1,value=2ms
  }
  thread name=logger {
    flowop append name=lg,file=log,iosize=4k,sync
    flowop think name=t2,value=5ms
  }
}
";

    #[test]
    fn parses_full_model() {
        let spec = parse_model(OK_MODEL).unwrap();
        assert_eq!(spec.files.len(), 2);
        assert_eq!(spec.file("data").unwrap().size, 10 * 1024 * 1024 * 1024);
        assert_eq!(spec.processes.len(), 1);
        let p = &spec.processes[0];
        assert_eq!(p.threads.len(), 2);
        assert_eq!(p.threads[0].instances, 20);
        assert_eq!(p.threads[1].instances, 1);
        assert_eq!(spec.total_threads(), 21);
        match &p.threads[0].flowops[0].kind {
            FlowopKind::Read {
                file,
                iosize,
                pattern,
                ..
            } => {
                assert_eq!(file, "data");
                assert_eq!(*iosize, 4096);
                assert_eq!(*pattern, AccessPattern::Random);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &p.threads[1].flowops[0].kind {
            FlowopKind::Append { sync, .. } => assert!(*sync),
            other => panic!("unexpected {other:?}"),
        }
        match &p.threads[1].flowops[1].kind {
            FlowopKind::Think { duration } => {
                assert_eq!(*duration, SimDuration::from_millis(5))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn size_literals() {
        assert_eq!(parse_size("4k"), Some(4096));
        assert_eq!(parse_size("8192"), Some(8192));
        assert_eq!(parse_size("1m"), Some(1024 * 1024));
        assert_eq!(parse_size("10G"), Some(10 * 1024 * 1024 * 1024));
        assert_eq!(parse_size("2t"), Some(2 * 1024u64.pow(4)));
        assert_eq!(parse_size("x"), None);
    }

    #[test]
    fn duration_literals() {
        assert_eq!(parse_duration("100us"), Some(SimDuration::from_micros(100)));
        assert_eq!(parse_duration("2ms"), Some(SimDuration::from_millis(2)));
        assert_eq!(parse_duration("1s"), Some(SimDuration::from_secs(1)));
        assert_eq!(parse_duration("250"), Some(SimDuration::from_micros(250)));
        assert_eq!(parse_duration("abc"), None);
    }

    #[test]
    fn error_on_undeclared_file() {
        let err = parse_model(
            "define process name=p {\n thread name=t {\n flowop read name=r,file=ghost,iosize=4k\n }\n}\n",
        )
        .unwrap_err();
        assert!(err.message.contains("ghost"));
    }

    #[test]
    fn error_on_unknown_flowop() {
        let err = parse_model(
            "define file name=d,size=1m\ndefine process name=p {\n thread name=t {\n flowop dance name=x,file=d,iosize=4k\n }\n}\n",
        )
        .unwrap_err();
        assert!(err.message.contains("dance"));
        assert!((4..=5).contains(&err.line), "line = {}", err.line);
    }

    #[test]
    fn error_on_missing_attrs() {
        assert!(parse_model("define file name=d\n").is_err()); // missing size
        assert!(parse_model(
            "define file name=d,size=1m\ndefine process name=p {\n thread name=t {\n flowop read name=r,file=d\n }\n}\n"
        )
        .is_err()); // missing iosize
    }

    #[test]
    fn error_on_empty_blocks() {
        assert!(parse_model("define file name=d,size=1m\ndefine process name=p {\n}\n").is_err());
        assert!(parse_model(
            "define file name=d,size=1m\ndefine process name=p {\n thread name=t {\n }\n}\n"
        )
        .is_err());
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let spec =
            parse_model("  # nothing\n\ndefine file name=d , size = 1m # trailing\n").unwrap();
        assert_eq!(spec.files.len(), 1);
    }

    #[test]
    fn sequential_is_default_pattern() {
        let spec = parse_model(
            "define file name=d,size=1m\ndefine process name=p {\n thread name=t {\n flowop read name=r,file=d,iosize=4k\n }\n}\n",
        )
        .unwrap();
        match &spec.processes[0].threads[0].flowops[0].kind {
            FlowopKind::Read { pattern, .. } => assert_eq!(*pattern, AccessPattern::Sequential),
            other => panic!("unexpected {other:?}"),
        }
    }
}
