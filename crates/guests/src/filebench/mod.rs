//! Filebench: a model-based workload generator (§4.1, \[16\]).
//!
//! "The input to this program is a model file that specifies processes and
//! threads in a workflow … The model specification language is rich and
//! allows different request types including read, write, create, delete
//! and append." We implement the subset the paper's experiments exercise —
//! read/write/append/think flowops with iosize, random/sequential, sync
//! and instances attributes — plus the OLTP personality used in §4.1.

mod engine;
mod parse;
mod spec;

pub use engine::FilebenchWorkload;
pub use parse::{parse_duration, parse_model, parse_size, ParseModelError};
pub use spec::{
    AccessPattern, FileSpec, FlowopKind, FlowopSpec, ModelSpec, ProcessSpec, ThreadSpec,
};

/// The Filebench OLTP "personality": "a model that tries to emulate an
/// Oracle database server generating I/Os under an online transaction
/// processing workload" (§4.1), with the paper's parameter changes applied
/// (10 GiB total filesize, 1 GiB logfile).
///
/// Shape: a pool of random 4 KiB readers (table-space reads), database
/// writers issuing random 4 KiB writes, and a log writer appending
/// synchronously — "table space reads and updates are intermixed with log
/// writes resulting in a lot of randomness in the I/O stream".
pub fn oltp_model() -> String {
    "\
# Filebench OLTP personality (paper configuration: filesize=10g, logfilesize=1g)
define file name=datafile,size=10g
define file name=logfile,size=1g

define process name=oltp,instances=1 {
  thread name=shadow-reader,instances=20 {
    flowop read name=dbread,file=datafile,iosize=4k,random
    flowop think name=reader-think,value=3ms
  }
  thread name=db-writer,instances=10 {
    flowop write name=dbwrite,file=datafile,iosize=4k,random,sync
    flowop think name=writer-think,value=10ms
  }
  thread name=log-writer,instances=1 {
    flowop append name=logwrite,file=logfile,iosize=4k,sync
    flowop think name=log-think,value=2ms
  }
}
"
    .to_owned()
}

/// A web-server personality, after Filebench's `webserver.f`: a pool of
/// threads reading files mostly sequentially (whole-file reads of mixed
/// sizes) plus one weblog appender. Read-dominated, moderately sequential.
pub fn webserver_model() -> String {
    "\
# Filebench webserver personality (open files, stream them, append a log)
define file name=docroot,size=4g
define file name=weblog,size=256m

define process name=webserver,instances=1 {
  thread name=html-reader,instances=16 {
    flowop read name=readpage,file=docroot,iosize=16k,random
    flowop read name=readbody,file=docroot,iosize=64k,random
    flowop think name=service,value=1ms
  }
  thread name=weblog-writer,instances=1 {
    flowop append name=weblogwrite,file=weblog,iosize=8k,sync
    flowop think name=logpause,value=4ms
  }
}
"
    .to_owned()
}

/// A file-server personality, after Filebench's `fileserver.f`: threads
/// that read whole files, write new ones, and append — a mixed, bursty
/// pattern with a broad size distribution.
pub fn fileserver_model() -> String {
    "\
# Filebench fileserver personality (mixed read/write/append)
define file name=share,size=8g
define file name=newfiles,size=2g

define process name=fileserver,instances=1 {
  thread name=filereader,instances=10 {
    flowop read name=wholeread,file=share,iosize=128k,random
    flowop think name=t1,value=3ms
  }
  thread name=filewriter,instances=5 {
    flowop write name=create,file=newfiles,iosize=64k,random
    flowop think name=t2,value=6ms
  }
  thread name=appender,instances=2 {
    flowop append name=app,file=newfiles,iosize=16k,sync
    flowop think name=t3,value=8ms
  }
}
"
    .to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oltp_model_parses() {
        let spec = parse_model(&oltp_model()).unwrap();
        assert_eq!(spec.files.len(), 2);
        assert_eq!(spec.file("datafile").unwrap().size, 10 * 1024 * 1024 * 1024);
        assert_eq!(spec.file("logfile").unwrap().size, 1024 * 1024 * 1024);
        assert_eq!(spec.total_threads(), 31);
    }

    #[test]
    fn webserver_model_parses_and_is_read_heavy() {
        let spec = parse_model(&webserver_model()).unwrap();
        assert_eq!(spec.total_threads(), 17);
        let reads = spec.processes[0].threads[0]
            .flowops
            .iter()
            .filter(|f| matches!(f.kind, FlowopKind::Read { .. }))
            .count();
        assert_eq!(reads, 2);
    }

    #[test]
    fn fileserver_model_parses_with_three_roles() {
        let spec = parse_model(&fileserver_model()).unwrap();
        assert_eq!(spec.processes[0].threads.len(), 3);
        assert_eq!(spec.total_threads(), 17);
        assert!(spec.file("share").unwrap().size > spec.file("newfiles").unwrap().size);
    }

    #[test]
    fn bundled_personalities_run_on_ufs() {
        use crate::fs::{Ufs, UfsParams};
        use crate::workload::Workload;
        for model in [webserver_model(), fileserver_model()] {
            let spec = parse_model(&model).unwrap();
            let mut wl = FilebenchWorkload::new(
                "p",
                spec,
                Box::new(Ufs::new(UfsParams::default())),
                simkit::SimRng::seed_from(1),
            );
            let poll = wl.start(simkit::SimTime::ZERO);
            assert!(!poll.issue.is_empty());
        }
    }
}
