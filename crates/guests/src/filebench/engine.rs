//! The Filebench execution engine: interprets a parsed model against a
//! [`Filesystem`] model, producing the closed-loop block-I/O stream the
//! hypervisor drives.

use super::spec::{AccessPattern, FlowopKind, FlowopSpec, ModelSpec};
use crate::fs::{Extent, FileId, Filesystem};
use crate::workload::{BlockIo, Poll, Workload};
use simkit::{SimDuration, SimRng, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Tag used for background (flush) I/Os no thread waits on.
const FLUSH_TAG: u64 = u64::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum TimerKind {
    Thread(usize),
    Flush,
}

#[derive(Debug)]
struct ThreadState {
    flowops: Vec<FlowopSpec>,
    pc: usize,
    /// Sequential-pattern cursors, one per flowop index.
    cursors: Vec<u64>,
    /// Rate-limit gates, one per flowop index: the earliest time the
    /// flowop may run again.
    next_allowed: Vec<SimTime>,
    /// Outstanding block I/Os the thread is waiting for.
    pending: u32,
}

/// A running Filebench personality bound to one virtual disk.
///
/// # Examples
///
/// ```
/// use guests::filebench::{oltp_model, FilebenchWorkload};
/// use guests::fs::{Ufs, UfsParams};
/// use guests::Workload;
/// use simkit::{SimRng, SimTime};
///
/// let spec = guests::filebench::parse_model(&oltp_model()).unwrap();
/// let mut wl = FilebenchWorkload::new(
///     "oltp-ufs",
///     spec,
///     Box::new(Ufs::new(UfsParams::default())),
///     SimRng::seed_from(1),
/// );
/// let poll = wl.start(SimTime::ZERO);
/// assert!(!poll.issue.is_empty());
/// ```
pub struct FilebenchWorkload {
    name: String,
    fs: Box<dyn Filesystem>,
    rng: SimRng,
    threads: Vec<ThreadState>,
    files: HashMap<String, (FileId, u64)>,
    /// Shared append cursor per file.
    append_cursors: HashMap<FileId, u64>,
    timers: BinaryHeap<Reverse<(SimTime, u64, TimerKind)>>,
    timer_seq: u64,
    ops_executed: u64,
}

impl std::fmt::Debug for FilebenchWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FilebenchWorkload")
            .field("name", &self.name)
            .field("fs", &self.fs.name())
            .field("threads", &self.threads.len())
            .field("ops_executed", &self.ops_executed)
            .finish()
    }
}

impl FilebenchWorkload {
    /// Instantiates every thread of every process instance in `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the spec declares no threads.
    pub fn new(name: &str, spec: ModelSpec, fs: Box<dyn Filesystem>, rng: SimRng) -> Self {
        let mut files = HashMap::new();
        for (i, f) in spec.files.iter().enumerate() {
            files.insert(f.name.clone(), (FileId(i as u32), f.size));
        }
        let mut threads = Vec::new();
        for p in &spec.processes {
            for _ in 0..p.instances {
                for t in &p.threads {
                    for _ in 0..t.instances {
                        threads.push(ThreadState {
                            flowops: t.flowops.clone(),
                            pc: 0,
                            cursors: vec![0; t.flowops.len()],
                            next_allowed: vec![SimTime::ZERO; t.flowops.len()],
                            pending: 0,
                        });
                    }
                }
            }
        }
        assert!(!threads.is_empty(), "model has no threads");
        FilebenchWorkload {
            name: name.to_owned(),
            fs,
            rng,
            threads,
            files,
            append_cursors: HashMap::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            ops_executed: 0,
        }
    }

    /// Flowops executed so far (all kinds, including thinks).
    pub fn ops_executed(&self) -> u64 {
        self.ops_executed
    }

    /// The filesystem model in use.
    pub fn filesystem_name(&self) -> &'static str {
        self.fs.name()
    }

    fn arm(&mut self, at: SimTime, kind: TimerKind) {
        self.timers.push(Reverse((at, self.timer_seq, kind)));
        self.timer_seq += 1;
    }

    fn next_timer(&self) -> Option<SimTime> {
        self.timers.peek().map(|Reverse((t, _, _))| *t)
    }

    fn offset_for(
        rng: &mut SimRng,
        cursor: &mut u64,
        pattern: AccessPattern,
        file_size: u64,
        iosize: u64,
    ) -> u64 {
        let iosize = iosize.max(1).min(file_size);
        let slots = (file_size / iosize).max(1);
        match pattern {
            AccessPattern::Random => rng.range_inclusive(0, slots - 1) * iosize,
            AccessPattern::Sequential => {
                let off = *cursor;
                *cursor = (*cursor + iosize) % (slots * iosize);
                off
            }
        }
    }

    /// Runs thread `t` forward until it blocks on I/O or a think; returns
    /// the I/Os to issue.
    fn run_thread(&mut self, t: usize, now: SimTime) -> Vec<BlockIo> {
        let mut spins = 0usize;
        loop {
            let (kind, pc) = {
                let th = &self.threads[t];
                (th.flowops[th.pc].kind.clone(), th.pc)
            };
            // Rate-limited flowops (open flows): wait for the gate without
            // consuming the flowop.
            let rate = match &kind {
                FlowopKind::Read { rate, .. }
                | FlowopKind::Write { rate, .. }
                | FlowopKind::Append { rate, .. } => *rate,
                FlowopKind::Think { .. } => None,
            };
            if let Some(rate) = rate {
                let gate = self.threads[t].next_allowed[pc];
                if now < gate {
                    self.arm(gate, TimerKind::Thread(t));
                    return Vec::new();
                }
                self.threads[t].next_allowed[pc] =
                    now + SimDuration::from_secs_f64(1.0 / f64::from(rate));
            }
            // Advance the program counter (loops forever).
            {
                let th = &mut self.threads[t];
                th.pc = (th.pc + 1) % th.flowops.len();
            }
            self.ops_executed += 1;
            let extents: Vec<Extent> = match kind {
                FlowopKind::Think { duration } => {
                    self.arm(now + duration, TimerKind::Thread(t));
                    return Vec::new();
                }
                FlowopKind::Read {
                    ref file,
                    iosize,
                    pattern,
                    ..
                } => {
                    let (fid, size) = self.files[file.as_str()];
                    let mut cursor = self.threads[t].cursors[pc];
                    let off = Self::offset_for(&mut self.rng, &mut cursor, pattern, size, iosize);
                    self.threads[t].cursors[pc] = cursor;
                    self.fs.read(fid, off, iosize, &mut self.rng)
                }
                FlowopKind::Write {
                    ref file,
                    iosize,
                    pattern,
                    sync,
                    ..
                } => {
                    let (fid, size) = self.files[file.as_str()];
                    let mut cursor = self.threads[t].cursors[pc];
                    let off = Self::offset_for(&mut self.rng, &mut cursor, pattern, size, iosize);
                    self.threads[t].cursors[pc] = cursor;
                    self.fs.write(fid, off, iosize, sync, &mut self.rng)
                }
                FlowopKind::Append {
                    ref file,
                    iosize,
                    sync,
                    ..
                } => {
                    let (fid, size) = self.files[file.as_str()];
                    let cursor = self.append_cursors.entry(fid).or_insert(0);
                    let off = *cursor;
                    *cursor = (*cursor + iosize) % size.max(iosize);
                    self.fs.write(fid, off, iosize, sync, &mut self.rng)
                }
            };
            if !extents.is_empty() {
                self.threads[t].pending = extents.len() as u32;
                return extents
                    .into_iter()
                    .map(|e| BlockIo::new(e.direction, e.lba, e.sectors, t as u64))
                    .collect();
            }
            // Buffered write (no disk I/O): continue to the next flowop, but
            // never spin forever on an all-buffered loop.
            spins += 1;
            if spins > self.threads[t].flowops.len() * 2 {
                self.arm(now + SimDuration::from_micros(100), TimerKind::Thread(t));
                return Vec::new();
            }
        }
    }

    fn flush_now(&mut self, now: SimTime) -> Vec<BlockIo> {
        let extents = self.fs.flush(&mut self.rng);
        if let Some(interval) = self.fs.flush_interval() {
            self.arm(now + interval, TimerKind::Flush);
        }
        extents
            .into_iter()
            .map(|e| BlockIo::new(e.direction, e.lba, e.sectors, FLUSH_TAG))
            .collect()
    }
}

impl Workload for FilebenchWorkload {
    fn start(&mut self, now: SimTime) -> Poll {
        let mut ios = Vec::new();
        for t in 0..self.threads.len() {
            ios.extend(self.run_thread(t, now));
        }
        if let Some(interval) = self.fs.flush_interval() {
            self.arm(now + interval, TimerKind::Flush);
        }
        Poll {
            issue: ios,
            timer: self.next_timer(),
        }
    }

    fn on_complete(&mut self, now: SimTime, tag: u64) -> Poll {
        if tag == FLUSH_TAG {
            return Poll {
                issue: Vec::new(),
                timer: self.next_timer(),
            };
        }
        let t = tag as usize;
        debug_assert!(self.threads[t].pending > 0);
        self.threads[t].pending = self.threads[t].pending.saturating_sub(1);
        let ios = if self.threads[t].pending == 0 {
            self.run_thread(t, now)
        } else {
            Vec::new()
        };
        Poll {
            issue: ios,
            timer: self.next_timer(),
        }
    }

    fn on_timer(&mut self, now: SimTime) -> Poll {
        let mut ios = Vec::new();
        while let Some(&Reverse((at, _, kind))) = self.timers.peek() {
            if at > now {
                break;
            }
            self.timers.pop();
            match kind {
                TimerKind::Thread(t) => ios.extend(self.run_thread(t, now)),
                TimerKind::Flush => ios.extend(self.flush_now(now)),
            }
        }
        Poll {
            issue: ios,
            timer: self.next_timer(),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filebench::{oltp_model, parse_model};
    use crate::fs::{Ufs, UfsParams, Zfs, ZfsParams};

    fn mini_model() -> ModelSpec {
        parse_model(
            "define file name=data,size=64m\n\
             define process name=p {\n\
               thread name=t,instances=2 {\n\
                 flowop read name=r,file=data,iosize=4k,random\n\
                 flowop think name=z,value=1ms\n\
               }\n\
             }\n",
        )
        .unwrap()
    }

    fn ufs_workload(spec: ModelSpec) -> FilebenchWorkload {
        FilebenchWorkload::new(
            "test",
            spec,
            Box::new(Ufs::new(UfsParams::default())),
            SimRng::seed_from(7),
        )
    }

    #[test]
    fn start_issues_one_read_per_thread() {
        let mut wl = ufs_workload(mini_model());
        let poll = wl.start(SimTime::ZERO);
        assert_eq!(poll.issue.len(), 2);
        assert!(poll.issue.iter().all(|io| io.direction.is_read()));
        assert_eq!(poll.issue[0].sectors, 8);
    }

    #[test]
    fn completion_advances_to_think_then_timer_resumes() {
        let mut wl = ufs_workload(mini_model());
        let poll = wl.start(SimTime::ZERO);
        let tag = poll.issue[0].tag;
        // Completing the read hits the think flowop: no new I/O, but a timer.
        let p2 = wl.on_complete(SimTime::from_micros(500), tag);
        assert!(p2.issue.is_empty());
        let timer = p2.timer.expect("think must arm a timer");
        assert_eq!(
            timer,
            SimTime::from_micros(500) + SimDuration::from_millis(1)
        );
        // When the timer fires, the thread loops back to the read.
        let p3 = wl.on_timer(timer);
        assert_eq!(p3.issue.len(), 1);
        assert_eq!(p3.issue[0].tag, tag);
    }

    #[test]
    fn sequential_pattern_advances_and_wraps() {
        let spec = parse_model(
            "define file name=d,size=16k\n\
             define process name=p {\n\
               thread name=t {\n\
                 flowop read name=r,file=d,iosize=4k\n\
                 flowop think name=z,value=1ms\n\
               }\n\
             }\n",
        )
        .unwrap();
        let mut wl = ufs_workload(spec);
        let mut offs = Vec::new();
        let mut now = SimTime::ZERO;
        let p = wl.start(now);
        offs.push(p.issue[0].lba);
        let tag = p.issue[0].tag;
        for _ in 0..4 {
            now = now + SimDuration::from_micros(100);
            let p = wl.on_complete(now, tag);
            let timer = p.timer.unwrap();
            let p = wl.on_timer(timer);
            offs.push(p.issue[0].lba);
            now = timer;
        }
        // 16k file / 4k iosize: offsets cycle with period 4.
        assert_eq!(offs[0], offs[4]);
        assert_eq!(offs[1], offs[0].advance(8));
    }

    #[test]
    fn zfs_buffered_writes_do_not_spin() {
        let spec = parse_model(
            "define file name=d,size=64m\n\
             define process name=p {\n\
               thread name=w {\n\
                 flowop write name=wr,file=d,iosize=8k,random\n\
               }\n\
             }\n",
        )
        .unwrap();
        let mut wl = FilebenchWorkload::new(
            "zfs-writer",
            spec,
            Box::new(Zfs::new(ZfsParams::default())),
            SimRng::seed_from(3),
        );
        // All writes are buffered: no I/O, but a backoff timer instead of a hang.
        let p = wl.start(SimTime::ZERO);
        assert!(p.issue.is_empty());
        assert!(p.timer.is_some());
    }

    #[test]
    fn zfs_flush_timer_emits_background_writes() {
        let spec = parse_model(
            "define file name=d,size=64m\n\
             define process name=p {\n\
               thread name=w {\n\
                 flowop write name=wr,file=d,iosize=8k,random\n\
                 flowop think name=z,value=1ms\n\
               }\n\
             }\n",
        )
        .unwrap();
        let mut wl = FilebenchWorkload::new(
            "zfs-writer",
            spec,
            Box::new(Zfs::new(ZfsParams::default())),
            SimRng::seed_from(3),
        );
        let mut now = SimTime::ZERO;
        let mut poll = wl.start(now);
        // Drive timers until the txg flush (5 s) fires.
        let mut flush_ios = Vec::new();
        for _ in 0..20_000 {
            let Some(t) = poll.timer else { break };
            now = t;
            poll = wl.on_timer(now);
            let flush: Vec<_> = poll
                .issue
                .iter()
                .filter(|io| io.tag == FLUSH_TAG)
                .copied()
                .collect();
            if !flush.is_empty() {
                flush_ios = flush;
                break;
            }
        }
        assert!(!flush_ios.is_empty(), "txg flush never fired");
        assert!(flush_ios.iter().all(|io| io.direction.is_write()));
        // Flush completions don't wake any thread.
        let p = wl.on_complete(now, FLUSH_TAG);
        assert!(p.issue.is_empty());
    }

    #[test]
    fn rate_limited_flowop_is_an_open_flow() {
        // rate=100 ops/s => one read every 10 ms regardless of completions.
        let spec = parse_model(
            "define file name=d,size=64m\n\
             define process name=p {\n\
               thread name=t {\n\
                 flowop read name=r,file=d,iosize=4k,random,rate=100\n\
               }\n\
             }\n",
        )
        .unwrap();
        let mut wl = ufs_workload(spec);
        let p = wl.start(SimTime::ZERO);
        assert_eq!(p.issue.len(), 1, "first op passes the gate immediately");
        let tag = p.issue[0].tag;
        // Completion arrives quickly, but the gate holds the next op.
        let p2 = wl.on_complete(SimTime::from_micros(500), tag);
        assert!(p2.issue.is_empty());
        let gate = p2.timer.expect("rate gate timer");
        assert_eq!(gate, SimTime::from_millis(10));
        // The gate fires: next op issues.
        let p3 = wl.on_timer(gate);
        assert_eq!(p3.issue.len(), 1);
    }

    #[test]
    fn rate_attribute_parses_and_validates() {
        let spec = parse_model(
            "define file name=d,size=1m\n\
             define process name=p {\n\
               thread name=t {\n\
                 flowop write name=w,file=d,iosize=4k,rate=250,sync\n\
               }\n\
             }\n",
        )
        .unwrap();
        match &spec.processes[0].threads[0].flowops[0].kind {
            FlowopKind::Write { rate, sync, .. } => {
                assert_eq!(*rate, Some(250));
                assert!(*sync);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(
            parse_model(
                "define file name=d,size=1m\n\
             define process name=p {\n thread name=t {\n\
               flowop read name=r,file=d,iosize=4k,rate=0\n }\n}\n"
            )
            .is_err(),
            "rate=0 rejected"
        );
    }

    #[test]
    fn oltp_personality_parses_and_runs() {
        let spec = parse_model(&oltp_model()).unwrap();
        assert!(spec.total_threads() > 10);
        let mut wl = ufs_workload(spec);
        let poll = wl.start(SimTime::ZERO);
        assert!(!poll.issue.is_empty());
        assert!(wl.ops_executed() > 0);
        assert_eq!(wl.filesystem_name(), "ufs");
        assert_eq!(wl.name(), "test");
    }

    #[test]
    fn append_cursor_is_shared_and_sequentialish() {
        let spec = parse_model(
            "define file name=log,size=1m\n\
             define process name=p {\n\
               thread name=a,instances=2 {\n\
                 flowop append name=lg,file=log,iosize=8k\n\
                 flowop think name=z,value=1ms\n\
               }\n\
             }\n",
        )
        .unwrap();
        let mut wl = ufs_workload(spec);
        let p = wl.start(SimTime::ZERO);
        // Two appenders, consecutive log offsets -> adjacent disk extents
        // (same 1 MiB chunk).
        assert_eq!(p.issue.len(), 2);
        let a = p.issue[0];
        let b = p.issue[1];
        assert_eq!(a.lba.advance(u64::from(a.sectors)), b.lba);
    }
}
