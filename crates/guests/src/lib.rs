//! # guests — guest OS, filesystem and application workload models
//!
//! Everything that runs *inside* the virtual machines of the paper's
//! experiments: application workload generators (Filebench OLTP, DBT-2,
//! large file copy, Iometer) and the filesystem behaviour models that
//! reshape their I/O before it reaches the virtual disk (UFS, ZFS
//! copy-on-write, ext3 journalling).
//!
//! The unifying abstraction is [`Workload`]: a closed-loop block-I/O
//! generator the hypervisor drives through `start` / `on_complete` /
//! `on_timer` hooks.
//!
//! # Examples
//!
//! ```
//! use guests::{AccessSpec, IometerWorkload, Workload};
//! use simkit::{SimRng, SimTime};
//!
//! // The Table 2 microbenchmark pattern: 4 KiB sequential reads, 16 deep.
//! let mut w = IometerWorkload::new(
//!     "microbench",
//!     AccessSpec::seq_read_4k(16, 1024 * 1024 * 1024),
//!     SimRng::seed_from(42),
//! );
//! assert_eq!(w.start(SimTime::ZERO).issue.len(), 16);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dbt2;
mod delayed;
pub mod filebench;
mod filecopy;
pub mod fs;
mod iometer;
mod replay;
mod workload;

pub use dbt2::{Dbt2Params, Dbt2Workload};
pub use delayed::Delayed;
pub use filebench::FilebenchWorkload;
pub use filecopy::{FileCopyParams, FileCopyWorkload};
pub use iometer::{AccessSpec, IometerWorkload};
pub use replay::{ReplayWorkload, ScheduledIo};
pub use workload::{BlockIo, Poll, Workload};
