//! UFS behaviour model.
//!
//! The paper's baseline filesystem (Figure 2): UFS translates the OLTP
//! workload almost verbatim — "UFS is issuing I/Os of sizes 4KB and 8KB
//! which is closer to the original data stream", and its reads *and*
//! writes remain random. The model: in-place allocation with files laid
//! out in fixed-size contiguous chunks scattered over the disk (cylinder-
//! group-style), 4 KiB fragments for reads, whole 8 KiB blocks for writes.

use super::{Extent, FileId, Filesystem};
use simkit::SimRng;
use vscsi::{IoDirection, Lba};

/// UFS model parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UfsParams {
    /// Filesystem block size (default 8 KiB, the UFS default).
    pub block_bytes: u64,
    /// Fragment size (default 4 KiB); reads are issued at fragment
    /// granularity.
    pub frag_bytes: u64,
    /// Contiguous allocation run per file (cylinder-group locality),
    /// default 1 MiB.
    pub chunk_bytes: u64,
    /// Disk area the filesystem manages, in bytes.
    pub capacity_bytes: u64,
    /// Placement seed (layout is deterministic given this).
    pub layout_seed: u64,
}

impl Default for UfsParams {
    fn default() -> Self {
        UfsParams {
            block_bytes: 8_192,
            frag_bytes: 4_096,
            chunk_bytes: 1024 * 1024,
            capacity_bytes: 32 * 1024 * 1024 * 1024,
            layout_seed: 0x0F5_0F5_0F5,
        }
    }
}

/// In-place-update filesystem with chunked pseudo-random file layout.
#[derive(Debug, Clone)]
pub struct Ufs {
    params: UfsParams,
}

impl Ufs {
    /// Creates a UFS model.
    ///
    /// # Panics
    ///
    /// Panics if sizes are not sector multiples or the chunk is smaller
    /// than a block.
    pub fn new(params: UfsParams) -> Self {
        assert!(params.frag_bytes % vscsi::SECTOR_SIZE == 0);
        assert!(params.block_bytes % params.frag_bytes == 0);
        assert!(params.chunk_bytes >= params.block_bytes);
        assert!(params.capacity_bytes >= params.chunk_bytes * 4);
        Ufs { params }
    }

    /// The parameters.
    pub fn params(&self) -> &UfsParams {
        &self.params
    }

    /// Where byte `offset` of `file` lives on disk.
    pub(crate) fn locate(&self, file: FileId, offset: u64) -> Lba {
        let chunk_idx = offset / self.params.chunk_bytes;
        let within = offset % self.params.chunk_bytes;
        let chunks_on_disk = self.params.capacity_bytes / self.params.chunk_bytes;
        let slot = layout_hash(self.params.layout_seed, file, chunk_idx) % chunks_on_disk;
        Lba::from_byte_offset(slot * self.params.chunk_bytes + round_down_sector(within))
    }
}

fn round_down_sector(bytes: u64) -> u64 {
    bytes - bytes % vscsi::SECTOR_SIZE
}

/// Deterministic placement hash (SplitMix64 over (seed, file, chunk)).
pub(crate) fn layout_hash(seed: u64, file: FileId, chunk: u64) -> u64 {
    let mut x = seed ^ (u64::from(file.0) << 32) ^ chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Filesystem for Ufs {
    fn read(&mut self, file: FileId, offset: u64, len: u64, _rng: &mut SimRng) -> Vec<Extent> {
        let frag = self.params.frag_bytes;
        let start = offset / frag * frag;
        let end = (offset + len.max(1)).div_ceil(frag) * frag;
        let mut out = Vec::new();
        let mut pos = start;
        while pos < end {
            // Clip to the containing chunk so extents never straddle a
            // layout discontinuity.
            let chunk_end = (pos / self.params.chunk_bytes + 1) * self.params.chunk_bytes;
            let run = (end - pos).min(chunk_end - pos);
            out.push(Extent::new(
                IoDirection::Read,
                self.locate(file, pos),
                (run / vscsi::SECTOR_SIZE) as u32,
            ));
            pos += run;
        }
        merge_contiguous(out)
    }

    fn write(
        &mut self,
        file: FileId,
        offset: u64,
        len: u64,
        _sync: bool,
        _rng: &mut SimRng,
    ) -> Vec<Extent> {
        // UFS writes whole blocks in place (read-modify-write of the block
        // happens in the page cache; only the block write reaches the disk).
        let block = self.params.block_bytes;
        let start = offset / block * block;
        let end = (offset + len.max(1)).div_ceil(block) * block;
        let mut out = Vec::new();
        let mut pos = start;
        while pos < end {
            let chunk_end = (pos / self.params.chunk_bytes + 1) * self.params.chunk_bytes;
            let run = (end - pos).min(chunk_end - pos);
            out.push(Extent::new(
                IoDirection::Write,
                self.locate(file, pos),
                (run / vscsi::SECTOR_SIZE) as u32,
            ));
            pos += run;
        }
        merge_contiguous(out)
    }

    fn flush(&mut self, _rng: &mut SimRng) -> Vec<Extent> {
        Vec::new() // synchronous model: nothing buffered
    }

    fn name(&self) -> &'static str {
        "ufs"
    }
}

/// Merges physically adjacent same-direction extents.
pub(crate) fn merge_contiguous(mut extents: Vec<Extent>) -> Vec<Extent> {
    if extents.len() < 2 {
        return extents;
    }
    let mut out: Vec<Extent> = Vec::with_capacity(extents.len());
    for e in extents.drain(..) {
        match out.last_mut() {
            Some(last)
                if last.direction == e.direction
                    && last.lba.advance(u64::from(last.sectors)) == e.lba =>
            {
                last.sectors += e.sectors;
            }
            _ => out.push(e),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ufs() -> Ufs {
        Ufs::new(UfsParams::default())
    }

    #[test]
    fn aligned_4k_read_is_one_4k_extent() {
        let mut fs = ufs();
        let mut rng = SimRng::seed_from(1);
        let ext = fs.read(FileId(0), 4096, 4096, &mut rng);
        assert_eq!(ext.len(), 1);
        assert_eq!(ext[0].sectors, 8); // 4 KiB
        assert!(ext[0].direction.is_read());
    }

    #[test]
    fn unaligned_read_rounds_to_fragments() {
        let mut fs = ufs();
        let mut rng = SimRng::seed_from(1);
        let ext = fs.read(FileId(0), 100, 4096, &mut rng);
        // Spans two 4 KiB fragments -> 8 KiB.
        let total: u32 = ext.iter().map(|e| e.sectors).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn writes_are_whole_blocks() {
        let mut fs = ufs();
        let mut rng = SimRng::seed_from(1);
        let ext = fs.write(FileId(0), 4096, 4096, false, &mut rng);
        // 4 KiB write inside an 8 KiB block -> whole 8 KiB block.
        let total: u32 = ext.iter().map(|e| e.sectors).sum();
        assert_eq!(total, 16);
        assert!(ext.iter().all(|e| e.direction.is_write()));
    }

    #[test]
    fn sequential_within_chunk_is_contiguous() {
        let mut fs = ufs();
        let mut rng = SimRng::seed_from(1);
        let a = fs.read(FileId(0), 0, 4096, &mut rng)[0];
        let b = fs.read(FileId(0), 4096, 4096, &mut rng)[0];
        assert_eq!(a.lba.advance(8), b.lba);
    }

    #[test]
    fn different_chunks_are_scattered() {
        let fs = ufs();
        let a = fs.locate(FileId(0), 0);
        let b = fs.locate(FileId(0), fs.params().chunk_bytes);
        assert_ne!(a.advance(fs.params().chunk_bytes / 512), b);
    }

    #[test]
    fn layout_is_deterministic() {
        let fs1 = ufs();
        let fs2 = ufs();
        for off in [0u64, 12_345_678, 999_999_999] {
            assert_eq!(fs1.locate(FileId(3), off), fs2.locate(FileId(3), off));
        }
    }

    #[test]
    fn different_files_do_not_alias_layout() {
        let fs = ufs();
        assert_ne!(fs.locate(FileId(0), 0), fs.locate(FileId(1), 0));
    }

    #[test]
    fn large_read_splits_at_chunk_boundary() {
        let mut fs = ufs();
        let mut rng = SimRng::seed_from(1);
        let chunk = fs.params().chunk_bytes;
        let ext = fs.read(FileId(0), chunk - 8192, 16_384, &mut rng);
        assert!(ext.len() >= 2, "must split across the chunk boundary");
        let total: u32 = ext.iter().map(|e| e.sectors).sum();
        assert_eq!(u64::from(total) * 512, 16_384);
    }

    #[test]
    fn merge_contiguous_merges() {
        let e1 = Extent::new(IoDirection::Read, Lba::new(0), 8);
        let e2 = Extent::new(IoDirection::Read, Lba::new(8), 8);
        let e3 = Extent::new(IoDirection::Read, Lba::new(100), 8);
        let merged = merge_contiguous(vec![e1, e2, e3]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].sectors, 16);
        // Different direction never merges.
        let w = Extent::new(IoDirection::Write, Lba::new(16), 8);
        let kept = merge_contiguous(vec![e1, Extent::new(IoDirection::Read, Lba::new(8), 8), w]);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn flush_is_empty() {
        let mut fs = ufs();
        assert!(fs.flush(&mut SimRng::seed_from(1)).is_empty());
        assert_eq!(fs.flush_interval(), None);
        assert_eq!(fs.name(), "ufs");
    }
}
