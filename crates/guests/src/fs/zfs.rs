//! ZFS behaviour model: copy-on-write allocation with I/O aggregation.
//!
//! The paper's headline filesystem finding (Figure 3, §4.1): under the
//! same OLTP workload ZFS issues I/Os "of sizes between 80KB and 128KB"
//! and turns the application's *random writes into sequential disk
//! writes*, because "blocks on disk containing data are never modified in
//! place. Rather, the changes ... are written to alternate locations"
//! \[17\]\[18\] — the log-structured technique of \[19\].
//!
//! The model: writes are buffered into an open transaction group (txg);
//! at flush, dirty records are coalesced into extents up to 128 KiB and
//! allocated *contiguously at a moving frontier*. Reads consult the block-
//! pointer table (COW relocations) and are inflated by vdev-level
//! aggregation to large chunks.

use super::ufs::{layout_hash, merge_contiguous};
use super::{Extent, FileId, Filesystem};
use simkit::{SimDuration, SimRng};
use std::collections::{BTreeMap, HashMap};
use vscsi::{IoDirection, Lba, SECTOR_SIZE};

/// ZFS model parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZfsParams {
    /// Record size (dataset block size); 8 KiB suits a database workload.
    pub record_bytes: u64,
    /// Maximum aggregated device I/O (vdev aggregation limit), 128 KiB.
    pub aggregate_bytes: u64,
    /// Device-level read inflation: reads fetch this much around the
    /// target record (vdev cache / intelligent prefetch), 96 KiB gives the
    /// paper's 80–128 KiB band together with `aggregate_bytes` clipping.
    pub read_inflate_bytes: u64,
    /// Transaction-group flush cadence (OpenSolaris default was 5 s).
    pub txg_interval: SimDuration,
    /// Pool region managed by the allocator, in bytes.
    pub capacity_bytes: u64,
    /// Where the COW allocation frontier starts, in bytes.
    pub frontier_start: u64,
    /// Layout seed for never-written ("initial") block placement.
    pub layout_seed: u64,
}

impl Default for ZfsParams {
    fn default() -> Self {
        ZfsParams {
            record_bytes: 8_192,
            aggregate_bytes: 128 * 1024,
            read_inflate_bytes: 96 * 1024,
            txg_interval: SimDuration::from_secs(5),
            capacity_bytes: 32 * 1024 * 1024 * 1024,
            frontier_start: 20 * 1024 * 1024 * 1024,
            layout_seed: 0x2F5_2F5,
        }
    }
}

/// Copy-on-write filesystem model.
#[derive(Debug, Clone)]
pub struct Zfs {
    params: ZfsParams,
    /// (file, record index) -> current on-disk sector, for records that
    /// have been rewritten since layout time.
    block_pointers: HashMap<(FileId, u64), u64>,
    /// Dirty records of the open txg, keyed for coalescing.
    dirty: BTreeMap<(FileId, u64), ()>,
    /// Next free sector at the allocation frontier.
    frontier_sector: u64,
    /// ZIL (intent log) append position, for sync writes.
    zil_sector: u64,
    zil_start_sector: u64,
    zil_len_sectors: u64,
}

impl Zfs {
    /// Creates a ZFS model.
    ///
    /// # Panics
    ///
    /// Panics on non-sector-multiple sizes or a frontier outside capacity.
    pub fn new(params: ZfsParams) -> Self {
        assert!(params.record_bytes % SECTOR_SIZE == 0);
        assert!(params.aggregate_bytes >= params.record_bytes);
        assert!(params.frontier_start < params.capacity_bytes);
        let frontier_sector = params.frontier_start / SECTOR_SIZE;
        // Reserve a 64 MiB ZIL strip at the very start of the frontier region.
        let zil_len_sectors = 64 * 1024 * 1024 / SECTOR_SIZE;
        Zfs {
            frontier_sector: frontier_sector + zil_len_sectors,
            zil_sector: frontier_sector,
            zil_start_sector: frontier_sector,
            zil_len_sectors,
            params,
            block_pointers: HashMap::new(),
            dirty: BTreeMap::new(),
        }
    }

    /// The parameters.
    pub fn params(&self) -> &ZfsParams {
        &self.params
    }

    /// Number of dirty records awaiting the next txg flush.
    pub fn dirty_records(&self) -> usize {
        self.dirty.len()
    }

    /// Current allocation frontier (sector).
    pub fn frontier(&self) -> Lba {
        Lba::new(self.frontier_sector)
    }

    fn record_index(&self, offset: u64) -> u64 {
        offset / self.params.record_bytes
    }

    /// Current disk location of a record.
    fn locate_record(&self, file: FileId, record: u64) -> u64 {
        if let Some(&sector) = self.block_pointers.get(&(file, record)) {
            return sector;
        }
        // Initial layout: records grouped in 1 MiB chunks like UFS.
        let chunk_bytes = 1024 * 1024u64;
        let offset = record * self.params.record_bytes;
        let chunk_idx = offset / chunk_bytes;
        let within = offset % chunk_bytes;
        // Initial data lives below the frontier region.
        let data_region = self.params.frontier_start;
        let chunks = data_region / chunk_bytes;
        let slot = layout_hash(self.params.layout_seed, file, chunk_idx) % chunks.max(1);
        (slot * chunk_bytes + within) / SECTOR_SIZE
    }

    fn allocate(&mut self, sectors: u64) -> u64 {
        let cap_sectors = self.params.capacity_bytes / SECTOR_SIZE;
        if self.frontier_sector + sectors > cap_sectors {
            // Wrap the frontier (free space reclaimed behind us).
            self.frontier_sector = self.params.frontier_start / SECTOR_SIZE + self.zil_len_sectors;
        }
        let at = self.frontier_sector;
        self.frontier_sector += sectors;
        at
    }

    fn zil_append(&mut self, sectors: u64) -> u64 {
        if self.zil_sector + sectors > self.zil_start_sector + self.zil_len_sectors {
            self.zil_sector = self.zil_start_sector;
        }
        let at = self.zil_sector;
        self.zil_sector += sectors;
        at
    }
}

impl Filesystem for Zfs {
    fn read(&mut self, file: FileId, offset: u64, len: u64, _rng: &mut SimRng) -> Vec<Extent> {
        // Fetch every touched record, inflated by vdev-level aggregation:
        // the device sees one large I/O per physically-contiguous run.
        let rec_bytes = self.params.record_bytes;
        let first = self.record_index(offset);
        let last = self.record_index(offset + len.max(1) - 1);
        let mut extents = Vec::new();
        for record in first..=last {
            let sector = self.locate_record(file, record);
            // Inflate around the record up to the aggregation limit.
            let inflate = self.params.read_inflate_bytes.max(rec_bytes);
            let window = inflate.min(self.params.aggregate_bytes);
            let window_sectors = window / SECTOR_SIZE;
            // Align the window to itself so repeated nearby reads coalesce.
            let start = sector - sector % window_sectors;
            extents.push(Extent::new(
                IoDirection::Read,
                Lba::new(start),
                window_sectors as u32,
            ));
        }
        extents.dedup();
        merge_contiguous(extents)
    }

    fn write(
        &mut self,
        file: FileId,
        offset: u64,
        len: u64,
        sync: bool,
        _rng: &mut SimRng,
    ) -> Vec<Extent> {
        let first = self.record_index(offset);
        let last = self.record_index(offset + len.max(1) - 1);
        for record in first..=last {
            self.dirty.insert((file, record), ());
        }
        if sync {
            // Sync semantics: log the write intent to the ZIL now (a small
            // sequential append); data still lands with the next txg.
            let sectors = ((last - first + 1) * self.params.record_bytes / SECTOR_SIZE).max(1);
            let at = self.zil_append(sectors);
            vec![Extent::new(
                IoDirection::Write,
                Lba::new(at),
                sectors as u32,
            )]
        } else {
            Vec::new()
        }
    }

    fn flush(&mut self, _rng: &mut SimRng) -> Vec<Extent> {
        if self.dirty.is_empty() {
            return Vec::new();
        }
        let rec_sectors = self.params.record_bytes / SECTOR_SIZE;
        let max_records = (self.params.aggregate_bytes / self.params.record_bytes).max(1);
        let dirty: Vec<(FileId, u64)> = self.dirty.keys().copied().collect();
        self.dirty.clear();
        let mut out = Vec::new();
        // Coalesce logically-ordered dirty records into frontier extents of
        // up to the aggregation limit — this is what makes random writes
        // sequential on disk.
        for group in dirty.chunks(max_records as usize) {
            let sectors = rec_sectors * group.len() as u64;
            let base = self.allocate(sectors);
            for (i, &(file, record)) in group.iter().enumerate() {
                self.block_pointers
                    .insert((file, record), base + i as u64 * rec_sectors);
            }
            out.push(Extent::new(
                IoDirection::Write,
                Lba::new(base),
                sectors as u32,
            ));
        }
        // Deliberately NOT merged: the vdev aggregation limit caps each
        // device I/O at `aggregate_bytes`, which is exactly the paper's
        // observed 80-128 KiB write sizes.
        out
    }

    fn flush_interval(&self) -> Option<SimDuration> {
        Some(self.params.txg_interval)
    }

    fn name(&self) -> &'static str {
        "zfs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zfs() -> Zfs {
        Zfs::new(ZfsParams::default())
    }

    #[test]
    fn reads_are_large_aggregated() {
        let mut fs = zfs();
        let mut rng = SimRng::seed_from(1);
        let ext = fs.read(FileId(0), 8192, 8192, &mut rng);
        assert_eq!(ext.len(), 1);
        let bytes = u64::from(ext[0].sectors) * SECTOR_SIZE;
        assert!(
            (80 * 1024..=128 * 1024).contains(&bytes),
            "read size {bytes} outside the paper's 80-128K band"
        );
    }

    #[test]
    fn async_writes_are_buffered_not_issued() {
        let mut fs = zfs();
        let mut rng = SimRng::seed_from(1);
        let ext = fs.write(FileId(0), 0, 8192, false, &mut rng);
        assert!(ext.is_empty());
        assert_eq!(fs.dirty_records(), 1);
    }

    #[test]
    fn sync_writes_hit_the_zil_sequentially() {
        let mut fs = zfs();
        let mut rng = SimRng::seed_from(1);
        let a = fs.write(FileId(0), 0, 8192, true, &mut rng)[0];
        let b = fs.write(FileId(0), 12_345_678, 8192, true, &mut rng)[0];
        // Random logical offsets, adjacent log positions.
        assert_eq!(a.lba.advance(u64::from(a.sectors)), b.lba);
        assert!(a.direction.is_write());
    }

    #[test]
    fn flush_turns_random_writes_into_sequential_extents() {
        let mut fs = zfs();
        let mut rng = SimRng::seed_from(2);
        // 64 random 8 KiB writes scattered over 10 GiB.
        for i in 0..64u64 {
            let offset = (i * 1_234_567_891) % (10 * 1024 * 1024 * 1024);
            fs.write(FileId(0), offset, 8192, false, &mut rng);
        }
        let ext = fs.flush(&mut rng);
        assert!(!ext.is_empty());
        // All extents are writes, each up to 128 KiB, and *physically
        // consecutive* (frontier allocation).
        for w in ext.windows(2) {
            assert_eq!(
                w[0].lba.advance(u64::from(w[0].sectors)),
                w[1].lba,
                "flush extents must be frontier-sequential"
            );
        }
        let max = ext
            .iter()
            .map(|e| u64::from(e.sectors) * SECTOR_SIZE)
            .max()
            .unwrap();
        assert!(max <= 128 * 1024);
        // Dirty set drained.
        assert_eq!(fs.dirty_records(), 0);
        assert!(fs.flush(&mut rng).is_empty());
    }

    #[test]
    fn reads_after_rewrite_follow_the_block_pointer() {
        let mut fs = zfs();
        let mut rng = SimRng::seed_from(3);
        let before = fs.read(FileId(0), 0, 8192, &mut rng)[0].lba;
        fs.write(FileId(0), 0, 8192, false, &mut rng);
        let _ = fs.flush(&mut rng);
        let after = fs.read(FileId(0), 0, 8192, &mut rng)[0].lba;
        assert_ne!(before, after, "COW must relocate the record");
        // The new location is in the frontier region.
        assert!(after.sector() >= fs.params().frontier_start / SECTOR_SIZE);
    }

    #[test]
    fn frontier_wraps_at_capacity() {
        let mut fs = Zfs::new(ZfsParams {
            capacity_bytes: 512 * 1024 * 1024,
            frontier_start: 256 * 1024 * 1024,
            ..Default::default()
        });
        let mut rng = SimRng::seed_from(4);
        let mut last_frontier = fs.frontier().sector();
        let mut wrapped = false;
        for round in 0..2_000u64 {
            for i in 0..16u64 {
                fs.write(FileId(0), (round * 16 + i) * 8192, 8192, false, &mut rng);
            }
            fs.flush(&mut rng);
            let f = fs.frontier().sector();
            if f < last_frontier {
                wrapped = true;
                break;
            }
            last_frontier = f;
        }
        assert!(wrapped, "frontier never wrapped");
    }

    #[test]
    fn txg_interval_advertised() {
        let fs = zfs();
        assert_eq!(fs.flush_interval(), Some(SimDuration::from_secs(5)));
        assert_eq!(fs.name(), "zfs");
    }

    #[test]
    fn repeated_read_of_same_region_is_stable() {
        let mut fs = zfs();
        let mut rng = SimRng::seed_from(5);
        let a = fs.read(FileId(1), 64 * 1024, 8192, &mut rng);
        let b = fs.read(FileId(1), 64 * 1024, 8192, &mut rng);
        assert_eq!(a, b);
    }
}
