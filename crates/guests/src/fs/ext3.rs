//! ext3 behaviour model (data=ordered journalling).
//!
//! The DBT-2 experiment (§4.2) places PostgreSQL "on a single ext3
//! filesystem formatted with default options". ext3's default `data=
//! ordered` mode journals metadata only: data blocks are written in place,
//! with small sequential commit records appended to the journal region at
//! commit time. The model captures exactly that split: in-place 4 KiB
//! block I/O for data plus a wrapping sequential journal stream.

use super::ufs::{layout_hash, merge_contiguous};
use super::{Extent, FileId, Filesystem};
use simkit::{SimDuration, SimRng};
use std::collections::BTreeSet;
use vscsi::{IoDirection, Lba, SECTOR_SIZE};

/// ext3 model parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ext3Params {
    /// Filesystem block size (4 KiB default).
    pub block_bytes: u64,
    /// Contiguous allocation run per file (block-group locality), 1 MiB.
    pub chunk_bytes: u64,
    /// Journal region size (128 MiB default-ish).
    pub journal_bytes: u64,
    /// Journal commit cadence (the kjournald 5-second timer).
    pub commit_interval: SimDuration,
    /// Disk area managed, in bytes.
    pub capacity_bytes: u64,
    /// Layout seed.
    pub layout_seed: u64,
}

impl Default for Ext3Params {
    fn default() -> Self {
        Ext3Params {
            block_bytes: 4_096,
            chunk_bytes: 1024 * 1024,
            journal_bytes: 128 * 1024 * 1024,
            commit_interval: SimDuration::from_secs(5),
            capacity_bytes: 64 * 1024 * 1024 * 1024,
            layout_seed: 0xE3_E3_E3,
        }
    }
}

/// Journalling in-place filesystem model.
#[derive(Debug, Clone)]
pub struct Ext3 {
    params: Ext3Params,
    /// Journal append head, in sectors from the journal base.
    journal_head: u64,
    journal_base: u64,
    journal_len: u64,
    /// Dirty (file, block) pairs awaiting writeback.
    dirty: BTreeSet<(FileId, u64)>,
    /// Metadata blocks dirtied since the last commit.
    dirty_metadata: u64,
}

impl Ext3 {
    /// Creates an ext3 model.
    ///
    /// # Panics
    ///
    /// Panics on non-sector-multiple sizes or a journal exceeding capacity.
    pub fn new(params: Ext3Params) -> Self {
        assert!(params.block_bytes % SECTOR_SIZE == 0);
        assert!(params.journal_bytes < params.capacity_bytes);
        // Journal lives at the front of the device region.
        let journal_base = 0;
        let journal_len = params.journal_bytes / SECTOR_SIZE;
        Ext3 {
            params,
            journal_head: 0,
            journal_base,
            journal_len,
            dirty: BTreeSet::new(),
            dirty_metadata: 0,
        }
    }

    /// The parameters.
    pub fn params(&self) -> &Ext3Params {
        &self.params
    }

    /// Dirty data blocks awaiting writeback.
    pub fn dirty_blocks(&self) -> usize {
        self.dirty.len()
    }

    fn locate(&self, file: FileId, offset: u64) -> Lba {
        let chunk_idx = offset / self.params.chunk_bytes;
        let within = offset % self.params.chunk_bytes;
        // Data region sits after the journal.
        let data_base = self.params.journal_bytes;
        let chunks = (self.params.capacity_bytes - data_base) / self.params.chunk_bytes;
        let slot = layout_hash(self.params.layout_seed, file, chunk_idx) % chunks.max(1);
        Lba::from_byte_offset(
            data_base + slot * self.params.chunk_bytes + within / SECTOR_SIZE * SECTOR_SIZE,
        )
    }

    fn journal_append(&mut self, sectors: u64) -> Lba {
        if self.journal_head + sectors > self.journal_len {
            self.journal_head = 0;
        }
        let at = self.journal_base + self.journal_head;
        self.journal_head += sectors;
        Lba::new(at)
    }
}

impl Filesystem for Ext3 {
    fn read(&mut self, file: FileId, offset: u64, len: u64, _rng: &mut SimRng) -> Vec<Extent> {
        let block = self.params.block_bytes;
        let start = offset / block * block;
        let end = (offset + len.max(1)).div_ceil(block) * block;
        let mut out = Vec::new();
        let mut pos = start;
        while pos < end {
            let chunk_end = (pos / self.params.chunk_bytes + 1) * self.params.chunk_bytes;
            let run = (end - pos).min(chunk_end - pos);
            out.push(Extent::new(
                IoDirection::Read,
                self.locate(file, pos),
                (run / SECTOR_SIZE) as u32,
            ));
            pos += run;
        }
        merge_contiguous(out)
    }

    fn write(
        &mut self,
        file: FileId,
        offset: u64,
        len: u64,
        sync: bool,
        _rng: &mut SimRng,
    ) -> Vec<Extent> {
        let block = self.params.block_bytes;
        let first = offset / block;
        let last = (offset + len.max(1) - 1) / block;
        for b in first..=last {
            self.dirty.insert((file, b));
        }
        self.dirty_metadata += 1;
        if sync {
            // fsync semantics in data=ordered: data goes in place now,
            // then the commit record is appended to the journal.
            let mut out = Vec::new();
            for b in first..=last {
                if self.dirty.remove(&(file, b)) {
                    out.push(Extent::new(
                        IoDirection::Write,
                        self.locate(file, b * block),
                        (block / SECTOR_SIZE) as u32,
                    ));
                }
            }
            let commit_sectors = (block / SECTOR_SIZE).max(8);
            let meta = self.dirty_metadata.min(4).max(1);
            self.dirty_metadata = 0;
            out.push(Extent::new(
                IoDirection::Write,
                self.journal_append(commit_sectors * meta),
                (commit_sectors * meta) as u32,
            ));
            merge_contiguous(out)
        } else {
            Vec::new()
        }
    }

    fn flush(&mut self, _rng: &mut SimRng) -> Vec<Extent> {
        if self.dirty.is_empty() && self.dirty_metadata == 0 {
            return Vec::new();
        }
        let block = self.params.block_bytes;
        let mut out = Vec::new();
        // Writeback in (file, block) order — ascending on-disk-ish order
        // within each file, which produces the short-distance write bursts
        // the paper observes for DBT-2 (§4.2).
        let dirty: Vec<(FileId, u64)> = self.dirty.iter().copied().collect();
        self.dirty.clear();
        for (file, b) in dirty {
            out.push(Extent::new(
                IoDirection::Write,
                self.locate(file, b * block),
                (block / SECTOR_SIZE) as u32,
            ));
        }
        // One commit record for the batch.
        if self.dirty_metadata > 0 {
            let commit_sectors = (block / SECTOR_SIZE).max(8);
            self.dirty_metadata = 0;
            out.push(Extent::new(
                IoDirection::Write,
                self.journal_append(commit_sectors),
                commit_sectors as u32,
            ));
        }
        merge_contiguous(out)
    }

    fn flush_interval(&self) -> Option<SimDuration> {
        Some(self.params.commit_interval)
    }

    fn name(&self) -> &'static str {
        "ext3"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext3() -> Ext3 {
        Ext3::new(Ext3Params::default())
    }

    #[test]
    fn reads_are_block_granular_in_place() {
        let mut fs = ext3();
        let mut rng = SimRng::seed_from(1);
        let ext = fs.read(FileId(0), 0, 4096, &mut rng);
        assert_eq!(ext.len(), 1);
        assert_eq!(ext[0].sectors, 8);
        // Repeatable.
        assert_eq!(fs.read(FileId(0), 0, 4096, &mut rng), ext);
    }

    #[test]
    fn async_writes_buffer_until_flush() {
        let mut fs = ext3();
        let mut rng = SimRng::seed_from(1);
        assert!(fs.write(FileId(0), 0, 4096, false, &mut rng).is_empty());
        assert_eq!(fs.dirty_blocks(), 1);
        let out = fs.flush(&mut rng);
        assert!(!out.is_empty());
        assert_eq!(fs.dirty_blocks(), 0);
    }

    #[test]
    fn sync_write_is_data_plus_journal_commit() {
        let mut fs = ext3();
        let mut rng = SimRng::seed_from(1);
        let out = fs.write(FileId(0), 8192, 4096, true, &mut rng);
        assert!(out.len() >= 2, "need data write + commit record: {out:?}");
        // Last extent is the journal commit, inside the journal region.
        let commit = out.last().unwrap();
        assert!(commit.lba.as_bytes() < fs.params().journal_bytes);
        // Data extent is outside the journal region.
        assert!(out[0].lba.as_bytes() >= fs.params().journal_bytes);
    }

    #[test]
    fn journal_appends_are_sequential_and_wrap() {
        let mut fs = Ext3::new(Ext3Params {
            journal_bytes: 64 * 1024,
            ..Default::default()
        });
        let mut rng = SimRng::seed_from(1);
        let mut last: Option<Lba> = None;
        let mut wrapped = false;
        for i in 0..20u64 {
            let out = fs.write(FileId(0), i * 4096, 4096, true, &mut rng);
            let commit = *out.last().unwrap();
            if let Some(prev) = last {
                if commit.lba <= prev {
                    wrapped = true;
                } else {
                    assert_eq!(prev.advance(8), commit.lba, "journal must be sequential");
                }
            }
            last = Some(commit.lba);
        }
        assert!(wrapped, "journal never wrapped in a 64 KiB region");
    }

    #[test]
    fn flush_writes_back_in_sorted_order() {
        let mut fs = ext3();
        let mut rng = SimRng::seed_from(2);
        // Dirty blocks in descending order.
        for i in (0..10u64).rev() {
            fs.write(FileId(0), i * 4096, 4096, false, &mut rng);
        }
        let out = fs.flush(&mut rng);
        // First extent is the writeback of block 0 (sorted ascending), and
        // blocks 0..10 are in one chunk so they merge contiguously.
        assert!(out[0].direction.is_write());
        assert!(out[0].sectors >= 8);
        let data_sectors: u32 = out[..out.len() - 1].iter().map(|e| e.sectors).sum();
        assert_eq!(data_sectors, 80); // 10 blocks x 8 sectors
    }

    #[test]
    fn interval_and_name() {
        let fs = ext3();
        assert_eq!(fs.flush_interval(), Some(SimDuration::from_secs(5)));
        assert_eq!(fs.name(), "ext3");
    }
}
