//! NTFS behaviour model.
//!
//! The paper's §4.3 workload runs on NTFS. For the file-copy experiment the
//! interesting behaviour lives in the *copy engines* (64 KiB vs 1 MiB
//! requests), but a filesystem model rounds out the guest inventory: NTFS
//! keeps file data in contiguous *runs* (extents) allocated from a bitmap,
//! journals metadata into `$LogFile`, and stores small files resident in
//! the MFT. The model captures the block-level consequences:
//!
//! * data I/O at cluster (4 KiB) granularity within large contiguous runs
//!   (NTFS allocates aggressively contiguous runs, so streams stay
//!   sequential — Figure 5(c));
//! * every metadata-changing operation appends a small record to the
//!   `$LogFile` region before data is written (write-ahead journal);
//! * periodic lazy-writer flushes of buffered data, in sorted order.

use super::ufs::{layout_hash, merge_contiguous};
use super::{Extent, FileId, Filesystem};
use simkit::{SimDuration, SimRng};
use std::collections::BTreeSet;
use vscsi::{IoDirection, Lba, SECTOR_SIZE};

/// NTFS model parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NtfsParams {
    /// Cluster size (4 KiB default).
    pub cluster_bytes: u64,
    /// Contiguous run size per file (NTFS's aggressive contiguity), 4 MiB.
    pub run_bytes: u64,
    /// `$LogFile` size (64 MiB default).
    pub logfile_bytes: u64,
    /// MFT zone size reserved at the front of the volume (12.5% classic).
    pub mft_zone_bytes: u64,
    /// Lazy-writer cadence (~1 s).
    pub lazy_writer_interval: SimDuration,
    /// Volume size in bytes.
    pub capacity_bytes: u64,
    /// Layout seed.
    pub layout_seed: u64,
}

impl Default for NtfsParams {
    fn default() -> Self {
        NtfsParams {
            cluster_bytes: 4_096,
            run_bytes: 4 * 1024 * 1024,
            logfile_bytes: 64 * 1024 * 1024,
            mft_zone_bytes: 1024 * 1024 * 1024,
            lazy_writer_interval: SimDuration::from_secs(1),
            capacity_bytes: 64 * 1024 * 1024 * 1024,
            layout_seed: 0x47F5,
        }
    }
}

/// Journalling run-based filesystem model.
#[derive(Debug, Clone)]
pub struct Ntfs {
    params: NtfsParams,
    /// `$LogFile` append head, sectors from the log base.
    log_head: u64,
    /// Dirty (file, cluster) pairs awaiting the lazy writer.
    dirty: BTreeSet<(FileId, u64)>,
    metadata_dirty: bool,
}

impl Ntfs {
    /// Creates an NTFS model.
    ///
    /// # Panics
    ///
    /// Panics on non-sector-multiple sizes or regions exceeding capacity.
    pub fn new(params: NtfsParams) -> Self {
        assert!(params.cluster_bytes % SECTOR_SIZE == 0);
        assert!(params.run_bytes >= params.cluster_bytes);
        assert!(
            params.mft_zone_bytes + params.logfile_bytes < params.capacity_bytes,
            "metadata regions exceed the volume"
        );
        Ntfs {
            params,
            log_head: 0,
            dirty: BTreeSet::new(),
            metadata_dirty: false,
        }
    }

    /// The parameters.
    pub fn params(&self) -> &NtfsParams {
        &self.params
    }

    /// Dirty clusters awaiting the lazy writer.
    pub fn dirty_clusters(&self) -> usize {
        self.dirty.len()
    }

    /// Data region layout: file bytes live in `run_bytes` contiguous runs
    /// placed pseudo-randomly after the MFT zone + `$LogFile`.
    fn locate(&self, file: FileId, offset: u64) -> Lba {
        let run_idx = offset / self.params.run_bytes;
        let within = offset % self.params.run_bytes;
        let data_base = self.params.mft_zone_bytes + self.params.logfile_bytes;
        let runs = (self.params.capacity_bytes - data_base) / self.params.run_bytes;
        let slot = layout_hash(self.params.layout_seed, file, run_idx) % runs.max(1);
        Lba::from_byte_offset(
            data_base + slot * self.params.run_bytes + within / SECTOR_SIZE * SECTOR_SIZE,
        )
    }

    /// Appends a `$LogFile` record (sequential within the log, wrapping).
    fn log_append(&mut self, sectors: u64) -> Extent {
        let log_base = self.params.mft_zone_bytes / SECTOR_SIZE;
        let log_len = self.params.logfile_bytes / SECTOR_SIZE;
        if self.log_head + sectors > log_len {
            self.log_head = 0;
        }
        let at = log_base + self.log_head;
        self.log_head += sectors;
        Extent::new(IoDirection::Write, Lba::new(at), sectors as u32)
    }

    fn clusters(&self, offset: u64, len: u64) -> (u64, u64) {
        let c = self.params.cluster_bytes;
        (offset / c, (offset + len.max(1) - 1) / c)
    }
}

impl Filesystem for Ntfs {
    fn read(&mut self, file: FileId, offset: u64, len: u64, _rng: &mut SimRng) -> Vec<Extent> {
        let c = self.params.cluster_bytes;
        let start = offset / c * c;
        let end = (offset + len.max(1)).div_ceil(c) * c;
        let mut out = Vec::new();
        let mut pos = start;
        while pos < end {
            let run_end = (pos / self.params.run_bytes + 1) * self.params.run_bytes;
            let run = (end - pos).min(run_end - pos);
            out.push(Extent::new(
                IoDirection::Read,
                self.locate(file, pos),
                (run / SECTOR_SIZE) as u32,
            ));
            pos += run;
        }
        merge_contiguous(out)
    }

    fn write(
        &mut self,
        file: FileId,
        offset: u64,
        len: u64,
        sync: bool,
        _rng: &mut SimRng,
    ) -> Vec<Extent> {
        let (first, last) = self.clusters(offset, len);
        for cl in first..=last {
            self.dirty.insert((file, cl));
        }
        self.metadata_dirty = true;
        if sync {
            // Flush-on-sync: journal record first, then the data clusters.
            let mut out = vec![self.log_append(8)];
            for cl in first..=last {
                if self.dirty.remove(&(file, cl)) {
                    out.push(Extent::new(
                        IoDirection::Write,
                        self.locate(file, cl * self.params.cluster_bytes),
                        (self.params.cluster_bytes / SECTOR_SIZE) as u32,
                    ));
                }
            }
            self.metadata_dirty = false;
            merge_contiguous(out)
        } else {
            Vec::new()
        }
    }

    fn flush(&mut self, _rng: &mut SimRng) -> Vec<Extent> {
        if self.dirty.is_empty() && !self.metadata_dirty {
            return Vec::new();
        }
        let mut out = Vec::new();
        if self.metadata_dirty {
            out.push(self.log_append(8));
            self.metadata_dirty = false;
        }
        let dirty: Vec<(FileId, u64)> = self.dirty.iter().copied().collect();
        self.dirty.clear();
        for (file, cl) in dirty {
            out.push(Extent::new(
                IoDirection::Write,
                self.locate(file, cl * self.params.cluster_bytes),
                (self.params.cluster_bytes / SECTOR_SIZE) as u32,
            ));
        }
        merge_contiguous(out)
    }

    fn flush_interval(&self) -> Option<SimDuration> {
        Some(self.params.lazy_writer_interval)
    }

    fn name(&self) -> &'static str {
        "ntfs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ntfs() -> Ntfs {
        Ntfs::new(NtfsParams::default())
    }

    #[test]
    fn reads_are_cluster_granular() {
        let mut fs = ntfs();
        let mut rng = SimRng::seed_from(1);
        let ext = fs.read(FileId(0), 100, 4096, &mut rng);
        let total: u32 = ext.iter().map(|e| e.sectors).sum();
        assert_eq!(total, 16); // spans two 4 KiB clusters
    }

    #[test]
    fn data_stays_out_of_metadata_regions() {
        let mut fs = ntfs();
        let mut rng = SimRng::seed_from(2);
        let meta_end = fs.params().mft_zone_bytes + fs.params().logfile_bytes;
        for off in [0u64, 123_456_789, 9_999_999_999] {
            for e in fs.read(FileId(3), off, 8192, &mut rng) {
                assert!(e.lba.as_bytes() >= meta_end);
            }
        }
    }

    #[test]
    fn large_runs_keep_streams_sequential() {
        let mut fs = ntfs();
        let mut rng = SimRng::seed_from(3);
        // 1 MiB of sequential 64 KiB reads inside one 4 MiB run: extents
        // must be contiguous.
        let mut last_end: Option<Lba> = None;
        for i in 0..16u64 {
            let ext = fs.read(FileId(0), i * 65_536, 65_536, &mut rng);
            assert_eq!(ext.len(), 1);
            if let Some(prev) = last_end {
                assert_eq!(prev, ext[0].lba);
            }
            last_end = Some(ext[0].lba.advance(u64::from(ext[0].sectors)));
        }
    }

    #[test]
    fn sync_write_journals_first() {
        let mut fs = ntfs();
        let mut rng = SimRng::seed_from(4);
        let out = fs.write(FileId(0), 4096, 4096, true, &mut rng);
        assert!(out.len() >= 2);
        // First extent is the $LogFile record, inside the log region.
        let log_base = fs.params().mft_zone_bytes;
        let log_end = log_base + fs.params().logfile_bytes;
        assert!(out[0].lba.as_bytes() >= log_base && out[0].lba.as_bytes() < log_end);
        // Data extent outside.
        assert!(out[1].lba.as_bytes() >= log_end);
        assert_eq!(fs.dirty_clusters(), 0);
    }

    #[test]
    fn lazy_writer_drains_buffered_writes() {
        let mut fs = ntfs();
        let mut rng = SimRng::seed_from(5);
        for i in 0..10u64 {
            assert!(fs
                .write(FileId(0), i * 4096, 4096, false, &mut rng)
                .is_empty());
        }
        assert_eq!(fs.dirty_clusters(), 10);
        let out = fs.flush(&mut rng);
        assert!(!out.is_empty());
        assert_eq!(fs.dirty_clusters(), 0);
        // One journal record precedes the data writeback.
        assert!(out[0].lba.as_bytes() >= fs.params().mft_zone_bytes);
        assert!(fs.flush(&mut rng).is_empty());
        assert_eq!(fs.flush_interval(), Some(SimDuration::from_secs(1)));
        assert_eq!(fs.name(), "ntfs");
    }

    #[test]
    fn log_wraps() {
        let mut fs = Ntfs::new(NtfsParams {
            logfile_bytes: 16 * 1024, // 32 sectors; 8-sector records
            ..Default::default()
        });
        let mut rng = SimRng::seed_from(6);
        let mut heads = Vec::new();
        for i in 0..6u64 {
            let out = fs.write(FileId(0), i * 4096, 4096, true, &mut rng);
            heads.push(out[0].lba);
        }
        assert_eq!(heads[0], heads[4], "log must wrap after 4 records");
    }

    #[test]
    #[should_panic(expected = "metadata regions exceed the volume")]
    fn tiny_volume_rejected() {
        let _ = Ntfs::new(NtfsParams {
            capacity_bytes: 1024 * 1024,
            ..Default::default()
        });
    }
}
