//! Guest filesystem behaviour models.
//!
//! §4.1 of the paper is a study of how much the *filesystem* reshapes an
//! application's I/O before it reaches the virtual disk: the same Filebench
//! OLTP run looks completely different under UFS (4–8 KiB, random
//! everywhere) and ZFS (80–128 KiB, random reads but *sequential* writes,
//! thanks to copy-on-write allocation). These models capture exactly that
//! reshaping layer: a mapping from file-level operations to block-level
//! extents, plus background flush behaviour.

mod ext3;
mod ntfs;
mod ufs;
mod zfs;

pub use ext3::{Ext3, Ext3Params};
pub use ntfs::{Ntfs, NtfsParams};
pub use ufs::{Ufs, UfsParams};
pub use zfs::{Zfs, ZfsParams};

use simkit::{SimDuration, SimRng};
use vscsi::{IoDirection, Lba};

/// Identifier of a file within a guest filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// One disk extent produced by translating a file operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// Read or write at the block level.
    pub direction: IoDirection,
    /// First sector on the virtual disk.
    pub lba: Lba,
    /// Length in sectors (> 0).
    pub sectors: u32,
}

impl Extent {
    /// Convenience constructor.
    pub fn new(direction: IoDirection, lba: Lba, sectors: u32) -> Self {
        debug_assert!(sectors > 0);
        Extent {
            direction,
            lba,
            sectors,
        }
    }
}

/// A filesystem behaviour model: translates file-level reads/writes into
/// block-level extents on the virtual disk.
pub trait Filesystem {
    /// Translates an application read of `len` bytes at `offset` in `file`.
    fn read(&mut self, file: FileId, offset: u64, len: u64, rng: &mut SimRng) -> Vec<Extent>;

    /// Translates an application write. `sync` writes must reach the disk
    /// before the call is considered complete (the returned extents carry
    /// them); async writes may be buffered and emerge later from
    /// [`Filesystem::flush`].
    fn write(
        &mut self,
        file: FileId,
        offset: u64,
        len: u64,
        sync: bool,
        rng: &mut SimRng,
    ) -> Vec<Extent>;

    /// Background work (journal commit, transaction-group flush). Called at
    /// the cadence advertised by [`Filesystem::flush_interval`].
    fn flush(&mut self, rng: &mut SimRng) -> Vec<Extent>;

    /// How often [`Filesystem::flush`] should run, if the model needs
    /// periodic background work.
    fn flush_interval(&self) -> Option<SimDuration> {
        None
    }

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extent_constructor() {
        let e = Extent::new(IoDirection::Read, Lba::new(8), 16);
        assert_eq!(e.sectors, 16);
        assert!(e.direction.is_read());
    }
}
