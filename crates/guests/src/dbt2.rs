//! OSDL Database Test 2 model (§4.2, Figure 4, [20]).
//!
//! DBT-2 is "a fair usage implementation of the TPC-C benchmark
//! specification [that] simulates a wholesale parts supplier where several
//! workers access a database, update customer information and check on
//! parts inventories", run by the paper against PostgreSQL 8.1 on ext3
//! (250 warehouses, 50 connections, ~50 GiB database, 8 KiB pages).
//!
//! The model reproduces the mechanisms behind Figure 4's signature:
//!
//! * **8 KiB everywhere** — PostgreSQL's page size (Figure 4(b));
//! * **write OIO pinned at ~32** — the background writer flushes dirty
//!   pages in fixed batches of 32 concurrent writes (Figure 4(c));
//! * **mostly random writes with bursts of locality** — each transaction
//!   dirties a couple of pages near an append frontier (orders/history
//!   tables) plus a few uniformly random ones (stock/customer); batch-
//!   sorted writeback turns the frontier pages into short-distance runs
//!   (Figure 4(a): "20% within 500 sectors, 33% within 5000");
//! * **I/O rate varying ~15% over minutes** — a periodic checkpoint
//!   enlarges flush batches (Figure 4(d)).

use crate::workload::{BlockIo, Poll, Workload};
use simkit::{Dist, SimDuration, SimRng, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use vscsi::{Lba, SECTOR_SIZE};

/// Tag base for background-writer I/Os.
const BGW_TAG_BASE: u64 = 1 << 32;
/// Tag base for WAL writes (connection id + this base).
const WAL_TAG_BASE: u64 = 1 << 33;

/// DBT-2 model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Dbt2Params {
    /// Concurrent database connections (the paper used 50).
    pub connections: u32,
    /// Database size in bytes (the paper's DB grew to ~50 GiB).
    pub db_bytes: u64,
    /// Page size (PostgreSQL: 8 KiB).
    pub page_bytes: u64,
    /// Mean keying/think time between transactions.
    pub think: Dist,
    /// Pages read per transaction.
    pub reads_per_txn: Dist,
    /// Background-writer batch size (flushes this many pages concurrently).
    pub bgwriter_batch: u32,
    /// Background-writer cadence.
    pub bgwriter_interval: SimDuration,
    /// Checkpoint cadence (flush batches triple while one is active).
    pub checkpoint_interval: SimDuration,
    /// WAL region size in bytes.
    pub wal_bytes: u64,
    /// Popularity skew of page accesses: `(segments, exponent)` applies a
    /// Zipf distribution over that many hash-scattered table segments
    /// (TPC-C's hot-warehouse skew); `None` means uniform.
    pub access_skew: Option<(u64, f64)>,
    /// Whether commit records are written to a WAL region on *this*
    /// virtual disk. Set `false` when modelling a deployment with the WAL
    /// placed on a separate disk (§3.6 of the paper recommends splitting
    /// workloads across virtual disks to separate their components).
    pub emit_wal: bool,
}

impl Default for Dbt2Params {
    fn default() -> Self {
        Dbt2Params {
            connections: 50,
            db_bytes: 50 * 1024 * 1024 * 1024,
            page_bytes: 8192,
            think: Dist::exponential(40_000.0), // 40 ms in µs
            reads_per_txn: Dist::uniform(4.0, 16.0),
            bgwriter_batch: 32,
            bgwriter_interval: SimDuration::from_millis(250),
            checkpoint_interval: SimDuration::from_secs(45),
            wal_bytes: 1024 * 1024 * 1024,
            access_skew: Some((1024, 1.1)),
            emit_wal: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    Thinking,
    Reading { remaining: u32 },
    Committing,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum TimerKind {
    Conn(u32),
    Bgwriter,
    Checkpoint,
}

/// A running DBT-2/PostgreSQL workload.
#[derive(Debug)]
pub struct Dbt2Workload {
    name: String,
    params: Dbt2Params,
    rng: SimRng,
    conns: Vec<ConnState>,
    /// Dirty page numbers awaiting the background writer (sorted).
    dirty: BTreeSet<u64>,
    /// Append frontier for the hot (orders/history) table region, in pages.
    hot_frontier: u64,
    /// WAL append position, in sectors within the WAL region.
    wal_head: u64,
    timers: BinaryHeap<Reverse<(SimTime, u64, TimerKind)>>,
    timer_seq: u64,
    bgw_outstanding: u32,
    checkpoint_active: bool,
    transactions: u64,
}

impl Dbt2Workload {
    /// Creates the workload.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (no connections, page not a sector
    /// multiple, database smaller than a page).
    pub fn new(name: &str, params: Dbt2Params, rng: SimRng) -> Self {
        assert!(params.connections > 0);
        assert!(params.page_bytes % SECTOR_SIZE == 0);
        assert!(params.db_bytes >= params.page_bytes * 1024);
        let pages = params.db_bytes / params.page_bytes;
        Dbt2Workload {
            name: name.to_owned(),
            conns: vec![ConnState::Thinking; params.connections as usize],
            // Hot append region starts 3/4 into the database.
            hot_frontier: pages * 3 / 4,
            params,
            rng,
            dirty: BTreeSet::new(),
            wal_head: 0,
            timers: BinaryHeap::new(),
            timer_seq: 0,
            bgw_outstanding: 0,
            checkpoint_active: false,
            transactions: 0,
        }
    }

    /// Completed transactions.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Dirty pages currently queued for writeback.
    pub fn dirty_pages(&self) -> usize {
        self.dirty.len()
    }

    fn arm(&mut self, at: SimTime, kind: TimerKind) {
        self.timers.push(Reverse((at, self.timer_seq, kind)));
        self.timer_seq += 1;
    }

    fn next_timer(&self) -> Option<SimTime> {
        self.timers.peek().map(|Reverse((t, _, _))| *t)
    }

    fn page_sectors(&self) -> u32 {
        (self.params.page_bytes / SECTOR_SIZE) as u32
    }

    fn total_pages(&self) -> u64 {
        self.params.db_bytes / self.params.page_bytes
    }

    /// The on-disk sector of a data page; data lives after the WAL region.
    fn page_lba(&self, page: u64) -> Lba {
        Lba::new(self.params.wal_bytes / SECTOR_SIZE + page * u64::from(self.page_sectors()))
    }

    fn read_io(&mut self, conn: u32) -> BlockIo {
        // 85% table probes (stock/customer/item), 15% near the hot
        // frontier (recent orders). Probes are Zipf-skewed over hash-
        // scattered segments when `access_skew` is set: popular warehouses
        // are hit more often, but popularity does not imply adjacency.
        let pages = self.total_pages();
        let page = if self.rng.chance(0.15) {
            let back = self.rng.range_inclusive(0, 512);
            self.hot_frontier.saturating_sub(back) % pages
        } else if let Some((segments, exponent)) = self.params.access_skew {
            let segments = segments.min(pages).max(1);
            let rank = Dist::zipf(segments, exponent).sample(&mut self.rng) as u64;
            // Scatter ranks across the address space so skew affects
            // popularity (cache behaviour) but not spatial locality.
            let mut h = rank.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= h >> 29;
            let seg = h % segments;
            let seg_pages = (pages / segments).max(1);
            seg * seg_pages + self.rng.range_inclusive(0, seg_pages - 1)
        } else {
            self.rng.range_inclusive(0, pages - 1)
        };
        BlockIo::read(
            self.page_lba(page % pages),
            self.page_sectors(),
            u64::from(conn),
        )
    }

    fn wal_io(&mut self, conn: u32) -> BlockIo {
        let sectors = u64::from(self.page_sectors());
        let wal_len = self.params.wal_bytes / SECTOR_SIZE;
        if self.wal_head + sectors > wal_len {
            self.wal_head = 0;
        }
        let lba = Lba::new(self.wal_head);
        self.wal_head += sectors;
        BlockIo::write(lba, sectors as u32, WAL_TAG_BASE + u64::from(conn))
    }

    /// Marks the pages a transaction dirtied: one page at the hot append
    /// frontier (orders/history rows, adjacent after batch sorting — the
    /// within-500-sectors bursts of Figure 4(a)), one page *near* the
    /// frontier (index leaves, within a few thousand sectors), and several
    /// uniformly random ones (stock/customer heap updates).
    fn dirty_txn_pages(&mut self) {
        let pages = self.total_pages();
        self.dirty.insert(self.hot_frontier % pages);
        self.hot_frontier = (self.hot_frontier + 1) % pages;
        let near_back = self.rng.range_inclusive(8, 256);
        self.dirty
            .insert(self.hot_frontier.saturating_sub(near_back) % pages);
        let n = self.rng.range_inclusive(2, 4);
        for _ in 0..n {
            self.dirty.insert(self.rng.range_inclusive(0, pages - 1));
        }
    }

    fn begin_txn(&mut self, conn: u32) -> Vec<BlockIo> {
        let reads = self
            .params
            .reads_per_txn
            .sample(&mut self.rng)
            .round()
            .max(1.0) as u32;
        self.conns[conn as usize] = ConnState::Reading { remaining: reads };
        vec![self.read_io(conn)]
    }

    /// Pops the next dirty page in sorted order (PostgreSQL's buffer scan
    /// order — this creates the short-distance write bursts of Figure 4(a)).
    fn pop_dirty(&mut self) -> Option<u64> {
        let page = *self.dirty.iter().next()?;
        self.dirty.remove(&page);
        Some(page)
    }

    fn bgw_write(&mut self, page: u64) -> BlockIo {
        self.bgw_outstanding += 1;
        BlockIo::write(
            self.page_lba(page),
            self.page_sectors(),
            BGW_TAG_BASE + page,
        )
    }

    /// Tops the background writer's in-flight window back up to its target
    /// ("PostgreSQL is always issuing around 32 writes simultaneously",
    /// §4.2). During a checkpoint the window triples.
    fn bgwriter_fire(&mut self, now: SimTime) -> Vec<BlockIo> {
        self.arm(now + self.params.bgwriter_interval, TimerKind::Bgwriter);
        let factor = if self.checkpoint_active { 3 } else { 1 };
        let target = self.params.bgwriter_batch * factor;
        let mut ios = Vec::new();
        while self.bgw_outstanding < target {
            match self.pop_dirty() {
                Some(page) => ios.push(self.bgw_write(page)),
                None => break,
            }
        }
        ios
    }
}

impl Workload for Dbt2Workload {
    fn start(&mut self, now: SimTime) -> Poll {
        let mut ios = Vec::new();
        // Stagger connection start over the first think interval.
        for c in 0..self.params.connections {
            let delay = self.params.think.sample(&mut self.rng);
            self.arm(
                now + SimDuration::from_micros_f64(delay),
                TimerKind::Conn(c),
            );
        }
        self.arm(now + self.params.bgwriter_interval, TimerKind::Bgwriter);
        self.arm(now + self.params.checkpoint_interval, TimerKind::Checkpoint);
        Poll {
            issue: ios.drain(..).collect::<Vec<_>>(),
            timer: self.next_timer(),
        }
    }

    fn on_complete(&mut self, now: SimTime, tag: u64) -> Poll {
        let ios = if tag >= WAL_TAG_BASE {
            // Commit record durable: transaction done; think, then restart.
            let conn = (tag - WAL_TAG_BASE) as u32;
            debug_assert_eq!(self.conns[conn as usize], ConnState::Committing);
            self.conns[conn as usize] = ConnState::Thinking;
            self.transactions += 1;
            self.dirty_txn_pages();
            let delay = self.params.think.sample(&mut self.rng);
            self.arm(
                now + SimDuration::from_micros_f64(delay),
                TimerKind::Conn(conn),
            );
            Vec::new()
        } else if tag >= BGW_TAG_BASE {
            self.bgw_outstanding = self.bgw_outstanding.saturating_sub(1);
            // Sustain the write window: replace the completed write with
            // the next dirty page, if any.
            let factor = if self.checkpoint_active { 3 } else { 1 };
            if self.bgw_outstanding < self.params.bgwriter_batch * factor {
                match self.pop_dirty() {
                    Some(page) => vec![self.bgw_write(page)],
                    None => Vec::new(),
                }
            } else {
                Vec::new()
            }
        } else {
            let conn = tag as u32;
            match self.conns[conn as usize] {
                ConnState::Reading { remaining } if remaining > 1 => {
                    self.conns[conn as usize] = ConnState::Reading {
                        remaining: remaining - 1,
                    };
                    vec![self.read_io(conn)]
                }
                ConnState::Reading { .. } if self.params.emit_wal => {
                    // All reads done: write the commit record.
                    self.conns[conn as usize] = ConnState::Committing;
                    vec![self.wal_io(conn)]
                }
                ConnState::Reading { .. } => {
                    // WAL lives on another disk: the transaction completes
                    // here without a local commit write.
                    self.conns[conn as usize] = ConnState::Thinking;
                    self.transactions += 1;
                    self.dirty_txn_pages();
                    let delay = self.params.think.sample(&mut self.rng);
                    self.arm(
                        now + SimDuration::from_micros_f64(delay),
                        TimerKind::Conn(conn),
                    );
                    Vec::new()
                }
                state => unreachable!("read completion in state {state:?}"),
            }
        };
        Poll {
            issue: ios,
            timer: self.next_timer(),
        }
    }

    fn on_timer(&mut self, now: SimTime) -> Poll {
        let mut ios = Vec::new();
        while let Some(&Reverse((at, _, kind))) = self.timers.peek() {
            if at > now {
                break;
            }
            self.timers.pop();
            match kind {
                TimerKind::Conn(c) => {
                    if self.conns[c as usize] == ConnState::Thinking {
                        ios.extend(self.begin_txn(c));
                    }
                }
                TimerKind::Bgwriter => ios.extend(self.bgwriter_fire(now)),
                TimerKind::Checkpoint => {
                    // Checkpoints alternate a heavy phase with a quiet one.
                    self.checkpoint_active = !self.checkpoint_active;
                    let next = if self.checkpoint_active {
                        self.params.checkpoint_interval / 3
                    } else {
                        self.params.checkpoint_interval
                    };
                    self.arm(now + next, TimerKind::Checkpoint);
                }
            }
        }
        Poll {
            issue: ios,
            timer: self.next_timer(),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vscsi::IoDirection;

    fn small() -> Dbt2Workload {
        Dbt2Workload::new(
            "dbt2",
            Dbt2Params {
                connections: 4,
                db_bytes: 512 * 1024 * 1024,
                think: Dist::constant(1_000.0), // 1 ms
                ..Default::default()
            },
            SimRng::seed_from(1),
        )
    }

    /// Drives the workload for `steps` timer/completion rounds with an
    /// instant-completion device; returns all I/Os seen.
    fn drive(wl: &mut Dbt2Workload, steps: usize) -> Vec<BlockIo> {
        let mut seen = Vec::new();
        let mut now = SimTime::ZERO;
        let mut poll = wl.start(now);
        let mut pending: Vec<BlockIo> = poll.issue.clone();
        seen.extend(poll.issue.iter().copied());
        for _ in 0..steps {
            if let Some(io) = pending.pop() {
                now = now + SimDuration::from_micros(50);
                poll = wl.on_complete(now, io.tag);
            } else if let Some(t) = poll.timer {
                now = now.max(t);
                poll = wl.on_timer(now);
            } else {
                break;
            }
            seen.extend(poll.issue.iter().copied());
            pending.extend(poll.issue.iter().copied());
        }
        seen
    }

    #[test]
    fn all_ios_are_page_sized() {
        let mut wl = small();
        let ios = drive(&mut wl, 3_000);
        assert!(!ios.is_empty());
        assert!(ios.iter().all(|io| io.sectors == 16), "8 KiB everywhere");
    }

    #[test]
    fn transactions_complete_and_dirty_pages_accumulate() {
        let mut wl = small();
        drive(&mut wl, 5_000);
        assert!(wl.transactions() > 10, "txns = {}", wl.transactions());
    }

    #[test]
    fn bgwriter_issues_concurrent_batches() {
        let mut wl = small();
        let ios = drive(&mut wl, 20_000);
        // Find a contiguous run of bgwriter writes (tags >= BGW base, < WAL base).
        let mut best_run = 0;
        let mut run = 0;
        for io in &ios {
            if io.tag >= BGW_TAG_BASE && io.tag < WAL_TAG_BASE {
                run += 1;
                best_run = best_run.max(run);
            } else {
                run = 0;
            }
        }
        assert!(best_run >= 16, "bgwriter batch run = {best_run}");
    }

    #[test]
    fn sorted_writeback_has_local_bursts() {
        let mut wl = small();
        let ios = drive(&mut wl, 30_000);
        let writes: Vec<&BlockIo> = ios
            .iter()
            .filter(|io| {
                io.direction == IoDirection::Write
                    && io.tag >= BGW_TAG_BASE
                    && io.tag < WAL_TAG_BASE
            })
            .collect();
        assert!(
            writes.len() > 50,
            "not enough bgwriter writes: {}",
            writes.len()
        );
        // Consecutive bgwriter writes within a batch are ascending; a good
        // fraction are within 5000 sectors (Figure 4(a) locality bursts).
        let mut near = 0;
        let mut total = 0;
        for w in writes.windows(2) {
            let d = w[1].lba.sector() as i64 - w[0].lba.sector() as i64;
            if d > 0 {
                total += 1;
                if d <= 5_000 {
                    near += 1;
                }
            }
        }
        assert!(total > 20);
        let frac = f64::from(near) / f64::from(total);
        assert!(frac > 0.15, "locality fraction {frac}");
    }

    #[test]
    fn wal_writes_are_sequential_appends() {
        let mut wl = small();
        let ios = drive(&mut wl, 10_000);
        let wal: Vec<&BlockIo> = ios.iter().filter(|io| io.tag >= WAL_TAG_BASE).collect();
        assert!(wal.len() > 5);
        for w in wal.windows(2) {
            let a = w[0].lba.sector();
            let b = w[1].lba.sector();
            assert!(b == a + 16 || b == 0, "WAL not sequential: {a} -> {b}");
        }
        // WAL lives below the data region.
        let wal_len = wl.params.wal_bytes / SECTOR_SIZE;
        assert!(wal.iter().all(|io| io.lba.sector() < wal_len));
    }

    #[test]
    fn reads_are_mostly_random_with_hot_tail() {
        let mut wl = small();
        let ios = drive(&mut wl, 20_000);
        let reads: Vec<&BlockIo> = ios.iter().filter(|io| io.direction.is_read()).collect();
        assert!(reads.len() > 100);
        let distinct: std::collections::HashSet<u64> =
            reads.iter().map(|io| io.lba.sector()).collect();
        // Zipf popularity skew means some pages repeat, but the stream must
        // still spread broadly (it is spatially random).
        assert!(distinct.len() > reads.len() / 4, "reads too repetitive");
    }

    #[test]
    fn access_skew_concentrates_popularity() {
        let skewed = {
            let mut wl = small();
            let ios = drive(&mut wl, 20_000);
            let reads: Vec<u64> = ios
                .iter()
                .filter(|io| io.direction.is_read())
                .map(|io| io.lba.sector())
                .collect();
            let mut counts = std::collections::HashMap::new();
            for r in &reads {
                *counts.entry(*r).or_insert(0u32) += 1;
            }
            let max = *counts.values().max().unwrap();
            (reads.len(), max)
        };
        let uniform = {
            let mut wl = Dbt2Workload::new(
                "dbt2",
                Dbt2Params {
                    connections: 4,
                    db_bytes: 512 * 1024 * 1024,
                    think: Dist::constant(1_000.0),
                    access_skew: None,
                    ..Default::default()
                },
                SimRng::seed_from(1),
            );
            let ios = drive(&mut wl, 20_000);
            let reads: Vec<u64> = ios
                .iter()
                .filter(|io| io.direction.is_read())
                .map(|io| io.lba.sector())
                .collect();
            let mut counts = std::collections::HashMap::new();
            for r in &reads {
                *counts.entry(*r).or_insert(0u32) += 1;
            }
            (reads.len(), *counts.values().max().unwrap())
        };
        assert!(
            skewed.1 > uniform.1,
            "skewed hottest page ({}) should beat uniform ({})",
            skewed.1,
            uniform.1
        );
    }

    #[test]
    fn determinism() {
        let ios1 = drive(&mut small(), 2_000);
        let ios2 = drive(&mut small(), 2_000);
        assert_eq!(ios1, ios2);
    }

    #[test]
    fn wal_suppressed_when_on_a_separate_disk() {
        let mut wl = Dbt2Workload::new(
            "dbt2",
            Dbt2Params {
                connections: 4,
                db_bytes: 512 * 1024 * 1024,
                think: Dist::constant(1_000.0),
                emit_wal: false,
                ..Default::default()
            },
            SimRng::seed_from(1),
        );
        let ios = drive(&mut wl, 20_000);
        assert!(wl.transactions() > 10, "txns still complete without WAL");
        assert!(
            ios.iter().all(|io| io.tag < WAL_TAG_BASE),
            "no WAL I/Os may be issued"
        );
        // Data writes (background writer) still happen.
        assert!(ios.iter().any(|io| io.direction.is_write()));
    }
}
