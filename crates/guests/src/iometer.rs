//! Iometer-style synthetic workload generator (§5.1, [24]).
//!
//! "Iometer is an I/O subsystem measurement and characterization tool …
//! used both as a workload generator … and a measurement tool." An
//! [`IometerWorkload`] runs one *access specification* — block size,
//! read/random percentages, and a fixed number of outstanding I/Os — in a
//! classic closed loop: every completion immediately triggers the next
//! command, saturating the device the way the paper's Table 2
//! microbenchmark does with its "4KB Sequential Read" pattern.

use crate::workload::{BlockIo, Poll, Workload};
use simkit::{SimRng, SimTime};
use vscsi::{IoDirection, Lba, SECTOR_SIZE};

/// An Iometer access specification.
#[derive(Debug, Clone, PartialEq)]
pub struct AccessSpec {
    /// Bytes per command (sector multiple).
    pub block_bytes: u64,
    /// Fraction of commands that are reads, 0–1.
    pub read_fraction: f64,
    /// Fraction of commands at random offsets (the rest continue the
    /// sequential cursor), 0–1.
    pub random_fraction: f64,
    /// Commands kept outstanding at all times.
    pub outstanding: u32,
    /// Size of the target region, in bytes.
    pub region_bytes: u64,
    /// First sector of the target region on the virtual disk.
    pub region_base: Lba,
}

impl AccessSpec {
    /// The Table 2 microbenchmark pattern: 4 KiB sequential reads.
    pub fn seq_read_4k(outstanding: u32, region_bytes: u64) -> Self {
        AccessSpec {
            block_bytes: 4096,
            read_fraction: 1.0,
            random_fraction: 0.0,
            outstanding,
            region_bytes,
            region_base: Lba::ZERO,
        }
    }

    /// The Figure 6 "8K random reads" pattern.
    pub fn random_read_8k(outstanding: u32, region_bytes: u64) -> Self {
        AccessSpec {
            block_bytes: 8192,
            read_fraction: 1.0,
            random_fraction: 1.0,
            outstanding,
            region_bytes,
            region_base: Lba::ZERO,
        }
    }

    /// The Figure 6 "8K sequential reads" pattern.
    pub fn seq_read_8k(outstanding: u32, region_bytes: u64) -> Self {
        AccessSpec {
            block_bytes: 8192,
            read_fraction: 1.0,
            random_fraction: 0.0,
            outstanding,
            region_bytes,
            region_base: Lba::ZERO,
        }
    }
}

/// A running Iometer worker.
///
/// # Examples
///
/// ```
/// use guests::{AccessSpec, IometerWorkload, Workload};
/// use simkit::{SimRng, SimTime};
///
/// let spec = AccessSpec::seq_read_4k(8, 64 * 1024 * 1024);
/// let mut w = IometerWorkload::new("iometer", spec, SimRng::seed_from(1));
/// let poll = w.start(SimTime::ZERO);
/// assert_eq!(poll.issue.len(), 8); // one command per outstanding slot
/// ```
#[derive(Debug, Clone)]
pub struct IometerWorkload {
    name: String,
    spec: AccessSpec,
    rng: SimRng,
    /// Shared sequential cursor, in blocks.
    cursor: u64,
    issued: u64,
}

impl IometerWorkload {
    /// Creates a worker.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero/unaligned block size, zero
    /// outstanding, region smaller than one block).
    pub fn new(name: &str, spec: AccessSpec, rng: SimRng) -> Self {
        assert!(spec.block_bytes > 0 && spec.block_bytes % SECTOR_SIZE == 0);
        assert!(spec.outstanding > 0, "need at least one outstanding I/O");
        assert!(spec.region_bytes >= spec.block_bytes);
        assert!((0.0..=1.0).contains(&spec.read_fraction));
        assert!((0.0..=1.0).contains(&spec.random_fraction));
        IometerWorkload {
            name: name.to_owned(),
            spec,
            rng,
            cursor: 0,
            issued: 0,
        }
    }

    /// Commands issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The access specification.
    pub fn spec(&self) -> &AccessSpec {
        &self.spec
    }

    fn next_io(&mut self, tag: u64) -> BlockIo {
        let blocks_in_region = self.spec.region_bytes / self.spec.block_bytes;
        let block_idx = if self.rng.chance(self.spec.random_fraction) {
            self.rng.range_inclusive(0, blocks_in_region - 1)
        } else {
            let b = self.cursor;
            self.cursor = (self.cursor + 1) % blocks_in_region;
            b
        };
        let dir = if self.rng.chance(self.spec.read_fraction) {
            IoDirection::Read
        } else {
            IoDirection::Write
        };
        let sectors_per_block = (self.spec.block_bytes / SECTOR_SIZE) as u32;
        let lba = self
            .spec
            .region_base
            .advance(block_idx * u64::from(sectors_per_block));
        self.issued += 1;
        BlockIo::new(dir, lba, sectors_per_block, tag)
    }
}

impl Workload for IometerWorkload {
    fn start(&mut self, _now: SimTime) -> Poll {
        let ios = (0..self.spec.outstanding)
            .map(|slot| self.next_io(u64::from(slot)))
            .collect();
        Poll::issue(ios)
    }

    fn on_complete(&mut self, _now: SimTime, tag: u64) -> Poll {
        Poll::issue(vec![self.next_io(tag)])
    }

    fn on_timer(&mut self, _now: SimTime) -> Poll {
        Poll::idle()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_read_spec_generates_adjacent_blocks() {
        let mut w = IometerWorkload::new(
            "t",
            AccessSpec::seq_read_4k(2, 1024 * 1024),
            SimRng::seed_from(1),
        );
        let p = w.start(SimTime::ZERO);
        assert_eq!(p.issue.len(), 2);
        assert_eq!(p.issue[0].lba, Lba::ZERO);
        assert_eq!(p.issue[1].lba, Lba::new(8));
        assert!(p.issue.iter().all(|io| io.direction.is_read()));
        // Closed loop: one completion -> exactly one new I/O with same tag.
        let p2 = w.on_complete(SimTime::from_micros(10), 0);
        assert_eq!(p2.issue.len(), 1);
        assert_eq!(p2.issue[0].tag, 0);
        assert_eq!(p2.issue[0].lba, Lba::new(16));
    }

    #[test]
    fn sequential_cursor_wraps() {
        let mut w = IometerWorkload::new(
            "t",
            AccessSpec::seq_read_4k(1, 8192), // 2 blocks
            SimRng::seed_from(1),
        );
        let a = w.start(SimTime::ZERO).issue[0].lba;
        let b = w.on_complete(SimTime::ZERO, 0).issue[0].lba;
        let c = w.on_complete(SimTime::ZERO, 0).issue[0].lba;
        assert_eq!(a, c);
        assert_ne!(a, b);
    }

    #[test]
    fn random_spec_spreads_offsets() {
        let mut w = IometerWorkload::new(
            "t",
            AccessSpec::random_read_8k(1, 1024 * 1024 * 1024),
            SimRng::seed_from(2),
        );
        let mut seen = std::collections::HashSet::new();
        w.start(SimTime::ZERO);
        for _ in 0..100 {
            let io = w.on_complete(SimTime::ZERO, 0).issue[0];
            seen.insert(io.lba);
            assert_eq!(io.sectors, 16);
        }
        assert!(
            seen.len() > 90,
            "random offsets not spreading: {}",
            seen.len()
        );
    }

    #[test]
    fn mixed_read_write_ratio() {
        let spec = AccessSpec {
            block_bytes: 4096,
            read_fraction: 0.7,
            random_fraction: 1.0,
            outstanding: 1,
            region_bytes: 1024 * 1024 * 1024,
            region_base: Lba::ZERO,
        };
        let mut w = IometerWorkload::new("t", spec, SimRng::seed_from(3));
        w.start(SimTime::ZERO);
        let mut reads = 0;
        let n = 2_000;
        for _ in 0..n {
            if w.on_complete(SimTime::ZERO, 0).issue[0].direction.is_read() {
                reads += 1;
            }
        }
        let frac = f64::from(reads) / f64::from(n);
        assert!((0.65..0.75).contains(&frac), "read fraction {frac}");
    }

    #[test]
    fn region_base_offsets_all_ios() {
        let spec = AccessSpec {
            region_base: Lba::new(1_000_000),
            ..AccessSpec::seq_read_4k(4, 1024 * 1024)
        };
        let mut w = IometerWorkload::new("t", spec, SimRng::seed_from(4));
        let p = w.start(SimTime::ZERO);
        assert!(p.issue.iter().all(|io| io.lba >= Lba::new(1_000_000)));
    }

    #[test]
    fn issued_counter() {
        let mut w = IometerWorkload::new(
            "t",
            AccessSpec::seq_read_4k(4, 1024 * 1024),
            SimRng::seed_from(5),
        );
        w.start(SimTime::ZERO);
        assert_eq!(w.issued(), 4);
        w.on_complete(SimTime::ZERO, 2);
        assert_eq!(w.issued(), 5);
        assert_eq!(w.name(), "t");
        assert!(w.on_timer(SimTime::ZERO).issue.is_empty());
    }

    #[test]
    #[should_panic(expected = "outstanding")]
    fn zero_outstanding_rejected() {
        let _ = IometerWorkload::new(
            "t",
            AccessSpec {
                outstanding: 0,
                ..AccessSpec::seq_read_4k(1, 1024 * 1024)
            },
            SimRng::seed_from(1),
        );
    }
}
