//! Large-file-copy workload (§4.3, Figure 5).
//!
//! The paper compares the same user action — copying a large file on NTFS —
//! between Windows XP Professional and Windows Vista Enterprise: "the copy
//! application in Microsoft Windows XP Pro is issuing I/Os of size 64K
//! whereas in Microsoft Vista Enterprise, I/Os are primarily 1MB in size.
//! Larger I/Os means less seeking … Latencies … are correspondingly longer
//! for the larger sized I/Os in Vista."
//!
//! The model: a pipelined copy engine that reads source chunks and writes
//! them to the destination region, keeping a small number of chunks in
//! flight, looping over a sequence of files for as long as it is driven.

use crate::workload::{BlockIo, Poll, Workload};
use simkit::SimTime;
use vscsi::{Lba, SECTOR_SIZE};

/// Copy-engine parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileCopyParams {
    /// Bytes per copy chunk — 64 KiB on XP, 1 MiB on Vista.
    pub chunk_bytes: u64,
    /// Bytes per file.
    pub file_bytes: u64,
    /// First sector of the source file region.
    pub src_base: Lba,
    /// First sector of the destination region.
    pub dst_base: Lba,
    /// Chunks kept in flight (the copy engine's pipelining).
    pub pipeline: u32,
}

impl FileCopyParams {
    /// Windows XP Pro copy engine: 64 KiB chunks.
    pub fn xp(file_bytes: u64) -> Self {
        FileCopyParams {
            chunk_bytes: 64 * 1024,
            file_bytes,
            src_base: Lba::ZERO,
            dst_base: Lba::from_byte_offset(file_bytes.next_multiple_of(1024 * 1024) * 2),
            pipeline: 2,
        }
    }

    /// Windows Vista Enterprise copy engine: 1 MiB chunks.
    pub fn vista(file_bytes: u64) -> Self {
        FileCopyParams {
            chunk_bytes: 1024 * 1024,
            ..FileCopyParams::xp(file_bytes)
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Reading(u64),
    Writing(u64),
}

/// A pipelined large-file copy.
///
/// # Examples
///
/// ```
/// use guests::{FileCopyParams, FileCopyWorkload, Workload};
/// use simkit::SimTime;
///
/// let mut copy = FileCopyWorkload::new("xp-copy", FileCopyParams::xp(16 * 1024 * 1024));
/// let poll = copy.start(SimTime::ZERO);
/// assert!(poll.issue.iter().all(|io| io.direction.is_read())); // reads first
/// ```
#[derive(Debug, Clone)]
pub struct FileCopyWorkload {
    name: String,
    params: FileCopyParams,
    /// Per-slot pipeline state.
    slots: Vec<SlotState>,
    /// Next chunk index to read.
    next_chunk: u64,
    chunks_per_file: u64,
    files_copied: u64,
    chunks_written: u64,
}

impl FileCopyWorkload {
    /// Creates a copy engine.
    ///
    /// # Panics
    ///
    /// Panics if the chunk size is zero/unaligned, larger than the file, or
    /// the pipeline is empty.
    pub fn new(name: &str, params: FileCopyParams) -> Self {
        assert!(params.chunk_bytes > 0 && params.chunk_bytes % SECTOR_SIZE == 0);
        assert!(params.file_bytes >= params.chunk_bytes);
        assert!(params.pipeline > 0);
        let chunks_per_file = params.file_bytes / params.chunk_bytes;
        FileCopyWorkload {
            name: name.to_owned(),
            params,
            slots: Vec::new(),
            next_chunk: 0,
            chunks_per_file,
            files_copied: 0,
            chunks_written: 0,
        }
    }

    /// Completed whole-file copies.
    pub fn files_copied(&self) -> u64 {
        self.files_copied
    }

    /// Chunks fully copied (read + written).
    pub fn chunks_written(&self) -> u64 {
        self.chunks_written
    }

    /// The parameters.
    pub fn params(&self) -> &FileCopyParams {
        &self.params
    }

    fn chunk_sectors(&self) -> u32 {
        (self.params.chunk_bytes / SECTOR_SIZE) as u32
    }

    fn read_io(&self, chunk: u64, slot: usize) -> BlockIo {
        let within = chunk % self.chunks_per_file;
        let lba = self
            .params
            .src_base
            .advance(within * u64::from(self.chunk_sectors()));
        BlockIo::read(lba, self.chunk_sectors(), slot as u64)
    }

    fn write_io(&self, chunk: u64, slot: usize) -> BlockIo {
        let within = chunk % self.chunks_per_file;
        let lba = self
            .params
            .dst_base
            .advance(within * u64::from(self.chunk_sectors()));
        BlockIo::write(lba, self.chunk_sectors(), slot as u64)
    }
}

impl Workload for FileCopyWorkload {
    fn start(&mut self, _now: SimTime) -> Poll {
        let mut ios = Vec::new();
        for slot in 0..self.params.pipeline as usize {
            let chunk = self.next_chunk;
            self.next_chunk += 1;
            self.slots.push(SlotState::Reading(chunk));
            ios.push(self.read_io(chunk, slot));
        }
        Poll::issue(ios)
    }

    fn on_complete(&mut self, _now: SimTime, tag: u64) -> Poll {
        let slot = tag as usize;
        let io = match self.slots[slot] {
            SlotState::Reading(chunk) => {
                // Read done: write the chunk to the destination.
                self.slots[slot] = SlotState::Writing(chunk);
                self.write_io(chunk, slot)
            }
            SlotState::Writing(chunk) => {
                // Chunk copied; account file completion, read the next one.
                self.chunks_written += 1;
                if (chunk + 1) % self.chunks_per_file == 0 {
                    self.files_copied += 1;
                }
                let next = self.next_chunk;
                self.next_chunk += 1;
                self.slots[slot] = SlotState::Reading(next);
                self.read_io(next, slot)
            }
        };
        Poll::issue(vec![io])
    }

    fn on_timer(&mut self, _now: SimTime) -> Poll {
        Poll::idle()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vscsi::IoDirection;

    fn copy(chunk_kb: u64) -> FileCopyWorkload {
        FileCopyWorkload::new(
            "copy",
            FileCopyParams {
                chunk_bytes: chunk_kb * 1024,
                file_bytes: 1024 * 1024,
                src_base: Lba::ZERO,
                dst_base: Lba::new(1_000_000),
                pipeline: 2,
            },
        )
    }

    #[test]
    fn reads_then_writes_alternate_per_slot() {
        let mut c = copy(64);
        let p = c.start(SimTime::ZERO);
        assert_eq!(p.issue.len(), 2);
        assert!(p.issue.iter().all(|io| io.direction.is_read()));
        let w = c.on_complete(SimTime::ZERO, 0).issue[0];
        assert_eq!(w.direction, IoDirection::Write);
        assert!(w.lba >= Lba::new(1_000_000));
        let r2 = c.on_complete(SimTime::ZERO, 0).issue[0];
        assert_eq!(r2.direction, IoDirection::Read);
        assert_eq!(c.chunks_written(), 1);
    }

    #[test]
    fn chunk_sizes_match_presets() {
        let mut xp = FileCopyWorkload::new("xp", FileCopyParams::xp(16 * 1024 * 1024));
        let vista = FileCopyWorkload::new("vista", FileCopyParams::vista(16 * 1024 * 1024));
        assert_eq!(
            u64::from(xp.start(SimTime::ZERO).issue[0].sectors) * 512,
            64 * 1024
        );
        let mut v = vista;
        assert_eq!(
            u64::from(v.start(SimTime::ZERO).issue[0].sectors) * 512,
            1024 * 1024
        );
        // Same copy, 16x fewer commands per file for Vista.
        assert_eq!(
            FileCopyParams::xp(16 * 1024 * 1024).chunk_bytes * 16,
            FileCopyParams::vista(16 * 1024 * 1024).chunk_bytes
        );
    }

    #[test]
    fn source_reads_are_sequential() {
        let mut c = copy(64);
        c.start(SimTime::ZERO);
        let mut last_read: Option<BlockIo> = None;
        for _ in 0..20 {
            // Drive slot 0 through read->write->read...
            let io = c.on_complete(SimTime::ZERO, 0).issue[0];
            if io.direction.is_read() {
                if let Some(prev) = last_read {
                    // Slot 0's reads advance by pipeline*chunk each round.
                    assert!(io.lba > prev.lba || io.lba == Lba::ZERO);
                }
                last_read = Some(io);
            }
        }
    }

    #[test]
    fn file_completion_counted_and_wraps() {
        let mut c = FileCopyWorkload::new(
            "c",
            FileCopyParams {
                chunk_bytes: 64 * 1024,
                file_bytes: 128 * 1024, // 2 chunks per file
                src_base: Lba::ZERO,
                dst_base: Lba::new(10_000),
                pipeline: 1,
            },
        );
        c.start(SimTime::ZERO);
        for _ in 0..8 {
            c.on_complete(SimTime::ZERO, 0);
        }
        // 8 completions = 4 chunks copied = 2 files.
        assert_eq!(c.chunks_written(), 4);
        assert_eq!(c.files_copied(), 2);
    }

    #[test]
    fn dst_region_does_not_overlap_src() {
        let p = FileCopyParams::xp(10 * 1024 * 1024);
        assert!(p.dst_base.as_bytes() >= p.file_bytes);
    }

    #[test]
    #[should_panic(expected = "pipeline")]
    fn zero_pipeline_rejected() {
        let _ = FileCopyWorkload::new(
            "c",
            FileCopyParams {
                pipeline: 0,
                ..FileCopyParams::xp(1024 * 1024)
            },
        );
    }
}
