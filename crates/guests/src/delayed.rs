//! Delayed-start wrapper: run a workload only after a given instant.
//!
//! Figure 6(c) of the paper shows a *phase change*: a sequential reader
//! runs alone, then a random reader is launched against the same device
//! mid-experiment and the latency histogram shifts. [`Delayed`] gives any
//! workload that staggered start.

use crate::workload::{Poll, Workload};
use simkit::SimTime;

/// Wraps a workload so it starts at `start_at` instead of simulation time
/// zero.
///
/// # Examples
///
/// ```
/// use guests::{AccessSpec, Delayed, IometerWorkload, Workload};
/// use simkit::{SimRng, SimTime};
///
/// let inner = IometerWorkload::new("late", AccessSpec::seq_read_4k(4, 1024 * 1024), SimRng::seed_from(1));
/// let mut wl = Delayed::new(Box::new(inner), SimTime::from_secs(30));
/// let poll = wl.start(SimTime::ZERO);
/// assert!(poll.issue.is_empty());
/// assert_eq!(poll.timer, Some(SimTime::from_secs(30)));
/// ```
pub struct Delayed {
    inner: Box<dyn Workload>,
    start_at: SimTime,
    started: bool,
}

impl std::fmt::Debug for Delayed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Delayed")
            .field("inner", &self.inner.name())
            .field("start_at", &self.start_at)
            .field("started", &self.started)
            .finish()
    }
}

impl Delayed {
    /// Wraps `inner` to begin at `start_at`.
    pub fn new(inner: Box<dyn Workload>, start_at: SimTime) -> Self {
        Delayed {
            inner,
            start_at,
            started: false,
        }
    }

    /// Whether the inner workload has begun.
    pub fn started(&self) -> bool {
        self.started
    }
}

impl Workload for Delayed {
    fn start(&mut self, now: SimTime) -> Poll {
        if now >= self.start_at {
            self.started = true;
            self.inner.start(now)
        } else {
            Poll::timer(self.start_at)
        }
    }

    fn on_complete(&mut self, now: SimTime, tag: u64) -> Poll {
        if self.started {
            self.inner.on_complete(now, tag)
        } else {
            Poll::idle()
        }
    }

    fn on_timer(&mut self, now: SimTime) -> Poll {
        if self.started {
            self.inner.on_timer(now)
        } else if now >= self.start_at {
            self.started = true;
            self.inner.start(now)
        } else {
            Poll::timer(self.start_at)
        }
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AccessSpec, IometerWorkload};
    use simkit::SimRng;

    fn delayed(at_secs: u64) -> Delayed {
        Delayed::new(
            Box::new(IometerWorkload::new(
                "w",
                AccessSpec::seq_read_4k(4, 1024 * 1024),
                SimRng::seed_from(1),
            )),
            SimTime::from_secs(at_secs),
        )
    }

    #[test]
    fn holds_until_start_time() {
        let mut d = delayed(10);
        let p = d.start(SimTime::ZERO);
        assert!(p.issue.is_empty());
        assert!(!d.started());
        // Early spurious timer: re-arm.
        let p = d.on_timer(SimTime::from_secs(5));
        assert!(p.issue.is_empty());
        assert_eq!(p.timer, Some(SimTime::from_secs(10)));
        // Completion events before start are ignored gracefully.
        assert_eq!(d.on_complete(SimTime::from_secs(6), 0), Poll::idle());
    }

    #[test]
    fn starts_on_timer_fire() {
        let mut d = delayed(10);
        d.start(SimTime::ZERO);
        let p = d.on_timer(SimTime::from_secs(10));
        assert_eq!(p.issue.len(), 4);
        assert!(d.started());
        // Subsequent events route to the inner workload.
        let p2 = d.on_complete(SimTime::from_secs(11), 0);
        assert_eq!(p2.issue.len(), 1);
    }

    #[test]
    fn zero_delay_starts_immediately() {
        let mut d = delayed(0);
        let p = d.start(SimTime::ZERO);
        assert_eq!(p.issue.len(), 4);
        assert_eq!(d.name(), "w");
    }
}
