//! Thread-per-core pipeline properties: however target streams are
//! partitioned across SPSC producers and drained by concurrent
//! aggregators, the resulting statistics are bit-identical to serial
//! mutex-path ingestion — and when rings overflow, every dropped event is
//! accounted in the sentinel's conservation ledger.

use proptest::prelude::*;
use simkit::SimTime;
use std::sync::Arc;
use std::thread;
use vscsi::{IoCompletion, IoDirection, IoRequest, Lba, RequestId, TargetId, VDiskId, VmId};
use vscsi_stats::{
    IngestPipeline, Lens, Metric, PipelineConfig, SentinelConfig, StatsService, VscsiEvent,
};

/// One target's scripted command sequence.
#[derive(Debug, Clone)]
struct TargetScript {
    /// Which producer publishes this target (mod producer count).
    producer: usize,
    /// Publish chunk size for this target's events.
    chunk: usize,
    /// Per-command parameters: (write?, lba, gap to previous issue in µs,
    /// device latency in µs).
    ops: Vec<(bool, u64, u64, u64)>,
}

fn target_script() -> impl Strategy<Value = TargetScript> {
    (
        0..4usize,
        1..8usize,
        prop::collection::vec(
            (any::<bool>(), 0..1_000_000u64, 1..500u64, 1..20_000u64),
            1..40,
        ),
    )
        .prop_map(|(producer, chunk, ops)| TargetScript {
            producer,
            chunk,
            ops,
        })
}

/// Builds the exact event sequence for one target: issues spaced by the
/// scripted gaps, each completing after its scripted latency.
fn events_for(vm: u32, script: &TargetScript) -> Vec<VscsiEvent> {
    let target = TargetId::new(VmId(vm), VDiskId(0));
    let mut events = Vec::with_capacity(script.ops.len() * 2);
    let mut now_us = 0u64;
    for (i, &(write, lba, gap_us, lat_us)) in script.ops.iter().enumerate() {
        now_us += gap_us;
        let req = IoRequest::new(
            RequestId(u64::from(vm) << 32 | i as u64),
            target,
            if write {
                IoDirection::Write
            } else {
                IoDirection::Read
            },
            Lba::new(lba),
            8,
            SimTime::from_micros(now_us),
        );
        events.push(VscsiEvent::Issue(req));
        events.push(VscsiEvent::Complete(IoCompletion::new(
            req,
            SimTime::from_micros(now_us + lat_us),
        )));
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The tentpole equivalence: a concurrent thread-per-core run — lock-free
    /// SPSC lanes, batched publishes, parallel aggregator drains — produces
    /// per-target histograms bit-identical to serial per-event ingestion of
    /// the same seeded workload through the mutex path.
    #[test]
    fn thread_per_core_matches_serial_mutex_path(
        scripts in prop::collection::vec(target_script(), 1..7),
        producers in 1..4usize,
        aggregators in 1..4usize,
    ) {
        let per_target: Vec<Vec<VscsiEvent>> = scripts
            .iter()
            .enumerate()
            .map(|(vm, s)| events_for(vm as u32, s))
            .collect();

        // Reference: one thread, per-event ingestion through the shard
        // mutexes, target by target.
        let serial = StatsService::default();
        serial.enable_all();
        for events in &per_target {
            for ev in events {
                match ev {
                    VscsiEvent::Issue(r) => serial.handle_issue(r),
                    VscsiEvent::Complete(c) => serial.handle_complete(c),
                }
            }
        }

        // Thread-per-core: each target's ordered stream is published
        // wholly by one producer (per-target order is the pipeline's
        // ordering contract), in scripted chunk sizes, with blocking
        // (lossless) offers through a deliberately small ring.
        let service = Arc::new(StatsService::default());
        service.enable_all();
        let config = PipelineConfig {
            producers,
            aggregators,
            ring_capacity: 64,
            drain_batch: 8,
        };
        let (pipeline, handles) = IngestPipeline::start(Arc::clone(&service), config);
        thread::scope(|scope| {
            for (worker, mut producer) in handles.into_iter().enumerate() {
                let work: Vec<&Vec<VscsiEvent>> = scripts
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.producer % producers == worker)
                    .map(|(vm, _)| &per_target[vm])
                    .collect();
                let chunks: Vec<usize> = scripts
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.producer % producers == worker)
                    .map(|(_, s)| s.chunk)
                    .collect();
                scope.spawn(move || {
                    for (events, chunk) in work.iter().zip(chunks) {
                        for batch in events.chunks(chunk) {
                            producer.offer_batch_blocking(batch);
                        }
                    }
                    producer
                });
            }
        });
        let report = pipeline.finish(Vec::new());
        let total: u64 = per_target.iter().map(|e| e.len() as u64).sum();
        prop_assert_eq!(report.shed, 0, "blocking offers never shed");
        prop_assert_eq!(report.ingested, total);

        prop_assert_eq!(service.targets(), serial.targets());
        for vm in 0..scripts.len() {
            let target = TargetId::new(VmId(vm as u32), VDiskId(0));
            let cs = serial.collector(target).expect("serial collector");
            let cc = service.collector(target).expect("pipeline collector");
            prop_assert_eq!(cs.issued_commands(), cc.issued_commands());
            prop_assert_eq!(cs.completed_commands(), cc.completed_commands());
            prop_assert_eq!(cs.outstanding_now(), cc.outstanding_now());
            for metric in Metric::ALL {
                for lens in [Lens::All, Lens::Reads, Lens::Writes] {
                    prop_assert_eq!(
                        cs.histogram(metric, lens).counts(),
                        cc.histogram(metric, lens).counts(),
                        "{} {} {:?}", target, metric, lens
                    );
                }
            }
        }
    }
}

/// Events for one target, all at distinct timestamps.
fn burst(vm: u32, commands: u64) -> Vec<VscsiEvent> {
    let target = TargetId::new(VmId(vm), VDiskId(0));
    let mut events = Vec::with_capacity(commands as usize * 2);
    for i in 0..commands {
        let req = IoRequest::new(
            RequestId(u64::from(vm) << 32 | i),
            target,
            IoDirection::Read,
            Lba::new(i * 64),
            8,
            SimTime::from_micros(i * 3),
        );
        events.push(VscsiEvent::Issue(req));
        events.push(VscsiEvent::Complete(IoCompletion::new(
            req,
            SimTime::from_micros(i * 3 + 2),
        )));
    }
    events
}

/// Regression: ring-full drops from the lossy offer path land in the
/// sentinel's conservation ledger, so `ingested + sampled_out + shed ==
/// offered` holds end-to-end even when backpressure sheds at the SPSC
/// ring — an earlier stage than the governor ever sees.
#[test]
fn ring_full_sheds_conserve_in_the_ledger() {
    let service = Arc::new(StatsService::default());
    service.enable_all();
    // A sentinel that never degrades on its own: every shed in this test
    // is a ring-full shed.
    let mut sentinel = SentinelConfig::new(7);
    sentinel.full_max_rate = u64::MAX;
    sentinel.sampled_max_rate = u64::MAX;
    sentinel.counters_max_rate = u64::MAX;
    service.enable_sentinel(sentinel);

    let config = PipelineConfig {
        producers: 1,
        aggregators: 1,
        ring_capacity: 16,
        drain_batch: 8,
    };
    let (pipeline, mut producers) = IngestPipeline::start(Arc::clone(&service), config);
    let mut producer = producers.pop().expect("one producer");

    // Freeze the aggregators so the ring must overflow, then pour a burst
    // through the lossy offer path.
    pipeline.pause();
    let events = burst(0, 256);
    let mut accepted = 0u64;
    for ev in &events {
        if producer.offer(*ev) {
            accepted += 1;
        }
    }
    let dropped = events.len() as u64 - accepted;
    assert!(dropped > 0, "a 16-slot ring cannot hold a 512-event burst");
    assert_eq!(pipeline.shed_so_far(), dropped);

    pipeline.resume();
    let report = pipeline.finish(vec![producer]);
    assert_eq!(report.offered, events.len() as u64);
    assert_eq!(report.shed, dropped);
    assert_eq!(report.ingested, accepted);

    // The ledger absorbed the ring drops: conservation holds end-to-end,
    // and the shed column includes every ring-full drop.
    let health = service.health_snapshot();
    assert!(
        health.conserves(),
        "ledger must conserve: {:?}",
        health.totals()
    );
    let totals = health.totals();
    assert_eq!(
        totals.offered,
        totals.ingested + totals.sampled_out + totals.shed
    );
    assert!(
        totals.shed >= dropped,
        "ring drops {dropped} missing from ledger shed {}",
        totals.shed
    );
    // Everything the rings accepted was drained into the service.
    assert_eq!(totals.ingested, accepted);
}
