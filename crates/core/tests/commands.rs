//! Coverage for the `vscsiStats`-style textual command interface
//! (`StatsService::command`) under the sharded implementation: the
//! enable → collect → stop → reset life cycle an administrator drives from
//! the command line, including its interaction with concurrent ingestion.

use simkit::SimTime;
use std::sync::Arc;
use std::thread;
use vscsi::{IoCompletion, IoDirection, IoRequest, Lba, RequestId, TargetId, VDiskId, VmId};
use vscsi_stats::StatsService;

fn drive(service: &StatsService, vm: u32, commands: u64) {
    let target = TargetId::new(VmId(vm), VDiskId(0));
    for i in 0..commands {
        let req = IoRequest::new(
            RequestId(u64::from(vm) * 1_000_000 + i),
            target,
            if i % 4 == 0 {
                IoDirection::Write
            } else {
                IoDirection::Read
            },
            Lba::new((i * 613) % 500_000),
            8,
            SimTime::from_micros(i * 20),
        );
        service.handle_issue(&req);
        service.handle_complete(&IoCompletion::new(req, SimTime::from_micros(i * 20 + 9)));
    }
}

#[test]
fn start_collect_stop_list_reset_sequence() {
    let s = StatsService::default();

    // Fresh service: off, empty.
    assert!(s.command("status").unwrap().contains("OFF"));
    assert_eq!(s.command("list").unwrap(), "no targets\n");

    // Commands before `start` leave no trace.
    drive(&s, 1, 10);
    assert_eq!(s.command("list").unwrap(), "no targets\n");

    // start → collect.
    assert_eq!(
        s.command("start").unwrap(),
        "vscsiStats: started collection"
    );
    assert!(s.command("status").unwrap().contains("ON"));
    drive(&s, 1, 25);
    let listing = s.command("list").unwrap();
    assert!(listing.contains("vm1"), "listing:\n{listing}");
    assert!(listing.contains("issued=25"), "listing:\n{listing}");

    // stop retains data and stops counting.
    assert_eq!(s.command("stop").unwrap(), "vscsiStats: stopped collection");
    assert!(!s.is_enabled());
    drive(&s, 1, 40);
    let listing = s.command("list").unwrap();
    assert!(
        listing.contains("issued=25"),
        "stop must freeze counters:\n{listing}"
    );

    // reset zeroes histograms but keeps the target registered.
    assert_eq!(s.command("reset").unwrap(), "vscsiStats: histograms reset");
    let listing = s.command("list").unwrap();
    assert!(
        listing.contains("issued=0"),
        "listing after reset:\n{listing}"
    );
    assert_eq!(s.targets(), vec![TargetId::new(VmId(1), VDiskId(0))]);

    // restart keeps collecting into the same (reset) collector.
    s.command("start").unwrap();
    drive(&s, 1, 5);
    assert!(s.command("list").unwrap().contains("issued=5"));
}

#[test]
fn list_orders_targets_across_shards() {
    let s = StatsService::default();
    s.command("start").unwrap();
    // Insertion order deliberately scrambled; more targets than shards so
    // several shards hold multiple entries.
    for vm in [
        31u32, 2, 17, 0, 25, 9, 4, 12, 29, 7, 21, 14, 3, 27, 11, 19, 5, 23,
    ] {
        drive(&s, vm, 3);
    }
    let listing = s.command("list").unwrap();
    let positions: Vec<usize> = s
        .targets()
        .iter()
        .map(|t| listing.find(&format!("{t}:")).expect("target listed"))
        .collect();
    assert!(
        positions.windows(2).all(|w| w[0] < w[1]),
        "list output must be in target order:\n{listing}"
    );
    assert_eq!(s.summaries().len(), 18);
}

#[test]
fn unknown_and_whitespace_commands() {
    let s = StatsService::default();
    assert!(s.command("fetchall-histograms").is_err());
    assert!(s.command("").is_err());
    // Leading/trailing whitespace is tolerated.
    assert!(s.command("  status ").unwrap().contains("OFF"));
    assert_eq!(
        s.command(" start\n").unwrap(),
        "vscsiStats: started collection"
    );
    assert!(s.is_enabled());
}

#[test]
fn command_toggles_are_safe_under_concurrent_ingestion() {
    // The string API is the admin's window into a service that VMs hammer
    // concurrently: commands must never panic, deadlock, or corrupt state,
    // and the final reset/start/stop sequencing must win.
    let s = Arc::new(StatsService::default());
    s.command("start").unwrap();
    thread::scope(|scope| {
        for vm in 0..4u32 {
            let s = Arc::clone(&s);
            scope.spawn(move || drive(&s, vm, 2_000));
        }
        let admin = Arc::clone(&s);
        scope.spawn(move || {
            for i in 0..200 {
                let cmd = match i % 4 {
                    0 => "status",
                    1 => "list",
                    2 => "reset",
                    _ => "start",
                };
                admin.command(cmd).unwrap();
            }
        });
    });
    // Service is still coherent and controllable after the storm.
    assert!(s.is_enabled());
    s.command("reset").unwrap();
    for summary in s.summaries() {
        assert_eq!(summary.issued, 0, "reset must zero {}", summary.target);
    }
    s.command("stop").unwrap();
    drive(&s, 42, 50);
    assert!(
        s.collector(TargetId::new(VmId(42), VDiskId(0))).is_none(),
        "stopped service must not create new collectors"
    );
}
