//! Asserts the hot-path zero-allocation invariant with a counting global
//! allocator: once a collector is constructed, `on_issue`/`on_complete`
//! never touch the heap. This is the paper's §4 always-on argument made
//! machine-checked — per-command cost is bin arithmetic and counter bumps,
//! not allocator traffic.
//!
//! Lives in its own integration-test binary because a `#[global_allocator]`
//! is process-wide; mixing it into a binary with unrelated concurrent tests
//! would make the counts racy.

use simkit::SimTime;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use vscsi::{IoCompletion, IoDirection, IoRequest, Lba, RequestId, TargetId};
use vscsi_stats::{CollectorConfig, IoStatsCollector};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn mk(id: u64, dir: IoDirection, lba: u64, sectors: u32, t_us: u64) -> IoRequest {
    IoRequest::new(
        RequestId(id),
        TargetId::default(),
        dir,
        Lba::new(lba),
        sectors,
        SimTime::from_micros(t_us),
    )
}

/// Drives `count` issue+complete pairs with a mixed read/write pattern and
/// returns the number of heap allocations the hot path performed.
fn allocations_during_ingest(config: CollectorConfig, count: u64) -> u64 {
    let mut collector = IoStatsCollector::new(config);
    // Warm the static layout registry (first access initializes OnceLocks)
    // and pre-build the request/completion stream outside the window.
    let pairs: Vec<(IoRequest, IoCompletion)> = (0..count)
        .map(|i| {
            let dir = if i % 3 == 0 {
                IoDirection::Write
            } else {
                IoDirection::Read
            };
            let req = mk(i, dir, (i * 97) % 5_000_000, 8 + (i % 3) as u32 * 8, i * 40);
            let completion = IoCompletion::new(req, SimTime::from_micros(i * 40 + 300));
            (req, completion)
        })
        .collect();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for (req, completion) in &pairs {
        collector.on_issue(req);
        collector.on_complete(completion);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    // Keep the collector state observable so the loop cannot be optimized
    // away wholesale.
    assert_eq!(collector.completed_commands(), count);
    after - before
}

/// One test function (not several) so no concurrently running sibling test
/// can pollute the global allocation counter.
#[test]
fn hot_path_performs_zero_heap_allocations() {
    // Default configuration: histograms only.
    let allocs = allocations_during_ingest(CollectorConfig::default(), 20_000);
    assert_eq!(allocs, 0, "default hot path allocated {allocs} times");

    // With the 2-D seek/latency correlation on, in-flight tracking runs
    // through the fixed-capacity open-addressing table: still no heap
    // traffic while outstanding I/Os stay within its 64-entry fast region
    // (this workload completes each command before issuing the next).
    let correlate = CollectorConfig {
        correlate_seek_latency: true,
        ..CollectorConfig::default()
    };
    let allocs = allocations_during_ingest(correlate, 20_000);
    assert_eq!(allocs, 0, "correlating hot path allocated {allocs} times");
}
