//! Property tests for the open-addressing in-flight table: under any
//! sequence of issue/complete/abort-style operations — out-of-order
//! completions, double completions (stale aborts), and queue depths that
//! spill past the fast region — [`InflightTable`] behaves exactly like the
//! `HashMap` it replaced on the hot path.
//!
//! The operation generator mirrors the fault-path property style of
//! `esx/tests/fault_props.rs`: model the life cycle of commands (issue,
//! complete out of order, abort, occasional full drain) rather than
//! uniform random map calls, so probe chains experience the same churn the
//! simulator's timeout/retry machinery produces.

use proptest::prelude::*;
use std::collections::HashMap;
use vscsi_stats::InflightTable;

/// One in-flight-tracking operation, as the vSCSI data path would emit it.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Command issued: insert (re-issue of a live id replaces, like the
    /// retry path re-stamping an entry).
    Issue(u64, u64),
    /// Completion surfaced for an id — possibly stale (already aborted or
    /// never issued): remove, tolerant of absence.
    Complete(u64),
    /// Timeout/abort path touches the entry in place before delivering.
    Touch(u64, u64),
    /// Stale-stamp check: read without modifying.
    Probe(u64),
    /// Quarantine drain: everything goes at once.
    Drain,
}

fn arb_op(key_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0..key_space, any::<u64>()).prop_map(|(k, v)| Op::Issue(k, v)),
        6 => (0..key_space).prop_map(Op::Complete),
        2 => (0..key_space, any::<u64>()).prop_map(|(k, v)| Op::Touch(k, v)),
        2 => (0..key_space).prop_map(Op::Probe),
        1 => Just(Op::Drain),
    ]
}

/// Key spaces straddling the 64-entry fast region: small (heavy collision
/// churn), at capacity, and far beyond it (sustained spill).
fn arb_ops() -> impl Strategy<Value = (u64, Vec<Op>)> {
    prop_oneof![Just(12u64), Just(64), Just(96), Just(300)].prop_flat_map(|key_space| {
        proptest::collection::vec(arb_op(key_space), 0..600).prop_map(move |ops| (key_space, ops))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Differential test against `HashMap`: identical return values for
    /// every operation and identical final contents.
    #[test]
    fn inflight_table_matches_hashmap((key_space, ops) in arb_ops()) {
        let mut table: InflightTable<u64> = InflightTable::new();
        let mut reference: HashMap<u64, u64> = HashMap::new();
        for (step, op) in ops.iter().enumerate() {
            match *op {
                Op::Issue(k, v) => {
                    prop_assert_eq!(table.insert(k, v), reference.insert(k, v), "step {}", step);
                }
                Op::Complete(k) => {
                    prop_assert_eq!(table.remove(k), reference.remove(&k), "step {}", step);
                }
                Op::Touch(k, v) => {
                    let t = table.get_mut(k);
                    let r = reference.get_mut(&k);
                    prop_assert_eq!(t.as_deref(), r.as_deref(), "step {}", step);
                    if let (Some(t), Some(r)) = (t, r) {
                        *t = v;
                        *r = v;
                    }
                }
                Op::Probe(k) => {
                    prop_assert_eq!(table.get(k), reference.get(&k), "step {}", step);
                }
                Op::Drain => {
                    table.clear();
                    reference.clear();
                }
            }
            prop_assert_eq!(table.len(), reference.len(), "step {}", step);
            prop_assert_eq!(table.is_empty(), reference.is_empty(), "step {}", step);
        }
        // Final state: every key agrees in both directions.
        for k in 0..key_space {
            prop_assert_eq!(table.get(k), reference.get(&k), "final key {}", k);
        }
    }

    /// Out-of-order completion in the large: issue a burst deeper than the
    /// fast region, then complete it in an arbitrary permutation. Every
    /// completion must find its entry exactly once.
    #[test]
    fn burst_issue_then_permuted_complete(
        depth in 1usize..200,
        seed in any::<u64>(),
    ) {
        let mut table: InflightTable<u64> = InflightTable::new();
        for k in 0..depth as u64 {
            prop_assert_eq!(table.insert(k, k ^ 0xABCD), None);
        }
        prop_assert_eq!(table.len(), depth);
        // Fisher–Yates with a splitmix-style step for the permutation.
        let mut order: Vec<u64> = (0..depth as u64).collect();
        let mut s = seed;
        for i in (1..depth).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        for &k in &order {
            prop_assert_eq!(table.remove(k), Some(k ^ 0xABCD), "completing {}", k);
            // A stale second completion for the same id finds nothing.
            prop_assert_eq!(table.remove(k), None);
        }
        prop_assert!(table.is_empty());
    }
}
