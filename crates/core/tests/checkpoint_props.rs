//! Property tests for the checkpoint codec and restore path: over
//! arbitrary ingest histories — mixed targets, reads and writes, completed
//! and in-flight commands, epoch bumps — `restore(checkpoint(S))` is
//! bit-identical to `S`: the re-encoded checkpoint reproduces the original
//! byte stream exactly, and the restored service answers
//! `FetchAllHistograms` with the same dump.

use proptest::prelude::*;
use vscsi::{IoCompletion, IoDirection, IoRequest, Lba, RequestId, TargetId, VDiskId, VmId};
use vscsi_stats::{ServiceCheckpoint, StatsService, VscsiEvent};

/// One command drawn from a small domain: a few targets so histories
/// cluster, completions optional so the in-flight census is exercised.
#[derive(Debug, Clone, Copy)]
struct Cmd {
    vm: u32,
    disk: u32,
    write: bool,
    lba: u64,
    sectors: u32,
    issue_ns: u64,
    latency_ns: Option<u64>,
}

fn arb_cmd() -> impl Strategy<Value = Cmd> {
    (
        0u32..3,
        0u32..2,
        any::<bool>(),
        0u64..1_000_000,
        1u32..=256,
        0u64..10_000_000_000,
        proptest::option::of(1u64..50_000_000),
    )
        .prop_map(
            |(vm, disk, write, lba, sectors, issue_ns, latency_ns)| Cmd {
                vm,
                disk,
                write,
                lba,
                sectors,
                issue_ns,
                latency_ns,
            },
        )
}

fn events_of(history: &[Cmd]) -> Vec<VscsiEvent> {
    let mut events = Vec::with_capacity(history.len() * 2);
    for (i, cmd) in history.iter().enumerate() {
        let req = IoRequest::new(
            RequestId(i as u64 + 1),
            TargetId::new(VmId(cmd.vm), VDiskId(cmd.disk)),
            if cmd.write {
                IoDirection::Write
            } else {
                IoDirection::Read
            },
            Lba::new(cmd.lba),
            cmd.sectors,
            simkit::SimTime::from_nanos(cmd.issue_ns),
        );
        events.push(VscsiEvent::Issue(req));
        if let Some(latency) = cmd.latency_ns {
            events.push(VscsiEvent::Complete(IoCompletion::new(
                req,
                simkit::SimTime::from_nanos(cmd.issue_ns + latency),
            )));
        }
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// checkpoint → encode → decode → restore → checkpoint reproduces
    /// the original bytes exactly, for any history, shard count, batch
    /// split, and epoch.
    #[test]
    fn restore_roundtrip_is_bit_identical(
        history in proptest::collection::vec(arb_cmd(), 0..120),
        shards in 1usize..5,
        batch in 1usize..17,
        epochs in 0u64..3,
        seq in any::<u64>(),
    ) {
        let service = StatsService::with_shards(Default::default(), shards);
        service.enable_all();
        let events = events_of(&history);
        for chunk in events.chunks(batch) {
            service.handle_batch(chunk);
        }
        for e in 1..=epochs {
            service.set_epoch(e);
        }

        let snapshot = service.checkpoint_snapshot();
        let bytes = snapshot.encode(seq);
        let (seq_back, decoded) = ServiceCheckpoint::decode(&bytes)
            .expect("own encoding decodes");
        prop_assert_eq!(seq_back, seq);
        prop_assert_eq!(decoded.encode(seq).as_slice(), bytes.as_slice());

        let restored = StatsService::from_checkpoint(&decoded, None);
        prop_assert_eq!(
            restored.checkpoint_snapshot().encode(seq).as_slice(),
            bytes.as_slice(),
            "restore(checkpoint(S)) must re-encode to the same bytes"
        );
        prop_assert_eq!(
            restored.fetch_all_histograms(),
            service.fetch_all_histograms(),
            "restored histograms must answer identically"
        );
        prop_assert_eq!(restored.epoch(), service.epoch());
        prop_assert_eq!(restored.frame_seq(), service.frame_seq());
    }

    /// Decoding never panics on arbitrary corruption of a valid frame:
    /// truncation and byte flips either decode to *something* or fail
    /// cleanly with an error.
    #[test]
    fn decode_survives_mangling(
        history in proptest::collection::vec(arb_cmd(), 0..40),
        cut in 0usize..2_000,
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let service = StatsService::with_shards(Default::default(), 2);
        service.enable_all();
        service.handle_batch(&events_of(&history));
        let mut bytes = service.checkpoint_snapshot().encode(7);
        bytes.truncate(bytes.len().saturating_sub(cut));
        if !bytes.is_empty() {
            let at = flip_at % bytes.len();
            bytes[at] ^= 1 << flip_bit;
        }
        let _ = ServiceCheckpoint::decode(&bytes); // must not panic
    }
}
