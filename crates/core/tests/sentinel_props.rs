//! Property tests for the sentinel degradation ladder: for *arbitrary*
//! offered loads,
//!
//! * every degradation level's surviving histograms are statistically
//!   consistent subsamples of the full-fidelity stream — per-command
//!   metrics (I/O length, latency, errors) can only lose bin counts,
//!   never gain or move them, and every metric's total shrinks;
//! * the admission ledger conserves exactly
//!   (`ingested + sampled_out + shed == offered`) at every rung;
//! * the sampling coin is replay-stable: the same seed over the same
//!   load keeps the same commands.
//!
//! Levels are pinned by starting the ladder at the level under test with
//! unreachable thresholds and unreachable recovery, so arbitrary event
//! timing cannot migrate the shard mid-run.

use proptest::prelude::*;
use simkit::SimTime;
use vscsi::{
    IoCompletion, IoDirection, IoRequest, Lba, RequestId, ScsiStatus, SenseKey, TargetId, VDiskId,
    VmId,
};
use vscsi_stats::{DegradeLevel, Lens, Metric, SentinelConfig, StatsService, VscsiEvent};

/// One generated command: enough degrees of freedom to move every
/// histogram (length, seek, latency, interarrival, errors).
#[derive(Debug, Clone, Copy)]
struct Cmd {
    vm: u32,
    lba: u64,
    len_blocks: u32,
    write: bool,
    gap_us: u64,
    latency_us: u64,
    error: bool,
}

fn arb_cmd() -> impl Strategy<Value = Cmd> {
    (
        0u32..3,
        0u64..200_000,
        1u32..65,
        any::<bool>(),
        0u64..500,
        1u64..20_000,
        proptest::bool::weighted(0.08),
    )
        .prop_map(
            |(vm, lba, len_blocks, write, gap_us, latency_us, error)| Cmd {
                vm,
                lba,
                len_blocks,
                write,
                gap_us,
                latency_us,
                error,
            },
        )
}

fn arb_load() -> impl Strategy<Value = Vec<Cmd>> {
    proptest::collection::vec(arb_cmd(), 1..250)
}

/// Builds the event stream: monotone issue clock, completion inline after
/// each issue (both runs see the identical sequence, which is all the
/// subset property needs).
fn events_for(cmds: &[Cmd]) -> Vec<VscsiEvent> {
    let mut events = Vec::with_capacity(cmds.len() * 2);
    let mut now_us = 0u64;
    for (serial, cmd) in cmds.iter().enumerate() {
        now_us += cmd.gap_us;
        let req = IoRequest::new(
            RequestId(serial as u64),
            TargetId::new(VmId(cmd.vm), VDiskId(0)),
            if cmd.write {
                IoDirection::Write
            } else {
                IoDirection::Read
            },
            Lba::new(cmd.lba),
            cmd.len_blocks * 8,
            SimTime::from_micros(now_us),
        );
        events.push(VscsiEvent::Issue(req));
        let done = SimTime::from_micros(now_us + cmd.latency_us);
        events.push(VscsiEvent::Complete(if cmd.error {
            IoCompletion::with_status(req, done, ScsiStatus::CheckCondition(SenseKey::MediumError))
        } else {
            IoCompletion::new(req, done)
        }));
    }
    events
}

/// A sentinel pinned at `level`: thresholds no load can exceed, recovery
/// no calm streak can satisfy.
fn pinned(level: DegradeLevel, seed: u64) -> SentinelConfig {
    let mut cfg = SentinelConfig::new(seed);
    cfg.full_max_rate = u64::MAX;
    cfg.sampled_max_rate = u64::MAX;
    cfg.counters_max_rate = u64::MAX;
    cfg.recover_windows = u32::MAX;
    cfg.initial_level = level;
    cfg
}

fn run_at(events: &[VscsiEvent], level: DegradeLevel, seed: u64) -> StatsService {
    let service = StatsService::default();
    service.enable_all();
    service.enable_sentinel(pinned(level, seed));
    service.handle_batch(events);
    service
}

/// The metrics recorded once per kept command, independent of which
/// other commands were kept — these subsample per-bin.
const PER_COMMAND_METRICS: [Metric; 3] = [Metric::IoLength, Metric::Latency, Metric::Errors];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `SampledSeries` keeps an exact per-command subset: per-bin counts
    /// of the per-command metrics never exceed the full run's, and every
    /// metric's total shrinks or holds. The ledger conserves.
    #[test]
    fn sampled_series_is_a_per_bin_subsample(cmds in arb_load(), seed in any::<u64>()) {
        let events = events_for(&cmds);
        let full = run_at(&events, DegradeLevel::Full, seed);
        let sampled = run_at(&events, DegradeLevel::SampledSeries, seed);

        for vm in 0..3u32 {
            let target = TargetId::new(VmId(vm), VDiskId(0));
            let (Some(cf), Some(cs)) = (full.collector(target), sampled.collector(target)) else {
                // The sampler may have kept nothing for this target (or the
                // load never touched it) — nothing to compare.
                continue;
            };
            for metric in PER_COMMAND_METRICS {
                for lens in Lens::ALL {
                    let hf = cf.histogram(metric, lens);
                    let hs = cs.histogram(metric, lens);
                    for (bin, (&s, &f)) in hs.counts().iter().zip(hf.counts()).enumerate() {
                        prop_assert!(
                            s <= f,
                            "{metric} {lens:?} bin {bin}: sampled {s} > full {f}"
                        );
                    }
                }
            }
            for &metric in Metric::ALL.iter() {
                for lens in Lens::ALL {
                    prop_assert!(
                        cs.histogram(metric, lens).total() <= cf.histogram(metric, lens).total(),
                        "{metric} {lens:?}: sampled total exceeds full total"
                    );
                }
            }
        }

        let health = sampled.health_snapshot();
        prop_assert!(health.conserves());
        let totals = health.totals();
        prop_assert_eq!(totals.offered, events.len() as u64);
        prop_assert_eq!(totals.shed, 0);
    }

    /// Every rung conserves the offered load exactly, whatever the load:
    /// each admission lands in exactly one ledger bucket.
    #[test]
    fn every_level_conserves_arbitrary_loads(cmds in arb_load(), seed in any::<u64>()) {
        let events = events_for(&cmds);
        for level in DegradeLevel::ALL {
            let service = run_at(&events, level, seed);
            let health = service.health_snapshot();
            prop_assert!(health.conserves(), "{level}: ledger does not conserve");
            let totals = health.totals();
            prop_assert_eq!(totals.offered, events.len() as u64);
            match level {
                DegradeLevel::Full => {
                    prop_assert_eq!(totals.ingested, totals.offered);
                    prop_assert_eq!(totals.sampled_out + totals.shed, 0);
                }
                DegradeLevel::SampledSeries => prop_assert_eq!(totals.shed, 0),
                DegradeLevel::CountersOnly => {
                    // Everything is diverted to the cheap counters; no
                    // collector is ever built.
                    prop_assert_eq!(totals.ingested, 0);
                    prop_assert_eq!(totals.sampled_out, totals.offered);
                    prop_assert_eq!(totals.light_events, totals.offered);
                    for vm in 0..3u32 {
                        prop_assert!(
                            service.collector(TargetId::new(VmId(vm), VDiskId(0))).is_none()
                        );
                    }
                }
                DegradeLevel::Shed => {
                    prop_assert_eq!(totals.shed, totals.offered);
                    prop_assert_eq!(totals.light_events, 0);
                }
            }
        }
    }

    /// Replay stability: the same seed keeps the same commands — every
    /// histogram of two same-seed sampled runs is bit-identical, and a
    /// different coin seed is allowed to (and generally does) differ.
    #[test]
    fn sampling_coin_is_replay_stable(cmds in arb_load(), seed in any::<u64>()) {
        let events = events_for(&cmds);
        let a = run_at(&events, DegradeLevel::SampledSeries, seed);
        let b = run_at(&events, DegradeLevel::SampledSeries, seed);
        for vm in 0..3u32 {
            let target = TargetId::new(VmId(vm), VDiskId(0));
            let (ca, cb) = (a.collector(target), b.collector(target));
            prop_assert_eq!(ca.is_some(), cb.is_some());
            let (Some(ca), Some(cb)) = (ca, cb) else { continue };
            for &metric in Metric::ALL.iter() {
                for lens in Lens::ALL {
                    prop_assert_eq!(
                        ca.histogram(metric, lens).counts(),
                        cb.histogram(metric, lens).counts(),
                        "{} {:?} differs across same-seed replays", metric, lens
                    );
                }
            }
        }
        prop_assert_eq!(
            a.health_snapshot().render(),
            b.health_snapshot().render()
        );
    }
}
