//! Property tests for the characterization core: the online collector and
//! the trace-replay equivalence the paper's design rests on.

use proptest::collection::vec;
use proptest::prelude::*;
use simkit::SimTime;
use vscsi::{IoCompletion, IoDirection, IoRequest, Lba, RequestId, TargetId};
use vscsi_stats::{
    replay, CollectorConfig, IoStatsCollector, Lens, Metric, TraceCapacity, VscsiTracer,
};

/// A randomly generated workload step: wait `gap_us`, issue an I/O that the
/// device will service in `service_us`.
#[derive(Debug, Clone)]
struct Step {
    lba: u64,
    sectors: u32,
    is_read: bool,
    gap_us: u64,
    service_us: u64,
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    vec(
        (
            0u64..2_000_000,
            1u32..2048,
            any::<bool>(),
            0u64..10_000,
            1u64..50_000,
        )
            .prop_map(|(lba, sectors, is_read, gap_us, service_us)| Step {
                lba,
                sectors,
                is_read,
                gap_us,
                service_us,
            }),
        1..120,
    )
}

/// Drives a collector + tracer through the steps, delivering issue and
/// completion events in timestamp order exactly as the vSCSI layer would
/// observe them. Returns the online collector, the tracer, and the count of
/// commands issued.
fn run(steps: &[Step]) -> (IoStatsCollector, VscsiTracer, u64) {
    let mut collector = IoStatsCollector::default();
    let mut tracer = VscsiTracer::new(TraceCapacity::Unbounded);
    let mut now_us = 0u64;
    // In-flight completions, kept sorted by completion time (FIFO on ties).
    let mut inflight: Vec<(IoRequest, u64)> = Vec::new();
    let mut id = 0u64;
    let deliver_due = |inflight: &mut Vec<(IoRequest, u64)>,
                       collector: &mut IoStatsCollector,
                       tracer: &mut VscsiTracer,
                       now_us: u64| {
        while let Some(pos) = inflight
            .iter()
            .enumerate()
            .filter(|(_, (_, at))| *at <= now_us)
            .min_by_key(|(_, (r, at))| (*at, r.id))
            .map(|(i, _)| i)
        {
            let (done, at) = inflight.remove(pos);
            let c = IoCompletion::new(done, SimTime::from_micros(at));
            collector.on_complete(&c);
            tracer.on_complete(&c);
        }
    };
    for step in steps {
        now_us += step.gap_us;
        deliver_due(&mut inflight, &mut collector, &mut tracer, now_us);
        let req = IoRequest::new(
            RequestId(id),
            TargetId::default(),
            if step.is_read {
                IoDirection::Read
            } else {
                IoDirection::Write
            },
            Lba::new(step.lba),
            step.sectors,
            SimTime::from_micros(now_us),
        );
        id += 1;
        collector.on_issue(&req);
        tracer.on_issue(&req);
        inflight.push((req, now_us + step.service_us));
    }
    deliver_due(&mut inflight, &mut collector, &mut tracer, u64::MAX);
    (collector, tracer, id)
}

proptest! {
    /// Offline replay of the trace reproduces the online histograms exactly
    /// (the paper's premise that histograms ≈ trace post-processing, made
    /// bit-exact).
    #[test]
    fn replay_is_bit_identical(steps in arb_steps()) {
        let (online, tracer, _) = run(&steps);
        let records: Vec<_> = tracer.records().copied().collect();
        let offline = replay(&records, CollectorConfig::default());
        for metric in Metric::ALL {
            for lens in Lens::ALL {
                prop_assert_eq!(
                    online.histogram(metric, lens).counts(),
                    offline.histogram(metric, lens).counts(),
                    "{} / {}", metric, lens
                );
            }
        }
        prop_assert_eq!(online.issued_commands(), offline.issued_commands());
        prop_assert_eq!(online.completed_commands(), offline.completed_commands());
    }

    /// Invariants that hold for every workload: totals conserved, reads +
    /// writes = all, outstanding returns to zero after draining.
    #[test]
    fn collector_invariants(steps in arb_steps()) {
        let (c, _, issued) = run(&steps);
        prop_assert_eq!(c.issued_commands(), issued);
        prop_assert_eq!(c.completed_commands(), issued);
        prop_assert_eq!(c.outstanding_now(), 0);

        // Length histogram sees every command once.
        prop_assert_eq!(c.histogram(Metric::IoLength, Lens::All).total(), issued);
        // Latency histogram sees every completion once.
        prop_assert_eq!(c.histogram(Metric::Latency, Lens::All).total(), issued);
        // Read + write totals equal all for per-command metrics.
        for metric in [Metric::IoLength, Metric::OutstandingIos, Metric::Latency,
                       Metric::Interarrival, Metric::SeekDistanceWindowed] {
            let all = c.histogram(metric, Lens::All).total();
            let r = c.histogram(metric, Lens::Reads).total();
            let w = c.histogram(metric, Lens::Writes).total();
            prop_assert_eq!(r + w, all, "{}", metric);
        }
        // Plain seek distance: all-lens has issued-1 entries (first I/O has
        // no predecessor).
        prop_assert_eq!(
            c.histogram(Metric::SeekDistance, Lens::All).total(),
            issued - 1
        );
        // Outstanding I/Os are non-negative by construction (min >= 0).
        if let Some(min) = c.histogram(Metric::OutstandingIos, Lens::All).min() {
            prop_assert!(min >= 0);
        }
        // Latencies are non-negative.
        if let Some(min) = c.histogram(Metric::Latency, Lens::All).min() {
            prop_assert!(min >= 0);
        }
    }

    /// Trace export/import round-trips for arbitrary workloads.
    #[test]
    fn trace_text_roundtrip(steps in arb_steps()) {
        let (_, tracer, _) = run(&steps);
        let text = tracer.export();
        let parsed = VscsiTracer::import(&text).unwrap();
        let original: Vec<_> = tracer.records().copied().collect();
        prop_assert_eq!(parsed, original);
    }

    /// Collector memory footprint does not depend on the number of commands.
    #[test]
    fn constant_space(steps in arb_steps()) {
        let (c, _, _) = run(&steps);
        let fresh = {
            let mut f = IoStatsCollector::default();
            let r = IoRequest::new(
                RequestId(0), TargetId::default(), IoDirection::Read,
                Lba::new(0), 8, SimTime::ZERO,
            );
            f.on_issue(&r);
            f.on_complete(&IoCompletion::new(r, SimTime::from_micros(1)));
            f.memory_footprint_bytes()
        };
        prop_assert_eq!(c.memory_footprint_bytes(), fresh);
    }
}
