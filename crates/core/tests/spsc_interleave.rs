//! Seeded-interleaving model check for the SPSC ring's publish/drain
//! protocol, plus real two-thread stress.
//!
//! The container has no `loom`, so the protocol is exercised two ways:
//!
//! * **Model check**: a seeded scheduler interleaves producer and
//!   consumer *steps* (push, batch-push, pop, chunk-pop, length probes)
//!   in one thread against a `VecDeque` oracle. Every observable —
//!   values, order, occupancy bounds, full/empty outcomes — must match
//!   the oracle at every step. The schedule is derived from a SplitMix64
//!   stream, so a failure reproduces from its seed. CI sweeps more seeds
//!   via `SPSC_INTERLEAVE_SEEDS`.
//! * **Stress**: real producer/consumer threads move a monotone sequence
//!   through a small ring with randomized batch sizes; the consumer
//!   asserts it sees exactly `0..n` in order (FIFO + no loss + no
//!   duplication through actual data races, if any existed).

use std::collections::VecDeque;
use vscsi_stats::spsc;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How many schedules to run: 16 locally, more in CI (the dedicated
/// interleaving job sets `SPSC_INTERLEAVE_SEEDS`).
fn seed_count() -> u64 {
    std::env::var("SPSC_INTERLEAVE_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
}

fn run_schedule(seed: u64) {
    let mut rng = seed;
    let cap_pow = 1 + (splitmix64(&mut rng) % 5); // capacity 2..=32
    let capacity = 1usize << cap_pow;
    let (mut prod, mut cons) = spsc::ring::<u64>(capacity);
    assert_eq!(prod.capacity(), capacity);

    let mut oracle: VecDeque<u64> = VecDeque::new();
    let mut next_in: u64 = 0;
    let mut scratch: Vec<u64> = Vec::new();

    for step in 0..4_000 {
        match splitmix64(&mut rng) % 6 {
            // try_push: succeeds iff the oracle has space.
            0 | 1 => {
                let pushed = prod.try_push(next_in);
                assert_eq!(
                    pushed,
                    oracle.len() < capacity,
                    "seed {seed} step {step}: push outcome diverged from oracle"
                );
                if pushed {
                    oracle.push_back(next_in);
                    next_in += 1;
                }
            }
            // push_batch: moves exactly the free space, no more.
            2 => {
                let want = (splitmix64(&mut rng) % (2 * capacity as u64) + 1) as usize;
                let vals: Vec<u64> = (next_in..next_in + want as u64).collect();
                let n = prod.push_batch(&vals);
                assert_eq!(
                    n,
                    want.min(capacity - oracle.len()),
                    "seed {seed} step {step}: batch push size diverged"
                );
                for v in &vals[..n] {
                    oracle.push_back(*v);
                }
                next_in += n as u64;
            }
            // try_pop: agrees with the oracle's front.
            3 => {
                assert_eq!(
                    cons.try_pop(),
                    oracle.pop_front(),
                    "seed {seed} step {step}: pop diverged"
                );
            }
            // pop_chunk: drains min(max, occupancy) in order.
            4 => {
                let max = (splitmix64(&mut rng) % (capacity as u64 + 2)) as usize;
                scratch.clear();
                let n = cons.pop_chunk(&mut scratch, max);
                assert_eq!(
                    n,
                    max.min(oracle.len()),
                    "seed {seed} step {step}: chunk size diverged"
                );
                for got in &scratch {
                    assert_eq!(
                        Some(*got),
                        oracle.pop_front(),
                        "seed {seed} step {step}: chunk order diverged"
                    );
                }
            }
            // Occupancy probes stay consistent with the oracle.
            _ => {
                assert_eq!(prod.len(), oracle.len(), "seed {seed} step {step}: len");
                assert_eq!(prod.is_empty(), oracle.is_empty());
                assert!(!cons.is_closed());
            }
        }
    }

    // Drain the tail; the ring must end exactly where the oracle does.
    drop(prod);
    scratch.clear();
    while cons.pop_chunk(&mut scratch, 8) > 0 {}
    for got in &scratch {
        assert_eq!(Some(*got), oracle.pop_front(), "seed {seed}: final drain");
    }
    assert!(
        oracle.is_empty(),
        "seed {seed}: oracle has undrained events"
    );
    assert!(cons.is_closed(), "seed {seed}: close not visible");
}

#[test]
fn seeded_interleavings_match_oracle() {
    for seed in 0..seed_count() {
        run_schedule(0xC0FF_EE00 ^ (seed.wrapping_mul(0x9E37_79B9)));
    }
}

#[test]
fn two_thread_fifo_stress() {
    const TOTAL: u64 = 200_000;
    for (capacity, batch) in [(4usize, 1usize), (64, 7), (1024, 16)] {
        let (mut prod, mut cons) = spsc::ring::<u64>(capacity);
        let producer = std::thread::spawn(move || {
            let mut next = 0u64;
            let mut rng = 0x5EEDu64 ^ capacity as u64;
            while next < TOTAL {
                let want = 1 + (splitmix64(&mut rng) % batch as u64);
                let hi = (next + want).min(TOTAL);
                let vals: Vec<u64> = (next..hi).collect();
                let mut sent = 0;
                while sent < vals.len() {
                    let n = prod.push_batch(&vals[sent..]);
                    sent += n;
                    if n == 0 {
                        // One CPU is a real possibility in CI containers:
                        // yield the timeslice instead of spinning it out.
                        std::thread::yield_now();
                    }
                }
                next = hi;
            }
            // Dropping the producer closes the ring.
        });
        let mut seen = 0u64;
        let mut buf = Vec::new();
        loop {
            buf.clear();
            let n = cons.pop_chunk(&mut buf, batch.max(3));
            for v in &buf {
                assert_eq!(*v, seen, "capacity {capacity}: FIFO violated");
                seen += 1;
            }
            if n == 0 {
                if cons.is_closed() && cons.backlog() == 0 {
                    break;
                }
                std::thread::yield_now();
            }
        }
        assert_eq!(
            seen, TOTAL,
            "capacity {capacity}: lost or duplicated events"
        );
        producer.join().unwrap();
    }
}

#[test]
fn stress_with_yields_under_one_core() {
    // The container may have a single CPU: make sure the protocol also
    // completes when the two sides only ever run alternately (pure
    // time-slicing, worst-case cache behavior for the cached indices).
    const TOTAL: u64 = 20_000;
    let (mut prod, mut cons) = spsc::ring::<u64>(8);
    let producer = std::thread::spawn(move || {
        for i in 0..TOTAL {
            while !prod.try_push(i) {
                std::thread::yield_now();
            }
        }
    });
    let mut seen = 0u64;
    while seen < TOTAL {
        match cons.try_pop() {
            Some(v) => {
                assert_eq!(v, seen);
                seen += 1;
            }
            None => std::thread::yield_now(),
        }
    }
    producer.join().unwrap();
    assert_eq!(cons.try_pop(), None);
}
