//! Concurrency tests: the stats service is a host-wide singleton on a
//! multiprocessor hypervisor — concurrent VMs hammer it from different
//! physical CPUs.

use simkit::SimTime;
use std::sync::Arc;
use std::thread;
use vscsi::{IoCompletion, IoDirection, IoRequest, Lba, RequestId, TargetId, VDiskId, VmId};
use vscsi_stats::{Lens, Metric, StatsService};

const PER_THREAD: u64 = 5_000;

fn drive_target(service: &StatsService, vm: u32, base_id: u64) {
    let target = TargetId::new(VmId(vm), VDiskId(0));
    for i in 0..PER_THREAD {
        let req = IoRequest::new(
            RequestId(base_id + i),
            target,
            if i % 2 == 0 {
                IoDirection::Read
            } else {
                IoDirection::Write
            },
            Lba::new((i * 977) % 1_000_000),
            8,
            SimTime::from_micros(i * 10),
        );
        service.handle_issue(&req);
        service.handle_complete(&IoCompletion::new(req, SimTime::from_micros(i * 10 + 5)));
    }
}

#[test]
fn concurrent_vms_collect_independently() {
    let service = Arc::new(StatsService::default());
    service.enable_all();
    let threads: Vec<_> = (0..8u32)
        .map(|vm| {
            let service = Arc::clone(&service);
            thread::spawn(move || drive_target(&service, vm, u64::from(vm) * PER_THREAD))
        })
        .collect();
    for t in threads {
        t.join().expect("worker panicked");
    }
    assert_eq!(service.targets().len(), 8);
    for vm in 0..8u32 {
        let c = service
            .collector(TargetId::new(VmId(vm), VDiskId(0)))
            .expect("collector exists");
        assert_eq!(c.issued_commands(), PER_THREAD);
        assert_eq!(c.completed_commands(), PER_THREAD);
        assert_eq!(c.outstanding_now(), 0);
        assert_eq!(
            c.histogram(Metric::IoLength, Lens::Reads).total()
                + c.histogram(Metric::IoLength, Lens::Writes).total(),
            PER_THREAD
        );
    }
}

#[test]
fn toggling_while_under_load_never_corrupts() {
    let service = Arc::new(StatsService::default());
    service.enable_all();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let workers: Vec<_> = (0..4u32)
        .map(|vm| {
            let service = Arc::clone(&service);
            thread::spawn(move || drive_target(&service, vm, u64::from(vm) * PER_THREAD))
        })
        .collect();
    let toggler = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                service.disable_all();
                service.enable_all();
                n += 1;
            }
            n
        })
    };
    for t in workers {
        t.join().expect("worker panicked");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let toggles = toggler.join().expect("toggler panicked");
    assert!(toggles > 0);

    // Invariants survive: issued >= completed is NOT guaranteed per-target
    // (issues may be dropped while disabled but their completions still
    // arrive at an existing collector)... which is exactly why the
    // collector saturates rather than underflows. Check the counters are
    // self-consistent and the service still works.
    for target in service.targets() {
        let c = service.collector(target).expect("collector exists");
        assert!(c.completed_commands() <= PER_THREAD);
        assert!(c.issued_commands() <= PER_THREAD);
    }
    // The service remains usable after the storm.
    service.enable_all();
    drive_target(&service, 99, 10_000_000);
    let c = service
        .collector(TargetId::new(VmId(99), VDiskId(0)))
        .unwrap();
    assert_eq!(c.issued_commands(), PER_THREAD);
}

#[test]
fn tracing_concurrent_with_collection() {
    let service = Arc::new(StatsService::default());
    service.enable_all();
    let target = TargetId::new(VmId(0), VDiskId(0));
    service.start_trace(target, vscsi_stats::TraceCapacity::Ring(1024));
    let threads: Vec<_> = (0..2u32)
        .map(|vm| {
            let service = Arc::clone(&service);
            thread::spawn(move || drive_target(&service, vm, u64::from(vm) * PER_THREAD))
        })
        .collect();
    for t in threads {
        t.join().expect("worker panicked");
    }
    let records = service.stop_trace(target);
    assert_eq!(records.len(), 1024, "ring retains its capacity");
    // Every retained record belongs to the traced target.
    assert!(records.iter().all(|r| r.target == target));
}
