//! Concurrency tests: the stats service is a host-wide singleton on a
//! multiprocessor hypervisor — concurrent VMs hammer it from different
//! physical CPUs.

use proptest::prelude::*;
use simkit::SimTime;
use std::sync::Arc;
use std::thread;
use vscsi::{IoCompletion, IoDirection, IoRequest, Lba, RequestId, TargetId, VDiskId, VmId};
use vscsi_stats::{Lens, Metric, StatsService, VscsiEvent};

const PER_THREAD: u64 = 5_000;

fn drive_target(service: &StatsService, vm: u32, base_id: u64) {
    let target = TargetId::new(VmId(vm), VDiskId(0));
    for i in 0..PER_THREAD {
        let req = IoRequest::new(
            RequestId(base_id + i),
            target,
            if i % 2 == 0 {
                IoDirection::Read
            } else {
                IoDirection::Write
            },
            Lba::new((i * 977) % 1_000_000),
            8,
            SimTime::from_micros(i * 10),
        );
        service.handle_issue(&req);
        service.handle_complete(&IoCompletion::new(req, SimTime::from_micros(i * 10 + 5)));
    }
}

#[test]
fn concurrent_vms_collect_independently() {
    let service = Arc::new(StatsService::default());
    service.enable_all();
    let threads: Vec<_> = (0..8u32)
        .map(|vm| {
            let service = Arc::clone(&service);
            thread::spawn(move || drive_target(&service, vm, u64::from(vm) * PER_THREAD))
        })
        .collect();
    for t in threads {
        t.join().expect("worker panicked");
    }
    assert_eq!(service.targets().len(), 8);
    for vm in 0..8u32 {
        let c = service
            .collector(TargetId::new(VmId(vm), VDiskId(0)))
            .expect("collector exists");
        assert_eq!(c.issued_commands(), PER_THREAD);
        assert_eq!(c.completed_commands(), PER_THREAD);
        assert_eq!(c.outstanding_now(), 0);
        assert_eq!(
            c.histogram(Metric::IoLength, Lens::Reads).total()
                + c.histogram(Metric::IoLength, Lens::Writes).total(),
            PER_THREAD
        );
    }
}

#[test]
fn toggling_while_under_load_never_corrupts() {
    let service = Arc::new(StatsService::default());
    service.enable_all();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let workers: Vec<_> = (0..4u32)
        .map(|vm| {
            let service = Arc::clone(&service);
            thread::spawn(move || drive_target(&service, vm, u64::from(vm) * PER_THREAD))
        })
        .collect();
    let toggler = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut n = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                service.disable_all();
                service.enable_all();
                n += 1;
            }
            n
        })
    };
    for t in workers {
        t.join().expect("worker panicked");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let toggles = toggler.join().expect("toggler panicked");
    assert!(toggles > 0);

    // Invariants survive: issued >= completed is NOT guaranteed per-target
    // (issues may be dropped while disabled but their completions still
    // arrive at an existing collector)... which is exactly why the
    // collector saturates rather than underflows. Check the counters are
    // self-consistent and the service still works.
    for target in service.targets() {
        let c = service.collector(target).expect("collector exists");
        assert!(c.completed_commands() <= PER_THREAD);
        assert!(c.issued_commands() <= PER_THREAD);
    }
    // The service remains usable after the storm.
    service.enable_all();
    drive_target(&service, 99, 10_000_000);
    let c = service
        .collector(TargetId::new(VmId(99), VDiskId(0)))
        .unwrap();
    assert_eq!(c.issued_commands(), PER_THREAD);
}

#[test]
fn tracing_concurrent_with_collection() {
    let service = Arc::new(StatsService::default());
    service.enable_all();
    let target = TargetId::new(VmId(0), VDiskId(0));
    service.start_trace(target, vscsi_stats::TraceCapacity::Ring(1024));
    let threads: Vec<_> = (0..2u32)
        .map(|vm| {
            let service = Arc::clone(&service);
            thread::spawn(move || drive_target(&service, vm, u64::from(vm) * PER_THREAD))
        })
        .collect();
    for t in threads {
        t.join().expect("worker panicked");
    }
    let records = service.stop_trace(target);
    assert_eq!(records.len(), 1024, "ring retains its capacity");
    // Every retained record belongs to the traced target.
    assert!(records.iter().all(|r| r.target == target));
}

#[test]
fn batched_ingestion_from_many_threads() {
    // Each thread drives its own target through handle_batch in bursts;
    // per-target results must match the per-event path exactly.
    let service = Arc::new(StatsService::default());
    service.enable_all();
    thread::scope(|scope| {
        for vm in 0..8u32 {
            let service = Arc::clone(&service);
            scope.spawn(move || {
                let target = TargetId::new(VmId(vm), VDiskId(0));
                let mut batch = Vec::with_capacity(64);
                for i in 0..PER_THREAD {
                    let req = IoRequest::new(
                        RequestId(u64::from(vm) * PER_THREAD + i),
                        target,
                        if i % 2 == 0 {
                            IoDirection::Read
                        } else {
                            IoDirection::Write
                        },
                        Lba::new((i * 977) % 1_000_000),
                        8,
                        SimTime::from_micros(i * 10),
                    );
                    batch.push(VscsiEvent::Issue(req));
                    batch.push(VscsiEvent::Complete(IoCompletion::new(
                        req,
                        SimTime::from_micros(i * 10 + 5),
                    )));
                    if batch.len() >= 64 {
                        service.handle_batch(&batch);
                        batch.clear();
                    }
                }
                service.handle_batch(&batch);
            });
        }
    });
    for vm in 0..8u32 {
        let c = service
            .collector(TargetId::new(VmId(vm), VDiskId(0)))
            .expect("collector exists");
        assert_eq!(c.issued_commands(), PER_THREAD);
        assert_eq!(c.completed_commands(), PER_THREAD);
        assert_eq!(c.outstanding_now(), 0);
    }
}

/// One target's scripted command sequence for the partition property test.
#[derive(Debug, Clone)]
struct TargetScript {
    /// Which thread ingests this target (mod thread count).
    thread: usize,
    /// Batch size used by that thread for this target's events (1 = the
    /// per-event path).
    chunk: usize,
    /// Per-command parameters: (write?, lba, gap to previous issue in µs,
    /// device latency in µs).
    ops: Vec<(bool, u64, u64, u64)>,
}

fn target_script() -> impl Strategy<Value = TargetScript> {
    (
        0..4usize,
        1..8usize,
        prop::collection::vec(
            (any::<bool>(), 0..1_000_000u64, 1..500u64, 1..20_000u64),
            1..40,
        ),
    )
        .prop_map(|(thread, chunk, ops)| TargetScript { thread, chunk, ops })
}

/// Builds the exact event sequence for one target: issues spaced by the
/// scripted gaps, each completing after its scripted latency.
fn events_for(vm: u32, script: &TargetScript) -> Vec<VscsiEvent> {
    let target = TargetId::new(VmId(vm), VDiskId(0));
    let mut events = Vec::with_capacity(script.ops.len() * 2);
    let mut now_us = 0u64;
    for (i, &(write, lba, gap_us, lat_us)) in script.ops.iter().enumerate() {
        now_us += gap_us;
        let req = IoRequest::new(
            RequestId(u64::from(vm) << 32 | i as u64),
            target,
            if write {
                IoDirection::Write
            } else {
                IoDirection::Read
            },
            Lba::new(lba),
            8,
            SimTime::from_micros(now_us),
        );
        events.push(VscsiEvent::Issue(req));
        events.push(VscsiEvent::Complete(IoCompletion::new(
            req,
            SimTime::from_micros(now_us + lat_us),
        )));
    }
    events
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// DESIGN §7's "online == offline replay" invariant, extended to the
    /// concurrent case: however an event set is partitioned across threads
    /// (each target's ordered stream assigned wholly to one thread, in
    /// arbitrary batch sizes), every per-target histogram is bit-identical
    /// to single-threaded ingestion of the same events.
    #[test]
    fn concurrent_partition_matches_serial_ingestion(
        scripts in prop::collection::vec(target_script(), 1..7),
        threads in 1..4usize,
    ) {
        let per_target: Vec<Vec<VscsiEvent>> = scripts
            .iter()
            .enumerate()
            .map(|(vm, s)| events_for(vm as u32, s))
            .collect();

        // Reference: one thread, per-event ingestion, target by target.
        let serial = StatsService::default();
        serial.enable_all();
        for events in &per_target {
            for ev in events {
                match ev {
                    VscsiEvent::Issue(r) => serial.handle_issue(r),
                    VscsiEvent::Complete(c) => serial.handle_complete(c),
                }
            }
        }

        // Concurrent: targets partitioned over `threads` workers, each
        // feeding its targets' streams in scripted batch sizes.
        let sharded = Arc::new(StatsService::default());
        sharded.enable_all();
        thread::scope(|scope| {
            for worker in 0..threads {
                let sharded = Arc::clone(&sharded);
                let work: Vec<(usize, &Vec<VscsiEvent>)> = scripts
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.thread % threads == worker)
                    .map(|(vm, _)| (vm, &per_target[vm]))
                    .collect();
                let chunks: Vec<usize> = scripts.iter().map(|s| s.chunk).collect();
                scope.spawn(move || {
                    for (vm, events) in work {
                        for chunk in events.chunks(chunks[vm]) {
                            sharded.handle_batch(chunk);
                        }
                    }
                });
            }
        });

        prop_assert_eq!(sharded.targets(), serial.targets());
        for vm in 0..scripts.len() {
            let target = TargetId::new(VmId(vm as u32), VDiskId(0));
            let cs = serial.collector(target).expect("serial collector");
            let cc = sharded.collector(target).expect("sharded collector");
            prop_assert_eq!(cs.issued_commands(), cc.issued_commands());
            prop_assert_eq!(cs.completed_commands(), cc.completed_commands());
            prop_assert_eq!(cs.outstanding_now(), cc.outstanding_now());
            for metric in Metric::ALL {
                for lens in [Lens::All, Lens::Reads, Lens::Writes] {
                    prop_assert_eq!(
                        cs.histogram(metric, lens).counts(),
                        cc.histogram(metric, lens).counts(),
                        "{} {} {:?}", target, metric, lens
                    );
                }
            }
        }
    }
}
