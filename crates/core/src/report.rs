//! Report formatting: paper-figure-style text output and CSV dumps.

use crate::collector::IoStatsCollector;
use crate::metrics::{Lens, Metric};
use std::fmt::Write as _;

/// Renders one metric/lens histogram with a figure-style caption, e.g.
/// `"I/O Length Histogram (Reads)"`.
pub fn histogram_section(collector: &IoStatsCollector, metric: Metric, lens: Lens) -> String {
    let mut out = String::new();
    let caption = match lens {
        Lens::All => format!("{metric} Histogram"),
        other => format!("{metric} Histogram ({other})"),
    };
    let h = collector.histogram(metric, lens);
    let _ = writeln!(out, "{caption} [{}]", metric.unit());
    let _ = writeln!(out, "{h}");
    out
}

/// Renders the full per-target report: every metric, all three lenses,
/// plus the headline counters — the text analogue of one paper figure set.
pub fn full_report(collector: &IoStatsCollector) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "commands issued={} completed={} outstanding={}",
        collector.issued_commands(),
        collector.completed_commands(),
        collector.outstanding_now()
    );
    if let Some(rf) = collector.read_fraction() {
        let _ = writeln!(
            out,
            "read/write ratio: {:.1}% reads / {:.1}% writes",
            rf * 100.0,
            (1.0 - rf) * 100.0
        );
    }
    let _ = writeln!(
        out,
        "bytes read={} written={}",
        collector.bytes_read(),
        collector.bytes_written()
    );
    if collector.error_commands() > 0 || collector.clock_anomalies() > 0 {
        let _ = writeln!(
            out,
            "error completions={} clock anomalies={}",
            collector.error_commands(),
            collector.clock_anomalies()
        );
    }
    let _ = writeln!(out);
    for metric in Metric::ALL {
        for lens in Lens::ALL {
            // Skip empty split histograms to keep reports readable.
            if lens != Lens::All && collector.histogram(metric, lens).is_empty() {
                continue;
            }
            out.push_str(&histogram_section(collector, metric, lens));
            out.push('\n');
        }
    }
    out
}

/// Dumps every histogram of a collector as CSV with `metric,lens,bin,count`
/// rows, suitable for the paper's "post-processing script" workflow.
pub fn csv_dump(collector: &IoStatsCollector) -> String {
    let mut out = String::from("metric,lens,bin,count\n");
    for metric in Metric::ALL {
        for lens in Lens::ALL {
            let h = collector.histogram(metric, lens);
            for (label, count) in h.iter_labeled() {
                let _ = writeln!(out, "{metric},{lens},{label},{count}");
            }
        }
    }
    out
}

/// Compares two collectors metric-by-metric, reporting which histogram
/// modes moved — the "before vs after" view used in the multi-VM
/// interference analysis (Figure 6). Returns one line per metric/lens with
/// non-empty data in both collectors.
pub fn compare(before: &IoStatsCollector, after: &IoStatsCollector) -> String {
    let mut out = String::new();
    for metric in Metric::ALL {
        for lens in Lens::ALL {
            let a = before.histogram(metric, lens);
            let b = after.histogram(metric, lens);
            if a.is_empty() || b.is_empty() {
                continue;
            }
            let (ma, mb) = (a.mode_bin().unwrap(), b.mode_bin().unwrap());
            let moved = if ma == mb { "stable" } else { "SHIFTED" };
            let _ = writeln!(
                out,
                "{metric} ({lens}): mode {} -> {} [{moved}] mean {:.1} -> {:.1}",
                a.edges().bin_label(ma),
                b.edges().bin_label(mb),
                a.mean().unwrap_or(0.0),
                b.mean().unwrap_or(0.0),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;
    use vscsi::{IoCompletion, IoDirection, IoRequest, Lba, RequestId, TargetId};

    fn collector_with_data() -> IoStatsCollector {
        let mut c = IoStatsCollector::default();
        for i in 0..10u64 {
            let dir = if i % 2 == 0 {
                IoDirection::Read
            } else {
                IoDirection::Write
            };
            let r = IoRequest::new(
                RequestId(i),
                TargetId::default(),
                dir,
                Lba::new(i * 8),
                8,
                SimTime::from_micros(i * 100),
            );
            c.on_issue(&r);
            c.on_complete(&IoCompletion::new(r, SimTime::from_micros(i * 100 + 300)));
        }
        c
    }

    #[test]
    fn section_has_caption_and_unit() {
        let c = collector_with_data();
        let s = histogram_section(&c, Metric::IoLength, Lens::Reads);
        assert!(s.contains("I/O Length Histogram (Reads) [bytes]"));
        let s = histogram_section(&c, Metric::SeekDistance, Lens::All);
        assert!(s.starts_with("Seek Distance Histogram [sectors]"));
    }

    #[test]
    fn full_report_mentions_every_metric() {
        let c = collector_with_data();
        let r = full_report(&c);
        for metric in Metric::ALL {
            assert!(r.contains(&metric.to_string()), "missing {metric}");
        }
        assert!(r.contains("read/write ratio: 50.0% reads"));
        assert!(r.contains("commands issued=10"));
    }

    #[test]
    fn csv_dump_is_well_formed() {
        let c = collector_with_data();
        let csv = csv_dump(&c);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("metric,lens,bin,count"));
        for line in lines {
            assert_eq!(line.split(',').count(), 4, "bad row: {line}");
        }
        // 7 metrics x 3 lenses, each with its layout's bins.
        let rows = csv.lines().count() - 1;
        assert!(rows > 200, "rows = {rows}");
    }

    #[test]
    fn compare_flags_mode_shift() {
        let before = collector_with_data();
        let mut after = IoStatsCollector::default();
        // Same workload but much slower completions.
        for i in 0..10u64 {
            let r = IoRequest::new(
                RequestId(i),
                TargetId::default(),
                IoDirection::Read,
                Lba::new(i * 8),
                8,
                SimTime::from_micros(i * 100),
            );
            after.on_issue(&r);
            after.on_complete(&IoCompletion::new(
                r,
                SimTime::from_micros(i * 100 + 20_000),
            ));
        }
        let cmp = compare(&before, &after);
        assert!(cmp.contains("I/O Latency (All): mode 500 -> 30000 [SHIFTED]"));
        assert!(cmp.contains("I/O Length (All): mode 4096 -> 4096 [stable]"));
    }
}
