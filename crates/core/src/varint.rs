//! LEB128 variable-length integers and zigzag deltas.
//!
//! Every multi-byte field in the trace codec is a varint; signed deltas
//! (LBA jumps, timestamp steps) are zigzag-mapped first so small negative
//! values stay small on the wire. All delta arithmetic is wrapping, so the
//! codec round-trips *any* `u64` pair, not just well-ordered ones.
//!
//! These primitives started life inside `tracestore::codec` and moved
//! here when the checkpoint plane needed them: `core::checkpoint` cannot
//! depend on `tracestore` (which depends on this crate), so the shared
//! integer codec lives at the bottom of the dependency graph and
//! `tracestore::codec` re-exports it unchanged.

/// Appends `v` as an unsigned LEB128 varint (1–10 bytes).
pub fn encode_u64(mut v: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes an unsigned LEB128 varint starting at `*pos`, advancing `*pos`
/// past it. Returns `None` on truncation or a non-canonical overlong
/// encoding (more than 10 bytes, or bits beyond the 64th).
pub fn decode_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    for i in 0..10 {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        let low = u64::from(byte & 0x7f);
        if i == 9 && low > 1 {
            return None;
        }
        value |= low << (7 * i);
        if byte & 0x80 == 0 {
            return Some(value);
        }
    }
    None
}

/// Zigzag-maps a signed value so small magnitudes of either sign encode
/// into few varint bytes: 0, -1, 1, -2, 2, … → 0, 1, 2, 3, 4, …
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// The wire form of `cur` relative to `prev`: a zigzagged wrapping
/// difference, so consecutive values close in either direction stay short.
pub fn delta(prev: u64, cur: u64) -> u64 {
    zigzag(cur.wrapping_sub(prev) as i64)
}

/// Inverse of [`delta`]: reapplies an encoded difference to `prev`.
pub fn apply_delta(prev: u64, encoded: u64) -> u64 {
    prev.wrapping_add(unzigzag(encoded) as u64)
}

/// Zigzag-maps an `i128` (exact histogram sums) into a `u128` for wire
/// encoding as two `u64` varint halves.
pub fn zigzag128(v: i128) -> u128 {
    ((v << 1) ^ (v >> 127)) as u128
}

/// Inverse of [`zigzag128`].
pub fn unzigzag128(v: u128) -> i128 {
    ((v >> 1) as i128) ^ -((v & 1) as i128)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_edges() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            encode_u64(v, &mut buf);
            assert!(buf.len() <= 10);
            let mut pos = 0;
            assert_eq!(decode_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert_eq!(decode_u64(&[], &mut pos), None);
        let mut pos = 0;
        assert_eq!(decode_u64(&[0x80], &mut pos), None, "dangling continuation");
        // 11 continuation bytes can never be a canonical u64.
        let overlong = [0x80u8; 11];
        let mut pos = 0;
        assert_eq!(decode_u64(&overlong, &mut pos), None);
        // Bits beyond the 64th in the 10th byte.
        let too_big = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut pos = 0;
        assert_eq!(decode_u64(&too_big, &mut pos), None);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 4096, -4096] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn zigzag128_roundtrip() {
        for v in [0i128, 1, -1, i128::MAX, i128::MIN, 1 << 100, -(1 << 100)] {
            assert_eq!(unzigzag128(zigzag128(v)), v);
        }
        assert_eq!(zigzag128(0), 0);
        assert_eq!(zigzag128(-1), 1);
        assert_eq!(zigzag128(1), 2);
    }

    #[test]
    fn delta_roundtrip_any_pair() {
        for &(a, b) in &[
            (0u64, 0u64),
            (5, 3),
            (3, 5),
            (0, u64::MAX),
            (u64::MAX, 0),
            (u64::MAX, u64::MAX),
            (1 << 63, 1),
        ] {
            assert_eq!(apply_delta(a, delta(a, b)), b, "({a}, {b})");
        }
    }
}
