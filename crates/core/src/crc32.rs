//! CRC-32 (IEEE 802.3, the zlib/gzip polynomial), table-driven.
//!
//! Hand-rolled so the crate stays inside the pre-approved dependency set;
//! one 1 KiB table computed at compile time, one XOR + shift per byte.
//!
//! Originally lived in `tracestore`; moved down here (alongside
//! [`varint`](crate::varint)) when the checkpoint plane needed CRC
//! framing without a dependency cycle. `tracestore::crc32` re-exports it
//! unchanged.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `data` (initial value and final XOR both `0xFFFF_FFFF`,
/// matching zlib's `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for this polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let good = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32(&bad), good, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
