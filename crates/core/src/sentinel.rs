//! Supervision and graceful degradation for the stats service.
//!
//! The paper's always-on promise (§3, Table 2) only holds if the service
//! can never hurt the hypervisor it observes. This module supplies the
//! three defenses the sharded [`StatsService`](crate::StatsService) wires
//! in (see `DESIGN.md` §9):
//!
//! * **Overload governor** — per-shard ingest-rate and memory accounting
//!   drives the degradation ladder [`DegradeLevel`]:
//!   `Full → SampledSeries → CountersOnly → Shed`. Sampling decisions are
//!   a pure function of `(seed, request id)` via splitmix64, so a degraded
//!   run replays bit-exactly; recovery climbs one rung at a time and only
//!   after [`SentinelConfig::recover_windows`] consecutive calm windows
//!   with hysteresis margin ([`SentinelConfig::recover_per_mille`]).
//! * **Watchdog** — virtual-clock heartbeats per shard (and real-time
//!   trip counters surfaced by trace sinks via [`SinkHealth`]) detect
//!   ingests stuck beyond [`SentinelConfig::watchdog_budget_ns`].
//! * **Self-healing bookkeeping** — quarantine generations, stale
//!   completion counts, and [`SalvageRecord`]s snapshotting what a
//!   wounded shard held before it was rebuilt.
//!
//! Every offered event is classified exactly once, so the conservation
//! identity `ingested + sampled_out + shed == offered` holds by
//! construction at every instant ([`LoadCounters::conserves`]).

use std::fmt;
use std::sync::Arc;
use std::time::Duration;
use vscsi::{IoRequest, TargetId};

/// One rung of the degradation ladder, worst last. `Ord` follows severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum DegradeLevel {
    /// Every event takes the full histogram path.
    #[default]
    Full = 0,
    /// Events are admitted by a deterministic per-command coin; the kept
    /// subset takes the full path, the rest are accounted `sampled_out`.
    SampledSeries = 1,
    /// Histograms stop; only cheap per-shard counters (events, bytes) are
    /// maintained. Events are accounted `sampled_out`.
    CountersOnly = 2,
    /// Nothing is recorded beyond the shed counter itself.
    Shed = 3,
}

impl DegradeLevel {
    /// All rungs, best first.
    pub const ALL: [DegradeLevel; 4] = [
        DegradeLevel::Full,
        DegradeLevel::SampledSeries,
        DegradeLevel::CountersOnly,
        DegradeLevel::Shed,
    ];

    /// The next-better rung (saturating at [`DegradeLevel::Full`]).
    pub fn step_down(self) -> DegradeLevel {
        match self {
            DegradeLevel::Full | DegradeLevel::SampledSeries => DegradeLevel::Full,
            DegradeLevel::CountersOnly => DegradeLevel::SampledSeries,
            DegradeLevel::Shed => DegradeLevel::CountersOnly,
        }
    }

    /// Rung index (0 = Full .. 3 = Shed).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`DegradeLevel::index`]; `None` for out-of-range rungs
    /// (e.g. corrupt checkpoint bytes).
    pub fn from_index(i: usize) -> Option<DegradeLevel> {
        DegradeLevel::ALL.get(i).copied()
    }
}

impl fmt::Display for DegradeLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DegradeLevel::Full => "Full",
            DegradeLevel::SampledSeries => "SampledSeries",
            DegradeLevel::CountersOnly => "CountersOnly",
            DegradeLevel::Shed => "Shed",
        })
    }
}

/// Deterministic chaos seam: commands matching the spec panic *inside*
/// the shard ingest boundary, exercising the quarantine path. Purely a
/// test/bench facility — production configs leave
/// [`SentinelConfig::chaos`] as `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosSpec {
    /// Only commands from this VM id panic (`None` = any VM).
    pub vm: Option<u32>,
    /// First LBA of the poisoned band (inclusive).
    pub lba_min: u64,
    /// Last LBA of the poisoned band (inclusive).
    pub lba_max: u64,
    /// At most this many injected panics per shard.
    pub max_panics: u32,
}

impl ChaosSpec {
    /// Whether this issue falls in the poisoned band.
    pub fn matches(&self, req: &IoRequest) -> bool {
        self.vm.is_none_or(|vm| vm == req.target.vm.0)
            && (self.lba_min..=self.lba_max).contains(&req.lba.sector())
    }
}

/// Tuning for the sentinel. All rate thresholds are events (issues plus
/// completions) per [`SentinelConfig::window_ns`] of *virtual* time, so
/// the governor is deterministic for a deterministic event stream.
#[derive(Debug, Clone)]
pub struct SentinelConfig {
    /// Seed for the deterministic sampling coin.
    pub seed: u64,
    /// Width of the rate-accounting window, virtual nanoseconds.
    pub window_ns: u64,
    /// Highest per-window event count at which a shard stays `Full`.
    pub full_max_rate: u64,
    /// Highest per-window event count for `SampledSeries`; above it the
    /// shard drops to `CountersOnly`.
    pub sampled_max_rate: u64,
    /// Highest per-window event count for `CountersOnly`; above it the
    /// shard sheds.
    pub counters_max_rate: u64,
    /// Keep probability at `SampledSeries`, in 1024ths (512 = keep half).
    pub sample_keep_per_1024: u32,
    /// Hysteresis margin for recovery: a window only counts as calm if
    /// the observed rate, inflated by `1000 / recover_per_mille`, still
    /// maps below the current rung (700 ⇒ rate must be under 70% of the
    /// rung's admission threshold).
    pub recover_per_mille: u32,
    /// Consecutive calm windows required to climb one rung.
    pub recover_windows: u32,
    /// Per-shard collector memory budget in bytes; once exceeded, the
    /// shard is clamped to at least `CountersOnly` (no new collectors)
    /// until a quarantine rebuild releases the memory. 0 = unlimited.
    pub memory_budget_bytes: usize,
    /// Virtual-clock budget after which an in-flight shard ingest counts
    /// as a watchdog trip.
    pub watchdog_budget_ns: u64,
    /// Real-time budget snapshot/read paths wait on a shard lock before
    /// skipping the shard (poison recovery: a wedged writer degrades the
    /// report instead of wedging the reader).
    pub reader_patience: Duration,
    /// Ladder rung shards start at (tests force degraded levels here).
    pub initial_level: DegradeLevel,
    /// Optional deterministic panic injection (chaos testing only).
    pub chaos: Option<ChaosSpec>,
}

impl SentinelConfig {
    /// Production-shaped defaults: 1 ms windows, degrade past 4k/16k/64k
    /// events per window, keep half while sampling, recover after 3 calm
    /// windows at 70% headroom.
    pub fn new(seed: u64) -> Self {
        SentinelConfig {
            seed,
            window_ns: 1_000_000,
            full_max_rate: 4_096,
            sampled_max_rate: 16_384,
            counters_max_rate: 65_536,
            sample_keep_per_1024: 512,
            recover_per_mille: 700,
            recover_windows: 3,
            memory_budget_bytes: 0,
            watchdog_budget_ns: 50_000_000,
            reader_patience: Duration::from_millis(500),
            initial_level: DegradeLevel::Full,
            chaos: None,
        }
    }
}

impl Default for SentinelConfig {
    fn default() -> Self {
        SentinelConfig::new(0)
    }
}

/// How the governor classified one offered event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Full histogram path.
    Ingest,
    /// Sampled away at `SampledSeries`; light counters only.
    SampleOut,
    /// Degraded to `CountersOnly`; light counters only.
    CountOnly,
    /// Dropped entirely at `Shed`.
    Shed,
}

/// Per-shard load classification counters. Every offered event lands in
/// exactly one of `ingested` / `sampled_out` / `shed`, so
/// [`LoadCounters::conserves`] holds at every instant by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadCounters {
    /// Events the governor saw (issues + completions while enabled).
    pub offered: u64,
    /// Events admitted to the full histogram path.
    pub ingested: u64,
    /// Events degraded away (sampling coin or `CountersOnly`).
    pub sampled_out: u64,
    /// Events dropped entirely at `Shed`.
    pub shed: u64,
    /// Events offered while the shard sat at each ladder rung.
    pub offered_at_level: [u64; 4],
    /// Events that still reached the cheap counters while degraded.
    pub light_events: u64,
    /// Bytes those degraded issues carried.
    pub light_bytes: u64,
    /// Completions that arrived for state lost to a quarantine rebuild.
    pub stale_completions: u64,
    /// Times this shard was quarantined and rebuilt.
    pub quarantines: u64,
}

impl LoadCounters {
    /// The conservation identity: `ingested + sampled_out + shed ==
    /// offered`.
    pub fn conserves(&self) -> bool {
        self.ingested + self.sampled_out + self.shed == self.offered
    }

    /// Accumulates `other` into `self` (aggregation across shards).
    pub fn merge(&mut self, other: &LoadCounters) {
        self.offered += other.offered;
        self.ingested += other.ingested;
        self.sampled_out += other.sampled_out;
        self.shed += other.shed;
        for (a, b) in self
            .offered_at_level
            .iter_mut()
            .zip(other.offered_at_level.iter())
        {
            *a += b;
        }
        self.light_events += other.light_events;
        self.light_bytes += other.light_bytes;
        self.stale_completions += other.stale_completions;
        self.quarantines += other.quarantines;
    }
}

/// A shard governor's complete dynamic state in plain exported form: the
/// current ladder rung, the rate-window phase, the quarantine generation,
/// and the full admission ledger. What the checkpoint plane persists so a
/// restarted service resumes with the *same* degradation posture and a
/// conserving ledger — not a fresh governor that forgot it was overloaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SentinelState {
    /// Current degradation rung.
    pub level: DegradeLevel,
    /// Start of the current rate window (`u64::MAX` = not yet anchored).
    pub window_start_ns: u64,
    /// Events counted in the current window so far.
    pub window_events: u64,
    /// Consecutive calm windows toward recovery.
    pub calm_windows: u32,
    /// Ladder moves in either direction.
    pub level_transitions: u64,
    /// Estimated resident collector bytes (memory-clamp input).
    pub memory_bytes: u64,
    /// Chaos panics already fired (so a restore doesn't re-arm them).
    pub chaos_fired: u32,
    /// Quarantine generation.
    pub generation: u64,
    /// The admission ledger (`ingested + sampled_out + shed == offered`).
    pub counters: LoadCounters,
}

/// splitmix64: the same deterministic mixer faultkit uses for seeded
/// decisions — pure in its input, excellent avalanche.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The sampling coin: pure in `(seed, key)`, so a command's issue and
/// completion (both keyed by the request id) always agree, and the kept
/// set at `SampledSeries` is an exact subset of the `Full` stream.
#[inline]
pub(crate) fn keep_coin(seed: u64, key: u64, keep_per_1024: u32) -> bool {
    (splitmix64(seed ^ splitmix64(key)) & 1023) < u64::from(keep_per_1024)
}

/// Per-shard governor state. Lives inside the shard lock, so all methods
/// take `&mut self` without further synchronization.
#[derive(Debug, Default)]
pub(crate) struct ShardSentinel {
    config: Option<Arc<SentinelConfig>>,
    level: DegradeLevel,
    /// Start of the current rate window; `u64::MAX` until the first event
    /// anchors it.
    window_start_ns: u64,
    window_events: u64,
    calm_windows: u32,
    level_transitions: u64,
    /// Estimated collector bytes resident in this shard (for the memory
    /// clamp); zeroed on quarantine rebuild.
    memory_bytes: usize,
    chaos_fired: u32,
    generation: u64,
    counters: LoadCounters,
}

impl ShardSentinel {
    pub(crate) fn enable(&mut self, config: Arc<SentinelConfig>) {
        self.level = config.initial_level;
        self.window_start_ns = u64::MAX;
        self.window_events = 0;
        self.calm_windows = 0;
        self.config = Some(config);
    }

    pub(crate) fn is_enabled(&self) -> bool {
        self.config.is_some()
    }

    pub(crate) fn generation(&self) -> u64 {
        self.generation
    }

    pub(crate) fn counters(&self) -> &LoadCounters {
        &self.counters
    }

    /// Exports the governor's dynamic state (everything except the config,
    /// which the restoring service re-supplies) for the checkpoint plane.
    pub(crate) fn export_state(&self) -> SentinelState {
        SentinelState {
            level: self.level,
            window_start_ns: self.window_start_ns,
            window_events: self.window_events,
            calm_windows: self.calm_windows,
            level_transitions: self.level_transitions,
            memory_bytes: self.memory_bytes as u64,
            chaos_fired: self.chaos_fired,
            generation: self.generation,
            counters: self.counters,
        }
    }

    /// Overwrites the governor's dynamic state from a checkpoint export.
    /// Leaves `config` untouched: callers enable (or leave disabled) the
    /// sentinel first, then restore, so a restored shard keeps the host's
    /// current supervision policy but the checkpointed posture and ledger.
    pub(crate) fn restore_state(&mut self, state: &SentinelState) {
        self.level = state.level;
        self.window_start_ns = state.window_start_ns;
        self.window_events = state.window_events;
        self.calm_windows = state.calm_windows;
        self.level_transitions = state.level_transitions;
        self.memory_bytes = state.memory_bytes as usize;
        self.chaos_fired = state.chaos_fired;
        self.generation = state.generation;
        self.counters = state.counters;
    }

    /// Classifies one offered event. Disabled sentinels ingest everything
    /// and count nothing (exact legacy behavior).
    pub(crate) fn admit(&mut self, now_ns: u64, key: u64) -> Admission {
        let Some(config) = self.config.clone() else {
            return Admission::Ingest;
        };
        self.roll_windows(now_ns, &config);
        self.window_events += 1;
        let mut level = self.level;
        if self.memory_clamped(&config) && level < DegradeLevel::CountersOnly {
            level = DegradeLevel::CountersOnly;
        }
        self.counters.offered += 1;
        self.counters.offered_at_level[level.index()] += 1;
        match level {
            DegradeLevel::Full => {
                self.counters.ingested += 1;
                Admission::Ingest
            }
            DegradeLevel::SampledSeries => {
                if keep_coin(config.seed, key, config.sample_keep_per_1024) {
                    self.counters.ingested += 1;
                    Admission::Ingest
                } else {
                    self.counters.sampled_out += 1;
                    Admission::SampleOut
                }
            }
            DegradeLevel::CountersOnly => {
                self.counters.sampled_out += 1;
                Admission::CountOnly
            }
            DegradeLevel::Shed => {
                self.counters.shed += 1;
                Admission::Shed
            }
        }
    }

    fn memory_clamped(&self, config: &SentinelConfig) -> bool {
        config.memory_budget_bytes > 0 && self.memory_bytes > config.memory_budget_bytes
    }

    fn roll_windows(&mut self, now_ns: u64, config: &SentinelConfig) {
        let w = config.window_ns.max(1);
        if self.window_start_ns == u64::MAX {
            self.window_start_ns = now_ns;
            return;
        }
        if now_ns < self.window_start_ns.saturating_add(w) {
            return;
        }
        // Close the window that just elapsed...
        self.evaluate_window(self.window_events, config);
        self.window_events = 0;
        // ...and credit fully empty windows in the gap as calm, capped so
        // a long silence costs O(recover_windows), not O(gap).
        let advanced = (now_ns - self.window_start_ns) / w;
        let cap = u64::from(config.recover_windows.max(1)).saturating_mul(4) + 4;
        for _ in 1..advanced.min(cap) {
            self.evaluate_window(0, config);
        }
        self.window_start_ns = self.window_start_ns.saturating_add(advanced * w);
    }

    fn evaluate_window(&mut self, rate: u64, config: &SentinelConfig) {
        let target = Self::level_for_rate(rate, config);
        if target > self.level {
            // Degrade immediately: overload must not wait out hysteresis.
            self.level = target;
            self.calm_windows = 0;
            self.level_transitions += 1;
        } else if self.level > DegradeLevel::Full {
            // Recover only with headroom: the rate inflated by the margin
            // must still map below the current rung.
            let margin = u64::from(config.recover_per_mille.clamp(1, 1000));
            let inflated = rate.saturating_mul(1000) / margin;
            if Self::level_for_rate(inflated, config) < self.level {
                self.calm_windows += 1;
                if self.calm_windows >= config.recover_windows.max(1) {
                    self.level = self.level.step_down();
                    self.calm_windows = 0;
                    self.level_transitions += 1;
                }
            } else {
                self.calm_windows = 0;
            }
        }
    }

    fn level_for_rate(rate: u64, config: &SentinelConfig) -> DegradeLevel {
        if rate <= config.full_max_rate {
            DegradeLevel::Full
        } else if rate <= config.sampled_max_rate {
            DegradeLevel::SampledSeries
        } else if rate <= config.counters_max_rate {
            DegradeLevel::CountersOnly
        } else {
            DegradeLevel::Shed
        }
    }

    /// Accounts an event that was degraded but still visible to the cheap
    /// counters.
    pub(crate) fn note_light(&mut self, bytes: u64) {
        self.counters.light_events += 1;
        self.counters.light_bytes += bytes;
    }

    /// Accounts a completion whose state was lost to a quarantine rebuild.
    pub(crate) fn note_stale_completion(&mut self) {
        self.counters.stale_completions += 1;
    }

    /// Accounts `n` events dropped at a full ingest ring *before* they
    /// could reach this shard's governor (the thread-per-core pipeline's
    /// lossy backpressure). They were offered to the stats path and lost,
    /// so the conservation identity `ingested + sampled_out + shed ==
    /// offered` only survives if they are booked as offered-and-shed
    /// here. Attributed to the shard's current degrade level: ring
    /// overflow *is* an overload signal, observed upstream of the
    /// admission coin. No-op while the sentinel is disabled (there is no
    /// ledger to conserve).
    pub(crate) fn note_ring_shed(&mut self, n: u64) {
        if self.config.is_none() || n == 0 {
            return;
        }
        self.counters.offered += n;
        self.counters.offered_at_level[self.level.index()] += n;
        self.counters.shed += n;
    }

    /// Accounts a freshly created collector against the memory budget.
    pub(crate) fn note_collector_created(&mut self, bytes: usize) {
        self.memory_bytes = self.memory_bytes.saturating_add(bytes);
    }

    /// Marks the shard rebuilt after a quarantine: bumps the generation
    /// (so late completions count as stale) and releases the memory the
    /// dropped collectors held. Load counters survive the rebuild — the
    /// conservation identity spans generations.
    pub(crate) fn note_quarantine(&mut self) {
        self.counters.quarantines += 1;
        self.generation += 1;
        self.memory_bytes = 0;
    }

    /// Fires the configured chaos panic if this issue is poisoned. The
    /// counter is advanced *before* unwinding so the cap holds even
    /// though the panic interrupts the ingest.
    pub(crate) fn maybe_chaos_panic(&mut self, req: &IoRequest) {
        let Some(chaos) = self.config.as_ref().and_then(|c| c.chaos) else {
            return;
        };
        if self.chaos_fired < chaos.max_panics && chaos.matches(req) {
            self.chaos_fired += 1;
            panic!(
                "sentinel chaos: injected poison at {} lba {}",
                req.target,
                req.lba.sector()
            );
        }
    }

    pub(crate) fn shard_health(&self, index: usize, targets: usize) -> ShardHealth {
        ShardHealth {
            index,
            reachable: true,
            level: self.level,
            generation: self.generation,
            targets,
            memory_bytes: self.memory_bytes,
            level_transitions: self.level_transitions,
            counters: self.counters,
        }
    }
}

/// One shard's health, as reported by
/// [`StatsService::health_snapshot`](crate::StatsService::health_snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index.
    pub index: usize,
    /// `false` when the reader gave up waiting for the shard lock
    /// (a wedged writer); all other fields are then zero/default.
    pub reachable: bool,
    /// Current ladder rung.
    pub level: DegradeLevel,
    /// Quarantine generation (0 = never rebuilt).
    pub generation: u64,
    /// Targets with state in the shard.
    pub targets: usize,
    /// Estimated collector bytes resident (memory-clamp accounting).
    pub memory_bytes: usize,
    /// Ladder transitions so far (degradations + recoveries).
    pub level_transitions: u64,
    /// Load classification counters.
    pub counters: LoadCounters,
}

impl ShardHealth {
    /// Placeholder for a shard whose lock could not be acquired within
    /// the reader's patience.
    pub fn unreachable(index: usize) -> ShardHealth {
        ShardHealth {
            index,
            reachable: false,
            level: DegradeLevel::Shed,
            generation: 0,
            targets: 0,
            memory_bytes: 0,
            level_transitions: 0,
            counters: LoadCounters::default(),
        }
    }
}

/// What one quarantined shard held when it was rebuilt — the `Errors`-
/// histogram-style salvage of a wounded slab.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageRecord {
    /// Which shard was quarantined.
    pub shard: usize,
    /// The generation that was torn down (pre-bump).
    pub generation: u64,
    /// Virtual timestamp of the panic that triggered the quarantine.
    pub at_ns: u64,
    /// Per-target headline counters salvaged from the wounded collectors.
    pub targets: Vec<SalvagedTarget>,
}

/// Headline counters salvaged from one wounded collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvagedTarget {
    /// The (VM, disk) pair.
    pub target: TargetId,
    /// Commands issued before the quarantine.
    pub issued: u64,
    /// Commands completed before the quarantine.
    pub completed: u64,
    /// Commands in flight when the shard went down.
    pub outstanding: u32,
    /// The per-outcome `Errors` histogram counts, bin by bin.
    pub error_outcomes: Vec<u64>,
}

/// Health of a trace sink's writer pipeline, surfaced through
/// [`TraceSink::sink_health`](crate::TraceSink::sink_health).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkHealth {
    /// Whether the sink's backpressure policy was demoted (stuck writer →
    /// `DropOldest`) to keep producers unblocked.
    pub demoted: bool,
    /// Watchdog trips recorded against the sink (flush timeouts, bounded
    /// block-waits that expired).
    pub watchdog_trips: u64,
}

/// Full service health: per-shard state plus service-wide supervision
/// counters. Built by
/// [`StatsService::health_snapshot`](crate::StatsService::health_snapshot).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// One entry per shard, in shard order.
    pub shards: Vec<ShardHealth>,
    /// Retained salvage records (bounded; see `salvages_total`).
    pub salvages: Vec<SalvageRecord>,
    /// Total quarantine salvages, including any beyond the retention cap.
    pub salvages_total: u64,
    /// Watchdog trips against shards (stuck ingests, reader give-ups).
    pub shard_watchdog_trips: u64,
    /// Watchdog trips reported by tracer sinks (stuck flushes).
    pub sink_watchdog_trips: u64,
}

impl HealthSnapshot {
    /// Aggregated load counters across every reachable shard.
    pub fn totals(&self) -> LoadCounters {
        let mut total = LoadCounters::default();
        for shard in self.shards.iter().filter(|s| s.reachable) {
            total.merge(&shard.counters);
        }
        total
    }

    /// Whether the conservation identity holds in aggregate.
    pub fn conserves(&self) -> bool {
        self.totals().conserves()
    }

    /// The worst ladder rung any reachable shard currently sits at.
    pub fn worst_level(&self) -> DegradeLevel {
        self.shards
            .iter()
            .filter(|s| s.reachable)
            .map(|s| s.level)
            .max()
            .unwrap_or(DegradeLevel::Full)
    }

    /// Total quarantines across shards.
    pub fn quarantines(&self) -> u64 {
        self.shards.iter().map(|s| s.counters.quarantines).sum()
    }

    /// Total stale completions across shards.
    pub fn stale_completions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.counters.stale_completions)
            .sum()
    }

    /// `vscsiStats`-style multi-line rendering (the `health` command and
    /// the CLI `--health` flag print this). Quiet shards (no offered
    /// load, no quarantines, level `Full`) are elided.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "sentinel health: worst level {}", self.worst_level());
        for s in &self.shards {
            if !s.reachable {
                let _ = writeln!(out, "  shard {:>2}: UNREACHABLE (wedged writer?)", s.index);
                continue;
            }
            let quiet = s.counters.offered == 0
                && s.counters.quarantines == 0
                && s.level == DegradeLevel::Full;
            if quiet {
                continue;
            }
            let _ = writeln!(
                out,
                "  shard {:>2}: level={} gen={} targets={} offered={} ingested={} \
                 sampled_out={} shed={} stale={} quarantines={} transitions={}",
                s.index,
                s.level,
                s.generation,
                s.targets,
                s.counters.offered,
                s.counters.ingested,
                s.counters.sampled_out,
                s.counters.shed,
                s.counters.stale_completions,
                s.counters.quarantines,
                s.level_transitions,
            );
        }
        let t = self.totals();
        let _ = writeln!(
            out,
            "  totals: offered={} ingested={} sampled_out={} shed={} conserved={}",
            t.offered,
            t.ingested,
            t.sampled_out,
            t.shed,
            self.conserves(),
        );
        let _ = writeln!(
            out,
            "  watchdog: shard_trips={} sink_trips={} salvages={}",
            self.shard_watchdog_trips, self.sink_watchdog_trips, self.salvages_total,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> Arc<SentinelConfig> {
        let mut c = SentinelConfig::new(7);
        c.window_ns = 1_000;
        c.full_max_rate = 10;
        c.sampled_max_rate = 20;
        c.counters_max_rate = 40;
        c.recover_windows = 2;
        Arc::new(c)
    }

    /// Feeds `n` events with `gap_ns` spacing starting at `t0`, returning
    /// the admissions and the time after the burst.
    fn burst(s: &mut ShardSentinel, t0: u64, n: u64, gap_ns: u64) -> (Vec<Admission>, u64) {
        let mut out = Vec::new();
        let mut t = t0;
        for i in 0..n {
            out.push(s.admit(t, i));
            t += gap_ns;
        }
        (out, t)
    }

    #[test]
    fn disabled_sentinel_ingests_everything_and_counts_nothing() {
        let mut s = ShardSentinel::default();
        assert!(!s.is_enabled());
        for i in 0..100 {
            assert_eq!(s.admit(i * 10, i), Admission::Ingest);
        }
        assert_eq!(s.counters().offered, 0);
    }

    #[test]
    fn calm_traffic_stays_full() {
        let mut s = ShardSentinel::default();
        s.enable(config());
        // 5 events per 1000 ns window < full_max_rate of 10.
        let (adm, _) = burst(&mut s, 0, 50, 200);
        assert!(adm.iter().all(|&a| a == Admission::Ingest));
        assert_eq!(s.counters().ingested, 50);
        assert!(s.counters().conserves());
    }

    #[test]
    fn overload_walks_the_ladder_and_recovers_with_hysteresis() {
        let mut s = ShardSentinel::default();
        s.enable(config());
        // 100 events per window >> counters_max_rate of 40 → Shed after
        // the first window closes.
        let (_, t) = burst(&mut s, 0, 400, 10);
        assert_eq!(s.level, DegradeLevel::Shed);
        assert!(s.counters().shed > 0);
        // Cool down: nearly idle windows. Each 2 000 ns step closes two
        // calm windows (one observed, one gap-credited) — exactly one
        // recovery rung per step, never a jump straight to Full.
        let (_, t2) = burst(&mut s, t, 3, 2_000);
        assert!(
            s.level < DegradeLevel::Shed && s.level > DegradeLevel::Full,
            "one step at a time, got {}",
            s.level
        );
        let _ = burst(&mut s, t2, 20, 2_000);
        assert_eq!(s.level, DegradeLevel::Full);
        assert!(s.counters().conserves());
    }

    #[test]
    fn borderline_rate_does_not_recover_without_margin() {
        let mut s = ShardSentinel::default();
        let cfg = config();
        s.enable(cfg.clone());
        // Push to SampledSeries.
        let (_, t) = burst(&mut s, 0, 60, 60); // ~16 events/window
        assert_eq!(s.level, DegradeLevel::SampledSeries);
        // 9 events/window is under full_max_rate (10) but NOT under the
        // 70% margin (7), so the shard must stay degraded.
        let (_, _t) = burst(&mut s, t + 1_000, 90, 111);
        assert_eq!(s.level, DegradeLevel::SampledSeries);
    }

    #[test]
    fn sampling_coin_is_deterministic_and_command_consistent() {
        for key in 0..2_000u64 {
            let a = keep_coin(42, key, 512);
            let b = keep_coin(42, key, 512);
            assert_eq!(a, b);
        }
        let kept = (0..10_000u64).filter(|&k| keep_coin(9, k, 512)).count();
        // ~half kept, generous tolerance.
        assert!((3_500..6_500).contains(&kept), "kept {kept}");
        // Different seeds disagree somewhere.
        assert!((0..1_000u64).any(|k| keep_coin(1, k, 512) != keep_coin(2, k, 512)));
        // Degenerate probabilities.
        assert!((0..100u64).all(|k| keep_coin(5, k, 1024)));
        assert!((0..100u64).all(|k| !keep_coin(5, k, 0)));
    }

    #[test]
    fn memory_budget_clamps_to_counters_only() {
        let mut s = ShardSentinel::default();
        let mut c = SentinelConfig::new(3);
        c.memory_budget_bytes = 1_000;
        s.enable(Arc::new(c));
        assert_eq!(s.admit(0, 0), Admission::Ingest);
        s.note_collector_created(2_000);
        assert_eq!(s.admit(10, 1), Admission::CountOnly);
        // Quarantine releases the memory and lifts the clamp.
        s.note_quarantine();
        assert_eq!(s.generation(), 1);
        assert_eq!(s.admit(20, 2), Admission::Ingest);
        assert!(s.counters().conserves());
    }

    #[test]
    fn long_idle_gap_recovers_in_bounded_work() {
        let mut s = ShardSentinel::default();
        s.enable(config());
        let (_, t) = burst(&mut s, 0, 400, 10);
        assert_eq!(s.level, DegradeLevel::Shed);
        // A huge silent gap: the capped empty-window credit must bring the
        // shard all the way back without iterating the whole gap.
        assert_eq!(s.admit(t + 10_000_000_000, 9_999), Admission::Ingest);
        assert_eq!(s.level, DegradeLevel::Full);
    }

    #[test]
    fn conservation_identity_is_structural() {
        let mut s = ShardSentinel::default();
        s.enable(config());
        let mut t = 0u64;
        for i in 0..5_000u64 {
            // Deliberately bursty spacing.
            t += if i % 97 < 90 { 3 } else { 5_000 };
            let _ = s.admit(t, i);
        }
        let c = s.counters();
        assert_eq!(c.offered, 5_000);
        assert!(c.conserves());
        assert_eq!(c.offered_at_level.iter().sum::<u64>(), c.offered);
    }

    #[test]
    fn health_snapshot_aggregates_and_renders() {
        let mut a = ShardSentinel::default();
        a.enable(config());
        let _ = burst(&mut a, 0, 400, 10);
        a.note_stale_completion();
        a.note_quarantine();
        let snap = HealthSnapshot {
            shards: vec![a.shard_health(0, 3), ShardHealth::unreachable(1)],
            salvages: Vec::new(),
            salvages_total: 1,
            shard_watchdog_trips: 2,
            sink_watchdog_trips: 0,
        };
        assert!(snap.conserves());
        assert_eq!(snap.quarantines(), 1);
        assert_eq!(snap.stale_completions(), 1);
        assert_eq!(snap.worst_level(), DegradeLevel::Shed);
        let text = snap.render();
        assert!(text.contains("shard  0"));
        assert!(text.contains("UNREACHABLE"));
        assert!(text.contains("conserved=true"));
        assert!(text.contains("salvages=1"));
    }

    #[test]
    fn chaos_spec_matches_band_and_vm() {
        use simkit::SimTime;
        use vscsi::{IoDirection, Lba, RequestId, VDiskId, VmId};
        let spec = ChaosSpec {
            vm: Some(3),
            lba_min: 100,
            lba_max: 200,
            max_panics: 1,
        };
        let req = |vm: u32, lba: u64| {
            IoRequest::new(
                RequestId(0),
                TargetId::new(VmId(vm), VDiskId(0)),
                IoDirection::Read,
                Lba::new(lba),
                8,
                SimTime::ZERO,
            )
        };
        assert!(spec.matches(&req(3, 150)));
        assert!(!spec.matches(&req(3, 99)));
        assert!(!spec.matches(&req(4, 150)));
    }

    #[test]
    fn degrade_level_order_and_display() {
        assert!(DegradeLevel::Full < DegradeLevel::Shed);
        assert_eq!(DegradeLevel::Shed.step_down(), DegradeLevel::CountersOnly);
        assert_eq!(DegradeLevel::Full.step_down(), DegradeLevel::Full);
        let names: Vec<String> = DegradeLevel::ALL.iter().map(|l| l.to_string()).collect();
        assert_eq!(names, ["Full", "SampledSeries", "CountersOnly", "Shed"]);
    }
}
