//! The virtual SCSI command tracing framework (§1, §3.6).
//!
//! "More thorough analysis may still require an I/O trace so we provide a
//! simple virtual SCSI command tracing framework." A [`VscsiTracer`]
//! records one [`TraceRecord`] per command — O(n) space, unlike the O(m)
//! histograms — and traces can be replayed offline through a fresh
//! [`IoStatsCollector`](crate::IoStatsCollector), which must reproduce the
//! online histograms exactly (that equivalence is property-tested).

use crate::collector::{CollectorConfig, IoStatsCollector};
use crate::sentinel::SinkHealth;
use serde::{Deserialize, Serialize};
use simkit::SimTime;
use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;
use vscsi::{IoCompletion, IoDirection, IoRequest, Lba, RequestId, TargetId, VDiskId, VmId};

/// One traced vSCSI command.
///
/// A trace is an append-only log of *events* (issues and completions)
/// observed at the vSCSI layer. Timestamps alone cannot disambiguate
/// events that share an instant, so each record carries the global event
/// sequence numbers of its issue and completion; replay follows those, so
/// offline replay reproduces the observed order exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Global event-sequence number of the issue event.
    pub serial: u64,
    /// Which (VM, virtual disk) issued the command.
    pub target: TargetId,
    /// Read or write.
    pub direction: IoDirection,
    /// First logical block.
    pub lba: Lba,
    /// Sectors transferred.
    pub num_sectors: u32,
    /// Issue timestamp, nanoseconds.
    pub issue_ns: u64,
    /// Completion timestamp, nanoseconds; `None` while still in flight.
    pub complete_ns: Option<u64>,
    /// Global event-sequence number of the completion event, if completed.
    pub complete_seq: Option<u64>,
}

impl TraceRecord {
    /// Reconstructs the request object this record describes.
    pub fn to_request(&self) -> IoRequest {
        IoRequest::new(
            RequestId(self.serial),
            self.target,
            self.direction,
            self.lba,
            self.num_sectors,
            SimTime::from_nanos(self.issue_ns),
        )
    }

    /// Reconstructs the completion, if the command completed.
    pub fn to_completion(&self) -> Option<IoCompletion> {
        self.complete_ns
            .map(|t| IoCompletion::new(self.to_request(), SimTime::from_nanos(t)))
    }
}

impl fmt::Display for TraceRecord {
    /// One whitespace-separated line:
    /// `serial vm disk R|W lba sectors issue_ns complete_ns|- complete_seq|-`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {} {} {} ",
            self.serial,
            self.target.vm.0,
            self.target.disk.0,
            self.direction,
            self.lba.sector(),
            self.num_sectors,
            self.issue_ns,
        )?;
        match self.complete_ns {
            Some(t) => write!(f, "{t}")?,
            None => write!(f, "-")?,
        }
        match self.complete_seq {
            Some(s) => write!(f, " {s}"),
            None => write!(f, " -"),
        }
    }
}

/// Error parsing a trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    msg: String,
}

impl ParseTraceError {
    fn new(msg: impl Into<String>) -> Self {
        ParseTraceError { msg: msg.into() }
    }
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid trace line: {}", self.msg)
    }
}

impl std::error::Error for ParseTraceError {}

impl FromStr for TraceRecord {
    type Err = ParseTraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut it = s.split_whitespace();
        let mut next = |what: &str| {
            it.next()
                .ok_or_else(|| ParseTraceError::new(format!("missing field {what}")))
        };
        let serial = next("serial")?
            .parse::<u64>()
            .map_err(|e| ParseTraceError::new(format!("serial: {e}")))?;
        let vm = next("vm")?
            .parse::<u32>()
            .map_err(|e| ParseTraceError::new(format!("vm: {e}")))?;
        let disk = next("disk")?
            .parse::<u32>()
            .map_err(|e| ParseTraceError::new(format!("disk: {e}")))?;
        let direction = match next("dir")? {
            "R" => IoDirection::Read,
            "W" => IoDirection::Write,
            other => return Err(ParseTraceError::new(format!("direction {other:?}"))),
        };
        let lba = next("lba")?
            .parse::<u64>()
            .map_err(|e| ParseTraceError::new(format!("lba: {e}")))?;
        let num_sectors = next("sectors")?
            .parse::<u32>()
            .map_err(|e| ParseTraceError::new(format!("sectors: {e}")))?;
        let issue_ns = next("issue")?
            .parse::<u64>()
            .map_err(|e| ParseTraceError::new(format!("issue: {e}")))?;
        let complete_ns = match next("complete")? {
            "-" => None,
            t => Some(
                t.parse::<u64>()
                    .map_err(|e| ParseTraceError::new(format!("complete: {e}")))?,
            ),
        };
        let complete_seq = match next("complete_seq")? {
            "-" => None,
            s => Some(
                s.parse::<u64>()
                    .map_err(|e| ParseTraceError::new(format!("complete_seq: {e}")))?,
            ),
        };
        if let Some(c) = complete_ns {
            if c < issue_ns {
                return Err(ParseTraceError::new("completion precedes issue"));
            }
        }
        if complete_ns.is_some() != complete_seq.is_some() {
            return Err(ParseTraceError::new(
                "completion time and sequence must both be present or absent",
            ));
        }
        if num_sectors == 0 {
            return Err(ParseTraceError::new("zero-sector command"));
        }
        Ok(TraceRecord {
            serial,
            target: TargetId::new(VmId(vm), VDiskId(disk)),
            direction,
            lba: Lba::new(lba),
            num_sectors,
            issue_ns,
            complete_ns,
            complete_seq,
        })
    }
}

/// Capacity policy for a tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceCapacity {
    /// Keep every record (O(n) memory — the cost the paper's histograms
    /// avoid).
    Unbounded,
    /// Keep only the most recent `n` records (flight-recorder mode).
    Ring(usize),
}

/// Destination for trace records produced by a streaming tracer.
///
/// A [`VscsiTracer`] built with [`VscsiTracer::streaming`] keeps only the
/// in-flight commands in memory; each record is handed to the sink the
/// moment it completes (and the still-in-flight remainder is handed over,
/// with `complete_ns: None`, when the tracer is finished or dropped).
/// Implementations decide what durability means — the `tracestore` crate
/// provides a bounded-memory binary segment store with explicit
/// backpressure; a `Vec<TraceRecord>` newtype is enough for tests.
///
/// Records arrive in *completion* order, not issue order. That is fine for
/// [`replay`], which orders events by the global sequence numbers carried
/// in each record, not by position in the stream.
pub trait TraceSink: Send + Sync + fmt::Debug {
    /// Accepts one record whose lifecycle ended (completed, or still in
    /// flight when the tracer was finished). Must not panic; sinks with
    /// bounded resources drop and account instead.
    fn append(&mut self, record: &TraceRecord);

    /// Makes previously appended records durable, where that is meaningful.
    fn flush(&mut self) {}

    /// Resident bytes attributable to this sink (buffers, queued chunks).
    fn memory_footprint_bytes(&self) -> usize {
        0
    }

    /// Records this sink has dropped under backpressure.
    fn dropped_records(&self) -> u64 {
        0
    }

    /// Supervision health of the sink's writer pipeline. Sinks with a
    /// background writer (e.g. `tracestore`) report demotions and watchdog
    /// trips here; trivial sinks are always healthy.
    fn health(&self) -> SinkHealth {
        SinkHealth::default()
    }
}

/// The simplest possible sink: every record into a `Vec`. Useful for tests
/// and for adapting code that wants the old "give me a `Vec<TraceRecord>`"
/// interface to the streaming tracer.
#[derive(Debug, Default)]
pub struct VecSink(pub Vec<TraceRecord>);

impl TraceSink for VecSink {
    fn append(&mut self, record: &TraceRecord) {
        self.0.push(*record);
    }

    fn memory_footprint_bytes(&self) -> usize {
        self.0.capacity() * std::mem::size_of::<TraceRecord>()
    }
}

/// Storage backend of a [`VscsiTracer`].
#[derive(Debug)]
enum Backend {
    /// All records stay in the tracer's deque (the original behaviour).
    Memory { capacity: TraceCapacity },
    /// Only in-flight records stay in memory; completed records stream to
    /// the sink. `finished` flips once the in-flight tail has been handed
    /// over, after which the tracer ignores further events.
    Streaming {
        sink: Box<dyn TraceSink>,
        finished: bool,
    },
}

/// Records the vSCSI command stream of one virtual disk.
///
/// # Examples
///
/// ```
/// use simkit::SimTime;
/// use vscsi::{IoCompletion, IoDirection, IoRequest, Lba, RequestId, TargetId};
/// use vscsi_stats::{TraceCapacity, VscsiTracer};
///
/// let mut tracer = VscsiTracer::new(TraceCapacity::Unbounded);
/// let req = IoRequest::new(
///     RequestId(0), TargetId::default(), IoDirection::Write,
///     Lba::new(64), 8, SimTime::ZERO,
/// );
/// tracer.on_issue(&req);
/// tracer.on_complete(&IoCompletion::new(req, SimTime::from_micros(500)));
/// assert_eq!(tracer.records().len(), 1);
/// assert!(tracer.records().next().unwrap().complete_ns.is_some());
/// ```
#[derive(Debug)]
pub struct VscsiTracer {
    backend: Backend,
    /// Memory backend: every retained record. Streaming backend: only the
    /// in-flight records (completed ones have moved to the sink).
    records: VecDeque<TraceRecord>,
    /// Global event counter, shared by issues and completions, recording
    /// the order events were observed at the vSCSI layer.
    next_event_seq: u64,
    dropped: u64,
}

impl VscsiTracer {
    /// Creates a tracer with the given capacity policy.
    pub fn new(capacity: TraceCapacity) -> Self {
        VscsiTracer {
            backend: Backend::Memory { capacity },
            records: VecDeque::new(),
            next_event_seq: 0,
            dropped: 0,
        }
    }

    /// Creates a streaming tracer: memory holds only the in-flight
    /// commands; each record is pushed into `sink` when it completes, and
    /// the in-flight tail (with `complete_ns: None`) is pushed when the
    /// tracer is [`finish`](Self::finish)ed, stopped, or dropped. Memory is
    /// therefore bounded by the device queue depth plus whatever the sink
    /// itself buffers — O(outstanding), not O(trace length).
    pub fn streaming(sink: Box<dyn TraceSink>) -> Self {
        VscsiTracer {
            backend: Backend::Streaming {
                sink,
                finished: false,
            },
            records: VecDeque::new(),
            next_event_seq: 0,
            dropped: 0,
        }
    }

    /// Whether this tracer streams completed records to a [`TraceSink`].
    pub fn is_streaming(&self) -> bool {
        matches!(self.backend, Backend::Streaming { .. })
    }

    /// The next event sequence number this tracer will assign — the
    /// checkpoint plane's replay watermark. Every record already observed
    /// has `serial` (and `complete_seq`, when present) strictly below this.
    pub fn next_event_seq(&self) -> u64 {
        self.next_event_seq
    }

    /// Fast-forwards the event counter to `seq` (monotonic only; lower
    /// values are ignored). A restored tracer continues the checkpointed
    /// sequence so post-restart records sort after every pre-crash record
    /// and replay's `(seq, kind)` ordering stays globally consistent.
    pub fn resume_event_seq(&mut self, seq: u64) {
        self.next_event_seq = self.next_event_seq.max(seq);
    }

    /// Records a command issue.
    pub fn on_issue(&mut self, req: &IoRequest) {
        match self.backend {
            Backend::Memory { capacity } => {
                if let TraceCapacity::Ring(n) = capacity {
                    while self.records.len() >= n.max(1) {
                        self.records.pop_front();
                        self.dropped += 1;
                    }
                }
            }
            Backend::Streaming { finished, .. } => {
                if finished {
                    return;
                }
            }
        }
        let record = TraceRecord {
            serial: self.next_event_seq,
            target: req.target,
            direction: req.direction,
            lba: req.lba,
            num_sectors: req.num_sectors,
            issue_ns: req.issue_time.as_nanos(),
            complete_ns: None,
            complete_seq: None,
        };
        self.next_event_seq += 1;
        self.records.push_back(record);
    }

    /// Marks the matching record (by issue time, target, lba, direction)
    /// as complete. Completions for records that have been evicted from a
    /// ring are silently ignored. On a streaming tracer the completed
    /// record leaves memory and lands in the sink.
    pub fn on_complete(&mut self, completion: &IoCompletion) {
        if let Backend::Streaming { finished: true, .. } = self.backend {
            return;
        }
        let req = &completion.request;
        let seq = self.next_event_seq;
        let Some(idx) = self.records.iter().rposition(|r| {
            r.complete_ns.is_none()
                && r.issue_ns == req.issue_time.as_nanos()
                && r.target == req.target
                && r.lba == req.lba
                && r.direction == req.direction
        }) else {
            return;
        };
        self.records[idx].complete_ns = Some(completion.complete_time.as_nanos());
        self.records[idx].complete_seq = Some(seq);
        self.next_event_seq += 1;
        if let Backend::Streaming { sink, .. } = &mut self.backend {
            let record = self
                .records
                .remove(idx)
                .expect("index found by rposition is in range");
            sink.append(&record);
        }
    }

    /// The records currently held in memory, in issue order: everything
    /// retained for a memory tracer, only the in-flight commands for a
    /// streaming one.
    pub fn records(&self) -> impl ExactSizeIterator<Item = &TraceRecord> + '_ {
        self.records.iter()
    }

    /// Number of records evicted by a ring capacity, plus any the sink of
    /// a streaming tracer dropped under backpressure.
    pub fn dropped(&self) -> u64 {
        let sink_drops = match &self.backend {
            Backend::Memory { .. } => 0,
            Backend::Streaming { sink, .. } => sink.dropped_records(),
        };
        self.dropped + sink_drops
    }

    /// Finishes a streaming tracer: hands the in-flight records (with
    /// `complete_ns: None`) to the sink in issue order and flushes it.
    /// Afterwards the tracer ignores further events. No-op for a memory
    /// tracer, and idempotent.
    pub fn finish(&mut self) {
        let Backend::Streaming { sink, finished } = &mut self.backend else {
            return;
        };
        if *finished {
            return;
        }
        *finished = true;
        for record in self.records.drain(..) {
            sink.append(&record);
        }
        sink.flush();
    }

    /// Finishes the tracer and returns the records still held in memory:
    /// everything for a memory tracer, nothing for a streaming one (its
    /// records — including the in-flight tail — are in the sink).
    pub fn into_records(mut self) -> Vec<TraceRecord> {
        self.finish();
        std::mem::take(&mut self.records).into()
    }

    /// Serializes all records, one line each.
    pub fn export(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses records previously produced by [`VscsiTracer::export`].
    ///
    /// # Errors
    ///
    /// Returns the first line's parse failure, if any; blank lines are
    /// skipped.
    pub fn import(text: &str) -> Result<Vec<TraceRecord>, ParseTraceError> {
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(TraceRecord::from_str)
            .collect()
    }

    /// Rough resident size in bytes. For a memory tracer this is O(n) in
    /// trace length — contrast with
    /// [`IoStatsCollector::memory_footprint_bytes`]. For a streaming tracer
    /// it covers the in-flight deque *plus the active backend's real
    /// footprint* (the sink's buffers and queued chunks), and stays bounded
    /// no matter how long the trace runs.
    pub fn memory_footprint_bytes(&self) -> usize {
        let sink_bytes = match &self.backend {
            Backend::Memory { .. } => 0,
            Backend::Streaming { sink, .. } => sink.memory_footprint_bytes(),
        };
        std::mem::size_of::<Self>()
            + self.records.capacity() * std::mem::size_of::<TraceRecord>()
            + sink_bytes
    }

    /// Supervision health of the tracer's sink pipeline: demotions and
    /// watchdog trips for a streaming backend, always-healthy for the
    /// in-memory backend.
    pub fn sink_health(&self) -> SinkHealth {
        match &self.backend {
            Backend::Memory { .. } => SinkHealth::default(),
            Backend::Streaming { sink, .. } => sink.health(),
        }
    }
}

impl Drop for VscsiTracer {
    /// A streaming tracer that is dropped mid-trace still hands its
    /// in-flight records to the sink, so a captured file never silently
    /// loses the tail.
    fn drop(&mut self) {
        self.finish();
    }
}

/// Replays a trace through a fresh collector, reproducing the online
/// histograms offline — the paper's "replaying a trace" cost model (§3).
///
/// Events are replayed in the *observed* order (the trace's global event
/// sequence numbers), so even same-instant issues and completions land in
/// the order the vSCSI layer saw them and outstanding-I/O accounting
/// matches the online view bit-for-bit.
pub fn replay(records: &[TraceRecord], config: CollectorConfig) -> IoStatsCollector {
    #[derive(Clone, Copy)]
    enum Ev {
        Issue(usize),
        Complete(usize),
    }
    let mut events: Vec<(u64, Ev)> = Vec::with_capacity(records.len() * 2);
    for (i, r) in records.iter().enumerate() {
        events.push((r.serial, Ev::Issue(i)));
        if let Some(seq) = r.complete_seq {
            events.push((seq, Ev::Complete(i)));
        }
    }
    events.sort_by_key(|&(seq, _)| seq);
    let mut collector = IoStatsCollector::new(config);
    for (_, ev) in events {
        match ev {
            Ev::Issue(i) => collector.on_issue(&records[i].to_request()),
            Ev::Complete(i) => {
                let completion = records[i]
                    .to_completion()
                    .expect("complete event only queued for completed records");
                collector.on_complete(&completion);
            }
        }
    }
    collector
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Lens, Metric};

    fn req(id: u64, lba: u64, t_us: u64) -> IoRequest {
        IoRequest::new(
            RequestId(id),
            TargetId::default(),
            IoDirection::Read,
            Lba::new(lba),
            8,
            SimTime::from_micros(t_us),
        )
    }

    #[test]
    fn issue_then_complete_fills_record() {
        let mut t = VscsiTracer::new(TraceCapacity::Unbounded);
        let r = req(0, 64, 10);
        t.on_issue(&r);
        assert_eq!(t.records().next().unwrap().complete_ns, None);
        t.on_complete(&IoCompletion::new(r, SimTime::from_micros(200)));
        assert_eq!(
            t.records().next().unwrap().complete_ns,
            Some(SimTime::from_micros(200).as_nanos())
        );
    }

    #[test]
    fn ring_capacity_evicts_oldest() {
        let mut t = VscsiTracer::new(TraceCapacity::Ring(2));
        for i in 0..5 {
            t.on_issue(&req(i, i * 8, i * 10));
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped(), 3);
        let serials: Vec<u64> = t.records().map(|r| r.serial).collect();
        assert_eq!(serials, vec![3, 4]);
        // Completion for an evicted record is ignored.
        t.on_complete(&IoCompletion::new(req(0, 0, 0), SimTime::from_micros(99)));
        assert!(t.records().all(|r| r.complete_ns.is_none()));
    }

    #[test]
    fn export_import_roundtrip() {
        let mut t = VscsiTracer::new(TraceCapacity::Unbounded);
        let r0 = req(0, 64, 10);
        let r1 = IoRequest::new(
            RequestId(1),
            TargetId::new(VmId(3), VDiskId(1)),
            IoDirection::Write,
            Lba::new(4096),
            128,
            SimTime::from_micros(20),
        );
        t.on_issue(&r0);
        t.on_issue(&r1);
        t.on_complete(&IoCompletion::new(r0, SimTime::from_micros(300)));
        let text = t.export();
        let parsed = VscsiTracer::import(&text).unwrap();
        let original: Vec<TraceRecord> = t.records().copied().collect();
        assert_eq!(parsed, original);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TraceRecord::from_str("").is_err());
        assert!(TraceRecord::from_str("0 0 0 X 0 8 0 - -").is_err());
        assert!(
            TraceRecord::from_str("0 0 0 R 0 0 0 - -").is_err(),
            "zero sectors"
        );
        assert!(
            TraceRecord::from_str("0 0 0 R 0 8 100 50 1").is_err(),
            "completion before issue"
        );
        assert!(
            TraceRecord::from_str("0 0 0 R 0 8 0 - 5").is_err(),
            "sequence without completion time"
        );
        assert!(
            TraceRecord::from_str("0 0 0 R 0 8 0 100 -").is_err(),
            "completion time without sequence"
        );
        assert!(TraceRecord::from_str("0 0 0 R 0 8 0 - -").is_ok());
        assert!(TraceRecord::from_str("3 1 2 W 64 8 100 250 7").is_ok());
    }

    #[test]
    fn replay_reproduces_online_histograms() {
        // Run a workload online and through a trace; histograms must match.
        let mut online = IoStatsCollector::default();
        let mut tracer = VscsiTracer::new(TraceCapacity::Unbounded);
        let mut inflight = Vec::new();
        for i in 0..200u64 {
            let r = req(i, (i * 37) % 10_000, i * 50);
            online.on_issue(&r);
            tracer.on_issue(&r);
            inflight.push(r);
            // Complete the oldest half the time.
            if i % 2 == 1 {
                let done = inflight.remove(0);
                let c = IoCompletion::new(done, SimTime::from_micros(i * 50 + 40));
                online.on_complete(&c);
                tracer.on_complete(&c);
            }
        }
        let records: Vec<TraceRecord> = tracer.records().copied().collect();
        let replayed = replay(&records, CollectorConfig::default());
        for metric in Metric::ALL {
            for lens in Lens::ALL {
                assert_eq!(
                    online.histogram(metric, lens).counts(),
                    replayed.histogram(metric, lens).counts(),
                    "{metric} / {lens}"
                );
            }
        }
        assert_eq!(online.issued_commands(), replayed.issued_commands());
    }

    #[test]
    fn tracer_memory_grows_with_commands() {
        let mut t = VscsiTracer::new(TraceCapacity::Unbounded);
        t.on_issue(&req(0, 0, 0));
        let small = t.memory_footprint_bytes();
        for i in 1..10_000 {
            t.on_issue(&req(i, i * 8, i * 10));
        }
        assert!(t.memory_footprint_bytes() > small * 10);
    }

    /// Test sink that shares its buffer with the test body, so records can
    /// be inspected after the tracer consumed the boxed sink.
    #[derive(Debug, Default, Clone)]
    struct SharedSink(std::sync::Arc<parking_lot::Mutex<Vec<TraceRecord>>>);

    impl TraceSink for SharedSink {
        fn append(&mut self, record: &TraceRecord) {
            self.0.lock().push(*record);
        }
    }

    #[test]
    fn streaming_tracer_equals_memory_tracer() {
        // The same event stream through a memory tracer and a streaming
        // tracer must yield the same record set; the streaming tracer's
        // memory holds only the in-flight commands.
        let sink = SharedSink::default();
        let mut mem = VscsiTracer::new(TraceCapacity::Unbounded);
        let mut streaming = VscsiTracer::streaming(Box::new(sink.clone()));
        assert!(streaming.is_streaming() && !mem.is_streaming());
        let mut inflight = Vec::new();
        for i in 0..100u64 {
            let r = req(i, (i * 11) % 5_000, i * 20);
            mem.on_issue(&r);
            streaming.on_issue(&r);
            inflight.push(r);
            if i % 3 == 2 {
                let done = inflight.remove(0);
                let c = IoCompletion::new(done, SimTime::from_micros(i * 20 + 9));
                mem.on_complete(&c);
                streaming.on_complete(&c);
            }
        }
        // Only the in-flight commands are resident in the streaming tracer.
        assert_eq!(streaming.records().len(), inflight.len());
        assert_eq!(streaming.dropped(), 0);
        streaming.finish();
        streaming.finish(); // idempotent
        assert!(streaming.into_records().is_empty(), "records live in sink");
        let mut streamed = sink.0.lock().clone();
        streamed.sort_by_key(|r| r.serial);
        let expected = mem.into_records();
        assert_eq!(streamed, expected);
        assert!(streamed.iter().any(|r| r.complete_ns.is_none()));
    }

    #[test]
    fn streaming_tracer_flushes_inflight_on_drop() {
        let sink = SharedSink::default();
        let mut t = VscsiTracer::streaming(Box::new(sink.clone()));
        for i in 0..5u64 {
            t.on_issue(&req(i, i * 8, i * 10));
        }
        drop(t);
        let records = sink.0.lock().clone();
        assert_eq!(records.len(), 5);
        assert!(records.iter().all(|r| r.complete_ns.is_none()));
        let serials: Vec<u64> = records.iter().map(|r| r.serial).collect();
        assert_eq!(serials, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn finished_streaming_tracer_ignores_events() {
        let sink = SharedSink::default();
        let mut t = VscsiTracer::streaming(Box::new(sink.clone()));
        let r = req(0, 64, 10);
        t.on_issue(&r);
        t.finish();
        t.on_issue(&req(1, 128, 20));
        t.on_complete(&IoCompletion::new(r, SimTime::from_micros(99)));
        drop(t);
        let records = sink.0.lock().clone();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].complete_ns, None);
    }

    #[test]
    fn vec_sink_collects_and_reports_footprint() {
        let mut sink = VecSink::default();
        assert_eq!(sink.memory_footprint_bytes(), 0);
        assert_eq!(sink.dropped_records(), 0);
        let mut t = VscsiTracer::new(TraceCapacity::Unbounded);
        let r = req(0, 0, 0);
        t.on_issue(&r);
        for rec in t.records() {
            sink.append(rec);
        }
        sink.flush();
        assert_eq!(sink.0.len(), 1);
        assert!(sink.memory_footprint_bytes() >= std::mem::size_of::<TraceRecord>());
    }
}
