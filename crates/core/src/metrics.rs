//! Metric and lens enumerations for the characterization service.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The disk I/O performance metrics the paper characterizes (§1, §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Metric {
    /// Size of the data request, in bytes (§3.2).
    IoLength,
    /// Signed distance in sectors from the previous I/O's last block to this
    /// I/O's first block (§3.1).
    SeekDistance,
    /// Minimum signed distance to any of the last N I/Os (§3.1); unmasks
    /// interleaved sequential streams.
    SeekDistanceWindowed,
    /// Time since the previous I/O arrived, in microseconds (§3.2).
    Interarrival,
    /// Number of other I/Os outstanding on this virtual disk at arrival
    /// time (§3.3).
    OutstandingIos,
    /// Device latency from issue to completion, in microseconds (§3.5).
    Latency,
    /// Error completions by SCSI outcome code (see
    /// `vscsi::ScsiStatus::outcome_code`): 1 = MEDIUM ERROR,
    /// 2 = UNIT ATTENTION, 3 = BUSY, 4 = TASK ABORTED. Successful
    /// commands are not recorded here, so the histogram is empty on a
    /// healthy path.
    Errors,
}

impl Metric {
    /// All metrics, in report order.
    pub const ALL: [Metric; 7] = [
        Metric::IoLength,
        Metric::SeekDistance,
        Metric::SeekDistanceWindowed,
        Metric::Interarrival,
        Metric::OutstandingIos,
        Metric::Latency,
        Metric::Errors,
    ];

    /// Whether this metric depends on the environment (storage device and
    /// co-located load) rather than the workload alone. The paper (§3.7)
    /// classifies latency and interarrival time as environment-*dependent*;
    /// length, spatial locality, outstanding I/Os and read/write ratio are
    /// environment-independent.
    pub const fn is_environment_dependent(self) -> bool {
        matches!(
            self,
            Metric::Latency | Metric::Interarrival | Metric::Errors
        )
    }

    /// The measurement unit, for report headers.
    pub const fn unit(self) -> &'static str {
        match self {
            Metric::IoLength => "bytes",
            Metric::SeekDistance | Metric::SeekDistanceWindowed => "sectors",
            Metric::Interarrival | Metric::Latency => "microseconds",
            Metric::OutstandingIos => "I/Os",
            Metric::Errors => "outcomes",
        }
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Metric::IoLength => "I/O Length",
            Metric::SeekDistance => "Seek Distance",
            Metric::SeekDistanceWindowed => "Seek Distance (min of last N)",
            Metric::Interarrival => "I/O Interarrival",
            Metric::OutstandingIos => "Outstanding I/Os",
            Metric::Latency => "I/O Latency",
            Metric::Errors => "I/O Errors by Outcome",
        };
        f.write_str(name)
    }
}

/// Which commands a histogram covers: the paper keeps separate read and
/// write distributions for every metric (§3.4) plus the combined view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Lens {
    /// All commands.
    All,
    /// Read commands only.
    Reads,
    /// Write commands only.
    Writes,
}

impl Lens {
    /// All lenses, in report order.
    pub const ALL: [Lens; 3] = [Lens::All, Lens::Reads, Lens::Writes];
}

impl fmt::Display for Lens {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Lens::All => "All",
            Lens::Reads => "Reads",
            Lens::Writes => "Writes",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn environment_classification_matches_paper() {
        assert!(Metric::Latency.is_environment_dependent());
        assert!(Metric::Interarrival.is_environment_dependent());
        assert!(!Metric::IoLength.is_environment_dependent());
        assert!(!Metric::SeekDistance.is_environment_dependent());
        assert!(!Metric::SeekDistanceWindowed.is_environment_dependent());
        assert!(!Metric::OutstandingIos.is_environment_dependent());
        // Faults come from the environment, not the workload.
        assert!(Metric::Errors.is_environment_dependent());
    }

    #[test]
    fn display_and_units() {
        assert_eq!(Metric::IoLength.to_string(), "I/O Length");
        assert_eq!(Metric::IoLength.unit(), "bytes");
        assert_eq!(Metric::Latency.unit(), "microseconds");
        assert_eq!(Metric::SeekDistance.unit(), "sectors");
        assert_eq!(Lens::Reads.to_string(), "Reads");
    }

    #[test]
    fn all_lists_are_complete_and_unique() {
        let mut m = Metric::ALL.to_vec();
        m.dedup();
        assert_eq!(m.len(), 7);
        let mut l = Lens::ALL.to_vec();
        l.dedup();
        assert_eq!(l.len(), 3);
    }
}
