//! Workload fingerprinting and automatic categorization.
//!
//! The paper's conclusion (§7) names the follow-on work: "We plan to
//! investigate automatic categorization of workloads and generation of
//! recommendations for virtual disk placement and storage subsystem
//! optimization." This module implements that layer on top of the online
//! histograms.
//!
//! A [`WorkloadFingerprint`] is a compact feature vector computed from a
//! collector's **environment-independent** histograms only (§3.7: I/O
//! size, spatial locality, outstanding I/Os and read/write ratio are
//! portable across storage back-ends; latency and interarrival are not),
//! so the same workload fingerprints identically on a busy array and an
//! idle one. Fingerprints support rule-based classification
//! ([`WorkloadClass`]), nearest-neighbour matching against a labelled
//! [`FingerprintLibrary`], and placement advice ([`recommendations`]).

use crate::collector::IoStatsCollector;
use crate::metrics::{Lens, Metric};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Compact, environment-independent description of a disk workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadFingerprint {
    /// Commands observed.
    pub commands: u64,
    /// Fraction of commands that are reads, 0–1.
    pub read_fraction: f64,
    /// Mean I/O size in bytes.
    pub mean_io_bytes: f64,
    /// Upper edge of the most populated length bin, bytes.
    pub dominant_io_bytes: i64,
    /// Fraction of commands in the dominant length bin (1.0 = single-sized).
    pub size_concentration: f64,
    /// Fraction of windowed (N=16) seek distances in (0, 2] — sequential
    /// runs, including interleaved streams.
    pub sequentiality: f64,
    /// Same, for writes only (plain per-direction seek distance).
    pub write_sequentiality: f64,
    /// Same, for reads only.
    pub read_sequentiality: f64,
    /// Fraction of plain seek distances beyond ±50 000 sectors — long
    /// seeks, the randomness signature.
    pub randomness: f64,
    /// Mean outstanding I/Os at arrival — workload parallelism (§3.3).
    pub mean_outstanding: f64,
    /// Fraction of arrivals that found ≥ 16 other I/Os outstanding.
    pub deep_queue_fraction: f64,
}

impl WorkloadFingerprint {
    /// Extracts a fingerprint from a collector.
    ///
    /// Returns `None` if fewer than `min_commands` commands were observed
    /// (fingerprints of tiny samples are noise).
    pub fn from_collector(
        collector: &IoStatsCollector,
        min_commands: u64,
    ) -> Option<WorkloadFingerprint> {
        let len = collector.histogram(Metric::IoLength, Lens::All);
        if len.total() < min_commands.max(1) {
            return None;
        }
        let windowed = collector.histogram(Metric::SeekDistanceWindowed, Lens::All);
        let seek = collector.histogram(Metric::SeekDistance, Lens::All);
        let seek_w = collector.histogram(Metric::SeekDistance, Lens::Writes);
        let seek_r = collector.histogram(Metric::SeekDistance, Lens::Reads);
        let oio = collector.histogram(Metric::OutstandingIos, Lens::All);
        let mode = len.mode_bin().expect("non-empty");
        Some(WorkloadFingerprint {
            commands: len.total(),
            read_fraction: collector.read_fraction().unwrap_or(0.0),
            mean_io_bytes: len.mean().unwrap_or(0.0),
            dominant_io_bytes: match len.edges().bin_range(mode) {
                (_, Some(hi)) => hi,
                (Some(lo), None) => lo + 1,
                (None, None) => 0,
            },
            size_concentration: len.count(mode) as f64 / len.total() as f64,
            sequentiality: windowed.fraction_in(0, 2),
            write_sequentiality: seek_w.fraction_in(0, 2),
            read_sequentiality: seek_r.fraction_in(0, 2),
            randomness: 1.0 - seek.fraction_in(-50_000, 50_000),
            mean_outstanding: oio.mean().unwrap_or(0.0),
            deep_queue_fraction: 1.0 - oio.fraction_at_most(16),
        })
    }

    /// Similarity to another fingerprint in `[0, 1]` (1 = identical):
    /// 1 − mean absolute difference over the normalized feature vector.
    pub fn similarity(&self, other: &WorkloadFingerprint) -> f64 {
        let a = self.feature_vector();
        let b = other.feature_vector();
        let dist: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64;
        (1.0 - dist).clamp(0.0, 1.0)
    }

    /// The normalized feature vector (each component in `[0, 1]`).
    pub fn feature_vector(&self) -> [f64; 8] {
        // log2 size scaled into [0,1] over the 512 B .. 1 MiB range.
        let size_feat = ((self.mean_io_bytes.max(512.0) / 512.0).log2() / 11.0).clamp(0.0, 1.0);
        [
            self.read_fraction,
            size_feat,
            self.size_concentration,
            self.sequentiality,
            self.write_sequentiality,
            self.randomness,
            (self.mean_outstanding / 64.0).clamp(0.0, 1.0),
            self.deep_queue_fraction,
        ]
    }

    /// Rule-based classification.
    pub fn classify(&self) -> WorkloadClass {
        let large = self.mean_io_bytes >= 48.0 * 1024.0;
        let small = self.mean_io_bytes <= 16.0 * 1024.0;
        if self.sequentiality >= 0.7 && large {
            WorkloadClass::StreamingLarge
        } else if self.sequentiality >= 0.7 && self.read_fraction <= 0.2 {
            WorkloadClass::LogAppend
        } else if self.sequentiality >= 0.7 {
            WorkloadClass::SequentialSmall
        } else if self.randomness >= 0.5 && small && self.mean_outstanding >= 4.0 {
            WorkloadClass::OltpDatabase
        } else if self.randomness >= 0.5 && small {
            WorkloadClass::RandomSmall
        } else {
            WorkloadClass::Mixed
        }
    }
}

impl fmt::Display for WorkloadFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fingerprint: {} cmds, {:.0}% reads, ~{:.0}B I/Os (peak {} @ {:.0}%), \
             seq {:.0}% (W {:.0}% / R {:.0}%), random {:.0}%, OIO {:.1}",
            self.commands,
            self.read_fraction * 100.0,
            self.mean_io_bytes,
            self.dominant_io_bytes,
            self.size_concentration * 100.0,
            self.sequentiality * 100.0,
            self.write_sequentiality * 100.0,
            self.read_sequentiality * 100.0,
            self.randomness * 100.0,
            self.mean_outstanding,
        )
    }
}

/// Coarse workload categories for recommendation purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Random small I/O at meaningful concurrency: database/OLTP-style.
    OltpDatabase,
    /// Random small I/O at low concurrency: metadata/mail-style.
    RandomSmall,
    /// Sequential large transfers: backup, media, file copy.
    StreamingLarge,
    /// Sequential small writes: log/journal appenders.
    LogAppend,
    /// Sequential small-block access: scanners, single-stream readers.
    SequentialSmall,
    /// Nothing dominates.
    Mixed,
}

impl fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WorkloadClass::OltpDatabase => "OLTP/database (random small, concurrent)",
            WorkloadClass::RandomSmall => "random small I/O (low concurrency)",
            WorkloadClass::StreamingLarge => "streaming (sequential large)",
            WorkloadClass::LogAppend => "log append (sequential small writes)",
            WorkloadClass::SequentialSmall => "sequential small-block stream",
            WorkloadClass::Mixed => "mixed",
        };
        f.write_str(s)
    }
}

/// Human-readable storage-placement recommendations derived from a
/// fingerprint — the §7 "generation of recommendations for virtual disk
/// placement and storage subsystem optimization", grounded in the
/// analyses the paper motivates (RAID stripe sizing \[1\], separating
/// sequential streams §3.1, write-cache checks §3.4).
pub fn recommendations(fp: &WorkloadFingerprint) -> Vec<String> {
    let mut out = Vec::new();
    match fp.classify() {
        WorkloadClass::OltpDatabase => {
            out.push(format!(
                "OLTP-like: prefer many spindles; choose a RAID stripe unit >= the dominant \
                 I/O size ({} B) so single requests stay on one disk",
                fp.dominant_io_bytes
            ));
            if fp.read_fraction < 0.6 {
                out.push(
                    "write-heavy random I/O: RAID-5 read-modify-write will hurt; prefer \
                     RAID-10 or ensure a mirrored write-back cache"
                        .to_owned(),
                );
            }
        }
        WorkloadClass::StreamingLarge => {
            out.push(
                "streaming: enable/size read-ahead; wide striping converts the stream into \
                 parallel spindle transfers"
                    .to_owned(),
            );
            out.push(
                "avoid co-locating with random workloads on the same disk group — the \
                 sequential stream degrades catastrophically under interference (Figure 6)"
                    .to_owned(),
            );
        }
        WorkloadClass::LogAppend => {
            out.push(
                "log append: place on a dedicated small disk group; sequential writes keep \
                 the head stationary only if nothing else seeks"
                    .to_owned(),
            );
        }
        WorkloadClass::RandomSmall => {
            out.push(
                "random small I/O at low concurrency: latency-bound; cache capacity matters \
                 more than spindle count"
                    .to_owned(),
            );
        }
        WorkloadClass::SequentialSmall => {
            out.push(
                "small sequential stream: coalescing at the guest or filesystem layer \
                 (larger request sizes) would cut per-command overhead (compare Figure 5's \
                 XP-vs-Vista copy engines)"
                    .to_owned(),
            );
        }
        WorkloadClass::Mixed => {
            out.push(
                "mixed pattern: consider splitting the workload across multiple virtual \
                 disks so each part can be characterized and placed separately (§3.6)"
                    .to_owned(),
            );
        }
    }
    // Multiple interleaved sequential streams: windowed sequentiality far
    // above plain per-direction sequentiality (§3.1's diagnostic).
    let plain = fp.write_sequentiality.max(fp.read_sequentiality);
    if fp.sequentiality > 0.5 && fp.sequentiality > plain + 0.3 {
        out.push(
            "multiple interleaved sequential streams detected (windowed >> plain seek \
             sequentiality): separate the streams onto different disk groups or change the \
             data layout (§3.1)"
                .to_owned(),
        );
    }
    if fp.deep_queue_fraction > 0.5 {
        out.push(
            "sustained deep queues: verify the device queue depth and array port queues are \
             sized for the parallelism the guest generates (§3.3)"
                .to_owned(),
        );
    }
    out
}

/// A labelled set of reference fingerprints for nearest-neighbour
/// categorization.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct FingerprintLibrary {
    entries: Vec<(String, WorkloadFingerprint)>,
}

impl FingerprintLibrary {
    /// Creates an empty library.
    pub fn new() -> Self {
        FingerprintLibrary::default()
    }

    /// Adds a labelled fingerprint.
    pub fn insert(&mut self, label: impl Into<String>, fp: WorkloadFingerprint) {
        self.entries.push((label.into(), fp));
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The best-matching label and its similarity, if the library is
    /// non-empty.
    pub fn nearest(&self, fp: &WorkloadFingerprint) -> Option<(&str, f64)> {
        self.entries
            .iter()
            .map(|(label, reference)| (label.as_str(), reference.similarity(fp)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("similarity is finite"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::{SimDuration, SimTime};
    use vscsi::{IoCompletion, IoDirection, IoRequest, Lba, RequestId, TargetId};

    /// Builds a collector fed with a synthetic pattern.
    fn feed(
        n: u64,
        sectors: u32,
        read_frac: f64,
        sequential: bool,
        outstanding: u32,
    ) -> IoStatsCollector {
        let mut c = IoStatsCollector::default();
        let mut inflight: Vec<IoRequest> = Vec::new();
        for i in 0..n {
            let dir = if (i as f64 / n as f64) < read_frac {
                IoDirection::Read
            } else {
                IoDirection::Write
            };
            let lba = if sequential {
                i * u64::from(sectors)
            } else {
                (i.wrapping_mul(2_654_435_761)) % 500_000_000
            };
            let req = IoRequest::new(
                RequestId(i),
                TargetId::default(),
                dir,
                Lba::new(lba),
                sectors,
                SimTime::from_micros(i * 100),
            );
            c.on_issue(&req);
            inflight.push(req);
            if inflight.len() > outstanding as usize {
                let done = inflight.remove(0);
                c.on_complete(&IoCompletion::new(done, SimTime::from_micros(i * 100 + 50)));
            }
        }
        let end = SimTime::from_micros(n * 100) + SimDuration::from_millis(10);
        for done in inflight {
            c.on_complete(&IoCompletion::new(done, end));
        }
        c
    }

    #[test]
    fn oltp_pattern_classifies_as_oltp() {
        let c = feed(2_000, 16, 0.7, false, 16); // 8K random, OIO 16
        let fp = WorkloadFingerprint::from_collector(&c, 100).unwrap();
        assert_eq!(fp.classify(), WorkloadClass::OltpDatabase);
        assert!(fp.randomness > 0.8);
        assert!((fp.read_fraction - 0.7).abs() < 0.05);
        assert!(fp.mean_outstanding > 8.0);
    }

    #[test]
    fn streaming_pattern_classifies_as_streaming() {
        let c = feed(2_000, 256, 1.0, true, 4); // 128K sequential reads
        let fp = WorkloadFingerprint::from_collector(&c, 100).unwrap();
        assert_eq!(fp.classify(), WorkloadClass::StreamingLarge);
        assert!(fp.sequentiality > 0.9, "seq = {}", fp.sequentiality);
    }

    #[test]
    fn log_append_classifies() {
        let c = feed(2_000, 8, 0.0, true, 1); // 4K sequential writes
        let fp = WorkloadFingerprint::from_collector(&c, 100).unwrap();
        assert_eq!(fp.classify(), WorkloadClass::LogAppend);
    }

    #[test]
    fn random_small_low_concurrency() {
        let c = feed(2_000, 8, 0.5, false, 1);
        let fp = WorkloadFingerprint::from_collector(&c, 100).unwrap();
        assert_eq!(fp.classify(), WorkloadClass::RandomSmall);
    }

    #[test]
    fn too_few_commands_yields_none() {
        let c = feed(10, 8, 1.0, true, 1);
        assert!(WorkloadFingerprint::from_collector(&c, 100).is_none());
        assert!(WorkloadFingerprint::from_collector(&c, 5).is_some());
    }

    #[test]
    fn similarity_orders_correctly() {
        let oltp_a =
            WorkloadFingerprint::from_collector(&feed(2_000, 16, 0.7, false, 16), 1).unwrap();
        let oltp_b =
            WorkloadFingerprint::from_collector(&feed(2_000, 16, 0.65, false, 12), 1).unwrap();
        let stream =
            WorkloadFingerprint::from_collector(&feed(2_000, 256, 1.0, true, 4), 1).unwrap();
        assert!(oltp_a.similarity(&oltp_b) > oltp_a.similarity(&stream));
        assert!(oltp_a.similarity(&oltp_a) > 0.999);
    }

    #[test]
    fn library_nearest_neighbour() {
        let mut lib = FingerprintLibrary::new();
        assert!(lib.is_empty());
        assert!(lib
            .nearest(&WorkloadFingerprint::from_collector(&feed(100, 8, 1.0, true, 1), 1).unwrap())
            .is_none());
        lib.insert(
            "oltp",
            WorkloadFingerprint::from_collector(&feed(2_000, 16, 0.7, false, 16), 1).unwrap(),
        );
        lib.insert(
            "backup",
            WorkloadFingerprint::from_collector(&feed(2_000, 256, 1.0, true, 4), 1).unwrap(),
        );
        assert_eq!(lib.len(), 2);
        let probe =
            WorkloadFingerprint::from_collector(&feed(1_500, 16, 0.75, false, 20), 1).unwrap();
        let (label, score) = lib.nearest(&probe).unwrap();
        assert_eq!(label, "oltp");
        assert!(score > 0.8, "score = {score}");
    }

    #[test]
    fn recommendations_mention_key_risks() {
        let stream =
            WorkloadFingerprint::from_collector(&feed(2_000, 256, 1.0, true, 4), 1).unwrap();
        let recs = recommendations(&stream);
        assert!(recs.iter().any(|r| r.contains("interference")));

        let mut oltp =
            WorkloadFingerprint::from_collector(&feed(2_000, 16, 0.3, false, 16), 1).unwrap();
        let recs = recommendations(&oltp);
        assert!(recs.iter().any(|r| r.contains("stripe")));
        assert!(recs
            .iter()
            .any(|r| r.contains("RAID-10") || r.contains("write-back")));
        // Deep queues trigger the queue-depth advice.
        oltp.deep_queue_fraction = 0.9;
        assert!(recommendations(&oltp)
            .iter()
            .any(|r| r.contains("queue depth")));
    }

    #[test]
    fn interleaved_streams_advice() {
        // Two interleaved sequential streams: windowed seq high, plain low.
        let mut c = IoStatsCollector::default();
        let mut id = 0u64;
        for i in 0..1_000u64 {
            for base in [0u64, 400_000_000] {
                let req = IoRequest::new(
                    RequestId(id),
                    TargetId::default(),
                    IoDirection::Read,
                    Lba::new(base + i * 64),
                    64,
                    SimTime::from_micros(id * 50),
                );
                c.on_issue(&req);
                c.on_complete(&IoCompletion::new(req, SimTime::from_micros(id * 50 + 20)));
                id += 1;
            }
        }
        let fp = WorkloadFingerprint::from_collector(&c, 1).unwrap();
        assert!(fp.sequentiality > 0.9);
        let recs = recommendations(&fp);
        assert!(
            recs.iter()
                .any(|r| r.contains("interleaved sequential streams")),
            "recs = {recs:?}"
        );
    }

    #[test]
    fn display_is_informative() {
        let fp = WorkloadFingerprint::from_collector(&feed(500, 16, 0.5, false, 8), 1).unwrap();
        let s = fp.to_string();
        assert!(s.contains("cmds"));
        assert!(s.contains("OIO"));
        assert_eq!(WorkloadClass::Mixed.to_string(), "mixed");
    }
}
