//! Bounded lock-free single-producer/single-consumer rings.
//!
//! The thread-per-core ingest pipeline ([`crate::pipeline`]) moves
//! fixed-size [`crate::VscsiEvent`] records from producer threads
//! (simulated vCPUs, bench drivers) to aggregator workers without ever
//! taking a lock on the hot path. Each lane of the pipeline is one of
//! these rings: exactly one producer handle and one consumer handle, a
//! power-of-two slot array, and the classic Lamport protocol —
//!
//! * the producer owns `tail` (it alone stores it, with `Release`);
//! * the consumer owns `head` (it alone stores it, with `Release`);
//! * each side keeps a *cached* copy of the other's index and re-reads
//!   the atomic (`Acquire`) only when the cache says the ring looks full
//!   (producer) or empty (consumer), so steady-state transfers touch the
//!   shared cache lines once per batch, not once per event;
//! * `head`/`tail` live on their own cache lines (`#[repr(align(64))]`)
//!   so the producer's publishes never invalidate the consumer's index
//!   line and vice versa (no false sharing);
//! * batch publish: [`Producer::push_batch`] writes N slots and makes
//!   them all visible with a *single* `Release` store, which is what
//!   lets the aggregator drain in batches of 8–16 and amortize the
//!   synchronization to a fraction of an atomic per event.
//!
//! Indices are monotonically increasing `u64` sequence numbers (slot =
//! `seq & mask`), so full/empty is `tail - head == capacity` / `tail ==
//! head` with no reserved slot and no ABA concern.
//!
//! The element type must be `Copy`: slots are `MaybeUninit` and are
//! never dropped, which keeps both sides trivially panic-safe (a slot
//! that was written but not yet published is just bytes).
//!
//! Closure is cooperative and one-directional per side: dropping the
//! [`Producer`] marks the ring producer-closed (the consumer drains the
//! backlog and then sees [`Consumer::is_closed`]); dropping the
//! [`Consumer`] marks it consumer-closed so a producer can stop offering
//! into the void. The `spsc_interleave` integration test drives the
//! protocol through a seeded model checker (random interleavings against
//! a `VecDeque` oracle) plus a two-thread FIFO stress run.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// One cache line. Aligning the head and tail atomics to this keeps the
/// producer's and consumer's index lines from false-sharing.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Ring<T> {
    /// Next sequence number the consumer will pop. Written only by the
    /// consumer (`Release`), read by the producer (`Acquire`).
    head: CachePadded<AtomicU64>,
    /// Next sequence number the producer will push. Written only by the
    /// producer (`Release`), read by the consumer (`Acquire`).
    tail: CachePadded<AtomicU64>,
    producer_closed: AtomicBool,
    consumer_closed: AtomicBool,
    mask: u64,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// The protocol guarantees a slot is accessed by at most one side at a
// time: the producer touches slots in `[tail, head + capacity)`, the
// consumer in `[head, tail)`, and the ranges are disjoint by
// construction.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Ring<T> {
    #[inline]
    fn capacity(&self) -> u64 {
        self.mask + 1
    }

    #[inline]
    fn slot(&self, seq: u64) -> *mut MaybeUninit<T> {
        self.slots[(seq & self.mask) as usize].get()
    }
}

/// Creates a ring with at least `capacity` slots (rounded up to a power
/// of two, minimum 2), returning the two endpoint handles.
///
/// # Panics
///
/// Panics if `capacity` exceeds `2^32` — a pipeline lane never needs
/// that, and the bound keeps `seq - head` arithmetic comfortably away
/// from wrap.
pub fn ring<T: Copy>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(
        capacity <= (1 << 32),
        "spsc ring capacity {capacity} is unreasonably large"
    );
    let cap = capacity.max(2).next_power_of_two();
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let ring = Arc::new(Ring {
        head: CachePadded(AtomicU64::new(0)),
        tail: CachePadded(AtomicU64::new(0)),
        producer_closed: AtomicBool::new(false),
        consumer_closed: AtomicBool::new(false),
        mask: cap as u64 - 1,
        slots,
    });
    (
        Producer {
            ring: Arc::clone(&ring),
            tail: 0,
            cached_head: 0,
        },
        Consumer {
            ring,
            head: 0,
            cached_tail: 0,
        },
    )
}

/// The write end of a ring. `Send` but not `Sync`: exactly one thread
/// may hold it at a time.
#[derive(Debug)]
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
    /// Local copy of the published tail (only this side advances it).
    tail: u64,
    /// Last head value observed; refreshed only when the ring looks full.
    cached_head: u64,
}

impl<T> std::fmt::Debug for Ring<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ring")
            .field("capacity", &self.capacity())
            .finish_non_exhaustive()
    }
}

impl<T: Copy> Producer<T> {
    /// Slot capacity of the ring.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.ring.capacity() as usize
    }

    /// Events currently enqueued (from this side's view; exact for the
    /// producer since only the consumer can shrink it concurrently).
    #[inline]
    pub fn len(&self) -> usize {
        (self.tail - self.ring.head.0.load(Ordering::Acquire)) as usize
    }

    /// Whether the ring is empty from this side's view.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Free slots available. The cached head is refreshed (one `Acquire`
    /// load) only when the cached view cannot satisfy `want` slots, so a
    /// steady-state batch push touches the consumer's index line at most
    /// once per batch.
    #[inline]
    fn free(&mut self, want: u64) -> u64 {
        let mut free = self.ring.capacity() - (self.tail - self.cached_head);
        if free < want {
            self.cached_head = self.ring.head.0.load(Ordering::Acquire);
            free = self.ring.capacity() - (self.tail - self.cached_head);
        }
        free
    }

    /// Whether the consumer endpoint has been dropped; pushes after that
    /// would never be drained.
    #[inline]
    pub fn consumer_gone(&self) -> bool {
        self.ring.consumer_closed.load(Ordering::Acquire)
    }

    /// Attempts to enqueue one value. Returns `false` if the ring is
    /// full (the caller decides whether that means shed, spin, or park).
    #[inline]
    pub fn try_push(&mut self, value: T) -> bool {
        if self.free(1) == 0 {
            return false;
        }
        unsafe { (*self.ring.slot(self.tail)).write(value) };
        self.tail += 1;
        self.ring.tail.0.store(self.tail, Ordering::Release);
        true
    }

    /// Enqueues as many leading elements of `values` as fit and makes
    /// them visible with a **single** release store (batch publish).
    /// Returns how many were enqueued.
    pub fn push_batch(&mut self, values: &[T]) -> usize {
        let n = (self.free(values.len() as u64) as usize).min(values.len());
        if n == 0 {
            return 0;
        }
        for (i, v) in values[..n].iter().enumerate() {
            unsafe { (*self.ring.slot(self.tail + i as u64)).write(*v) };
        }
        self.tail += n as u64;
        self.ring.tail.0.store(self.tail, Ordering::Release);
        n
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.ring.producer_closed.store(true, Ordering::Release);
    }
}

/// The read end of a ring. `Send` but not `Sync`.
#[derive(Debug)]
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
    /// Local copy of the published head (only this side advances it).
    head: u64,
    /// Last tail value observed; refreshed only when the ring looks
    /// empty.
    cached_tail: u64,
}

impl<T: Copy> Consumer<T> {
    /// Events currently enqueued. Refreshes the cached tail from the
    /// shared index: one `Acquire` load, paid once per batch drain (or
    /// occupancy probe), not once per event.
    #[inline]
    pub fn backlog(&mut self) -> usize {
        self.cached_tail = self.ring.tail.0.load(Ordering::Acquire);
        (self.cached_tail - self.head) as usize
    }

    /// Whether the producer endpoint has been dropped. A closed ring can
    /// still hold a backlog: drain until [`Self::pop_chunk`] returns 0,
    /// *then* check this.
    #[inline]
    pub fn is_closed(&self) -> bool {
        self.ring.producer_closed.load(Ordering::Acquire)
    }

    /// Pops one value, if any. Re-reads the shared tail only when the
    /// cached copy says the ring is empty.
    #[inline]
    pub fn try_pop(&mut self) -> Option<T> {
        if self.cached_tail == self.head && self.backlog() == 0 {
            return None;
        }
        let v = unsafe { (*self.ring.slot(self.head)).assume_init_read() };
        self.head += 1;
        self.ring.head.0.store(self.head, Ordering::Release);
        Some(v)
    }

    /// Drains up to `max` values into `out` (appending), consuming them
    /// with a **single** release store. Returns how many were moved.
    pub fn pop_chunk(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let n = self.backlog().min(max);
        if n == 0 {
            return 0;
        }
        out.reserve(n);
        for i in 0..n as u64 {
            out.push(unsafe { (*self.ring.slot(self.head + i)).assume_init_read() });
        }
        self.head += n as u64;
        self.ring.head.0.store(self.head, Ordering::Release);
        n
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.ring.consumer_closed.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (p, _c) = ring::<u64>(5);
        assert_eq!(p.capacity(), 8);
        let (p, _c) = ring::<u64>(0);
        assert_eq!(p.capacity(), 2);
        let (p, _c) = ring::<u64>(16);
        assert_eq!(p.capacity(), 16);
    }

    #[test]
    fn fifo_single_thread() {
        let (mut p, mut c) = ring::<u64>(8);
        for i in 0..8 {
            assert!(p.try_push(i));
        }
        assert!(!p.try_push(99), "ring is full");
        for i in 0..8 {
            assert_eq!(c.try_pop(), Some(i));
        }
        assert_eq!(c.try_pop(), None);
    }

    #[test]
    fn batch_publish_and_chunk_drain() {
        let (mut p, mut c) = ring::<u32>(8);
        let vals: Vec<u32> = (0..12).collect();
        // Only 8 fit.
        assert_eq!(p.push_batch(&vals), 8);
        let mut out = Vec::new();
        assert_eq!(c.pop_chunk(&mut out, 5), 5);
        assert_eq!(out, [0, 1, 2, 3, 4]);
        // Space freed: the remainder fits now.
        assert_eq!(p.push_batch(&vals[8..]), 4);
        assert_eq!(c.pop_chunk(&mut out, 64), 7);
        assert_eq!(out, (0..12).collect::<Vec<u32>>());
        assert_eq!(c.pop_chunk(&mut out, 64), 0);
    }

    #[test]
    fn close_is_visible_after_drain() {
        let (mut p, mut c) = ring::<u8>(4);
        assert!(p.try_push(7));
        assert!(!c.is_closed());
        drop(p);
        assert!(c.is_closed());
        // Backlog survives the close.
        assert_eq!(c.try_pop(), Some(7));
        assert_eq!(c.try_pop(), None);
    }

    #[test]
    fn consumer_drop_flags_producer() {
        let (mut p, c) = ring::<u8>(4);
        assert!(!p.consumer_gone());
        drop(c);
        assert!(p.consumer_gone());
        // Pushing is still memory-safe, just pointless.
        assert!(p.try_push(1));
    }

    #[test]
    fn wraps_many_times() {
        let (mut p, mut c) = ring::<u64>(4);
        let mut next_out = 0u64;
        for i in 0..10_000u64 {
            assert!(p.try_push(i));
            if i % 3 == 0 {
                let mut out = Vec::new();
                c.pop_chunk(&mut out, 4);
                for v in out {
                    assert_eq!(v, next_out);
                    next_out += 1;
                }
            }
        }
    }
}
