//! Fixed-capacity open-addressing map for in-flight command state.
//!
//! The collector's seek↔latency correlation (and the ESX device model's
//! in-flight command set) key pending state by a `u64` request id. A
//! `HashMap` works, but its SipHash hashing and amortized growth put heap
//! allocations and hash mixing on the per-command hot path. The guest queue
//! depth is architecturally bounded — the paper's outstanding-I/O layout
//! tops out at 64 — so an [`InflightTable`] preallocates a 128-slot probe
//! array for the first [`InflightTable::FAST_CAPACITY`] entries and only
//! touches the heap (a `BTreeMap` spill) beyond that. In the steady state
//! every insert/remove/lookup is a Fibonacci hash plus a short linear probe
//! with zero allocation.
//!
//! Semantics match `HashMap<u64, V>`: `insert` replaces an existing value
//! for the same key, `remove` of an absent key is `None`, and iteration
//! order is deliberately not offered (the previous users never iterated).
//! Deletion uses backward-shift compaction instead of tombstones so probe
//! chains never degrade under the issue/complete churn of a long run.

use std::collections::BTreeMap;

/// Number of slots in the fixed probe array (power of two).
const SLOTS: usize = 128;

/// A bounded open-addressing `u64 → V` map with graceful overflow.
#[derive(Debug, Clone)]
pub struct InflightTable<V> {
    /// Probe array; `None` marks an empty slot.
    slots: Box<[Option<(u64, V)>]>,
    /// Entries resident in `slots`.
    fast_len: usize,
    /// Overflow storage, used only while more than
    /// [`InflightTable::FAST_CAPACITY`] entries are in flight.
    spill: BTreeMap<u64, V>,
}

/// Fibonacci multiplicative hash → slot index.
#[inline]
fn slot_of(key: u64) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 57) as usize & (SLOTS - 1)
}

impl<V> InflightTable<V> {
    /// Entries kept in the fixed probe array before spilling; matches the
    /// top regular bin of the paper's outstanding-I/O layout.
    pub const FAST_CAPACITY: usize = 64;

    /// Creates an empty table with the probe array preallocated.
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(SLOTS);
        slots.resize_with(SLOTS, || None);
        InflightTable {
            slots: slots.into_boxed_slice(),
            fast_len: 0,
            spill: BTreeMap::new(),
        }
    }

    /// Number of entries (fast + spilled).
    #[inline]
    pub fn len(&self) -> usize {
        self.fast_len + self.spill.len()
    }

    /// True when no entries are in flight.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Position of `key` in the probe array, if resident there.
    fn find_slot(&self, key: u64) -> Option<usize> {
        let mut j = slot_of(key);
        loop {
            match &self.slots[j] {
                None => return None,
                Some((k, _)) if *k == key => return Some(j),
                Some(_) => j = (j + 1) & (SLOTS - 1),
            }
        }
    }

    /// Inserts or replaces; returns the previous value for `key` if any.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        // Replace in place wherever the key already lives.
        if let Some(j) = self.find_slot(key) {
            let (_, old) = self.slots[j].replace((key, value)).expect("occupied");
            return Some(old);
        }
        if let Some(old) = self.spill.remove(&key) {
            self.spill.insert(key, value);
            return Some(old);
        }
        // New key: fast array first, spill only at capacity.
        if self.fast_len < Self::FAST_CAPACITY {
            let mut j = slot_of(key);
            while self.slots[j].is_some() {
                j = (j + 1) & (SLOTS - 1);
            }
            self.slots[j] = Some((key, value));
            self.fast_len += 1;
        } else {
            self.spill.insert(key, value);
        }
        None
    }

    /// Borrows the value for `key`.
    pub fn get(&self, key: u64) -> Option<&V> {
        if let Some(j) = self.find_slot(key) {
            return self.slots[j].as_ref().map(|(_, v)| v);
        }
        self.spill.get(&key)
    }

    /// Mutably borrows the value for `key`.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        if let Some(j) = self.find_slot(key) {
            return self.slots[j].as_mut().map(|(_, v)| v);
        }
        self.spill.get_mut(&key)
    }

    /// Removes and returns the value for `key`, compacting the probe chain
    /// by backward shifting (no tombstones).
    pub fn remove(&mut self, key: u64) -> Option<V> {
        if let Some(j) = self.find_slot(key) {
            let (_, value) = self.slots[j].take().expect("occupied");
            self.fast_len -= 1;
            self.backward_shift(j);
            self.unspill_one();
            return Some(value);
        }
        self.spill.remove(&key)
    }

    /// Refills the freed fast slot from the spill. Without this, an
    /// overflow episode left entries stranded on the heap forever: removes
    /// that hit the fast array shrank `fast_len` below capacity while the
    /// spilled keys — and their `BTreeMap` nodes — stayed behind, so the
    /// table's load factor and heap footprint never recovered even after
    /// the queue drained back under [`Self::FAST_CAPACITY`].
    #[inline]
    fn unspill_one(&mut self) {
        if self.spill.is_empty() || self.fast_len >= Self::FAST_CAPACITY {
            return;
        }
        let (key, value) = self.spill.pop_first().expect("non-empty spill");
        let mut j = slot_of(key);
        while self.slots[j].is_some() {
            j = (j + 1) & (SLOTS - 1);
        }
        self.slots[j] = Some((key, value));
        self.fast_len += 1;
    }

    /// Entries currently resident in the heap spill (0 in the steady
    /// state; nonzero only while more than [`Self::FAST_CAPACITY`] entries
    /// are simultaneously in flight).
    pub fn spilled_len(&self) -> usize {
        self.spill.len()
    }

    /// Backward-shift deletion: walk the chain after the hole and move back
    /// any entry whose ideal slot does not lie strictly between the hole and
    /// its current position (cyclically), preserving probe invariants.
    fn backward_shift(&mut self, hole: usize) {
        let mask = SLOTS - 1;
        let mut hole = hole;
        let mut j = (hole + 1) & mask;
        while let Some((k, _)) = &self.slots[j] {
            let ideal = slot_of(*k);
            // Distance from ideal to j vs from (hole+... ) — the entry may
            // move into the hole iff the hole lies within [ideal, j].
            if ((j.wrapping_sub(ideal)) & mask) >= ((j.wrapping_sub(hole)) & mask) {
                self.slots[hole] = self.slots[j].take();
                hole = j;
            }
            j = (j + 1) & mask;
        }
    }

    /// Drops every entry. Keeps the probe array allocation.
    pub fn clear(&mut self) {
        for s in self.slots.iter_mut() {
            *s = None;
        }
        self.fast_len = 0;
        self.spill.clear();
    }

    /// Heap bytes held beyond `size_of::<Self>()` (probe array + spill
    /// nodes, approximately), for memory-footprint accounting.
    pub fn heap_footprint_bytes(&self) -> usize {
        SLOTS * std::mem::size_of::<Option<(u64, V)>>()
            + self.spill.len() * std::mem::size_of::<(u64, V)>()
    }

    /// Every `(key, value)` pair, sorted by key — the canonical export for
    /// serializers (the checkpoint plane). The table is a map, so sorted
    /// entries re-inserted in order rebuild an equivalent table regardless
    /// of the probe-chain shapes the original went through.
    pub fn entries(&self) -> Vec<(u64, V)>
    where
        V: Clone,
    {
        let mut out: Vec<(u64, V)> = self
            .slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (*k, v.clone())))
            .chain(self.spill.iter().map(|(k, v)| (*k, v.clone())))
            .collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    }
}

impl<V> Default for InflightTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_insert_get_remove() {
        let mut t = InflightTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(7, "a"), None);
        assert_eq!(t.insert(7, "b"), Some("a"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(7), Some(&"b"));
        *t.get_mut(7).unwrap() = "c";
        assert_eq!(t.remove(7), Some("c"));
        assert_eq!(t.remove(7), None);
        assert!(t.is_empty());
    }

    #[test]
    fn colliding_keys_probe_and_compact() {
        // Keys crafted to collide: Fibonacci hash keeps only the top 7 bits
        // after multiplication, so find keys that share a slot.
        let mut t = InflightTable::new();
        let base = 1u64;
        let target = super::slot_of(base);
        let mut colliders = vec![base];
        let mut k = base + 1;
        while colliders.len() < 5 {
            if super::slot_of(k) == target {
                colliders.push(k);
            }
            k += 1;
        }
        for (i, &c) in colliders.iter().enumerate() {
            assert_eq!(t.insert(c, i), None);
        }
        // Remove from the middle of the chain; the rest must stay findable.
        assert_eq!(t.remove(colliders[2]), Some(2));
        for (i, &c) in colliders.iter().enumerate() {
            if i == 2 {
                assert_eq!(t.get(c), None);
            } else {
                assert_eq!(t.get(c), Some(&i));
            }
        }
    }

    #[test]
    fn spill_beyond_fast_capacity() {
        let mut t = InflightTable::new();
        let n = InflightTable::<u64>::FAST_CAPACITY as u64 + 40;
        for k in 0..n {
            assert_eq!(t.insert(k, k * 10), None);
        }
        assert_eq!(t.len(), n as usize);
        for k in 0..n {
            assert_eq!(t.get(k), Some(&(k * 10)));
        }
        // Remove everything in a scrambled order.
        for k in (0..n).rev() {
            assert_eq!(t.remove(k), Some(k * 10));
        }
        assert!(t.is_empty());
    }

    #[test]
    fn spill_drains_back_into_fast_array() {
        // Regression: removes that hit the fast array used to leave
        // spilled keys stranded on the heap, so the load factor never
        // recovered after an overflow episode. The spill must drain as
        // the in-flight count falls back under FAST_CAPACITY.
        let cap = InflightTable::<u64>::FAST_CAPACITY as u64;
        let mut t = InflightTable::new();
        for k in 0..cap + 30 {
            t.insert(k, k);
        }
        assert_eq!(t.spilled_len(), 30);
        let spilled_footprint = t.heap_footprint_bytes();
        // Remove 30 of the *original fast* keys (0..cap inserted first, so
        // they are the resident ones); each remove must pull one spilled
        // entry back in.
        for k in 0..30 {
            assert_eq!(t.remove(k), Some(k));
        }
        assert_eq!(t.len(), cap as usize);
        assert_eq!(t.spilled_len(), 0, "spill must drain to empty");
        assert!(t.heap_footprint_bytes() < spilled_footprint);
        // Every surviving key is still reachable, wherever it now lives.
        for k in 30..cap + 30 {
            assert_eq!(t.get(k), Some(&k), "key {k} lost during unspill");
        }
    }

    #[test]
    fn spill_unspill_churn_matches_hashmap() {
        // Long alternating spill/unspill churn, mirrored against a
        // HashMap oracle with a deterministic mixed op stream.
        use std::collections::HashMap;
        let mut t = InflightTable::new();
        let mut oracle: HashMap<u64, u64> = HashMap::new();
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut live: Vec<u64> = Vec::new();
        for round in 0..20_000u64 {
            let r = step();
            // Bias toward inserts while small, removes while large, so the
            // population repeatedly crosses the spill boundary.
            let grow = oracle.len() < InflightTable::<u64>::FAST_CAPACITY + 40;
            if live.is_empty() || (r % 100 < 55) == grow {
                let key = r % 512;
                assert_eq!(t.insert(key, round), oracle.insert(key, round));
                if !live.contains(&key) {
                    live.push(key);
                }
            } else {
                let key = live.swap_remove((r % live.len() as u64) as usize);
                assert_eq!(t.remove(key), oracle.remove(&key));
            }
            assert_eq!(t.len(), oracle.len());
            // The structural invariant behind the fix: the heap spill is
            // only ever occupied while the fast array is full.
            assert!(
                t.spilled_len() == 0
                    || t.len() - t.spilled_len() == InflightTable::<u64>::FAST_CAPACITY
            );
        }
        // Drain completely; the spill must be long gone before empty.
        for key in live {
            assert_eq!(t.remove(key), oracle.remove(&key));
        }
        assert!(t.is_empty());
        assert_eq!(t.spilled_len(), 0);
    }

    #[test]
    fn clear_resets() {
        let mut t = InflightTable::new();
        for k in 0..100u64 {
            t.insert(k, k);
        }
        t.clear();
        assert!(t.is_empty());
        for k in 0..100u64 {
            assert_eq!(t.get(k), None);
        }
        // Reusable after clear.
        t.insert(5, 50);
        assert_eq!(t.get(5), Some(&50));
    }
}
