//! The host-wide statistics service.
//!
//! On a real ESX host this is the piece controlled by the "command line
//! utility to enable and disable these stats" (§3): a registry of
//! per-(VM, virtual disk) collectors, globally switchable, with the hot
//! path reduced to a single predictable branch while disabled (§5.2).

use crate::collector::{CollectorConfig, IoStatsCollector};
use crate::metrics::{Lens, Metric};
use crate::trace::{TraceCapacity, TraceRecord, VscsiTracer};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use vscsi::{IoCompletion, IoRequest, TargetId};

/// Snapshot of a collector's headline counters, for `esxtop`-style listings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetSummary {
    /// The (VM, disk) pair.
    pub target: TargetId,
    /// Commands issued.
    pub issued: u64,
    /// Commands completed.
    pub completed: u64,
    /// I/Os in flight right now.
    pub outstanding: u32,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Fraction of commands that were reads, if any commands were seen.
    pub read_fraction: Option<f64>,
    /// Mean device latency in microseconds, if any completions were seen.
    pub mean_latency_us: Option<f64>,
}

impl fmt::Display for TargetSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: issued={} completed={} oio={} readMB={:.1} writeMB={:.1}",
            self.target,
            self.issued,
            self.completed,
            self.outstanding,
            self.bytes_read as f64 / 1e6,
            self.bytes_written as f64 / 1e6,
        )?;
        if let Some(rf) = self.read_fraction {
            write!(f, " read%={:.0}", rf * 100.0)?;
        }
        if let Some(lat) = self.mean_latency_us {
            write!(f, " meanLat={lat:.0}us")?;
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct TargetState {
    collector: Option<IoStatsCollector>,
    tracer: Option<VscsiTracer>,
}

#[derive(Debug)]
struct Inner {
    enabled: bool,
    config: CollectorConfig,
    targets: BTreeMap<TargetId, TargetState>,
}

/// Host-wide vSCSI statistics service.
///
/// Thread-safe; the two hook methods are designed so that when the service
/// is disabled, the cost is one mutex acquisition and one branch (on the
/// real system the branch predictor makes the disabled path free — §5.2).
/// Collector state for a target is created lazily on its first command
/// after enablement, mirroring "histogram data structures are dynamically
/// created as needed".
///
/// # Examples
///
/// ```
/// use simkit::SimTime;
/// use vscsi::{IoCompletion, IoDirection, IoRequest, Lba, RequestId, TargetId};
/// use vscsi_stats::{Lens, Metric, StatsService};
///
/// let service = StatsService::new(Default::default());
/// service.enable_all();
///
/// let req = IoRequest::new(
///     RequestId(0), TargetId::default(), IoDirection::Read,
///     Lba::new(0), 8, SimTime::ZERO,
/// );
/// service.handle_issue(&req);
/// service.handle_complete(&IoCompletion::new(req, SimTime::from_micros(450)));
///
/// let summary = &service.summaries()[0];
/// assert_eq!(summary.issued, 1);
/// assert_eq!(summary.mean_latency_us, Some(450.0));
/// ```
#[derive(Debug)]
pub struct StatsService {
    inner: Mutex<Inner>,
}

impl Default for StatsService {
    fn default() -> Self {
        StatsService::new(CollectorConfig::default())
    }
}

impl StatsService {
    /// Creates a service (disabled) that will build collectors with `config`.
    pub fn new(config: CollectorConfig) -> Self {
        StatsService {
            inner: Mutex::new(Inner {
                enabled: false,
                config,
                targets: BTreeMap::new(),
            }),
        }
    }

    /// Turns histogram collection on for all targets.
    pub fn enable_all(&self) {
        self.inner.lock().enabled = true;
    }

    /// Turns histogram collection off; existing histograms are retained and
    /// can still be reported.
    pub fn disable_all(&self) {
        self.inner.lock().enabled = false;
    }

    /// Whether collection is currently on.
    pub fn is_enabled(&self) -> bool {
        self.inner.lock().enabled
    }

    /// Starts command tracing for one target with the given capacity.
    pub fn start_trace(&self, target: TargetId, capacity: TraceCapacity) {
        let mut inner = self.inner.lock();
        inner.targets.entry(target).or_default().tracer = Some(VscsiTracer::new(capacity));
    }

    /// Stops tracing for a target, returning the captured records.
    pub fn stop_trace(&self, target: TargetId) -> Vec<TraceRecord> {
        let mut inner = self.inner.lock();
        inner
            .targets
            .get_mut(&target)
            .and_then(|t| t.tracer.take())
            .map(|tr| tr.records().copied().collect())
            .unwrap_or_default()
    }

    /// Hot-path hook: command issue.
    pub fn handle_issue(&self, req: &IoRequest) {
        let mut inner = self.inner.lock();
        if !inner.enabled && inner.targets.get(&req.target).map_or(true, |t| t.tracer.is_none()) {
            return;
        }
        let enabled = inner.enabled;
        let config = inner.config.clone();
        let state = inner.targets.entry(req.target).or_default();
        if enabled {
            state
                .collector
                .get_or_insert_with(|| IoStatsCollector::new(config))
                .on_issue(req);
        }
        if let Some(tracer) = &mut state.tracer {
            tracer.on_issue(req);
        }
    }

    /// Hot-path hook: command completion.
    pub fn handle_complete(&self, completion: &IoCompletion) {
        let mut inner = self.inner.lock();
        let Some(state) = inner.targets.get_mut(&completion.request.target) else {
            return;
        };
        if let Some(collector) = &mut state.collector {
            collector.on_complete(completion);
        }
        if let Some(tracer) = &mut state.tracer {
            tracer.on_complete(completion);
        }
    }

    /// Resets histograms for every target.
    pub fn reset_all(&self) {
        let mut inner = self.inner.lock();
        for state in inner.targets.values_mut() {
            if let Some(c) = &mut state.collector {
                c.reset();
            }
        }
    }

    /// Targets with any recorded state, in order.
    pub fn targets(&self) -> Vec<TargetId> {
        self.inner.lock().targets.keys().copied().collect()
    }

    /// Clones the collector for a target, if one exists (collectors are
    /// small — a few KiB — so cloning out is the safe reporting interface).
    pub fn collector(&self, target: TargetId) -> Option<IoStatsCollector> {
        self.inner
            .lock()
            .targets
            .get(&target)
            .and_then(|t| t.collector.clone())
    }

    /// Headline counters for every known target.
    pub fn summaries(&self) -> Vec<TargetSummary> {
        let inner = self.inner.lock();
        inner
            .targets
            .iter()
            .filter_map(|(target, state)| {
                let c = state.collector.as_ref()?;
                Some(TargetSummary {
                    target: *target,
                    issued: c.issued_commands(),
                    completed: c.completed_commands(),
                    outstanding: c.outstanding_now(),
                    bytes_read: c.bytes_read(),
                    bytes_written: c.bytes_written(),
                    read_fraction: c.read_fraction(),
                    mean_latency_us: c.histogram(Metric::Latency, Lens::All).mean(),
                })
            })
            .collect()
    }

    /// Executes a `vscsiStats`-style textual command and returns its output.
    ///
    /// Supported commands: `start`, `stop`, `reset`, `status`, `list`.
    ///
    /// # Errors
    ///
    /// Returns an error string for unknown commands.
    pub fn command(&self, cmd: &str) -> Result<String, String> {
        match cmd.trim() {
            "start" => {
                self.enable_all();
                Ok("vscsiStats: started collection".to_owned())
            }
            "stop" => {
                self.disable_all();
                Ok("vscsiStats: stopped collection".to_owned())
            }
            "reset" => {
                self.reset_all();
                Ok("vscsiStats: histograms reset".to_owned())
            }
            "status" => Ok(format!(
                "vscsiStats: collection {}",
                if self.is_enabled() { "ON" } else { "OFF" }
            )),
            "list" => {
                let mut out = String::new();
                for s in self.summaries() {
                    out.push_str(&s.to_string());
                    out.push('\n');
                }
                if out.is_empty() {
                    out.push_str("no targets\n");
                }
                Ok(out)
            }
            other => Err(format!("unknown command {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;
    use vscsi::{IoDirection, Lba, RequestId, VDiskId, VmId};

    fn req(target: TargetId, id: u64, t_us: u64) -> IoRequest {
        IoRequest::new(
            RequestId(id),
            target,
            IoDirection::Read,
            Lba::new(id * 8),
            8,
            SimTime::from_micros(t_us),
        )
    }

    #[test]
    fn disabled_service_records_nothing() {
        let s = StatsService::default();
        s.handle_issue(&req(TargetId::default(), 0, 0));
        assert!(s.summaries().is_empty());
        assert!(s.targets().is_empty());
    }

    #[test]
    fn enable_collect_disable_keeps_data() {
        let s = StatsService::default();
        let t = TargetId::new(VmId(1), VDiskId(0));
        s.enable_all();
        s.handle_issue(&req(t, 0, 0));
        s.disable_all();
        // New commands ignored while off...
        s.handle_issue(&req(t, 1, 10));
        // ...but previous data remains readable.
        let c = s.collector(t).unwrap();
        assert_eq!(c.issued_commands(), 1);
    }

    #[test]
    fn per_target_isolation() {
        let s = StatsService::default();
        s.enable_all();
        let a = TargetId::new(VmId(1), VDiskId(0));
        let b = TargetId::new(VmId(2), VDiskId(0));
        s.handle_issue(&req(a, 0, 0));
        s.handle_issue(&req(b, 1, 5));
        s.handle_issue(&req(b, 2, 9));
        assert_eq!(s.collector(a).unwrap().issued_commands(), 1);
        assert_eq!(s.collector(b).unwrap().issued_commands(), 2);
        assert_eq!(s.targets(), vec![a, b]);
    }

    #[test]
    fn completion_routes_to_collector() {
        let s = StatsService::default();
        s.enable_all();
        let t = TargetId::default();
        let r = req(t, 0, 100);
        s.handle_issue(&r);
        s.handle_complete(&IoCompletion::new(r, SimTime::from_micros(600)));
        let summary = &s.summaries()[0];
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.mean_latency_us, Some(500.0));
        assert_eq!(summary.outstanding, 0);
    }

    #[test]
    fn completion_without_state_is_ignored() {
        let s = StatsService::default();
        let r = req(TargetId::default(), 0, 0);
        // Never issued through the service (it was disabled) — must not panic.
        s.handle_complete(&IoCompletion::new(r, SimTime::from_micros(10)));
    }

    #[test]
    fn tracing_works_while_histograms_off() {
        let s = StatsService::default();
        let t = TargetId::default();
        s.start_trace(t, TraceCapacity::Unbounded);
        let r = req(t, 0, 0);
        s.handle_issue(&r);
        s.handle_complete(&IoCompletion::new(r, SimTime::from_micros(50)));
        let records = s.stop_trace(t);
        assert_eq!(records.len(), 1);
        assert!(records[0].complete_ns.is_some());
        // Histograms were never created.
        assert!(s.collector(t).is_none());
        // A second stop returns nothing.
        assert!(s.stop_trace(t).is_empty());
    }

    #[test]
    fn reset_all_clears_counts() {
        let s = StatsService::default();
        s.enable_all();
        let t = TargetId::default();
        s.handle_issue(&req(t, 0, 0));
        s.reset_all();
        assert_eq!(s.collector(t).unwrap().issued_commands(), 0);
    }

    #[test]
    fn command_interface() {
        let s = StatsService::default();
        assert!(s.command("status").unwrap().contains("OFF"));
        s.command("start").unwrap();
        assert!(s.is_enabled());
        assert!(s.command("status").unwrap().contains("ON"));
        s.handle_issue(&req(TargetId::default(), 0, 0));
        assert!(s.command("list").unwrap().contains("vm0"));
        s.command("reset").unwrap();
        s.command("stop").unwrap();
        assert!(!s.is_enabled());
        assert!(s.command("bogus").is_err());
        assert_eq!(StatsService::default().command("list").unwrap(), "no targets\n");
    }

    #[test]
    fn summary_display() {
        let s = StatsService::default();
        s.enable_all();
        let t = TargetId::default();
        let r = req(t, 0, 0);
        s.handle_issue(&r);
        s.handle_complete(&IoCompletion::new(r, SimTime::from_micros(100)));
        let line = s.summaries()[0].to_string();
        assert!(line.contains("issued=1"));
        assert!(line.contains("meanLat=100us"));
    }
}
