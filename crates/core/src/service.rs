//! The host-wide statistics service.
//!
//! On a real ESX host this is the piece controlled by the "command line
//! utility to enable and disable these stats" (§3): a registry of
//! per-(VM, virtual disk) collectors, globally switchable, with the hot
//! path reduced to a single predictable branch while disabled (§5.2).
//!
//! # Concurrency architecture
//!
//! The paper's Table 2 claim — nanoseconds per command, invisible at full
//! I/O rate — only survives multi-tenant load if VMs do not contend with
//! each other inside the service. The registry is therefore a fixed
//! power-of-two table of *shards*, each with its own lock; a target's
//! shard is chosen by a multiplicative hash of its (VM, disk) id, so
//! different virtual disks land on different shards and their hot paths
//! never serialize against each other:
//!
//! * **Disabled path** ([`StatsService::handle_issue`] /
//!   [`StatsService::handle_complete`] while collection is off and no
//!   tracer exists): one atomic load plus one branch — no lock, no
//!   allocation. This is the always-on cost the paper's §5.2 argues the
//!   branch predictor makes free.
//! * **Enabled path**: one atomic load plus one *shard* lock shared only
//!   with targets that hash to the same shard.
//! * **Batched ingestion** ([`StatsService::handle_batch`]): events are
//!   grouped by shard and each shard lock is acquired at most once per
//!   batch, amortizing even same-shard contention.
//! * **Read path** ([`StatsService::summaries`],
//!   [`StatsService::collector`], [`StatsService::collectors`]): locks one
//!   shard at a time and clones collectors out, so report generation never
//!   stalls ingestion on the other shards.

use crate::checkpoint::{CheckpointHealth, ServiceCheckpoint, TargetCheckpoint};
use crate::collector::{CollectorConfig, IoStatsCollector, INGEST_CHUNK};
use crate::metrics::{Lens, Metric};
use crate::sentinel::{
    Admission, HealthSnapshot, SalvageRecord, SalvagedTarget, SentinelConfig, ShardHealth,
    ShardSentinel,
};
use crate::trace::{TraceCapacity, TraceRecord, TraceSink, VscsiTracer};
use parking_lot::{Mutex, MutexGuard};
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use vscsi::{IoCompletion, IoRequest, TargetId};

/// Snapshot of a collector's headline counters, for `esxtop`-style listings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetSummary {
    /// The (VM, disk) pair.
    pub target: TargetId,
    /// Commands issued.
    pub issued: u64,
    /// Commands completed.
    pub completed: u64,
    /// I/Os in flight right now.
    pub outstanding: u32,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Fraction of commands that were reads, if any commands were seen.
    pub read_fraction: Option<f64>,
    /// Mean device latency in microseconds, if any completions were seen.
    pub mean_latency_us: Option<f64>,
}

impl fmt::Display for TargetSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: issued={} completed={} oio={} readMB={:.1} writeMB={:.1}",
            self.target,
            self.issued,
            self.completed,
            self.outstanding,
            self.bytes_read as f64 / 1e6,
            self.bytes_written as f64 / 1e6,
        )?;
        if let Some(rf) = self.read_fraction {
            write!(f, " read%={:.0}", rf * 100.0)?;
        }
        if let Some(lat) = self.mean_latency_us {
            write!(f, " meanLat={lat:.0}us")?;
        }
        Ok(())
    }
}

/// One event observed at the vSCSI layer, for batched ingestion through
/// [`StatsService::handle_batch`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VscsiEvent {
    /// A guest command arrived at the SCSI emulation layer.
    Issue(IoRequest),
    /// The device reported a command complete.
    Complete(IoCompletion),
}

impl VscsiEvent {
    /// The (VM, disk) pair this event belongs to.
    pub fn target(&self) -> TargetId {
        match self {
            VscsiEvent::Issue(req) => req.target,
            VscsiEvent::Complete(completion) => completion.request.target,
        }
    }
}

#[derive(Debug, Default)]
struct TargetState {
    collector: Option<IoStatsCollector>,
    tracer: Option<VscsiTracer>,
}

#[derive(Debug, Default)]
struct ShardState {
    targets: BTreeMap<TargetId, TargetState>,
    /// Supervision state (governor, quarantine generation, load counters).
    /// Inert — zero branches on the hot path — until
    /// [`StatsService::enable_sentinel`] installs a config.
    sentinel: ShardSentinel,
}

impl ShardState {
    fn apply_issue(&mut self, enabled: bool, config: &CollectorConfig, req: &IoRequest) {
        if enabled {
            let state = self.targets.entry(req.target).or_default();
            state
                .collector
                .get_or_insert_with(|| IoStatsCollector::new(config.clone()))
                .on_issue(req);
            if let Some(tracer) = &mut state.tracer {
                tracer.on_issue(req);
            }
        } else if let Some(state) = self.targets.get_mut(&req.target) {
            // Collection is off: only an active tracer observes the command,
            // and no collector state is created.
            if let Some(tracer) = &mut state.tracer {
                tracer.on_issue(req);
            }
        }
    }

    fn apply_complete(&mut self, completion: &IoCompletion) {
        // Completions route to existing collectors even while collection is
        // disabled: a command issued while enabled must still complete its
        // latency sample (§3's stats can be toggled at any time).
        let Some(state) = self.targets.get_mut(&completion.request.target) else {
            return;
        };
        if let Some(collector) = &mut state.collector {
            collector.on_complete(completion);
        }
        if let Some(tracer) = &mut state.tracer {
            tracer.on_complete(completion);
        }
    }

    /// Applies a contiguous run of events that all belong to `target`,
    /// resolving the target's state **once** instead of once per event.
    /// `idxs` are `(shard, event-index)` pairs from the batch ordering.
    ///
    /// Matches the per-event paths exactly: completions alone never create
    /// target state, an enabled issue creates the collector lazily, and a
    /// disabled issue is visible only to an existing tracer.
    fn apply_target_run(
        &mut self,
        enabled: bool,
        config: &CollectorConfig,
        target: TargetId,
        events: &[VscsiEvent],
        idxs: &[(u32, u32)],
    ) {
        self.apply_target_stream(
            enabled,
            config,
            target,
            idxs.iter().map(|&(_, i)| &events[i as usize]),
        );
    }

    /// The run body behind [`ShardState::apply_target_run`], generic over
    /// how the run is addressed so the single-target batch fast path can
    /// feed a plain slice without building an index table.
    fn apply_target_stream<'a, I>(
        &mut self,
        enabled: bool,
        config: &CollectorConfig,
        target: TargetId,
        run: I,
    ) where
        I: Iterator<Item = &'a VscsiEvent> + Clone,
    {
        let has_issue = run.clone().any(|e| matches!(e, VscsiEvent::Issue(_)));
        if enabled && has_issue && !self.targets.contains_key(&target) {
            self.targets.entry(target).or_default();
        }
        let Some(state) = self.targets.get_mut(&target) else {
            return;
        };
        // Tracer pass, per event in run order (tracer state is
        // independent of the collector's, so the two passes commute).
        if let Some(tracer) = &mut state.tracer {
            for event in run.clone() {
                match event {
                    VscsiEvent::Issue(req) => tracer.on_issue(req),
                    VscsiEvent::Complete(c) => tracer.on_complete(c),
                }
            }
        }
        // Collector pass, through the batched SIMD-friendly ingest.
        // `live` reproduces the per-event path's lazy-creation semantics
        // exactly: a completion only reaches the collector if it existed
        // at that point in the run (pre-existing, or created by an
        // earlier enabled issue); a disabled issue never reaches it.
        let mut live = state.collector.is_some();
        if !live && !(enabled && has_issue) {
            return;
        }
        let Some(first) = run.clone().next() else {
            return;
        };
        let collector = state
            .collector
            .get_or_insert_with(|| IoStatsCollector::new(config.clone()));
        let mut buf = [*first; INGEST_CHUNK];
        let mut n = 0;
        for event in run {
            match event {
                VscsiEvent::Issue(_) => {
                    if !enabled {
                        continue;
                    }
                    live = true;
                }
                VscsiEvent::Complete(_) => {
                    if !live {
                        continue;
                    }
                }
            }
            buf[n] = *event;
            n += 1;
            if n == INGEST_CHUNK {
                collector.ingest_events(&buf);
                n = 0;
            }
        }
        collector.ingest_events(&buf[..n]);
    }
}

#[derive(Debug)]
struct Shard {
    /// Number of targets in this shard with an active tracer. Lets the
    /// disabled issue path skip the shard lock entirely when zero.
    tracers: AtomicU32,
    /// Whether any target state was ever created in this shard. Lets the
    /// completion path skip the shard lock while the shard is empty.
    occupied: AtomicBool,
    /// Watchdog heartbeat: the virtual timestamp at which the current
    /// supervised ingest entered the shard, or `u64::MAX` while idle. Only
    /// written on the supervised (sentinel-on) path. This is a heuristic
    /// heartbeat — it flags an ingest that *entered* and never left, which
    /// is exactly the wedged-writer signature the watchdog hunts.
    busy_since_ns: AtomicU64,
    state: Mutex<ShardState>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            tracers: AtomicU32::new(0),
            occupied: AtomicBool::new(false),
            busy_since_ns: AtomicU64::new(u64::MAX),
            state: Mutex::new(ShardState::default()),
        }
    }
}

/// Host-wide vSCSI statistics service.
///
/// Thread-safe and sharded: targets are spread over a fixed power-of-two
/// number of independently locked shards (see the module docs), so VMs on
/// different shards ingest concurrently without contention. When the
/// service is disabled and no tracer is active, the hot-path hooks cost
/// one atomic load and one branch — no lock is taken (on the real system
/// the branch predictor makes the disabled path free — §5.2). Collector
/// state for a target is created lazily on its first command after
/// enablement, mirroring "histogram data structures are dynamically
/// created as needed".
///
/// # Examples
///
/// ```
/// use simkit::SimTime;
/// use vscsi::{IoCompletion, IoDirection, IoRequest, Lba, RequestId, TargetId};
/// use vscsi_stats::{Lens, Metric, StatsService};
///
/// let service = StatsService::new(Default::default());
/// service.enable_all();
///
/// let req = IoRequest::new(
///     RequestId(0), TargetId::default(), IoDirection::Read,
///     Lba::new(0), 8, SimTime::ZERO,
/// );
/// service.handle_issue(&req);
/// service.handle_complete(&IoCompletion::new(req, SimTime::from_micros(450)));
///
/// let summary = &service.summaries()[0];
/// assert_eq!(summary.issued, 1);
/// assert_eq!(summary.mean_latency_us, Some(450.0));
/// ```
///
/// Batched ingestion groups events by shard and takes each shard lock at
/// most once per batch:
///
/// ```
/// use simkit::SimTime;
/// use vscsi::{IoCompletion, IoDirection, IoRequest, Lba, RequestId, TargetId};
/// use vscsi_stats::{StatsService, VscsiEvent};
///
/// let service = StatsService::default();
/// service.enable_all();
/// let req = IoRequest::new(
///     RequestId(0), TargetId::default(), IoDirection::Write,
///     Lba::new(64), 8, SimTime::ZERO,
/// );
/// service.handle_batch(&[
///     VscsiEvent::Issue(req),
///     VscsiEvent::Complete(IoCompletion::new(req, SimTime::from_micros(200))),
/// ]);
/// assert_eq!(service.summaries()[0].completed, 1);
/// ```
#[derive(Debug)]
pub struct StatsService {
    /// Global collection switch, read lock-free on every hot-path call.
    enabled: AtomicBool,
    /// Shared collector template; never cloned on the hot path — only when
    /// a target's collector is lazily created.
    config: Arc<CollectorConfig>,
    /// Whether the sentinel supervision layer is active. While `false`
    /// (the default) every path below is exactly the unsupervised legacy
    /// pipeline — bit-for-bit.
    sentinel_on: AtomicBool,
    /// The installed sentinel config (reader patience, watchdog budget).
    /// Cold: read on snapshot paths and watchdog checks only.
    sentinel_cfg: Mutex<Option<Arc<SentinelConfig>>>,
    /// Retained quarantine salvage records, bounded by
    /// [`Self::SALVAGE_RETENTION`]; `salvages_total` keeps the true count.
    salvages: Mutex<Vec<SalvageRecord>>,
    salvages_total: AtomicU64,
    /// Watchdog trips against shards: stuck supervised ingests spotted by
    /// [`Self::watchdog_check`] plus readers that gave up on a shard lock.
    shard_watchdog_trips: AtomicU64,
    /// Restart epoch: bumped whenever the service's cumulative counters
    /// regress on purpose (a [`Self::reset_all`], or a simulated host
    /// restart installing a fresh service via [`Self::set_epoch`]). The
    /// fleet plane ships this in every `VFLHIST2` frame so collectors can
    /// re-base per-window deltas instead of mistaking the regression for
    /// corruption.
    epoch: AtomicU64,
    /// Fleet frame sequence: the per-host monotonic counter stamped into
    /// every `VFLHIST2` frame. Owned by the service (not the endpoint
    /// wrapper) so a checkpoint carries it and a restored host *continues*
    /// the sequence — downstream seq-regression guards then accept the
    /// first post-restart frame instead of mistaking it for a replay.
    frame_seq: AtomicU64,
    /// Health surface of an attached checkpoint daemon, if any: lets
    /// `command("checkpoint")` request an immediate durable snapshot and
    /// `command("health")` report checkpoint lag alongside sentinel state.
    ckpt_health: Mutex<Option<Arc<CheckpointHealth>>>,
    /// Power-of-two shard table; `shards.len() - 1` is the index mask.
    shards: Box<[Shard]>,
}

impl Default for StatsService {
    fn default() -> Self {
        StatsService::new(CollectorConfig::default())
    }
}

impl StatsService {
    /// Default number of shards. Large enough that a host's worth of busy
    /// virtual disks rarely collide, small enough that full-table scans
    /// (reports, resets) stay cheap.
    pub const DEFAULT_SHARD_COUNT: usize = 16;

    /// Creates a service (disabled) that will build collectors with
    /// `config`, using [`Self::DEFAULT_SHARD_COUNT`] shards.
    pub fn new(config: CollectorConfig) -> Self {
        StatsService::with_shards(config, Self::DEFAULT_SHARD_COUNT)
    }

    /// Creates a service (disabled) with at least `shards` shards; the
    /// count is rounded up to the next power of two (minimum 1).
    pub fn with_shards(config: CollectorConfig, shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        let shards: Vec<Shard> = (0..count).map(|_| Shard::new()).collect();
        StatsService {
            enabled: AtomicBool::new(false),
            config: Arc::new(config),
            sentinel_on: AtomicBool::new(false),
            sentinel_cfg: Mutex::new(None),
            salvages: Mutex::new(Vec::new()),
            salvages_total: AtomicU64::new(0),
            shard_watchdog_trips: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            frame_seq: AtomicU64::new(0),
            ckpt_health: Mutex::new(None),
            shards: shards.into_boxed_slice(),
        }
    }

    /// Number of shards in the table (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard index a target routes to. The thread-per-core pipeline uses
    /// this to assign each target's events to the aggregator that owns the
    /// shard, so no two aggregators ever contend on one shard lock.
    pub fn shard_index_of(&self, target: TargetId) -> usize {
        self.shard_index(target)
    }

    fn shard_index(&self, target: TargetId) -> usize {
        // Fibonacci multiplicative hash of the (vm, disk) pair. The upper
        // half of the product spreads small sequential ids uniformly, so
        // vm0..vmN land on distinct shards.
        let key = (u64::from(target.vm.0) << 32) | u64::from(target.disk.0);
        let hashed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((hashed >> 32) as usize) & (self.shards.len() - 1)
    }

    fn shard(&self, target: TargetId) -> &Shard {
        &self.shards[self.shard_index(target)]
    }

    /// Turns histogram collection on for all targets.
    pub fn enable_all(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Turns histogram collection off; existing histograms are retained and
    /// can still be reported.
    pub fn disable_all(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Whether collection is currently on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// The service's restart epoch. Starts at 0; every counter regression
    /// the service performs on purpose ([`Self::reset_all`]) bumps it, and
    /// a simulated host restart carries it forward via [`Self::set_epoch`].
    /// Fleet frames embed it so downstream windowed rollups re-base
    /// exactly once per restart.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Sets the restart epoch — used when a fresh service instance stands
    /// in for a restarted host and must advertise a later epoch than its
    /// predecessor.
    pub fn set_epoch(&self, epoch: u64) {
        self.epoch.store(epoch, Ordering::Release);
    }

    /// The last fleet frame sequence number handed out (0 = none yet).
    pub fn frame_seq(&self) -> u64 {
        self.frame_seq.load(Ordering::Acquire)
    }

    /// Allocates the next fleet frame sequence number (first call returns
    /// 1). Monotonic across the service's life *and*, via the checkpoint
    /// plane, across restarts: [`StatsService::from_checkpoint`] resumes
    /// the counter so a recovered host never reuses a sequence number its
    /// collectors may already have seen.
    pub fn next_frame_seq(&self) -> u64 {
        self.frame_seq.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Starts command tracing for one target with the given capacity.
    pub fn start_trace(&self, target: TargetId, capacity: TraceCapacity) {
        self.install_tracer(target, VscsiTracer::new(capacity));
    }

    /// Starts *streaming* command tracing for one target: completed records
    /// are pushed into `sink` as they happen and only in-flight commands
    /// stay in memory, so a trace of any length runs in bounded space (the
    /// `tracestore` crate provides a durable binary-segment sink). The
    /// in-flight tail is handed to the sink when tracing stops.
    pub fn start_trace_streaming(&self, target: TargetId, sink: Box<dyn TraceSink>) {
        self.install_tracer(target, VscsiTracer::streaming(sink));
    }

    /// Re-attaches a streaming trace after a restart, continuing the event
    /// sequence from a checkpointed watermark
    /// ([`TargetCheckpoint::tracer_watermark`]). Every record the resumed
    /// tracer emits carries `serial >= watermark`, so recovery can replay
    /// a durable trace tail on top of the checkpoint without double
    /// counting: records below the watermark are already inside the
    /// checkpointed collectors.
    pub fn resume_trace_streaming(
        &self,
        target: TargetId,
        sink: Box<dyn TraceSink>,
        watermark: u64,
    ) {
        let mut tracer = VscsiTracer::streaming(sink);
        tracer.resume_event_seq(watermark);
        self.install_tracer(target, tracer);
    }

    fn install_tracer(&self, target: TargetId, tracer: VscsiTracer) {
        let shard = self.shard(target);
        let mut state = shard.state.lock();
        let entry = state.targets.entry(target).or_default();
        if entry.tracer.is_none() {
            shard.tracers.fetch_add(1, Ordering::Release);
        }
        // Replacing an active streaming tracer flushes it via its Drop.
        entry.tracer = Some(tracer);
        shard.occupied.store(true, Ordering::Release);
    }

    /// Stops tracing for a target, returning the records still held in
    /// memory: the captured trace for a capacity tracer, or an empty vector
    /// for a streaming tracer (its records — including the in-flight tail,
    /// flushed here — live in the sink).
    pub fn stop_trace(&self, target: TargetId) -> Vec<TraceRecord> {
        let shard = self.shard(target);
        let mut state = shard.state.lock();
        let Some(tracer) = state.targets.get_mut(&target).and_then(|t| t.tracer.take()) else {
            return Vec::new();
        };
        shard.tracers.fetch_sub(1, Ordering::Release);
        tracer.into_records()
    }

    /// Resident bytes attributable to tracers right now, across all shards
    /// (in-flight records plus each streaming backend's buffers). Useful
    /// for asserting the bounded-memory property of streaming traces.
    pub fn tracer_footprint_bytes(&self) -> usize {
        let mut total = 0;
        for shard in self.shards.iter() {
            let Some(state) = self.read_state(shard) else {
                continue;
            };
            total += state
                .targets
                .values()
                .filter_map(|t| t.tracer.as_ref())
                .map(VscsiTracer::memory_footprint_bytes)
                .sum::<usize>();
        }
        total
    }

    /// Hot-path hook: command issue.
    ///
    /// Disabled and untraced, this is one atomic load and one branch — no
    /// lock, no allocation.
    pub fn handle_issue(&self, req: &IoRequest) {
        let enabled = self.enabled.load(Ordering::Acquire);
        let shard = self.shard(req.target);
        if !enabled && shard.tracers.load(Ordering::Acquire) == 0 {
            return;
        }
        if self.sentinel_on.load(Ordering::Acquire) {
            return self.supervised_issue(self.shard_index(req.target), enabled, req);
        }
        let mut state = shard.state.lock();
        state.apply_issue(enabled, &self.config, req);
        if enabled {
            shard.occupied.store(true, Ordering::Release);
        }
    }

    /// Hot-path hook: command completion.
    ///
    /// Takes no lock while the target's shard has never held any state.
    pub fn handle_complete(&self, completion: &IoCompletion) {
        let shard = self.shard(completion.request.target);
        if !shard.occupied.load(Ordering::Acquire) {
            return;
        }
        if self.sentinel_on.load(Ordering::Acquire) {
            return self
                .supervised_complete(self.shard_index(completion.request.target), completion);
        }
        shard.state.lock().apply_complete(completion);
    }

    /// Batched ingestion: applies a slice of events, grouping them by shard
    /// so each shard lock is acquired at most once per batch. Events for
    /// any one target keep their slice order (per-stream metrics — seek
    /// distance, interarrival — depend on it).
    pub fn handle_batch(&self, events: &[VscsiEvent]) {
        match events {
            [] => return,
            // A batch of one is the per-event path: same pipeline, no
            // grouping allocation.
            [VscsiEvent::Issue(req)] => return self.handle_issue(req),
            [VscsiEvent::Complete(completion)] => return self.handle_complete(completion),
            _ => {}
        }
        if self.sentinel_on.load(Ordering::Acquire) {
            // Supervised ingestion gives up the lock-once-per-shard
            // amortization: every event must pass the governor and carry
            // its own panic fence, so the batch walks the per-event paths
            // in slice order. That cost only exists once the sentinel is
            // armed — the unsupervised batch path below is untouched.
            for event in events {
                match event {
                    VscsiEvent::Issue(req) => self.handle_issue(req),
                    VscsiEvent::Complete(completion) => self.handle_complete(completion),
                }
            }
            return;
        }
        let enabled = self.enabled.load(Ordering::Acquire);
        // Fast path: the whole batch belongs to one target — the common
        // shape, since a virtual disk's completion queue drains as a
        // contiguous run. One shard lock, no index table, no sort.
        let first_target = events[0].target();
        if events.iter().all(|ev| ev.target() == first_target) {
            let shard = self.shard(first_target);
            let must_lock = enabled
                || shard.tracers.load(Ordering::Acquire) > 0
                || shard.occupied.load(Ordering::Acquire);
            if must_lock {
                shard.state.lock().apply_target_stream(
                    enabled,
                    &self.config,
                    first_target,
                    events.iter(),
                );
                if enabled {
                    shard.occupied.store(true, Ordering::Release);
                }
            }
            return;
        }
        // Mixed-target batch: order events by (shard, target). Small
        // batches — the SPSC aggregator drains ≤ a few dozen events per
        // lane visit — sort in a stack buffer; only oversized batches
        // pay an allocation.
        let mut stack_buf = [(0u32, 0u32); 64];
        let mut heap_buf;
        let order: &mut [(u32, u32)] = if events.len() <= stack_buf.len() {
            let order = &mut stack_buf[..events.len()];
            for (idx, ev) in events.iter().enumerate() {
                order[idx] = (self.shard_index(ev.target()) as u32, idx as u32);
            }
            order
        } else {
            heap_buf = events
                .iter()
                .enumerate()
                .map(|(idx, ev)| (self.shard_index(ev.target()) as u32, idx as u32))
                .collect::<Vec<_>>();
            &mut heap_buf
        };
        // Order by (shard, target, idx): events for one target stay in
        // slice order (per-stream metrics — seek distance, interarrival —
        // depend on it; the idx tiebreaker makes the unstable sort
        // order-preserving), while grouping by target lets each run resolve
        // its target state once and walk the collector's counter slab while
        // it is cache-hot. Cross-target reordering within a shard is safe:
        // collector and tracer state is per-target.
        order.sort_unstable_by_key(|&(shard, idx)| (shard, events[idx as usize].target(), idx));

        let mut run_start = 0;
        while run_start < order.len() {
            let shard_idx = order[run_start].0;
            let mut run_end = run_start + 1;
            while run_end < order.len() && order[run_end].0 == shard_idx {
                run_end += 1;
            }
            let shard = &self.shards[shard_idx as usize];
            let must_lock = enabled
                || shard.tracers.load(Ordering::Acquire) > 0
                || shard.occupied.load(Ordering::Acquire);
            if must_lock {
                let mut state = shard.state.lock();
                // Split the shard run into per-target sub-runs.
                let mut sub = run_start;
                while sub < run_end {
                    let target = events[order[sub].1 as usize].target();
                    let mut sub_end = sub + 1;
                    while sub_end < run_end && events[order[sub_end].1 as usize].target() == target
                    {
                        sub_end += 1;
                    }
                    state.apply_target_run(
                        enabled,
                        &self.config,
                        target,
                        events,
                        &order[sub..sub_end],
                    );
                    sub = sub_end;
                }
                if enabled {
                    shard.occupied.store(true, Ordering::Release);
                }
            }
            run_start = run_end;
        }
    }

    /// How many quarantine salvage records are retained in memory;
    /// [`HealthSnapshot::salvages_total`] keeps counting past the cap.
    pub const SALVAGE_RETENTION: usize = 32;

    /// Arms the sentinel supervision layer (see [`crate::sentinel`]): the
    /// overload governor, watchdog heartbeats, and panic quarantine start
    /// covering every subsequent ingest. Until this is called the service
    /// runs the exact unsupervised pipeline — no extra branches, no
    /// behavior change.
    pub fn enable_sentinel(&self, config: SentinelConfig) {
        let config = Arc::new(config);
        *self.sentinel_cfg.lock() = Some(Arc::clone(&config));
        for shard in self.shards.iter() {
            shard.state.lock().sentinel.enable(Arc::clone(&config));
        }
        self.sentinel_on.store(true, Ordering::Release);
    }

    /// Whether the sentinel supervision layer is armed.
    pub fn sentinel_enabled(&self) -> bool {
        self.sentinel_on.load(Ordering::Acquire)
    }

    /// Folds per-shard ring-full drop counts from the thread-per-core
    /// pipeline into the sentinel ledger, preserving the conservation
    /// identity `ingested + sampled_out + shed == offered`: an event
    /// dropped at a full SPSC ring was offered to the stats path and shed
    /// by backpressure, just at an earlier stage than the governor. No-op
    /// for shards with a zero count or when the sentinel is disabled.
    pub fn absorb_ring_sheds(&self, sheds_by_shard: &[u64]) {
        debug_assert!(sheds_by_shard.len() <= self.shards.len());
        for (shard, &n) in self.shards.iter().zip(sheds_by_shard) {
            if n > 0 {
                shard.state.lock().sentinel.note_ring_shed(n);
            }
        }
    }

    /// Supervised issue path: watchdog heartbeat, governor admission,
    /// panic fence, quarantine on unwind.
    fn supervised_issue(&self, idx: usize, enabled: bool, req: &IoRequest) {
        let shard = &self.shards[idx];
        let now_ns = req.issue_time.as_nanos();
        shard.busy_since_ns.store(now_ns, Ordering::Release);
        let mut state = shard.state.lock();
        let admission = if enabled {
            state.sentinel.admit(now_ns, req.id.0)
        } else {
            // Tracer-only traffic (collection off) bypasses the governor:
            // it is not offered to the stats path, so it must not perturb
            // the conservation counters.
            Admission::Ingest
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| match admission {
            Admission::Ingest => {
                state.sentinel.maybe_chaos_panic(req);
                let creates = enabled
                    && state
                        .targets
                        .get(&req.target)
                        .is_none_or(|t| t.collector.is_none());
                state.apply_issue(enabled, &self.config, req);
                if creates {
                    let bytes = state
                        .targets
                        .get(&req.target)
                        .and_then(|t| t.collector.as_ref())
                        .map_or(0, IoStatsCollector::memory_footprint_bytes);
                    state.sentinel.note_collector_created(bytes);
                }
            }
            Admission::SampleOut | Admission::CountOnly => {
                // Degraded: cheap counters only — but an active tracer
                // still sees the command (tracing is the debugging tool of
                // last resort; only Shed silences it).
                state.sentinel.note_light(req.len_bytes());
                if let Some(tracer) = state
                    .targets
                    .get_mut(&req.target)
                    .and_then(|t| t.tracer.as_mut())
                {
                    tracer.on_issue(req);
                }
            }
            Admission::Shed => {}
        }));
        if enabled {
            shard.occupied.store(true, Ordering::Release);
        }
        if outcome.is_err() {
            self.quarantine_locked(idx, shard, &mut state, now_ns);
        }
        drop(state);
        shard.busy_since_ns.store(u64::MAX, Ordering::Release);
    }

    /// Supervised completion path. The admission coin is keyed by the
    /// request id, so a command kept at issue is kept at completion and a
    /// sampled-out command stays invisible end to end.
    fn supervised_complete(&self, idx: usize, completion: &IoCompletion) {
        let shard = &self.shards[idx];
        let now_ns = completion.complete_time.as_nanos();
        shard.busy_since_ns.store(now_ns, Ordering::Release);
        let mut state = shard.state.lock();
        let admission = state.sentinel.admit(now_ns, completion.request.id.0);
        let outcome = catch_unwind(AssertUnwindSafe(|| match admission {
            Admission::Ingest => {
                if state.targets.contains_key(&completion.request.target) {
                    state.apply_complete(completion);
                } else if state.sentinel.generation() > 0 {
                    // The target's state was torn down by a quarantine
                    // rebuild: this is a late completion from the old
                    // generation. Count it as stale instead of resurrecting
                    // state for it.
                    state.sentinel.note_stale_completion();
                }
            }
            Admission::SampleOut | Admission::CountOnly => {
                state.sentinel.note_light(0);
                if let Some(tracer) = state
                    .targets
                    .get_mut(&completion.request.target)
                    .and_then(|t| t.tracer.as_mut())
                {
                    tracer.on_complete(completion);
                }
            }
            Admission::Shed => {}
        }));
        if outcome.is_err() {
            self.quarantine_locked(idx, shard, &mut state, now_ns);
        }
        drop(state);
        shard.busy_since_ns.store(u64::MAX, Ordering::Release);
    }

    /// Quarantines a shard whose ingest panicked: salvages headline
    /// counters from the wounded collectors into a [`SalvageRecord`],
    /// rebuilds the shard empty, and bumps its generation so late
    /// completions from the torn-down state are counted as stale.
    fn quarantine_locked(&self, idx: usize, shard: &Shard, state: &mut ShardState, now_ns: u64) {
        let generation = state.sentinel.generation();
        // The salvage read is itself fenced: a collector wounded badly
        // enough to panic mid-ingest may panic again while being read, and
        // that must not defeat the rebuild. Worst case the record is empty.
        let targets = catch_unwind(AssertUnwindSafe(|| {
            state
                .targets
                .iter()
                .map(|(target, t)| {
                    let (issued, completed, outstanding, error_outcomes) =
                        t.collector.as_ref().map_or((0, 0, 0, Vec::new()), |c| {
                            (
                                c.issued_commands(),
                                c.completed_commands(),
                                c.outstanding_now(),
                                c.histogram(Metric::Errors, Lens::All).counts().to_vec(),
                            )
                        });
                    SalvagedTarget {
                        target: *target,
                        issued,
                        completed,
                        outstanding,
                        error_outcomes,
                    }
                })
                .collect::<Vec<_>>()
        }))
        .unwrap_or_default();
        // Rebuild: dropping the targets flushes streaming tracers via their
        // Drop impls (bounded — sink flushes time out and demote).
        state.targets.clear();
        state.sentinel.note_quarantine();
        shard.tracers.store(0, Ordering::Release);
        self.salvages_total.fetch_add(1, Ordering::AcqRel);
        let mut salvages = self.salvages.lock();
        if salvages.len() < Self::SALVAGE_RETENTION {
            salvages.push(SalvageRecord {
                shard: idx,
                generation,
                at_ns: now_ns,
                targets,
            });
        }
    }

    /// Poison-recovering shard access for snapshot/read paths: while the
    /// sentinel is armed, a reader waits at most the configured patience
    /// for a shard lock and then *skips the shard* (counting a watchdog
    /// trip) instead of wedging behind a stuck writer. With the sentinel
    /// off this is a plain blocking lock, exactly as before.
    fn read_state<'a>(&self, shard: &'a Shard) -> Option<MutexGuard<'a, ShardState>> {
        if !self.sentinel_on.load(Ordering::Acquire) {
            return Some(shard.state.lock());
        }
        let patience = self
            .sentinel_cfg
            .lock()
            .as_ref()
            .map_or(Duration::from_millis(500), |c| c.reader_patience);
        match shard.state.try_lock_for(patience) {
            Some(guard) => Some(guard),
            None => {
                self.shard_watchdog_trips.fetch_add(1, Ordering::AcqRel);
                None
            }
        }
    }

    /// Watchdog sweep: returns the indices of shards whose supervised
    /// ingest entered more than the configured budget of *virtual* time
    /// before `now_ns` and has not left, counting one trip per stuck
    /// shard. Drive this from the simulation/poll loop.
    pub fn watchdog_check(&self, now_ns: u64) -> Vec<usize> {
        let budget = self
            .sentinel_cfg
            .lock()
            .as_ref()
            .map_or(u64::MAX, |c| c.watchdog_budget_ns);
        let mut stuck = Vec::new();
        for (idx, shard) in self.shards.iter().enumerate() {
            let busy = shard.busy_since_ns.load(Ordering::Acquire);
            if busy != u64::MAX && now_ns.saturating_sub(busy) > budget {
                stuck.push(idx);
            }
        }
        if !stuck.is_empty() {
            self.shard_watchdog_trips
                .fetch_add(stuck.len() as u64, Ordering::AcqRel);
        }
        stuck
    }

    /// Full service health: per-shard degradation level, generation, and
    /// load-conservation counters, retained salvage records, and watchdog
    /// trip totals (shard-side plus every active tracer sink's). Shards
    /// whose lock cannot be had within the reader patience are reported
    /// [`ShardHealth::unreachable`] rather than blocking the snapshot.
    pub fn health_snapshot(&self) -> HealthSnapshot {
        let mut shards = Vec::with_capacity(self.shards.len());
        let mut sink_watchdog_trips = 0u64;
        for (idx, shard) in self.shards.iter().enumerate() {
            match self.read_state(shard) {
                Some(state) => {
                    sink_watchdog_trips += state
                        .targets
                        .values()
                        .filter_map(|t| t.tracer.as_ref())
                        .map(|tracer| tracer.sink_health().watchdog_trips)
                        .sum::<u64>();
                    shards.push(state.sentinel.shard_health(idx, state.targets.len()));
                }
                None => shards.push(ShardHealth::unreachable(idx)),
            }
        }
        HealthSnapshot {
            shards,
            salvages: self.salvages.lock().clone(),
            salvages_total: self.salvages_total.load(Ordering::Acquire),
            shard_watchdog_trips: self.shard_watchdog_trips.load(Ordering::Acquire),
            sink_watchdog_trips,
        }
    }

    /// Captures the service's complete durable state as a
    /// [`ServiceCheckpoint`]: every collector's exact export, every shard
    /// governor's posture and admission ledger, the retained salvage
    /// records, the restart epoch, the fleet frame sequence, and each
    /// active tracer's replay watermark.
    ///
    /// Takes each shard lock in turn (blocking — a checkpoint must be a
    /// complete census, so a wedged shard stalls the checkpoint daemon
    /// rather than silently truncating the snapshot; the daemon's watchdog
    /// demotes it in that case).
    pub fn checkpoint_snapshot(&self) -> ServiceCheckpoint {
        let mut sentinels = Vec::with_capacity(self.shards.len());
        let mut targets = Vec::new();
        for shard in self.shards.iter() {
            let state = shard.state.lock();
            sentinels.push(state.sentinel.export_state());
            for (target, t) in state.targets.iter() {
                targets.push(TargetCheckpoint {
                    target: *target,
                    collector: t.collector.as_ref().map(IoStatsCollector::export_state),
                    tracer_watermark: t.tracer.as_ref().map(VscsiTracer::next_event_seq),
                });
            }
        }
        // Shards interleave target ids; canonical order makes the
        // checkpoint bytes a pure function of service state.
        targets.sort_unstable_by_key(|t| t.target);
        ServiceCheckpoint {
            config: (*self.config).clone(),
            epoch: self.epoch(),
            frame_seq: self.frame_seq(),
            enabled: self.is_enabled(),
            sentinel_on: self.sentinel_enabled(),
            shard_count: self.shards.len() as u32,
            salvages_total: self.salvages_total.load(Ordering::Acquire),
            shard_watchdog_trips: self.shard_watchdog_trips.load(Ordering::Acquire),
            sentinels,
            salvages: self.salvages.lock().clone(),
            targets,
        }
    }

    /// Rebuilds a service from a checkpoint: same shard table, same
    /// collector states bit-for-bit, same governor ledgers, same epoch and
    /// frame sequence. `sentinel` re-supplies the supervision *policy*
    /// (configs are operator state, not runtime state); pass the host's
    /// current config when the checkpointed service ran supervised.
    ///
    /// Active tracers are **not** recreated — their sinks are external
    /// resources. Each one's watermark is in
    /// [`ServiceCheckpoint::targets`]; re-attach with
    /// [`StatsService::resume_trace_streaming`].
    ///
    /// This reproduces the checkpointed epoch exactly (so
    /// `restore(checkpoint(s))` round-trips); a *crash recovery* then
    /// advertises `epoch + 1` via [`StatsService::set_epoch`] to tell the
    /// fleet plane the cumulative counters may have regressed by the
    /// unreplayable post-checkpoint tail.
    ///
    /// # Panics
    ///
    /// Panics on structurally invalid checkpoints (wrong sentinel count,
    /// non-power-of-two shard count, malformed collector state). Untrusted
    /// bytes are validated by the `VSCKPT1` decoder before they get here.
    pub fn from_checkpoint(ckpt: &ServiceCheckpoint, sentinel: Option<SentinelConfig>) -> Self {
        let svc = StatsService::with_shards(ckpt.config.clone(), ckpt.shard_count as usize);
        assert_eq!(
            svc.shard_count(),
            ckpt.shard_count as usize,
            "checkpoint shard count must be a power of two"
        );
        assert_eq!(
            ckpt.sentinels.len(),
            svc.shard_count(),
            "one sentinel state per shard"
        );
        if let Some(cfg) = sentinel {
            svc.enable_sentinel(cfg);
        }
        svc.enabled.store(ckpt.enabled, Ordering::Release);
        svc.epoch.store(ckpt.epoch, Ordering::Release);
        svc.frame_seq.store(ckpt.frame_seq, Ordering::Release);
        svc.salvages_total
            .store(ckpt.salvages_total, Ordering::Release);
        svc.shard_watchdog_trips
            .store(ckpt.shard_watchdog_trips, Ordering::Release);
        *svc.salvages.lock() = ckpt.salvages.clone();
        for (shard, state) in svc.shards.iter().zip(ckpt.sentinels.iter()) {
            shard.state.lock().sentinel.restore_state(state);
        }
        for t in &ckpt.targets {
            let shard = svc.shard(t.target);
            let mut state = shard.state.lock();
            let entry = state.targets.entry(t.target).or_default();
            if let Some(cs) = &t.collector {
                entry.collector = Some(IoStatsCollector::from_state(cs.clone()));
            }
            shard.occupied.store(true, Ordering::Release);
        }
        svc
    }

    /// Attaches the health surface of a checkpoint daemon, enabling the
    /// `checkpoint` command and the checkpoint row in `health` output.
    pub fn attach_checkpoint_health(&self, health: Arc<CheckpointHealth>) {
        *self.ckpt_health.lock() = Some(health);
    }

    /// The attached checkpoint daemon's health surface, if one is
    /// attached — operator front-ends (`EsxTop`) read it to render the
    /// checkpoint row next to their own counters.
    pub fn checkpoint_health(&self) -> Option<Arc<CheckpointHealth>> {
        self.ckpt_health.lock().clone()
    }

    #[cfg(test)]
    fn debug_mark_busy(&self, idx: usize, now_ns: u64) {
        self.shards[idx]
            .busy_since_ns
            .store(now_ns, Ordering::Release);
    }

    /// Resets histograms for every target, one shard at a time. With the
    /// sentinel armed, a shard held by a stuck writer is skipped (and
    /// counted as a watchdog trip) rather than wedging the reset.
    ///
    /// A reset is a deliberate cumulative-counter regression, so it bumps
    /// the service [`epoch`](Self::epoch): fleet collectors re-base their
    /// windowed deltas instead of booking the drop as corruption.
    pub fn reset_all(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
        for shard in self.shards.iter() {
            let Some(mut state) = self.read_state(shard) else {
                continue;
            };
            for target in state.targets.values_mut() {
                if let Some(c) = &mut target.collector {
                    c.reset();
                }
            }
        }
    }

    /// Targets with any recorded state, in order.
    pub fn targets(&self) -> Vec<TargetId> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let Some(state) = self.read_state(shard) else {
                continue;
            };
            out.extend(state.targets.keys().copied());
        }
        out.sort_unstable();
        out
    }

    /// Clones the collector for a target, if one exists (collectors are
    /// small — a few KiB — so cloning out is the safe reporting interface).
    /// Locks only the target's own shard.
    pub fn collector(&self, target: TargetId) -> Option<IoStatsCollector> {
        self.read_state(self.shard(target))?
            .targets
            .get(&target)
            .and_then(|t| t.collector.clone())
    }

    /// Snapshot of every target's collector, in target order. Locks one
    /// shard at a time, so ingestion on other shards is never stalled —
    /// this is the intended interface for report and CSV export.
    pub fn collectors(&self) -> Vec<(TargetId, IoStatsCollector)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let Some(state) = self.read_state(shard) else {
                continue;
            };
            out.extend(
                state
                    .targets
                    .iter()
                    .filter_map(|(target, s)| s.collector.clone().map(|c| (*target, c))),
            );
        }
        out.sort_unstable_by_key(|&(target, _)| target);
        out
    }

    /// Headline counters for every known target, in target order. Locks
    /// one shard at a time.
    pub fn summaries(&self) -> Vec<TargetSummary> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let Some(state) = self.read_state(shard) else {
                continue;
            };
            out.extend(state.targets.iter().filter_map(|(target, s)| {
                let c = s.collector.as_ref()?;
                Some(TargetSummary {
                    target: *target,
                    issued: c.issued_commands(),
                    completed: c.completed_commands(),
                    outstanding: c.outstanding_now(),
                    bytes_read: c.bytes_read(),
                    bytes_written: c.bytes_written(),
                    read_fraction: c.read_fraction(),
                    mean_latency_us: c.histogram(Metric::Latency, Lens::All).mean(),
                })
            }));
        }
        out.sort_unstable_by_key(|s| s.target);
        out
    }

    /// The `FetchAllHistograms` dump: every target's full metric × lens
    /// histogram set as text, in target order — the same surface vCenter's
    /// ServiceManager exposes as `ExecuteSimpleCommand FetchAllHistograms`.
    /// Slots with no samples are listed on one line so the dump stays an
    /// exhaustive inventory without drowning in empty tables. Locks one
    /// shard at a time (via [`StatsService::collectors`]).
    pub fn fetch_all_histograms(&self) -> String {
        let collectors = self.collectors();
        let mut out = format!("FetchAllHistograms: {} target(s)\n", collectors.len());
        for (target, collector) in &collectors {
            out.push_str(&format!("== {target} ==\n"));
            for metric in Metric::ALL {
                for lens in Lens::ALL {
                    let h = collector.histogram(metric, lens);
                    if h.is_empty() {
                        out.push_str(&format!("Histogram: {metric} ({lens}): no samples\n"));
                    } else {
                        // `Histogram`'s Display ends on its summary line
                        // without a trailing newline; add one so the next
                        // header starts a fresh line.
                        out.push_str(&format!("Histogram: {metric} ({lens})\n{h}\n"));
                    }
                }
            }
        }
        out
    }

    /// Executes a `vscsiStats`-style textual command and returns its output.
    ///
    /// Supported commands: `start`, `stop`, `reset`, `status`, `list`,
    /// `health` (the sentinel's [`HealthSnapshot`] rendering, plus a
    /// checkpoint row when a daemon is attached), `checkpoint` (request an
    /// immediate durable snapshot from the attached daemon), and
    /// `fetchallhistograms` (every target's full histogram set, the
    /// command the fleet plane's wire format snapshots in binary form).
    ///
    /// # Errors
    ///
    /// Returns an error string for unknown commands.
    pub fn command(&self, cmd: &str) -> Result<String, String> {
        match cmd.trim() {
            "start" => {
                self.enable_all();
                Ok("vscsiStats: started collection".to_owned())
            }
            "stop" => {
                self.disable_all();
                Ok("vscsiStats: stopped collection".to_owned())
            }
            "reset" => {
                self.reset_all();
                Ok("vscsiStats: histograms reset".to_owned())
            }
            "status" => Ok(format!(
                "vscsiStats: collection {} (epoch {})",
                if self.is_enabled() { "ON" } else { "OFF" },
                self.epoch(),
            )),
            "health" => {
                let mut out = self.health_snapshot().render();
                if let Some(h) = self.ckpt_health.lock().as_ref() {
                    out.push_str("  checkpoint: ");
                    out.push_str(&h.render());
                    out.push('\n');
                }
                Ok(out)
            }
            "checkpoint" => match self.ckpt_health.lock().as_ref() {
                Some(h) => {
                    h.request_now();
                    Ok(format!("vscsiStats: checkpoint requested ({})", h.render()))
                }
                None => Err("no checkpoint plane attached".to_owned()),
            },
            // vCenter spells it FetchAllHistograms; accept any casing.
            c if c.eq_ignore_ascii_case("fetchallhistograms") => Ok(self.fetch_all_histograms()),
            "list" => {
                let mut out = String::new();
                for s in self.summaries() {
                    out.push_str(&s.to_string());
                    out.push('\n');
                }
                if out.is_empty() {
                    out.push_str("no targets\n");
                }
                Ok(out)
            }
            other => Err(format!("unknown command {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;
    use vscsi::{IoDirection, Lba, RequestId, VDiskId, VmId};

    fn req(target: TargetId, id: u64, t_us: u64) -> IoRequest {
        IoRequest::new(
            RequestId(id),
            target,
            IoDirection::Read,
            Lba::new(id * 8),
            8,
            SimTime::from_micros(t_us),
        )
    }

    #[test]
    fn disabled_service_records_nothing() {
        let s = StatsService::default();
        s.handle_issue(&req(TargetId::default(), 0, 0));
        assert!(s.summaries().is_empty());
        assert!(s.targets().is_empty());
    }

    #[test]
    fn enable_collect_disable_keeps_data() {
        let s = StatsService::default();
        let t = TargetId::new(VmId(1), VDiskId(0));
        s.enable_all();
        s.handle_issue(&req(t, 0, 0));
        s.disable_all();
        // New commands ignored while off...
        s.handle_issue(&req(t, 1, 10));
        // ...but previous data remains readable.
        let c = s.collector(t).unwrap();
        assert_eq!(c.issued_commands(), 1);
    }

    #[test]
    fn per_target_isolation() {
        let s = StatsService::default();
        s.enable_all();
        let a = TargetId::new(VmId(1), VDiskId(0));
        let b = TargetId::new(VmId(2), VDiskId(0));
        s.handle_issue(&req(a, 0, 0));
        s.handle_issue(&req(b, 1, 5));
        s.handle_issue(&req(b, 2, 9));
        assert_eq!(s.collector(a).unwrap().issued_commands(), 1);
        assert_eq!(s.collector(b).unwrap().issued_commands(), 2);
        assert_eq!(s.targets(), vec![a, b]);
    }

    #[test]
    fn completion_routes_to_collector() {
        let s = StatsService::default();
        s.enable_all();
        let t = TargetId::default();
        let r = req(t, 0, 100);
        s.handle_issue(&r);
        s.handle_complete(&IoCompletion::new(r, SimTime::from_micros(600)));
        let summary = &s.summaries()[0];
        assert_eq!(summary.completed, 1);
        assert_eq!(summary.mean_latency_us, Some(500.0));
        assert_eq!(summary.outstanding, 0);
    }

    #[test]
    fn completion_without_state_is_ignored() {
        let s = StatsService::default();
        let r = req(TargetId::default(), 0, 0);
        // Never issued through the service (it was disabled) — must not panic.
        s.handle_complete(&IoCompletion::new(r, SimTime::from_micros(10)));
    }

    #[test]
    fn tracing_works_while_histograms_off() {
        let s = StatsService::default();
        let t = TargetId::default();
        s.start_trace(t, TraceCapacity::Unbounded);
        let r = req(t, 0, 0);
        s.handle_issue(&r);
        s.handle_complete(&IoCompletion::new(r, SimTime::from_micros(50)));
        let records = s.stop_trace(t);
        assert_eq!(records.len(), 1);
        assert!(records[0].complete_ns.is_some());
        // Histograms were never created.
        assert!(s.collector(t).is_none());
        // A second stop returns nothing.
        assert!(s.stop_trace(t).is_empty());
    }

    #[test]
    fn streaming_trace_through_service() {
        #[derive(Debug, Default, Clone)]
        struct SharedSink(Arc<Mutex<Vec<TraceRecord>>>);
        impl TraceSink for SharedSink {
            fn append(&mut self, record: &TraceRecord) {
                self.0.lock().push(*record);
            }
        }
        let s = StatsService::default();
        let t = TargetId::default();
        let sink = SharedSink::default();
        s.start_trace_streaming(t, Box::new(sink.clone()));
        let r0 = req(t, 0, 100);
        let r1 = req(t, 1, 200);
        s.handle_issue(&r0);
        s.handle_issue(&r1);
        s.handle_complete(&IoCompletion::new(r0, SimTime::from_micros(300)));
        // One completed record reached the sink; one is still in flight.
        assert_eq!(sink.0.lock().len(), 1);
        assert!(s.tracer_footprint_bytes() > 0);
        // stop_trace flushes the in-flight tail into the sink and returns
        // nothing — the sink owns the trace.
        assert!(s.stop_trace(t).is_empty());
        let records = sink.0.lock().clone();
        assert_eq!(records.len(), 2);
        assert_eq!(
            records.iter().filter(|r| r.complete_ns.is_some()).count(),
            1
        );
        assert_eq!(s.tracer_footprint_bytes(), 0);
    }

    #[test]
    fn tracer_on_one_target_does_not_wake_others() {
        // A disabled service with a tracer on target A must still take the
        // zero-cost path for target B — and must not create state for B,
        // even when B hashes to A's shard.
        let s = StatsService::with_shards(CollectorConfig::default(), 1);
        assert_eq!(s.shard_count(), 1);
        let a = TargetId::new(VmId(1), VDiskId(0));
        let b = TargetId::new(VmId(2), VDiskId(0));
        s.start_trace(a, TraceCapacity::Unbounded);
        s.handle_issue(&req(b, 0, 0));
        assert_eq!(s.targets(), vec![a]);
        assert!(s.stop_trace(a).is_empty());
    }

    #[test]
    fn reset_all_clears_counts() {
        let s = StatsService::default();
        s.enable_all();
        let t = TargetId::default();
        s.handle_issue(&req(t, 0, 0));
        s.reset_all();
        assert_eq!(s.collector(t).unwrap().issued_commands(), 0);
    }

    #[test]
    fn command_interface() {
        let s = StatsService::default();
        assert!(s.command("status").unwrap().contains("OFF"));
        s.command("start").unwrap();
        assert!(s.is_enabled());
        assert!(s.command("status").unwrap().contains("ON"));
        s.handle_issue(&req(TargetId::default(), 0, 0));
        assert!(s.command("list").unwrap().contains("vm0"));
        assert!(s.command("status").unwrap().contains("epoch 0"));
        s.command("reset").unwrap();
        assert!(s.command("status").unwrap().contains("epoch 1"));
        s.command("stop").unwrap();
        assert!(!s.is_enabled());
        assert!(s.command("bogus").is_err());
        assert_eq!(
            StatsService::default().command("list").unwrap(),
            "no targets\n"
        );
    }

    #[test]
    fn reset_bumps_epoch_and_set_epoch_overrides() {
        let s = StatsService::default();
        assert_eq!(s.epoch(), 0);
        s.reset_all();
        s.reset_all();
        assert_eq!(s.epoch(), 2, "every reset is one announced regression");
        s.set_epoch(9);
        assert_eq!(s.epoch(), 9);
    }

    #[test]
    fn fetch_all_histograms_dumps_every_slot() {
        let s = StatsService::default();
        s.enable_all();
        let t = TargetId::default();
        let r = req(t, 0, 0);
        s.handle_issue(&r);
        s.handle_complete(&IoCompletion::new(r, SimTime::from_micros(100)));
        let dump = s.fetch_all_histograms();
        assert!(dump.starts_with("FetchAllHistograms: 1 target(s)"));
        assert!(dump.contains(&format!("== {t} ==")));
        // Every metric × lens slot is inventoried, populated or not.
        for metric in Metric::ALL {
            for lens in Lens::ALL {
                assert!(
                    dump.contains(&format!("Histogram: {metric} ({lens})")),
                    "missing slot {metric} ({lens})"
                );
            }
        }
        assert!(dump.contains("no samples"), "idle slots listed as empty");
        // The command surface accepts vCenter's casing and ours.
        assert_eq!(s.command("FetchAllHistograms").unwrap(), dump);
        assert_eq!(s.command("fetchallhistograms").unwrap(), dump);
        assert_eq!(
            StatsService::default()
                .command("fetchallhistograms")
                .unwrap(),
            "FetchAllHistograms: 0 target(s)\n"
        );
    }

    #[test]
    fn summary_display() {
        let s = StatsService::default();
        s.enable_all();
        let t = TargetId::default();
        let r = req(t, 0, 0);
        s.handle_issue(&r);
        s.handle_complete(&IoCompletion::new(r, SimTime::from_micros(100)));
        let line = s.summaries()[0].to_string();
        assert!(line.contains("issued=1"));
        assert!(line.contains("meanLat=100us"));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        for (requested, expect) in [(0, 1), (1, 1), (2, 2), (3, 4), (16, 16), (17, 32)] {
            let s = StatsService::with_shards(CollectorConfig::default(), requested);
            assert_eq!(s.shard_count(), expect, "requested {requested}");
        }
    }

    #[test]
    fn targets_spread_across_shards() {
        let s = StatsService::default();
        let mut used = std::collections::BTreeSet::new();
        for vm in 0..8u32 {
            used.insert(s.shard_index(TargetId::new(VmId(vm), VDiskId(0))));
        }
        // 8 sequential VM ids over 16 shards must not all collide; the
        // multiplicative hash actually gives all 8 distinct slots.
        assert!(used.len() >= 6, "shard spread = {used:?}");
    }

    #[test]
    fn batch_equals_per_event_ingestion() {
        let a = TargetId::new(VmId(1), VDiskId(0));
        let b = TargetId::new(VmId(2), VDiskId(1));
        let mut events = Vec::new();
        for i in 0..64u64 {
            let target = if i % 3 == 0 { a } else { b };
            let r = IoRequest::new(
                RequestId(i),
                target,
                if i % 2 == 0 {
                    IoDirection::Read
                } else {
                    IoDirection::Write
                },
                Lba::new((i * 131) % 10_000),
                8,
                SimTime::from_micros(i * 10),
            );
            events.push(VscsiEvent::Issue(r));
            events.push(VscsiEvent::Complete(IoCompletion::new(
                r,
                SimTime::from_micros(i * 10 + 7),
            )));
        }

        let batched = StatsService::default();
        batched.enable_all();
        batched.handle_batch(&events);

        let serial = StatsService::default();
        serial.enable_all();
        for ev in &events {
            match ev {
                VscsiEvent::Issue(r) => serial.handle_issue(r),
                VscsiEvent::Complete(c) => serial.handle_complete(c),
            }
        }

        for target in [a, b] {
            let cb = batched.collector(target).unwrap();
            let cs = serial.collector(target).unwrap();
            assert_eq!(cb.issued_commands(), cs.issued_commands());
            assert_eq!(cb.completed_commands(), cs.completed_commands());
            for metric in Metric::ALL {
                for lens in [Lens::All, Lens::Reads, Lens::Writes] {
                    assert_eq!(
                        cb.histogram(metric, lens).counts(),
                        cs.histogram(metric, lens).counts(),
                        "{target} {metric} {lens:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_on_disabled_service_records_nothing() {
        let s = StatsService::default();
        let r = req(TargetId::default(), 0, 0);
        s.handle_batch(&[
            VscsiEvent::Issue(r),
            VscsiEvent::Complete(IoCompletion::new(r, SimTime::from_micros(5))),
        ]);
        assert!(s.targets().is_empty());
        s.handle_batch(&[]);
    }

    #[test]
    fn batch_feeds_tracers_while_disabled() {
        let s = StatsService::default();
        let t = TargetId::default();
        s.start_trace(t, TraceCapacity::Unbounded);
        let r = req(t, 0, 0);
        s.handle_batch(&[
            VscsiEvent::Issue(r),
            VscsiEvent::Complete(IoCompletion::new(r, SimTime::from_micros(9))),
        ]);
        let records = s.stop_trace(t);
        assert_eq!(records.len(), 1);
        assert!(records[0].complete_ns.is_some());
        assert!(s.collector(t).is_none());
    }

    #[test]
    fn collectors_snapshot_is_sorted_and_consistent() {
        let s = StatsService::default();
        s.enable_all();
        // More targets than shards, to exercise collisions.
        for vm in (0..40u32).rev() {
            s.handle_issue(&req(
                TargetId::new(VmId(vm), VDiskId(vm % 3)),
                u64::from(vm),
                0,
            ));
        }
        let snap = s.collectors();
        assert_eq!(snap.len(), 40);
        let targets: Vec<TargetId> = snap.iter().map(|&(t, _)| t).collect();
        assert_eq!(targets, s.targets());
        assert!(targets.windows(2).all(|w| w[0] < w[1]));
        for (_, c) in &snap {
            assert_eq!(c.issued_commands(), 1);
        }
    }

    // ---- sentinel supervision -------------------------------------------

    use crate::sentinel::{ChaosSpec, DegradeLevel};

    /// A sentinel config with thresholds far above anything the tests
    /// offer, so only the knobs a test overrides have any effect.
    fn quiet_sentinel(seed: u64) -> SentinelConfig {
        let mut cfg = SentinelConfig::new(seed);
        cfg.full_max_rate = u64::MAX;
        cfg.sampled_max_rate = u64::MAX;
        cfg.counters_max_rate = u64::MAX;
        cfg
    }

    #[test]
    fn sentinel_governor_degrades_and_conserves() {
        let s = StatsService::default();
        s.enable_all();
        let mut cfg = SentinelConfig::new(11);
        cfg.window_ns = 1_000;
        cfg.full_max_rate = 4;
        cfg.sampled_max_rate = 8;
        cfg.counters_max_rate = 16;
        s.enable_sentinel(cfg);
        assert!(s.sentinel_enabled());

        let t = TargetId::new(VmId(1), VDiskId(0));
        // ~100 events per 1000 ns window: way past every threshold.
        for i in 0..2_000u64 {
            s.handle_issue(&IoRequest::new(
                RequestId(i),
                t,
                IoDirection::Read,
                Lba::new(i * 8),
                8,
                SimTime::from_nanos(i * 10),
            ));
        }
        let health = s.health_snapshot();
        assert!(health.conserves(), "conservation must hold under overload");
        assert_eq!(health.worst_level(), DegradeLevel::Shed);
        let totals = health.totals();
        assert_eq!(totals.offered, 2_000);
        assert!(totals.shed > 0);
        assert!(totals.ingested < 2_000);
        // The collector saw only what the governor admitted.
        assert_eq!(s.collector(t).unwrap().issued_commands(), totals.ingested);
    }

    #[test]
    fn sentinel_sampled_histograms_are_subsets() {
        let t = TargetId::new(VmId(3), VDiskId(1));
        let mut events = Vec::new();
        for i in 0..400u64 {
            let r = IoRequest::new(
                RequestId(i),
                t,
                if i % 3 == 0 {
                    IoDirection::Write
                } else {
                    IoDirection::Read
                },
                Lba::new((i * 37) % 5_000),
                8 + (i % 4) as u32 * 8,
                SimTime::from_micros(i * 5),
            );
            events.push(VscsiEvent::Issue(r));
            events.push(VscsiEvent::Complete(IoCompletion::new(
                r,
                SimTime::from_micros(i * 5 + 3),
            )));
        }

        let full = StatsService::default();
        full.enable_all();
        full.handle_batch(&events);

        let sampled = StatsService::default();
        sampled.enable_all();
        let mut cfg = quiet_sentinel(77);
        cfg.initial_level = DegradeLevel::SampledSeries;
        sampled.enable_sentinel(cfg);
        sampled.handle_batch(&events);

        let cf = full.collector(t).unwrap();
        let cs = sampled.collector(t).unwrap();
        assert!(cs.issued_commands() < cf.issued_commands());
        assert!(cs.issued_commands() > 0);
        // The per-command coin keeps issue and completion together, so the
        // kept stream is an exact subset: per-bin counts can only shrink.
        for metric in [Metric::IoLength, Metric::Latency] {
            for lens in [Lens::All, Lens::Reads, Lens::Writes] {
                let hf = cf.histogram(metric, lens);
                let hs = cs.histogram(metric, lens);
                for (bin, (&a, &b)) in hs.counts().iter().zip(hf.counts()).enumerate() {
                    assert!(
                        a <= b,
                        "{metric} {lens:?} bin {bin}: sampled {a} > full {b}"
                    );
                }
            }
        }
        let health = sampled.health_snapshot();
        assert!(health.conserves());
        assert!(health.totals().sampled_out > 0);
    }

    #[test]
    fn chaos_panic_quarantines_salvages_and_counts_stale() {
        let s = StatsService::default();
        s.enable_all();
        let wounded = TargetId::new(VmId(7), VDiskId(0));
        let healthy = TargetId::new(VmId(1), VDiskId(0));
        assert_ne!(
            s.shard_index(wounded),
            s.shard_index(healthy),
            "test targets must land on different shards"
        );
        let mut cfg = quiet_sentinel(5);
        cfg.chaos = Some(ChaosSpec {
            vm: Some(7),
            lba_min: 1_000_000,
            lba_max: 1_000_100,
            max_panics: 1,
        });
        s.enable_sentinel(cfg);

        // Clean traffic on both targets; r0 stays in flight on the shard
        // that is about to be wounded.
        let r0 = req(wounded, 0, 0);
        s.handle_issue(&r0);
        s.handle_issue(&req(healthy, 1, 5));

        // The poisoned command panics inside the shard boundary; the
        // service must absorb it.
        s.handle_issue(&IoRequest::new(
            RequestId(2),
            wounded,
            IoDirection::Read,
            Lba::new(1_000_050),
            8,
            SimTime::from_micros(10),
        ));

        let health = s.health_snapshot();
        assert_eq!(health.quarantines(), 1);
        assert_eq!(health.salvages_total, 1);
        let record = &health.salvages[0];
        assert_eq!(record.shard, s.shard_index(wounded));
        assert_eq!(record.generation, 0);
        assert_eq!(record.targets.len(), 1);
        assert_eq!(record.targets[0].target, wounded);
        assert_eq!(record.targets[0].issued, 1);
        assert_eq!(record.targets[0].outstanding, 1);

        // r0's completion arrives after the rebuild: counted stale, not
        // resurrected.
        s.handle_complete(&IoCompletion::new(r0, SimTime::from_micros(50)));
        let health = s.health_snapshot();
        assert_eq!(health.stale_completions(), 1);
        assert!(s.collector(wounded).is_none());

        // The healthy shard never noticed; the wounded one rebuilds lazily.
        assert_eq!(s.collector(healthy).unwrap().issued_commands(), 1);
        s.handle_issue(&req(wounded, 3, 60));
        assert_eq!(s.collector(wounded).unwrap().issued_commands(), 1);
        assert!(s.health_snapshot().conserves());
    }

    #[test]
    fn readers_skip_wedged_shard_instead_of_blocking() {
        let s = StatsService::with_shards(CollectorConfig::default(), 1);
        s.enable_all();
        let mut cfg = quiet_sentinel(1);
        cfg.reader_patience = Duration::from_millis(10);
        s.enable_sentinel(cfg);
        s.handle_issue(&req(TargetId::default(), 0, 0));
        assert_eq!(s.summaries().len(), 1);

        // Wedge the only shard, as a stuck writer would.
        let guard = s.shards[0].state.lock();
        assert!(s.summaries().is_empty());
        assert!(s.targets().is_empty());
        let health = s.health_snapshot();
        assert!(!health.shards[0].reachable);
        drop(guard);

        // Released: everything is visible again, and the give-ups were
        // counted as watchdog trips.
        assert_eq!(s.summaries().len(), 1);
        let health = s.health_snapshot();
        assert!(health.shards[0].reachable);
        assert!(health.shard_watchdog_trips >= 3);
    }

    #[test]
    fn watchdog_check_flags_stuck_shards() {
        let s = StatsService::default();
        let mut cfg = quiet_sentinel(1);
        cfg.watchdog_budget_ns = 1_000;
        s.enable_sentinel(cfg);
        assert!(s.watchdog_check(5_000).is_empty());
        s.debug_mark_busy(3, 500);
        assert_eq!(s.watchdog_check(5_000), vec![3]);
        assert_eq!(s.health_snapshot().shard_watchdog_trips, 1);
        s.debug_mark_busy(3, u64::MAX);
        assert!(s.watchdog_check(5_000).is_empty());
    }

    #[test]
    fn health_command_renders_snapshot() {
        let s = StatsService::default();
        let out = s.command("health").unwrap();
        assert!(out.contains("sentinel health"));
        s.enable_all();
        s.enable_sentinel(quiet_sentinel(2));
        s.handle_issue(&req(TargetId::default(), 0, 0));
        let out = s.command("health").unwrap();
        assert!(out.contains("conserved=true"));
    }

    #[test]
    fn sentinel_full_level_matches_unsupervised_ingestion() {
        // With the sentinel armed but calm (Full everywhere), histograms
        // must be bit-identical to the unsupervised pipeline.
        let t = TargetId::new(VmId(4), VDiskId(2));
        let mut events = Vec::new();
        for i in 0..128u64 {
            let r = req(t, i, i * 10);
            events.push(VscsiEvent::Issue(r));
            events.push(VscsiEvent::Complete(IoCompletion::new(
                r,
                SimTime::from_micros(i * 10 + 4),
            )));
        }
        let plain = StatsService::default();
        plain.enable_all();
        plain.handle_batch(&events);
        let supervised = StatsService::default();
        supervised.enable_all();
        supervised.enable_sentinel(quiet_sentinel(9));
        supervised.handle_batch(&events);
        let cp = plain.collector(t).unwrap();
        let cs = supervised.collector(t).unwrap();
        for metric in Metric::ALL {
            for lens in [Lens::All, Lens::Reads, Lens::Writes] {
                assert_eq!(
                    cp.histogram(metric, lens).counts(),
                    cs.histogram(metric, lens).counts(),
                    "{metric} {lens:?}"
                );
            }
        }
        let totals = supervised.health_snapshot().totals();
        assert_eq!(totals.offered, totals.ingested);
    }
}
