//! The per-virtual-disk online collector — the paper's central data
//! structure.
//!
//! One [`IoStatsCollector`] exists per (VM, virtual disk) pair while the
//! service is enabled. It is hooked into the vSCSI data path at two points:
//!
//! * [`IoStatsCollector::on_issue`] — when the guest's command arrives at
//!   the SCSI emulation layer;
//! * [`IoStatsCollector::on_complete`] — when the device reports completion.
//!
//! Each hook performs a constant number of histogram inserts plus O(N) work
//! in the (fixed, default 16) seek-window size: O(1) per command overall,
//! with no allocation on the hot path.
//!
//! # The flat counter slab
//!
//! The collector does not hold 21 `Histogram` objects. All per-bin counters
//! live in one contiguous [`SLAB_LEN`]-slot `Box<[u64]>` (2400 bytes — a
//! few cache lines), addressed by precomputed per-metric offsets:
//!
//! ```text
//! slab[SLAB_BASE[m] + lens * SLAB_BINS[m] + bin]
//! ```
//!
//! with the three lenses of one metric adjacent so an event's All + Reads
//! (or All + Writes) bumps touch neighbouring cache lines. Bin lookup goes
//! through the process-lifetime [`FastBinner`] tables cached per metric, so
//! each metric's bin index is computed **exactly once** per event and each
//! lens costs one extra add (the index-once invariant; see DESIGN.md).
//! Exact running totals/sums/min/max live in a small inline [`Agg`] matrix.
//! `Histogram` values are materialized from the slab only at snapshot time
//! via [`IoStatsCollector::histogram`].

use crate::inflight::InflightTable;
use crate::metrics::{Lens, Metric};
use crate::service::VscsiEvent;
use histo::{
    layouts, signed_distance, FastBinner, Histogram, Histogram2d, HistogramSeries, LayoutId,
    SeekWindow,
};
use serde::{Deserialize, Serialize};
use simkit::{SimDuration, SimTime};
use vscsi::{IoCompletion, IoRequest};

/// Configuration for an [`IoStatsCollector`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectorConfig {
    /// Look-behind window size N for the windowed seek-distance histogram
    /// (§3.1). The paper's default is 16.
    pub window_capacity: usize,
    /// If set, also maintain per-interval histogram *series* of latency and
    /// outstanding I/Os (the Figure 4(d) / 6(c) surfaces) with this
    /// interval width. The paper's figures use 6-second intervals.
    pub series_interval: Option<SimDuration>,
    /// If `true`, maintain the §3.6 "future work" 2-D histogram correlating
    /// seek distance (x) with completion latency (y). Costs one extra
    /// in-flight-map entry per outstanding I/O.
    pub correlate_seek_latency: bool,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            window_capacity: SeekWindow::DEFAULT_CAPACITY,
            series_interval: None,
            correlate_seek_latency: false,
        }
    }
}

impl CollectorConfig {
    /// The configuration used for the paper's figures: N = 16 and 6-second
    /// over-time series.
    pub fn paper_figures() -> Self {
        CollectorConfig {
            window_capacity: SeekWindow::DEFAULT_CAPACITY,
            series_interval: Some(SimDuration::from_secs(6)),
            correlate_seek_latency: false,
        }
    }
}

const LENSES: usize = 3;
const METRICS: usize = 7;

/// Events per batched-ingest chunk (see
/// [`IoStatsCollector::ingest_events`]): small enough that the gathered
/// value arrays live on the stack and stay cache-hot, large enough that
/// the per-metric [`FastBinner::bin_batch`] sweeps amortize.
pub(crate) const INGEST_CHUNK: usize = 16;

/// Maximum gathered samples per metric per chunk: seek distance and
/// outstanding-I/O can contribute two samples per event (the All stream
/// and the per-direction stream observe *different* values).
const BATCH_SLOTS: usize = 2 * INGEST_CHUNK;

/// Per-metric staging area for one batched-ingest chunk: the values to
/// bin, each with its lens index and whether it is a dual (`All` + lens)
/// or single-lens record. Filled by the scalar gather pass, consumed by
/// one [`FastBinner::bin_slice`] + slab-apply sweep per metric.
struct BinBatch {
    vals: [[i64; BATCH_SLOTS]; METRICS],
    lens: [[u8; BATCH_SLOTS]; METRICS],
    dual: [[bool; BATCH_SLOTS]; METRICS],
    len: [usize; METRICS],
}

impl BinBatch {
    #[inline]
    fn new() -> Self {
        BinBatch {
            vals: [[0; BATCH_SLOTS]; METRICS],
            lens: [[0; BATCH_SLOTS]; METRICS],
            dual: [[false; BATCH_SLOTS]; METRICS],
            len: [0; METRICS],
        }
    }

    /// Stages one sample. `dual` mirrors the scalar split: `true` is
    /// [`IoStatsCollector::record`] (All + lens, one bin computation),
    /// `false` is [`IoStatsCollector::record_single`] (exactly one lens).
    #[inline]
    fn push(&mut self, m: usize, value: i64, lens: usize, dual: bool) {
        let k = self.len[m];
        debug_assert!(k < BATCH_SLOTS, "chunk overflowed its slot budget");
        self.vals[m][k] = value;
        self.lens[m][k] = lens as u8;
        self.dual[m][k] = dual;
        self.len[m] = k + 1;
    }
}

/// Bin count of each metric's layout, in [`metric_index`] order. Pinned as
/// constants so slab offsets are compile-time; a test asserts they match
/// the registered layouts.
const SLAB_BINS: [usize; METRICS] = [18, 20, 20, 12, 13, 11, 6];

/// Slab offset of each metric's first (All-lens) counter:
/// `SLAB_BASE[m] = 3 * (SLAB_BINS[0] + … + SLAB_BINS[m-1])`.
const SLAB_BASE: [usize; METRICS] = [0, 54, 114, 174, 210, 249, 282];

/// Total slab slots: all metrics × all lenses × all bins.
const SLAB_LEN: usize = 300;

fn lens_index(lens: Lens) -> usize {
    match lens {
        Lens::All => 0,
        Lens::Reads => 1,
        Lens::Writes => 2,
    }
}

fn metric_index(metric: Metric) -> usize {
    match metric {
        Metric::IoLength => 0,
        Metric::SeekDistance => 1,
        Metric::SeekDistanceWindowed => 2,
        Metric::Interarrival => 3,
        Metric::OutstandingIos => 4,
        Metric::Latency => 5,
        Metric::Errors => 6,
    }
}

fn layout_id(metric: Metric) -> LayoutId {
    match metric {
        Metric::IoLength => LayoutId::IoLengthBytes,
        Metric::SeekDistance | Metric::SeekDistanceWindowed => LayoutId::SeekDistanceSectors,
        Metric::Interarrival => LayoutId::InterarrivalUs,
        Metric::OutstandingIos => LayoutId::OutstandingIos,
        Metric::Latency => LayoutId::LatencyUs,
        Metric::Errors => LayoutId::ScsiOutcomes,
    }
}

fn layout_for(metric: Metric) -> histo::BinEdges {
    layout_id(metric).edges()
}

/// Exact running aggregates for one (metric, lens) pair, maintained beside
/// the binned slab counts so snapshot histograms keep exact min/max/mean.
#[derive(Debug, Clone, Copy)]
struct Agg {
    total: u64,
    sum: i128,
    min: i64,
    max: i64,
}

impl Agg {
    const EMPTY: Agg = Agg {
        total: 0,
        sum: 0,
        min: i64::MAX,
        max: i64::MIN,
    };

    #[inline]
    fn observe(&mut self, value: i64) {
        self.total += 1;
        self.sum += i128::from(value);
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    #[inline]
    fn min_max(&self) -> Option<(i64, i64)> {
        (self.total > 0).then_some((self.min, self.max))
    }
}

/// Online histogram collector for one virtual disk.
///
/// # Examples
///
/// ```
/// use simkit::SimTime;
/// use vscsi::{IoCompletion, IoDirection, IoRequest, Lba, RequestId, TargetId};
/// use vscsi_stats::{IoStatsCollector, Lens, Metric};
///
/// let mut c = IoStatsCollector::new(Default::default());
/// let req = IoRequest::new(
///     RequestId(0), TargetId::default(), IoDirection::Read,
///     Lba::new(0), 8, SimTime::ZERO,
/// );
/// c.on_issue(&req);
/// c.on_complete(&IoCompletion::new(req, SimTime::from_micros(300)));
///
/// let lat = c.histogram(Metric::Latency, Lens::All);
/// assert_eq!(lat.total(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct IoStatsCollector {
    config: CollectorConfig,
    /// The flat counter slab: `slab[SLAB_BASE[m] + lens * SLAB_BINS[m] + bin]`.
    slab: Box<[u64]>,
    /// Exact running aggregates per (metric, lens).
    aggs: [[Agg; LENSES]; METRICS],
    /// Cached process-lifetime binner tables, one per metric, so the hot
    /// path never touches the `OnceLock` registry.
    binners: [&'static FastBinner; METRICS],
    window: SeekWindow,
    /// Last block of the previous I/O (any direction), for plain seek
    /// distance. The paper stores exactly this: one u64 per virtual disk.
    last_end_block: Option<u64>,
    /// Per-direction previous-I/O end blocks, so the read-only and
    /// write-only seek histograms measure intra-stream locality (this is
    /// what makes Figure 3(c)'s "sequential writes under ZFS" signal
    /// visible even with reads interleaved).
    last_end_block_by_dir: [Option<u64>; 2],
    last_arrival: Option<SimTime>,
    outstanding: u32,
    /// Outstanding counts per direction (`[reads, writes]`): Figure 4(c)
    /// plots per-type queue depths (reads peak low while writes peak at 32,
    /// which only per-type counting can produce).
    outstanding_by_dir: [u32; 2],
    issued_commands: u64,
    completed_commands: u64,
    error_commands: u64,
    /// Non-monotonic timestamp pairs observed (interarrival or latency
    /// deltas that would have gone negative). The deltas saturate to zero;
    /// this counter is the only trace the anomaly leaves.
    clock_anomalies: u64,
    bytes_read: u64,
    bytes_written: u64,
    latency_series: Option<HistogramSeries>,
    outstanding_series: Option<HistogramSeries>,
    /// Seek-distance-at-issue for in-flight requests, only when the 2-D
    /// correlation extension is on. Fixed-capacity open addressing keyed by
    /// request id; allocation-free up to the OIO layout's 64-deep queue.
    inflight_seeks: InflightTable<i64>,
    seek_latency: Option<Histogram2d>,
}

impl Default for IoStatsCollector {
    fn default() -> Self {
        IoStatsCollector::new(CollectorConfig::default())
    }
}

impl IoStatsCollector {
    /// Creates a collector; all counter memory (the flat slab, the probe
    /// array for in-flight state, the seek window) is allocated here, up
    /// front, so the hot path never allocates (§5.2: "histogram data
    /// structures are dynamically created as needed").
    pub fn new(config: CollectorConfig) -> Self {
        let mut binners = [LayoutId::ScsiOutcomes.binner(); METRICS];
        for metric in Metric::ALL {
            binners[metric_index(metric)] = layout_id(metric).binner();
        }
        let latency_series = config
            .series_interval
            .map(|w| HistogramSeries::new(layouts::latency_us(), w));
        let outstanding_series = config
            .series_interval
            .map(|w| HistogramSeries::new(layouts::outstanding_ios(), w));
        let seek_latency = config
            .correlate_seek_latency
            .then(|| Histogram2d::new(layouts::seek_distance_sectors(), layouts::latency_us()));
        IoStatsCollector {
            window: SeekWindow::new(config.window_capacity),
            config,
            slab: vec![0u64; SLAB_LEN].into_boxed_slice(),
            aggs: [[Agg::EMPTY; LENSES]; METRICS],
            binners,
            last_end_block: None,
            last_end_block_by_dir: [None, None],
            last_arrival: None,
            outstanding: 0,
            outstanding_by_dir: [0, 0],
            issued_commands: 0,
            completed_commands: 0,
            error_commands: 0,
            clock_anomalies: 0,
            bytes_read: 0,
            bytes_written: 0,
            latency_series,
            outstanding_series,
            inflight_seeks: InflightTable::new(),
            seek_latency,
        }
    }

    /// The configuration this collector was built with.
    pub fn config(&self) -> &CollectorConfig {
        &self.config
    }

    /// Observes a command at issue time.
    pub fn on_issue(&mut self, req: &IoRequest) {
        let lens = direction_lens(req);
        let first = req.lba.sector();

        // I/O length (§3.2).
        let len = req.len_bytes() as i64;
        self.record(Metric::IoLength, lens, len);

        // Plain seek distance (§3.1): current first block minus previous
        // I/O's last block, signed.
        if let Some(prev_end) = self.last_end_block {
            self.record_single(
                Metric::SeekDistance,
                Lens::All,
                signed_distance(prev_end, first),
            );
        }
        let dir_idx = usize::from(req.direction.is_write());
        if let Some(prev_end) = self.last_end_block_by_dir[dir_idx] {
            let lens_hist = if req.direction.is_read() {
                Lens::Reads
            } else {
                Lens::Writes
            };
            self.record_single(
                Metric::SeekDistance,
                lens_hist,
                signed_distance(prev_end, first),
            );
        }

        // Windowed min seek distance (§3.1).
        let windowed = self.window.observe(first, u64::from(req.num_sectors));
        if let Some(d) = windowed {
            self.record(Metric::SeekDistanceWindowed, lens, d);
        }

        // Interarrival time (§3.2). Observed streams can run backwards
        // (clock steps, merged traces); the delta saturates to zero and the
        // anomaly is counted rather than wrapping into a huge positive value.
        if let Some(prev) = self.last_arrival {
            if req.issue_time < prev {
                self.clock_anomalies += 1;
            }
            let dt = req.issue_time.saturating_since(prev).as_micros() as i64;
            self.record(Metric::Interarrival, lens, dt);
        }

        // Outstanding I/Os at arrival (§3.3): "how many *other* I/Os ...
        // have been issued but not yet completed", so measured before this
        // command joins the queue. The All lens counts all outstanding
        // commands; the per-direction lenses count outstanding commands of
        // the *same* direction (the Figure 4(c) semantics).
        let oio = i64::from(self.outstanding);
        self.record_single(Metric::OutstandingIos, Lens::All, oio);
        self.record_single(
            Metric::OutstandingIos,
            lens,
            i64::from(self.outstanding_by_dir[dir_idx]),
        );
        if let Some(series) = &mut self.outstanding_series {
            series.record(req.issue_time, oio);
        }

        // Bookkeeping.
        self.last_end_block = Some(req.last_lba().sector());
        self.last_end_block_by_dir[dir_idx] = Some(req.last_lba().sector());
        self.last_arrival = Some(req.issue_time);
        self.outstanding += 1;
        self.outstanding_by_dir[dir_idx] += 1;
        self.issued_commands += 1;
        if req.direction.is_read() {
            self.bytes_read += req.len_bytes();
        } else {
            self.bytes_written += req.len_bytes();
        }
        if self.seek_latency.is_some() {
            if let Some(prev_seek) = windowed {
                self.inflight_seeks.insert(req.id.0, prev_seek);
            }
        }
    }

    /// Observes a command at completion time.
    ///
    /// Only `GOOD` completions feed the device-latency histogram and series:
    /// an error completion's round-trip time measures the fault path, not
    /// the device, and would corrupt the §3.5 characterization. Error
    /// completions are instead tallied by SCSI outcome code in the
    /// [`Metric::Errors`] histogram.
    pub fn on_complete(&mut self, completion: &IoCompletion) {
        let req = &completion.request;
        let lens = direction_lens(req);
        if completion.complete_time < req.issue_time {
            self.clock_anomalies += 1;
        }
        let lat_us = completion.saturating_latency().as_micros() as i64;
        if completion.status.is_good() {
            self.record(Metric::Latency, lens, lat_us);
            if let Some(series) = &mut self.latency_series {
                series.record(completion.complete_time, lat_us);
            }
        } else {
            self.error_commands += 1;
            self.record(Metric::Errors, lens, completion.status.outcome_code());
        }
        if let Some(h2) = &mut self.seek_latency {
            // The in-flight entry is retired either way so errors cannot
            // leak slots, but only good completions contribute a point.
            if let Some(seek) = self.inflight_seeks.remove(req.id.0) {
                if completion.status.is_good() {
                    h2.record(seek, lat_us);
                }
            }
        }
        // A completion can legitimately arrive without a matching issue:
        // the service was enabled between the command's issue and its
        // completion (§3's stats can be toggled at any time). Outstanding
        // tracking saturates rather than underflowing.
        self.outstanding = self.outstanding.saturating_sub(1);
        let dir_idx = usize::from(req.direction.is_write());
        self.outstanding_by_dir[dir_idx] = self.outstanding_by_dir[dir_idx].saturating_sub(1);
        self.completed_commands += 1;
    }

    /// Batched ingestion: applies a slice of events in order, binning
    /// each metric's samples with one [`FastBinner::bin_slice`] sweep per
    /// chunk instead of one scalar lookup per sample.
    ///
    /// Equivalent to calling [`IoStatsCollector::on_issue`] /
    /// [`IoStatsCollector::on_complete`] per event, bit for bit (a
    /// proptest pins this): the chunk runs a scalar *gather* pass that
    /// updates all order-sensitive stream state (seek window,
    /// interarrival clock, outstanding counts, series, in-flight table)
    /// exactly as the per-event path would, staging only the
    /// `(value, lens)` samples; the deferred slab counters and [`Agg`]
    /// updates are commutative, so applying them per metric after the
    /// gather lands in the same state. This is the SIMD-friendly half of
    /// the thread-per-core pipeline: aggregator workers feed ring drains
    /// of 8–16 events straight through here.
    pub fn ingest_events(&mut self, events: &[VscsiEvent]) {
        for chunk in events.chunks(INGEST_CHUNK) {
            let mut batch = BinBatch::new();
            for event in chunk {
                match event {
                    VscsiEvent::Issue(req) => self.gather_issue(req, &mut batch),
                    VscsiEvent::Complete(completion) => {
                        self.gather_complete(completion, &mut batch)
                    }
                }
            }
            self.apply_batch(&batch);
        }
    }

    /// The issue half of [`IoStatsCollector::on_issue`] with histogram
    /// records staged into `batch` instead of applied; all stream-state
    /// bookkeeping happens here, in event order.
    fn gather_issue(&mut self, req: &IoRequest, batch: &mut BinBatch) {
        let l = lens_index(direction_lens(req));
        let first = req.lba.sector();

        batch.push(
            metric_index(Metric::IoLength),
            req.len_bytes() as i64,
            l,
            true,
        );

        let m_seek = metric_index(Metric::SeekDistance);
        if let Some(prev_end) = self.last_end_block {
            batch.push(m_seek, signed_distance(prev_end, first), 0, false);
        }
        let dir_idx = usize::from(req.direction.is_write());
        if let Some(prev_end) = self.last_end_block_by_dir[dir_idx] {
            batch.push(m_seek, signed_distance(prev_end, first), l, false);
        }

        let windowed = self.window.observe(first, u64::from(req.num_sectors));
        if let Some(d) = windowed {
            batch.push(metric_index(Metric::SeekDistanceWindowed), d, l, true);
        }

        if let Some(prev) = self.last_arrival {
            if req.issue_time < prev {
                self.clock_anomalies += 1;
            }
            let dt = req.issue_time.saturating_since(prev).as_micros() as i64;
            batch.push(metric_index(Metric::Interarrival), dt, l, true);
        }

        let oio = i64::from(self.outstanding);
        let m_oio = metric_index(Metric::OutstandingIos);
        batch.push(m_oio, oio, 0, false);
        batch.push(m_oio, i64::from(self.outstanding_by_dir[dir_idx]), l, false);
        if let Some(series) = &mut self.outstanding_series {
            series.record(req.issue_time, oio);
        }

        self.last_end_block = Some(req.last_lba().sector());
        self.last_end_block_by_dir[dir_idx] = Some(req.last_lba().sector());
        self.last_arrival = Some(req.issue_time);
        self.outstanding += 1;
        self.outstanding_by_dir[dir_idx] += 1;
        self.issued_commands += 1;
        if req.direction.is_read() {
            self.bytes_read += req.len_bytes();
        } else {
            self.bytes_written += req.len_bytes();
        }
        if self.seek_latency.is_some() {
            if let Some(prev_seek) = windowed {
                self.inflight_seeks.insert(req.id.0, prev_seek);
            }
        }
    }

    /// The completion half of [`IoStatsCollector::on_complete`] with
    /// histogram records staged into `batch`.
    fn gather_complete(&mut self, completion: &IoCompletion, batch: &mut BinBatch) {
        let req = &completion.request;
        let l = lens_index(direction_lens(req));
        if completion.complete_time < req.issue_time {
            self.clock_anomalies += 1;
        }
        let lat_us = completion.saturating_latency().as_micros() as i64;
        if completion.status.is_good() {
            batch.push(metric_index(Metric::Latency), lat_us, l, true);
            if let Some(series) = &mut self.latency_series {
                series.record(completion.complete_time, lat_us);
            }
        } else {
            self.error_commands += 1;
            batch.push(
                metric_index(Metric::Errors),
                completion.status.outcome_code(),
                l,
                true,
            );
        }
        if let Some(h2) = &mut self.seek_latency {
            if let Some(seek) = self.inflight_seeks.remove(req.id.0) {
                if completion.status.is_good() {
                    h2.record(seek, lat_us);
                }
            }
        }
        self.outstanding = self.outstanding.saturating_sub(1);
        let dir_idx = usize::from(req.direction.is_write());
        self.outstanding_by_dir[dir_idx] = self.outstanding_by_dir[dir_idx].saturating_sub(1);
        self.completed_commands += 1;
    }

    /// Applies one gathered chunk to the slab: per metric, a single
    /// batched binning sweep over the staged values, then one pass of
    /// counter bumps and aggregate updates.
    fn apply_batch(&mut self, batch: &BinBatch) {
        let mut bins = [0u16; BATCH_SLOTS];
        for m in 0..METRICS {
            let n = batch.len[m];
            if n == 0 {
                continue;
            }
            self.binners[m].bin_slice(&batch.vals[m][..n], &mut bins[..n]);
            let base = SLAB_BASE[m];
            let stride = SLAB_BINS[m];
            for k in 0..n {
                let bin = usize::from(bins[k]);
                let v = batch.vals[m][k];
                let l = usize::from(batch.lens[m][k]);
                if batch.dual[m][k] {
                    self.slab[base + bin] += 1;
                    self.aggs[m][0].observe(v);
                    if l != 0 {
                        self.slab[base + l * stride + bin] += 1;
                        self.aggs[m][l].observe(v);
                    }
                } else {
                    self.slab[base + l * stride + bin] += 1;
                    self.aggs[m][l].observe(v);
                }
            }
        }
    }

    /// Records under All *and* (when distinct) the given lens, computing
    /// the bin index exactly once — the index-once invariant.
    #[inline]
    fn record(&mut self, metric: Metric, lens: Lens, value: i64) {
        let m = metric_index(metric);
        let bin = self.binners[m].bin_index(value);
        let base = SLAB_BASE[m];
        self.slab[base + bin] += 1;
        self.aggs[m][0].observe(value);
        let l = lens_index(lens);
        if l != 0 {
            self.slab[base + l * SLAB_BINS[m] + bin] += 1;
            self.aggs[m][l].observe(value);
        }
    }

    /// Records under exactly one lens (used where All and the direction
    /// lens observe *different* values, e.g. per-direction seek streams).
    #[inline]
    fn record_single(&mut self, metric: Metric, lens: Lens, value: i64) {
        let m = metric_index(metric);
        let bin = self.binners[m].bin_index(value);
        self.slab[SLAB_BASE[m] + lens_index(lens) * SLAB_BINS[m] + bin] += 1;
        self.aggs[m][lens_index(lens)].observe(value);
    }

    /// A snapshot histogram for a metric/lens pair, materialized from the
    /// flat counter slab.
    ///
    /// The hot path maintains raw slab counters only; this constructs a
    /// full [`Histogram`] (cached static layout + copied counts + exact
    /// aggregates) on demand. Call it at snapshot/report time, not per
    /// command.
    pub fn histogram(&self, metric: Metric, lens: Lens) -> Histogram {
        let m = metric_index(metric);
        let start = SLAB_BASE[m] + lens_index(lens) * SLAB_BINS[m];
        let counts = self.slab[start..start + SLAB_BINS[m]].to_vec();
        let agg = &self.aggs[m][lens_index(lens)];
        Histogram::from_parts(layout_for(metric), counts, agg.sum, agg.min_max())
    }

    /// Commands issued so far.
    pub fn issued_commands(&self) -> u64 {
        self.issued_commands
    }

    /// Commands completed so far (any outcome, including errors).
    pub fn completed_commands(&self) -> u64 {
        self.completed_commands
    }

    /// Completions that carried a non-`GOOD` SCSI status. These are
    /// excluded from the latency histograms and tallied in
    /// [`Metric::Errors`] instead.
    pub fn error_commands(&self) -> u64 {
        self.error_commands
    }

    /// Non-monotonic timestamp pairs seen so far (issue times running
    /// backwards, or completions stamped before their issue). The affected
    /// deltas saturated to zero.
    pub fn clock_anomalies(&self) -> u64 {
        self.clock_anomalies
    }

    /// I/Os currently in flight.
    pub fn outstanding_now(&self) -> u32 {
        self.outstanding
    }

    /// Bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Fraction of issued commands that were reads (`None` before any
    /// command) — the §3.4 read/write ratio.
    pub fn read_fraction(&self) -> Option<f64> {
        let m = metric_index(Metric::IoLength);
        let reads = self.aggs[m][lens_index(Lens::Reads)].total;
        let all = self.aggs[m][lens_index(Lens::All)].total;
        (all > 0).then(|| reads as f64 / all as f64)
    }

    /// The per-interval latency series, when configured.
    pub fn latency_series(&self) -> Option<&HistogramSeries> {
        self.latency_series.as_ref()
    }

    /// The per-interval outstanding-I/Os series, when configured.
    pub fn outstanding_series(&self) -> Option<&HistogramSeries> {
        self.outstanding_series.as_ref()
    }

    /// The §3.6 seek-distance × latency joint histogram, when configured.
    pub fn seek_latency_histogram(&self) -> Option<&Histogram2d> {
        self.seek_latency.as_ref()
    }

    /// Clears all histograms and per-stream state; in-flight commands keep
    /// counting so outstanding-I/O tracking stays consistent.
    pub fn reset(&mut self) {
        self.slab.fill(0);
        self.aggs = [[Agg::EMPTY; LENSES]; METRICS];
        self.window.reset();
        self.last_end_block = None;
        self.last_end_block_by_dir = [None, None];
        self.last_arrival = None;
        self.issued_commands = 0;
        self.completed_commands = 0;
        self.error_commands = 0;
        self.clock_anomalies = 0;
        self.bytes_read = 0;
        self.bytes_written = 0;
        if let Some(w) = self.config.series_interval {
            self.latency_series = Some(HistogramSeries::new(layouts::latency_us(), w));
            self.outstanding_series = Some(HistogramSeries::new(layouts::outstanding_ios(), w));
        }
        if let Some(h2) = &mut self.seek_latency {
            h2.reset();
        }
        self.inflight_seeks.clear();
    }

    /// Latency percentile summary (p50/p90/p99 upper-bound bins, in
    /// microseconds) from the binned data — the quick-look numbers an
    /// administrator reads before opening the full histogram. `None`
    /// before any completion.
    pub fn latency_percentiles(&self) -> Option<LatencyPercentiles> {
        let h = self.histogram(Metric::Latency, Lens::All);
        Some(LatencyPercentiles {
            p50_us: h.quantile_upper_bound(0.50)?,
            p90_us: h.quantile_upper_bound(0.90)?,
            p99_us: h.quantile_upper_bound(0.99)?,
            mean_us: h.mean()?,
        })
    }

    /// Rough resident size of the collector's state in bytes — the paper's
    /// O(m) constant-space claim made concrete (compare with a trace's O(n)
    /// growth; see `EXPERIMENTS.md`).
    pub fn memory_footprint_bytes(&self) -> usize {
        use std::mem::size_of;
        let series_bytes: usize = [&self.latency_series, &self.outstanding_series]
            .iter()
            .filter_map(|s| s.as_ref())
            .map(|s| {
                s.iter()
                    .map(|(_, h)| size_of::<Histogram>() + h.counts().len() * size_of::<u64>())
                    .sum::<usize>()
            })
            .sum();
        size_of::<Self>()
            + self.slab.len() * size_of::<u64>()
            + series_bytes
            + self.config.window_capacity * size_of::<u64>()
            + self.inflight_seeks.heap_footprint_bytes()
    }

    /// Exports every field that defines this collector's observable state
    /// — the flat slab, the exact aggregates, the seek window ring, the
    /// per-stream scalars, both series, the in-flight seek census, and the
    /// 2-D correlation matrix — as a plain-data [`CollectorState`].
    ///
    /// The checkpoint plane serializes this; [`IoStatsCollector::from_state`]
    /// is the exact inverse: `from_state(export_state(c))` reproduces `c`'s
    /// every histogram, counter, and future observation bit-for-bit.
    pub fn export_state(&self) -> CollectorState {
        let (ends, cursor, filled) = self.window.to_parts();
        let mut aggs = Vec::with_capacity(METRICS * LENSES);
        for row in &self.aggs {
            for a in row {
                aggs.push(AggState {
                    total: a.total,
                    sum: a.sum,
                    min: a.min,
                    max: a.max,
                });
            }
        }
        fn series_state(s: Option<&HistogramSeries>) -> Vec<HistogramState> {
            s.map(|s| {
                s.iter()
                    .map(|(_, h)| HistogramState {
                        counts: h.counts().to_vec(),
                        sum: h.sum(),
                        min_max: h.min().zip(h.max()),
                    })
                    .collect()
            })
            .unwrap_or_default()
        }
        CollectorState {
            config: self.config.clone(),
            slab: self.slab.to_vec(),
            aggs,
            window_ends: ends.to_vec(),
            window_cursor: cursor as u64,
            window_filled: filled as u64,
            last_end_block: self.last_end_block,
            last_end_block_by_dir: self.last_end_block_by_dir,
            last_arrival_ns: self.last_arrival.map(|t| t.as_nanos()),
            outstanding: self.outstanding,
            outstanding_by_dir: self.outstanding_by_dir,
            issued_commands: self.issued_commands,
            completed_commands: self.completed_commands,
            error_commands: self.error_commands,
            clock_anomalies: self.clock_anomalies,
            bytes_read: self.bytes_read,
            bytes_written: self.bytes_written,
            latency_intervals: series_state(self.latency_series.as_ref()),
            outstanding_intervals: series_state(self.outstanding_series.as_ref()),
            inflight_seeks: self.inflight_seeks.entries(),
            seek_latency_counts: self.seek_latency.as_ref().map(|h| h.counts().to_vec()),
        }
    }

    /// Rebuilds a collector from a [`CollectorState`] export. The exact
    /// inverse of [`IoStatsCollector::export_state`].
    ///
    /// # Panics
    ///
    /// Panics on malformed state (wrong slab or matrix lengths, window
    /// parts out of range). Untrusted inputs — anything read off disk —
    /// must pass [`CollectorState::validate`] first; the checkpoint
    /// decoder does, so a corrupt checkpoint surfaces as a decode error,
    /// never a panic.
    pub fn from_state(state: CollectorState) -> IoStatsCollector {
        let mut c = IoStatsCollector::new(state.config.clone());
        assert_eq!(state.slab.len(), SLAB_LEN, "slab length mismatch");
        c.slab.copy_from_slice(&state.slab);
        assert_eq!(
            state.aggs.len(),
            METRICS * LENSES,
            "aggregate matrix length mismatch"
        );
        for (m, row) in c.aggs.iter_mut().enumerate() {
            for (l, a) in row.iter_mut().enumerate() {
                let s = &state.aggs[m * LENSES + l];
                *a = Agg {
                    total: s.total,
                    sum: s.sum,
                    min: s.min,
                    max: s.max,
                };
            }
        }
        assert_eq!(
            state.window_ends.len(),
            state.config.window_capacity,
            "seek window capacity mismatch"
        );
        c.window = SeekWindow::from_parts(
            state.window_ends,
            state.window_cursor as usize,
            state.window_filled as usize,
        );
        c.last_end_block = state.last_end_block;
        c.last_end_block_by_dir = state.last_end_block_by_dir;
        c.last_arrival = state.last_arrival_ns.map(SimTime::from_nanos);
        c.outstanding = state.outstanding;
        c.outstanding_by_dir = state.outstanding_by_dir;
        c.issued_commands = state.issued_commands;
        c.completed_commands = state.completed_commands;
        c.error_commands = state.error_commands;
        c.clock_anomalies = state.clock_anomalies;
        c.bytes_read = state.bytes_read;
        c.bytes_written = state.bytes_written;
        fn rebuild_series(
            edges: histo::BinEdges,
            width: SimDuration,
            intervals: &[HistogramState],
        ) -> HistogramSeries {
            let hists = intervals
                .iter()
                .map(|h| Histogram::from_parts(edges.clone(), h.counts.clone(), h.sum, h.min_max))
                .collect();
            HistogramSeries::from_parts(edges, width, hists)
        }
        if let Some(w) = state.config.series_interval {
            c.latency_series = Some(rebuild_series(
                layouts::latency_us(),
                w,
                &state.latency_intervals,
            ));
            c.outstanding_series = Some(rebuild_series(
                layouts::outstanding_ios(),
                w,
                &state.outstanding_intervals,
            ));
        }
        for (key, seek) in state.inflight_seeks {
            c.inflight_seeks.insert(key, seek);
        }
        if state.config.correlate_seek_latency {
            let counts = state
                .seek_latency_counts
                .expect("correlating state carries a counts matrix");
            c.seek_latency = Some(Histogram2d::from_parts(
                layouts::seek_distance_sectors(),
                layouts::latency_us(),
                counts,
            ));
        }
        c
    }
}

/// Exact running aggregates for one (metric, lens) pair, in plain exported
/// form (see [`CollectorState`]). `min`/`max` keep their empty-state
/// sentinels (`i64::MAX`/`i64::MIN`) when `total == 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggState {
    /// Observations recorded.
    pub total: u64,
    /// Exact running sum.
    pub sum: i128,
    /// Smallest value observed (sentinel `i64::MAX` when empty).
    pub min: i64,
    /// Largest value observed (sentinel `i64::MIN` when empty).
    pub max: i64,
}

/// One interval histogram in exported form: counts plus the exact
/// aggregates [`Histogram::from_parts`] needs (the layout is implied by
/// which series the interval belongs to).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramState {
    /// Per-bin counts.
    pub counts: Vec<u64>,
    /// Exact running sum.
    pub sum: i128,
    /// `Some((min, max))` when at least one value was observed.
    pub min_max: Option<(i64, i64)>,
}

/// A complete, plain-data export of one [`IoStatsCollector`] — everything
/// the checkpoint plane must persist to rebuild the collector bit-for-bit.
/// Produced by [`IoStatsCollector::export_state`], consumed by
/// [`IoStatsCollector::from_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct CollectorState {
    /// The collector's configuration (determines layouts, window size, and
    /// which optional structures exist).
    pub config: CollectorConfig,
    /// The flat counter slab, all metrics × lenses × bins.
    pub slab: Vec<u64>,
    /// Exact aggregates, row-major `[metric][lens]`.
    pub aggs: Vec<AggState>,
    /// The seek window's ring buffer, including stale slots (they
    /// participate in equality and future eviction order).
    pub window_ends: Vec<u64>,
    /// The ring cursor.
    pub window_cursor: u64,
    /// Valid entries in the ring.
    pub window_filled: u64,
    /// Last block of the previous I/O, any direction.
    pub last_end_block: Option<u64>,
    /// Per-direction previous-I/O end blocks (`[reads, writes]`).
    pub last_end_block_by_dir: [Option<u64>; 2],
    /// Previous arrival timestamp, nanoseconds.
    pub last_arrival_ns: Option<u64>,
    /// Commands in flight.
    pub outstanding: u32,
    /// In-flight counts per direction (`[reads, writes]`).
    pub outstanding_by_dir: [u32; 2],
    /// Commands issued.
    pub issued_commands: u64,
    /// Commands completed.
    pub completed_commands: u64,
    /// Completions with non-GOOD status.
    pub error_commands: u64,
    /// Non-monotonic timestamp pairs observed.
    pub clock_anomalies: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Latency series intervals (empty when the series is off).
    pub latency_intervals: Vec<HistogramState>,
    /// Outstanding-I/O series intervals (empty when the series is off).
    pub outstanding_intervals: Vec<HistogramState>,
    /// In-flight seek census, sorted by request id.
    pub inflight_seeks: Vec<(u64, i64)>,
    /// The 2-D seek×latency counts matrix, when correlation is on.
    pub seek_latency_counts: Option<Vec<u64>>,
}

impl CollectorState {
    /// Structural validation for untrusted (deserialized) state: every
    /// length and range [`IoStatsCollector::from_state`] would otherwise
    /// panic on. The checkpoint decoder calls this so corrupt bytes become
    /// decode errors.
    pub fn validate(&self) -> Result<(), String> {
        if self.config.window_capacity == 0 {
            return Err("window capacity is zero".into());
        }
        if self.slab.len() != SLAB_LEN {
            return Err(format!("slab length {} != {SLAB_LEN}", self.slab.len()));
        }
        if self.aggs.len() != METRICS * LENSES {
            return Err(format!("agg matrix length {}", self.aggs.len()));
        }
        if self.window_ends.len() != self.config.window_capacity {
            return Err(format!(
                "window ring {} != capacity {}",
                self.window_ends.len(),
                self.config.window_capacity
            ));
        }
        if self.window_cursor as usize >= self.window_ends.len() {
            return Err("window cursor out of range".into());
        }
        if self.window_filled as usize > self.window_ends.len() {
            return Err("window filled out of range".into());
        }
        let series_on = self.config.series_interval.is_some();
        if !series_on
            && (!self.latency_intervals.is_empty() || !self.outstanding_intervals.is_empty())
        {
            return Err("series intervals present with series off".into());
        }
        let lat_bins = layouts::latency_us().bin_count();
        if self
            .latency_intervals
            .iter()
            .any(|h| h.counts.len() != lat_bins)
        {
            return Err("latency interval bin count mismatch".into());
        }
        let oio_bins = layouts::outstanding_ios().bin_count();
        if self
            .outstanding_intervals
            .iter()
            .any(|h| h.counts.len() != oio_bins)
        {
            return Err("outstanding interval bin count mismatch".into());
        }
        match (
            &self.seek_latency_counts,
            self.config.correlate_seek_latency,
        ) {
            (Some(_), false) => return Err("2-D matrix present with correlation off".into()),
            (None, true) => return Err("2-D matrix missing with correlation on".into()),
            (Some(counts), true) => {
                let cells = layouts::seek_distance_sectors().bin_count() * lat_bins;
                if counts.len() != cells {
                    return Err(format!("2-D matrix {} != {cells} cells", counts.len()));
                }
            }
            (None, false) => {}
        }
        Ok(())
    }
}

/// Binned latency percentile summary (upper bounds of the bins where the
/// cumulative fraction crosses each percentile).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyPercentiles {
    /// Median upper bound, microseconds.
    pub p50_us: i64,
    /// 90th-percentile upper bound, microseconds.
    pub p90_us: i64,
    /// 99th-percentile upper bound, microseconds.
    pub p99_us: i64,
    /// Exact mean, microseconds.
    pub mean_us: f64,
}

fn direction_lens(req: &IoRequest) -> Lens {
    if req.direction.is_read() {
        Lens::Reads
    } else {
        Lens::Writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vscsi::{IoDirection, Lba, RequestId, TargetId};

    fn mk(id: u64, dir: IoDirection, lba: u64, sectors: u32, t_us: u64) -> IoRequest {
        IoRequest::new(
            RequestId(id),
            TargetId::default(),
            dir,
            Lba::new(lba),
            sectors,
            SimTime::from_micros(t_us),
        )
    }

    #[test]
    fn length_histogram_read_write_split() {
        let mut c = IoStatsCollector::default();
        c.on_issue(&mk(0, IoDirection::Read, 0, 8, 0)); // 4096 B
        c.on_issue(&mk(1, IoDirection::Write, 100, 16, 10)); // 8192 B
        let all = c.histogram(Metric::IoLength, Lens::All);
        assert_eq!(all.total(), 2);
        let reads = c.histogram(Metric::IoLength, Lens::Reads);
        let writes = c.histogram(Metric::IoLength, Lens::Writes);
        assert_eq!(reads.total(), 1);
        assert_eq!(writes.total(), 1);
        assert_eq!(reads.count(reads.edges().bin_index(4096)), 1);
        assert_eq!(writes.count(writes.edges().bin_index(8192)), 1);
    }

    #[test]
    fn lens_histograms_sum_to_all() {
        let mut c = IoStatsCollector::default();
        let mut t = 0;
        for i in 0..200u64 {
            let dir = if i % 3 == 0 {
                IoDirection::Read
            } else {
                IoDirection::Write
            };
            c.on_issue(&mk(i, dir, i * 64, 8, t));
            t += 50;
        }
        for metric in Metric::ALL {
            if metric == Metric::Latency {
                continue; // nothing completed yet
            }
            let all = c.histogram(metric, Lens::All);
            let r = c.histogram(metric, Lens::Reads);
            let w = c.histogram(metric, Lens::Writes);
            // Per-direction seek-distance histograms measure intra-stream
            // distances, so their *bin counts* need not sum to All; totals
            // still must (each command contributes once per lens).
            if metric == Metric::SeekDistance {
                assert_eq!(all.total(), 199);
                assert_eq!(
                    r.total() + w.total(),
                    199 - 1,
                    "each direction's first I/O has no predecessor"
                );
                continue;
            }
            assert_eq!(r.total() + w.total(), all.total(), "{metric}");
            // Outstanding-I/O lenses count same-direction queue depth, so
            // only the totals (not the per-bin counts) match All.
            if metric == Metric::OutstandingIos {
                continue;
            }
            for i in 0..all.counts().len() {
                assert_eq!(r.count(i) + w.count(i), all.count(i), "{metric} bin {i}");
            }
        }
    }

    #[test]
    fn sequential_stream_peaks_at_one() {
        let mut c = IoStatsCollector::default();
        for i in 0..100u64 {
            c.on_issue(&mk(i, IoDirection::Read, i * 8, 8, i * 100));
        }
        let seek = c.histogram(Metric::SeekDistance, Lens::All);
        let idx = seek.edges().bin_index(1);
        assert_eq!(seek.count(idx), 99);
        assert_eq!(seek.mode_bin(), Some(idx));
    }

    #[test]
    fn windowed_seek_unmasks_interleaved_streams() {
        let mut c = IoStatsCollector::default();
        let mut id = 0;
        let mut t = 0;
        for i in 0..50u64 {
            c.on_issue(&mk(id, IoDirection::Read, i * 8, 8, t));
            id += 1;
            t += 100;
            c.on_issue(&mk(id, IoDirection::Read, 5_000_000 + i * 8, 8, t));
            id += 1;
            t += 100;
        }
        let plain = c.histogram(Metric::SeekDistance, Lens::All);
        let windowed = c.histogram(Metric::SeekDistanceWindowed, Lens::All);
        let one = plain.edges().bin_index(1);
        // Plain histogram sees almost no distance-1 transitions...
        assert!(plain.count(one) < 5);
        // ...while the windowed histogram sees nearly all of them.
        assert!(
            windowed.count(one) > 90,
            "windowed seq count = {}",
            windowed.count(one)
        );
    }

    #[test]
    fn interarrival_recorded_in_microseconds() {
        let mut c = IoStatsCollector::default();
        c.on_issue(&mk(0, IoDirection::Read, 0, 8, 0));
        c.on_issue(&mk(1, IoDirection::Read, 8, 8, 250));
        c.on_issue(&mk(2, IoDirection::Read, 16, 8, 1250));
        let h = c.histogram(Metric::Interarrival, Lens::All);
        assert_eq!(h.total(), 2);
        assert_eq!(h.mean(), Some((250.0 + 1000.0) / 2.0));
    }

    #[test]
    fn outstanding_counts_other_ios() {
        let mut c = IoStatsCollector::default();
        let r0 = mk(0, IoDirection::Write, 0, 8, 0);
        let r1 = mk(1, IoDirection::Write, 8, 8, 10);
        let r2 = mk(2, IoDirection::Write, 16, 8, 20);
        c.on_issue(&r0); // 0 others
        c.on_issue(&r1); // 1 other
        c.on_issue(&r2); // 2 others
        assert_eq!(c.outstanding_now(), 3);
        let h = c.histogram(Metric::OutstandingIos, Lens::All);
        assert_eq!(h.mean(), Some(1.0)); // 0,1,2
        c.on_complete(&IoCompletion::new(r0, SimTime::from_micros(100)));
        assert_eq!(c.outstanding_now(), 2);
        c.on_complete(&IoCompletion::new(r1, SimTime::from_micros(110)));
        c.on_complete(&IoCompletion::new(r2, SimTime::from_micros(120)));
        assert_eq!(c.outstanding_now(), 0);
        assert_eq!(c.completed_commands(), 3);
    }

    #[test]
    fn latency_histogram_microseconds() {
        let mut c = IoStatsCollector::default();
        let r = mk(0, IoDirection::Read, 0, 8, 100);
        c.on_issue(&r);
        c.on_complete(&IoCompletion::new(r, SimTime::from_micros(5_100)));
        let h = c.histogram(Metric::Latency, Lens::All);
        assert_eq!(h.total(), 1);
        assert_eq!(h.mean(), Some(5_000.0));
        assert_eq!(c.histogram(Metric::Latency, Lens::Reads).total(), 1);
        assert_eq!(c.histogram(Metric::Latency, Lens::Writes).total(), 0);
    }

    #[test]
    fn read_fraction_and_bytes() {
        let mut c = IoStatsCollector::default();
        assert_eq!(c.read_fraction(), None);
        c.on_issue(&mk(0, IoDirection::Read, 0, 8, 0));
        c.on_issue(&mk(1, IoDirection::Read, 8, 8, 1));
        c.on_issue(&mk(2, IoDirection::Write, 16, 16, 2));
        assert_eq!(c.read_fraction(), Some(2.0 / 3.0));
        assert_eq!(c.bytes_read(), 8192);
        assert_eq!(c.bytes_written(), 8192);
    }

    #[test]
    fn series_track_time_intervals() {
        let mut c = IoStatsCollector::new(CollectorConfig::paper_figures());
        for i in 0..10u64 {
            let r = mk(i, IoDirection::Read, i * 8, 8, i * 2_000_000); // every 2 s
            c.on_issue(&r);
            c.on_complete(&IoCompletion::new(
                r,
                SimTime::from_micros(i * 2_000_000 + 300),
            ));
        }
        let lat = c.latency_series().unwrap();
        assert_eq!(lat.interval_count(), 4); // 18 s / 6 s
        assert_eq!(lat.total(), 10);
        let oio = c.outstanding_series().unwrap();
        assert_eq!(oio.total(), 10);
    }

    #[test]
    fn seek_latency_correlation_extension() {
        let cfg = CollectorConfig {
            correlate_seek_latency: true,
            ..Default::default()
        };
        let mut c = IoStatsCollector::new(cfg);
        let r0 = mk(0, IoDirection::Read, 0, 8, 0);
        c.on_issue(&r0);
        c.on_complete(&IoCompletion::new(r0, SimTime::from_micros(100)));
        // First I/O has no seek distance, so nothing recorded yet.
        assert_eq!(c.seek_latency_histogram().unwrap().total(), 0);
        let r1 = mk(1, IoDirection::Read, 8, 8, 200);
        c.on_issue(&r1);
        c.on_complete(&IoCompletion::new(r1, SimTime::from_micros(400)));
        assert_eq!(c.seek_latency_histogram().unwrap().total(), 1);
    }

    #[test]
    fn reset_clears_but_keeps_outstanding() {
        let mut c = IoStatsCollector::default();
        let r0 = mk(0, IoDirection::Read, 0, 8, 0);
        c.on_issue(&r0);
        c.on_issue(&mk(1, IoDirection::Read, 8, 8, 10));
        c.reset();
        assert_eq!(c.issued_commands(), 0);
        assert_eq!(c.histogram(Metric::IoLength, Lens::All).total(), 0);
        // In-flight commands remain in flight across a reset.
        assert_eq!(c.outstanding_now(), 2);
        c.on_complete(&IoCompletion::new(r0, SimTime::from_micros(50)));
        assert_eq!(c.outstanding_now(), 1);
        assert_eq!(c.histogram(Metric::Latency, Lens::All).total(), 1);
    }

    #[test]
    fn latency_percentiles_summary() {
        let mut c = IoStatsCollector::default();
        assert!(c.latency_percentiles().is_none());
        // 90 fast completions, 9 medium, 1 slow.
        let mut issue = |i: u64, lat_us: u64| {
            let r = mk(i, IoDirection::Read, i * 8, 8, i * 1_000);
            c.on_issue(&r);
            c.on_complete(&IoCompletion::new(
                r,
                SimTime::from_micros(i * 1_000 + lat_us),
            ));
        };
        for i in 0..90 {
            issue(i, 300);
        }
        for i in 90..99 {
            issue(i, 8_000);
        }
        issue(99, 60_000);
        let p = c.latency_percentiles().unwrap();
        // 300 us lands in the (100, 500] bin; the 90th order statistic of
        // 100 samples is still one of the 90 fast ones.
        assert_eq!(p.p50_us, 500);
        assert_eq!(p.p90_us, 500);
        assert_eq!(p.p99_us, 15_000);
        assert!(p.p50_us <= p.p90_us && p.p90_us <= p.p99_us);
        assert!((p.mean_us - (90.0 * 300.0 + 9.0 * 8_000.0 + 60_000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn negative_interarrival_saturates_and_counts_anomaly() {
        let mut c = IoStatsCollector::default();
        c.on_issue(&mk(0, IoDirection::Read, 0, 8, 100));
        c.on_issue(&mk(1, IoDirection::Read, 8, 8, 40)); // clock ran backwards
        assert_eq!(c.clock_anomalies(), 1);
        {
            let h = c.histogram(Metric::Interarrival, Lens::All);
            assert_eq!(h.total(), 1);
            assert_eq!(h.mean(), Some(0.0), "delta saturates to zero");
        }
        // Forward progress afterwards is unaffected.
        c.on_issue(&mk(2, IoDirection::Read, 16, 8, 140));
        assert_eq!(c.clock_anomalies(), 1);
        assert_eq!(c.histogram(Metric::Interarrival, Lens::All).total(), 2);
    }

    #[test]
    fn negative_latency_saturates_and_counts_anomaly() {
        use vscsi::ScsiStatus;
        let mut c = IoStatsCollector::default();
        let r = mk(0, IoDirection::Write, 0, 8, 500);
        c.on_issue(&r);
        // Completion stamped before issue — an observed-stream anomaly.
        let bad = IoCompletion::observed(r, SimTime::from_micros(100), ScsiStatus::Good);
        c.on_complete(&bad);
        assert_eq!(c.clock_anomalies(), 1);
        let h = c.histogram(Metric::Latency, Lens::All);
        assert_eq!(h.total(), 1);
        assert_eq!(h.mean(), Some(0.0), "latency saturates to zero");
        assert_eq!(c.outstanding_now(), 0);
    }

    #[test]
    fn error_completions_feed_error_histogram_not_latency() {
        use vscsi::{ScsiStatus, SenseKey};
        let mut c = IoStatsCollector::default();
        let ok = mk(0, IoDirection::Read, 0, 8, 0);
        c.on_issue(&ok);
        c.on_complete(&IoCompletion::new(ok, SimTime::from_micros(200)));
        assert_eq!(c.histogram(Metric::Errors, Lens::All).total(), 0);
        assert_eq!(c.error_commands(), 0);

        let bad = mk(1, IoDirection::Read, 8, 8, 300);
        c.on_issue(&bad);
        c.on_complete(&IoCompletion::with_status(
            bad,
            SimTime::from_micros(9_000),
            ScsiStatus::CheckCondition(SenseKey::MediumError),
        ));
        // Latency histogram only saw the good completion.
        let lat = c.histogram(Metric::Latency, Lens::All);
        assert_eq!(lat.total(), 1);
        assert_eq!(lat.mean(), Some(200.0));
        // The error landed in its outcome-code bin, under both lenses.
        let errs = c.histogram(Metric::Errors, Lens::All);
        assert_eq!(errs.total(), 1);
        let code = ScsiStatus::CheckCondition(SenseKey::MediumError).outcome_code();
        assert_eq!(errs.count(errs.edges().bin_index(code)), 1);
        assert_eq!(c.histogram(Metric::Errors, Lens::Reads).total(), 1);
        assert_eq!(c.histogram(Metric::Errors, Lens::Writes).total(), 0);
        // Bookkeeping still counts the command as completed.
        assert_eq!(c.completed_commands(), 2);
        assert_eq!(c.error_commands(), 1);
        assert_eq!(c.outstanding_now(), 0);
    }

    #[test]
    fn error_completions_skip_series_and_correlation() {
        use vscsi::ScsiStatus;
        let cfg = CollectorConfig {
            series_interval: Some(SimDuration::from_secs(6)),
            correlate_seek_latency: true,
            ..Default::default()
        };
        let mut c = IoStatsCollector::new(cfg);
        let r0 = mk(0, IoDirection::Read, 0, 8, 0);
        c.on_issue(&r0);
        c.on_complete(&IoCompletion::new(r0, SimTime::from_micros(100)));
        let r1 = mk(1, IoDirection::Read, 8, 8, 200);
        c.on_issue(&r1);
        c.on_complete(&IoCompletion::with_status(
            r1,
            SimTime::from_micros(700),
            ScsiStatus::Busy,
        ));
        // Only the good completion reached the series…
        assert_eq!(c.latency_series().unwrap().total(), 1);
        // …and the 2-D correlation, whose in-flight slot was still retired.
        assert_eq!(c.seek_latency_histogram().unwrap().total(), 0);
        assert!(c.inflight_seeks.is_empty(), "error must not leak a slot");
    }

    #[test]
    fn reset_clears_error_and_anomaly_counters() {
        use vscsi::ScsiStatus;
        let mut c = IoStatsCollector::default();
        let r = mk(0, IoDirection::Read, 0, 8, 100);
        c.on_issue(&r);
        c.on_complete(&IoCompletion::observed(
            r,
            SimTime::ZERO,
            ScsiStatus::TaskAborted,
        ));
        assert_eq!(c.error_commands(), 1);
        assert_eq!(c.clock_anomalies(), 1);
        c.reset();
        assert_eq!(c.error_commands(), 0);
        assert_eq!(c.clock_anomalies(), 0);
        assert_eq!(c.histogram(Metric::Errors, Lens::All).total(), 0);
    }

    #[test]
    fn batched_ingest_equals_scalar_path() {
        use vscsi::{ScsiStatus, SenseKey};
        let cfg = CollectorConfig {
            series_interval: Some(SimDuration::from_secs(6)),
            correlate_seek_latency: true,
            ..Default::default()
        };
        let mut scalar = IoStatsCollector::new(cfg.clone());
        let mut batched = IoStatsCollector::new(cfg);

        // A deterministic torture stream: mixed directions, sequential
        // and far seeks, interleaved completions (some before their
        // chunk's later issues), errors, and one clock anomaly — sized so
        // chunks of INGEST_CHUNK land on ragged boundaries.
        let mut events: Vec<VscsiEvent> = Vec::new();
        let mut t: u64 = 0;
        for i in 0..101u64 {
            let dir = if i % 3 == 0 {
                IoDirection::Read
            } else {
                IoDirection::Write
            };
            let lba = if i % 5 == 0 { i * 1_000_003 } else { i * 8 };
            // One backwards clock step mid-stream.
            t = if i == 40 {
                t - 30
            } else {
                t + 37 + (i % 7) * 13
            };
            let req = mk(i, dir, lba % 10_000_000, 8 + (i % 3) as u32 * 8, t);
            events.push(VscsiEvent::Issue(req));
            let status = match i % 9 {
                7 => ScsiStatus::CheckCondition(SenseKey::MediumError),
                8 => ScsiStatus::Busy,
                _ => ScsiStatus::Good,
            };
            if i % 2 == 0 {
                events.push(VscsiEvent::Complete(IoCompletion::with_status(
                    req,
                    SimTime::from_micros(t + 200 + i * 11),
                    status,
                )));
            }
        }

        for event in &events {
            match event {
                VscsiEvent::Issue(req) => scalar.on_issue(req),
                VscsiEvent::Complete(c) => scalar.on_complete(c),
            }
        }
        batched.ingest_events(&events);

        for metric in Metric::ALL {
            for lens in [Lens::All, Lens::Reads, Lens::Writes] {
                assert_eq!(
                    scalar.histogram(metric, lens),
                    batched.histogram(metric, lens),
                    "{metric} diverged"
                );
            }
        }
        assert_eq!(scalar.issued_commands(), batched.issued_commands());
        assert_eq!(scalar.completed_commands(), batched.completed_commands());
        assert_eq!(scalar.error_commands(), batched.error_commands());
        assert_eq!(scalar.clock_anomalies(), batched.clock_anomalies());
        assert!(scalar.clock_anomalies() > 0, "anomaly case not exercised");
        assert_eq!(scalar.outstanding_now(), batched.outstanding_now());
        assert_eq!(scalar.bytes_read(), batched.bytes_read());
        assert_eq!(scalar.bytes_written(), batched.bytes_written());
        assert_eq!(
            scalar.latency_series().unwrap().total(),
            batched.latency_series().unwrap().total()
        );
        assert_eq!(
            scalar.outstanding_series().unwrap().total(),
            batched.outstanding_series().unwrap().total()
        );
        assert_eq!(
            scalar.seek_latency_histogram().unwrap().total(),
            batched.seek_latency_histogram().unwrap().total()
        );
    }

    #[test]
    fn slab_constants_match_registered_layouts() {
        let mut expected_base = 0usize;
        for metric in Metric::ALL {
            let m = metric_index(metric);
            assert_eq!(
                SLAB_BINS[m],
                layout_for(metric).bin_count(),
                "{metric}: SLAB_BINS out of sync with layout"
            );
            assert_eq!(SLAB_BASE[m], expected_base, "{metric}: SLAB_BASE");
            expected_base += LENSES * SLAB_BINS[m];
        }
        assert_eq!(SLAB_LEN, expected_base);
    }

    #[test]
    fn histogram_snapshots_materialize_from_slab() {
        let mut c = IoStatsCollector::default();
        let r = mk(0, IoDirection::Read, 0, 8, 0);
        c.on_issue(&r);
        c.on_complete(&IoCompletion::new(r, SimTime::from_micros(300)));
        // Two snapshots of the same state are equal but independent values.
        let a = c.histogram(Metric::Latency, Lens::All);
        let b = c.histogram(Metric::Latency, Lens::All);
        assert_eq!(a, b);
        assert_eq!(a.total(), 1);
        assert_eq!(a.min(), Some(300));
        assert_eq!(a.max(), Some(300));
        assert_eq!(a.mean(), Some(300.0));
        // The layout comes from the static registry, not a fresh Vec.
        let c2 = IoStatsCollector::default();
        assert!(std::ptr::eq(
            a.edges().edges(),
            c2.histogram(Metric::Latency, Lens::All).edges().edges()
        ));
    }

    #[test]
    fn memory_footprint_is_constant_in_command_count() {
        let mut c = IoStatsCollector::default();
        c.on_issue(&mk(0, IoDirection::Read, 0, 8, 0));
        let after_one = c.memory_footprint_bytes();
        for i in 1..10_000u64 {
            let r = mk(i, IoDirection::Read, (i * 97) % 100_000, 8, i * 10);
            c.on_issue(&r);
            c.on_complete(&IoCompletion::new(r, SimTime::from_micros(i * 10 + 5)));
        }
        assert_eq!(c.memory_footprint_bytes(), after_one);
        // And it is small: well under 64 KiB.
        assert!(after_one < 64 * 1024, "footprint = {after_one}");
    }
}
