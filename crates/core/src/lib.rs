//! # vscsi-stats — online disk I/O workload characterization
//!
//! The primary contribution of *"Easy and Efficient Disk I/O Workload
//! Characterization in VMware ESX Server"* (IISWC 2007): transparent,
//! online collection of essential disk-workload characteristics for
//! arbitrary, unmodified guests, done at the hypervisor's virtual SCSI
//! layer with constant space and O(1) work per command.
//!
//! * [`IoStatsCollector`] — per-(VM, virtual disk) histograms of I/O
//!   length, signed seek distance, windowed (min-of-last-N) seek distance,
//!   interarrival time, outstanding I/Os and device latency, each split
//!   into all/reads/writes ([`Metric`] × [`Lens`]).
//! * [`StatsService`] — the host-wide enable/disable registry with the
//!   `vscsiStats`-style command interface, sharded so concurrent VMs
//!   ingest without contending and the disabled path takes no locks
//!   (batch ingestion via [`VscsiEvent`] slices).
//! * [`pipeline`] — thread-per-core ingest: lock-free SPSC lanes
//!   ([`spsc`]) feeding aggregator workers that own disjoint shard
//!   sets, with ring-full shedding folded into the sentinel ledger.
//! * [`sentinel`] — supervision for the always-on promise: an overload
//!   governor with a deterministic degradation ladder, watchdog
//!   heartbeats, and panic quarantine with salvage, surfaced through
//!   [`HealthSnapshot`].
//! * [`VscsiTracer`] / [`replay`] — the command tracing framework for
//!   analyses that need more than histograms, plus offline replay (which
//!   reproduces the online histograms exactly).
//! * [`report`] — figure-style text reports and CSV dumps.
//!
//! # Examples
//!
//! ```
//! use simkit::SimTime;
//! use vscsi::{IoCompletion, IoDirection, IoRequest, Lba, RequestId, TargetId};
//! use vscsi_stats::{IoStatsCollector, Lens, Metric};
//!
//! let mut stats = IoStatsCollector::default();
//!
//! // A guest issues a sequential run of 16 KiB reads...
//! let mut t = SimTime::ZERO;
//! for i in 0..64u64 {
//!     let req = IoRequest::new(
//!         RequestId(i), TargetId::default(), IoDirection::Read,
//!         Lba::new(i * 32), 32, t,
//!     );
//!     stats.on_issue(&req);
//!     t = t + simkit::SimDuration::from_micros(200);
//!     stats.on_complete(&IoCompletion::new(req, t));
//! }
//!
//! // ...and the histograms identify it: all 16 KiB, sequential.
//! let len = stats.histogram(Metric::IoLength, Lens::All);
//! assert_eq!(len.count(len.edges().bin_index(16_384)), 64);
//! let seek = stats.histogram(Metric::SeekDistance, Lens::All);
//! assert_eq!(seek.mode_bin(), Some(seek.edges().bin_index(1)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod checkpoint;
mod collector;
pub mod crc32;
pub mod fingerprint;
mod inflight;
mod metrics;
pub mod pipeline;
pub mod report;
pub mod sentinel;
mod service;
pub mod spsc;
mod trace;
pub mod varint;

pub use checkpoint::{
    load_latest, CheckpointConfig, CheckpointDaemon, CheckpointFile, CheckpointHealth,
    CheckpointLedger, CheckpointMedium, CheckpointSupervisor, CheckpointWrite, FsMedium,
    RecoveredCheckpoint, ServiceCheckpoint, TargetCheckpoint, WriteTaint,
};
pub use collector::{
    AggState, CollectorConfig, CollectorState, HistogramState, IoStatsCollector, LatencyPercentiles,
};
pub use fingerprint::{recommendations, FingerprintLibrary, WorkloadClass, WorkloadFingerprint};
pub use inflight::InflightTable;
pub use metrics::{Lens, Metric};
pub use pipeline::{IngestPipeline, PipelineConfig, PipelineProducer, PipelineReport};
pub use sentinel::{
    ChaosSpec, DegradeLevel, HealthSnapshot, LoadCounters, SalvageRecord, SalvagedTarget,
    SentinelConfig, SentinelState, ShardHealth, SinkHealth,
};
pub use service::{StatsService, TargetSummary, VscsiEvent};
pub use trace::{
    replay, ParseTraceError, TraceCapacity, TraceRecord, TraceSink, VecSink, VscsiTracer,
};
