//! Offline trace analyses — the questions histograms cannot answer.
//!
//! §3.6 of the paper draws the line precisely: "any metric that cannot be
//! computed efficiently or in constant time and space per input command is
//! not a good candidate for [the online] technique. For example, online
//! temporal locality estimation is difficult to obtain in constant time
//! and is not implemented. We could estimate temporal locality under a max
//! reuse distance by keeping logical addresses of recent commands up to
//! that value." This module implements exactly those analyses *offline*,
//! over traces captured by [`VscsiTracer`](crate::VscsiTracer):
//!
//! * [`reuse_distance_histogram`] — temporal locality as LRU stack
//!   distances, bounded by a max window;
//! * [`burst_histogram`] — arrival burst sizes under an idle-gap threshold;
//! * [`hot_regions`] — the most-touched address regions (skew detection).

use crate::trace::TraceRecord;
use histo::{BinEdges, Histogram};
use simkit::SimDuration;

/// Bin layout for reuse distances: powers of two up to the window size,
/// with the overflow bin meaning "no reuse within the window" (cold or
/// too-distant).
fn reuse_edges(max_window: usize) -> BinEdges {
    let mut edges = vec![0i64];
    let mut e = 1i64;
    while (e as usize) < max_window {
        edges.push(e);
        e *= 2;
    }
    edges.push(max_window as i64);
    BinEdges::new(edges).expect("strictly increasing by construction")
}

/// Computes the temporal-locality (LRU stack distance) histogram of a
/// trace, at `block_sectors` granularity, remembering at most
/// `max_window` distinct recently-touched blocks (the paper's "max reuse
/// distance" bound).
///
/// The value recorded per command is the number of *distinct* blocks
/// touched since the previous access to the same block: 0 means an
/// immediate re-reference; the overflow bin (`> max_window`) collects
/// first-ever touches and reuses beyond the window.
///
/// # Panics
///
/// Panics if `block_sectors` or `max_window` is zero.
pub fn reuse_distance_histogram(
    records: &[TraceRecord],
    block_sectors: u64,
    max_window: usize,
) -> Histogram {
    assert!(block_sectors > 0, "block granularity must be positive");
    assert!(max_window > 0, "window must be positive");
    let mut h = Histogram::new(reuse_edges(max_window));
    // LRU stack of recently-touched block ids, most recent first.
    let mut stack: Vec<u64> = Vec::with_capacity(max_window);
    for r in records {
        let first = r.lba.sector() / block_sectors;
        let last = (r.lba.sector() + u64::from(r.num_sectors) - 1) / block_sectors;
        for block in first..=last {
            match stack.iter().position(|&b| b == block) {
                Some(depth) => {
                    h.record(depth as i64);
                    stack.remove(depth);
                }
                None => {
                    // Never seen within the window: overflow bin.
                    h.record(max_window as i64 + 1);
                    if stack.len() == max_window {
                        stack.pop();
                    }
                }
            }
            stack.insert(0, block);
        }
    }
    h
}

/// Computes the distribution of *burst sizes*: maximal runs of commands
/// whose inter-arrival gaps are all below `idle_gap`. A workload of
/// isolated commands yields bursts of size 1; batched issue (like a
/// background writer) yields large bursts.
///
/// # Panics
///
/// Panics if `idle_gap` is zero.
pub fn burst_histogram(records: &[TraceRecord], idle_gap: SimDuration) -> Histogram {
    assert!(!idle_gap.is_zero(), "idle gap must be positive");
    let mut h =
        Histogram::with_edges(vec![1, 2, 4, 8, 16, 32, 64, 128, 256]).expect("static layout");
    let mut sorted: Vec<u64> = records.iter().map(|r| r.issue_ns).collect();
    sorted.sort_unstable();
    let mut burst = 0i64;
    let mut prev: Option<u64> = None;
    for t in sorted {
        match prev {
            Some(p) if t.saturating_sub(p) < idle_gap.as_nanos() => burst += 1,
            Some(_) => {
                h.record(burst);
                burst = 1;
            }
            None => burst = 1,
        }
        prev = Some(t);
    }
    if burst > 0 {
        h.record(burst);
    }
    h
}

/// One hot region returned by [`hot_regions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotRegion {
    /// First sector of the region.
    pub start_sector: u64,
    /// Region length in sectors.
    pub len_sectors: u64,
    /// Commands that touched the region.
    pub touches: u64,
}

/// Finds the `k` most-touched fixed-size address regions of a trace —
/// popularity skew detection for data-placement decisions.
///
/// # Panics
///
/// Panics if `region_sectors` or `k` is zero.
pub fn hot_regions(records: &[TraceRecord], region_sectors: u64, k: usize) -> Vec<HotRegion> {
    assert!(region_sectors > 0 && k > 0);
    let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for r in records {
        *counts.entry(r.lba.sector() / region_sectors).or_insert(0) += 1;
    }
    let mut regions: Vec<HotRegion> = counts
        .into_iter()
        .map(|(idx, touches)| HotRegion {
            start_sector: idx * region_sectors,
            len_sectors: region_sectors,
            touches,
        })
        .collect();
    regions.sort_by(|a, b| {
        b.touches
            .cmp(&a.touches)
            .then(a.start_sector.cmp(&b.start_sector))
    });
    regions.truncate(k);
    regions
}

/// Fraction of touches landing in the top `k` regions — a single-number
/// skew summary (1.0 = everything in the top-k; uniform traffic over many
/// regions gives a small value).
pub fn top_k_concentration(records: &[TraceRecord], region_sectors: u64, k: usize) -> f64 {
    if records.is_empty() {
        return 0.0;
    }
    let top: u64 = hot_regions(records, region_sectors, k)
        .iter()
        .map(|r| r.touches)
        .sum();
    top as f64 / records.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vscsi::{IoDirection, Lba, TargetId};

    fn rec(serial: u64, sector: u64, sectors: u32, t_us: u64) -> TraceRecord {
        TraceRecord {
            serial,
            target: TargetId::default(),
            direction: IoDirection::Read,
            lba: Lba::new(sector),
            num_sectors: sectors,
            issue_ns: t_us * 1_000,
            complete_ns: None,
            complete_seq: None,
        }
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let trace = vec![rec(0, 0, 8, 0), rec(1, 0, 8, 10)];
        let h = reuse_distance_histogram(&trace, 8, 64);
        // First touch -> overflow; second touch -> distance 0.
        assert_eq!(h.total(), 2);
        assert_eq!(h.count(h.edges().bin_index(0)), 1);
        assert_eq!(h.count(h.edges().bin_count() - 1), 1);
    }

    #[test]
    fn stack_distance_counts_distinct_intervening_blocks() {
        // A, B, C, A: A's reuse distance is 2 (B and C touched in between).
        let trace = vec![
            rec(0, 0, 8, 0),
            rec(1, 80, 8, 1),
            rec(2, 160, 8, 2),
            rec(3, 0, 8, 3),
        ];
        let h = reuse_distance_histogram(&trace, 8, 64);
        assert_eq!(h.count(h.edges().bin_index(2)), 1);
        // Repeating B twice in a row collapses to 0, not 1.
        let trace2 = vec![rec(0, 80, 8, 0), rec(1, 80, 8, 1), rec(2, 80, 8, 2)];
        let h2 = reuse_distance_histogram(&trace2, 8, 64);
        assert_eq!(h2.count(h2.edges().bin_index(0)), 2);
    }

    #[test]
    fn window_bound_evicts_old_blocks() {
        // Touch 4 distinct blocks with window 2, then re-touch the first:
        // it must have been evicted -> overflow, not distance 3.
        let trace = vec![
            rec(0, 0, 8, 0),
            rec(1, 80, 8, 1),
            rec(2, 160, 8, 2),
            rec(3, 240, 8, 3),
            rec(4, 0, 8, 4),
        ];
        let h = reuse_distance_histogram(&trace, 8, 2);
        assert_eq!(
            h.count(h.edges().bin_count() - 1),
            5,
            "all cold in window 2"
        );
    }

    #[test]
    fn sequential_scan_never_reuses() {
        let trace: Vec<TraceRecord> = (0..100).map(|i| rec(i, i * 8, 8, i)).collect();
        let h = reuse_distance_histogram(&trace, 8, 64);
        assert_eq!(h.count(h.edges().bin_count() - 1), 100);
    }

    #[test]
    fn multi_block_commands_touch_each_block() {
        let trace = vec![rec(0, 0, 16, 0)]; // spans blocks 0 and 1
        let h = reuse_distance_histogram(&trace, 8, 16);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn burst_detection() {
        // Two bursts of 3 and 2, separated by a 10 ms gap.
        let trace = vec![
            rec(0, 0, 8, 0),
            rec(1, 8, 8, 100),
            rec(2, 16, 8, 200),
            rec(3, 0, 8, 20_000),
            rec(4, 8, 8, 20_100),
        ];
        let h = burst_histogram(&trace, SimDuration::from_millis(1));
        assert_eq!(h.total(), 2);
        assert_eq!(h.count(h.edges().bin_index(3)), 1);
        assert_eq!(h.count(h.edges().bin_index(2)), 1);
        assert!(burst_histogram(&[], SimDuration::from_millis(1)).is_empty());
    }

    #[test]
    fn hot_regions_rank_by_touches() {
        let mut trace = Vec::new();
        let mut serial = 0;
        // Region 0: 5 touches; region 10: 2; region 20: 1.
        for (region, n) in [(0u64, 5u64), (10, 2), (20, 1)] {
            for i in 0..n {
                trace.push(rec(serial, region * 1024 + i * 8, 8, serial));
                serial += 1;
            }
        }
        let top = hot_regions(&trace, 1024, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].start_sector, 0);
        assert_eq!(top[0].touches, 5);
        assert_eq!(top[1].start_sector, 10 * 1024);
        let conc = top_k_concentration(&trace, 1024, 1);
        assert!((conc - 5.0 / 8.0).abs() < 1e-12);
        assert_eq!(top_k_concentration(&[], 1024, 1), 0.0);
    }

    #[test]
    fn zipf_like_trace_concentrates() {
        // 80% of touches to one region, 20% spread.
        let mut trace = Vec::new();
        for i in 0..100u64 {
            let sector = if i % 5 != 0 { 0 } else { i * 100_000 };
            trace.push(rec(i, sector, 8, i));
        }
        assert!(top_k_concentration(&trace, 1024, 1) >= 0.8);
    }
}
