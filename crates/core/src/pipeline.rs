//! Thread-per-core ingest pipeline: lock-free SPSC lanes feeding pinned
//! aggregator workers that own disjoint shard sets.
//!
//! The sharded [`StatsService`](crate::StatsService) removed most lock
//! contention, but every producer still crosses a mutex per shard touch.
//! This module removes the mutexes from the hot path entirely:
//!
//! * Each producer thread holds a [`PipelineProducer`] with one bounded
//!   [`spsc`](crate::spsc) ring per aggregator (an N×M *lane mesh*).
//!   Writing an event is a shard-hash, an index, and a ring push — no
//!   shared locks, no CAS loops, no allocation.
//! * Each aggregator worker owns the shard indices `s` with
//!   `s % aggregators == self`, and is the *only* thread that ever locks
//!   those shards. It drains its lanes in batches of up to
//!   [`PipelineConfig::drain_batch`] events and applies them through
//!   [`StatsService::handle_batch`](crate::StatsService::handle_batch), so
//!   the per-shard mutex is uncontended by construction and the batched
//!   collector path (gather + SIMD-friendly binning) does the heavy work.
//!
//! Ordering: a lane is single-producer/single-consumer and routing is a
//! pure function of the target, so all events one producer emits for one
//! target arrive at its shard in emission order. With a single producer
//! the pipeline is therefore *bit-identical* to calling `handle_batch`
//! inline (the `pipeline_props` proptest pins this).
//!
//! Backpressure: ring occupancy is the overload signal. The blocking
//! offers yield until space frees; the lossy [`PipelineProducer::offer`]
//! drops on a full lane and books the drop per shard, and
//! [`IngestPipeline::finish`] folds those drops into the sentinel ledger
//! via [`StatsService::absorb_ring_sheds`](crate::StatsService::absorb_ring_sheds)
//! so the conservation identity `ingested + sampled_out + shed == offered`
//! holds end to end. Watchdog heartbeats come for free: the aggregator
//! drains through the supervised `handle_batch` path, which beats the
//! shard watchdog exactly as inline ingest does.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use crate::service::{StatsService, VscsiEvent};
use crate::spsc;

/// Shape of the thread-per-core pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Number of producer handles to create (one per ingesting thread).
    pub producers: usize,
    /// Number of aggregator worker threads; aggregator `a` owns every
    /// shard index `s` with `s % aggregators == a`.
    pub aggregators: usize,
    /// Capacity of each producer→aggregator lane, rounded up to a power
    /// of two by the ring.
    pub ring_capacity: usize,
    /// Maximum events an aggregator moves per lane visit. Small enough to
    /// stay fair across lanes, large enough to amortize the shard lock
    /// and feed the collector's batched ingest.
    pub drain_batch: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            producers: 1,
            aggregators: 2,
            ring_capacity: 1024,
            drain_batch: 16,
        }
    }
}

/// Counters shared between producers, aggregators, and the pipeline
/// handle. `pushed`/`processed` drive [`IngestPipeline::wait_idle`];
/// the rest feed the final [`PipelineReport`].
#[derive(Debug)]
struct PipelineShared {
    /// Events successfully published into some lane.
    pushed: AtomicU64,
    /// Events the aggregators have applied via `handle_batch`.
    processed: AtomicU64,
    /// Events offered to any producer handle (pushed + shed).
    offered: AtomicU64,
    /// Events dropped at a full lane by the lossy offer.
    shed: AtomicU64,
    /// Ring-full drops per shard index, folded into the sentinel ledger
    /// at [`IngestPipeline::finish`].
    sheds_by_shard: Box<[AtomicU64]>,
    /// Test/backpressure hook: while set, aggregators stop draining so
    /// lanes fill and the lossy offer path can be exercised.
    paused: AtomicBool,
    /// Set when the pipeline handle is dropped without `finish`, so
    /// workers exit instead of leaking.
    shutdown: AtomicBool,
}

/// Outcome of a pipeline run, returned by [`IngestPipeline::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineReport {
    /// Events offered to producer handles (`ingested + shed`).
    pub offered: u64,
    /// Events that reached an aggregator and were applied.
    pub ingested: u64,
    /// Events dropped at full lanes (already booked in the sentinel
    /// ledger as shed when the sentinel is armed).
    pub shed: u64,
}

/// A producer-side handle: one SPSC lane to every aggregator. Not
/// [`Sync`] — each ingesting thread takes its own handle.
#[derive(Debug)]
pub struct IngestPipeline {
    service: Arc<StatsService>,
    shared: Arc<PipelineShared>,
    workers: Vec<JoinHandle<()>>,
}

/// Per-thread event writer for the pipeline (one lane per aggregator).
#[derive(Debug)]
pub struct PipelineProducer {
    service: Arc<StatsService>,
    shared: Arc<PipelineShared>,
    lanes: Vec<spsc::Producer<VscsiEvent>>,
}

impl PipelineProducer {
    #[inline]
    fn route(&self, event: &VscsiEvent) -> (usize, usize) {
        let shard = self.service.shard_index_of(event.target());
        (shard, shard % self.lanes.len())
    }

    /// Lossy offer: publishes `event`, or drops it if the destination
    /// lane is full (booking the drop for the sentinel ledger). Returns
    /// whether the event was published. This is the real-time path — the
    /// vSCSI emulation layer must never stall on statistics.
    pub fn offer(&mut self, event: VscsiEvent) -> bool {
        let (shard, lane) = self.route(&event);
        self.shared.offered.fetch_add(1, Ordering::Relaxed);
        if self.lanes[lane].try_push(event) {
            self.shared.pushed.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            self.shared.sheds_by_shard[shard].fetch_add(1, Ordering::Relaxed);
            self.shared.shed.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Blocking offer: yields until the destination lane has space.
    /// Loses nothing; used by the simulator and benches where the
    /// workload is a finite script rather than a live device.
    pub fn offer_blocking(&mut self, event: VscsiEvent) {
        let (_, lane) = self.route(&event);
        self.shared.offered.fetch_add(1, Ordering::Relaxed);
        while !self.lanes[lane].try_push(event) {
            // One-CPU CI containers: spin_loop() never cedes the core, so
            // the aggregator could starve forever. Yield the timeslice.
            thread::yield_now();
        }
        self.shared.pushed.fetch_add(1, Ordering::Relaxed);
    }

    /// Blocking batch offer: groups consecutive same-lane events and
    /// publishes each run with a single release store, yielding while a
    /// lane is full. Per-target order is preserved (routing is a pure
    /// function of the target, and runs are published in input order).
    pub fn offer_batch_blocking(&mut self, events: &[VscsiEvent]) {
        let mut i = 0;
        while i < events.len() {
            let (_, lane) = self.route(&events[i]);
            let mut j = i + 1;
            while j < events.len() && self.route(&events[j]).1 == lane {
                j += 1;
            }
            let mut run = &events[i..j];
            self.shared
                .offered
                .fetch_add(run.len() as u64, Ordering::Relaxed);
            while !run.is_empty() {
                let pushed = self.lanes[lane].push_batch(run);
                self.shared
                    .pushed
                    .fetch_add(pushed as u64, Ordering::Relaxed);
                run = &run[pushed..];
                if !run.is_empty() {
                    thread::yield_now();
                }
            }
            i = j;
        }
    }

    /// Highest fill fraction across this producer's lanes, in percent —
    /// the pipeline's overload signal (a sustained high value means the
    /// aggregators are not keeping up and lossy offers will start
    /// shedding).
    pub fn occupancy_pct(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.len() as u64 * 100 / l.capacity() as u64)
            .max()
            .unwrap_or(0)
    }
}

impl IngestPipeline {
    /// Starts the aggregator workers and returns the pipeline handle plus
    /// one [`PipelineProducer`] per configured producer. Hand each
    /// producer to its ingesting thread; when ingestion is done, pass
    /// them all back to [`IngestPipeline::finish`].
    pub fn start(
        service: Arc<StatsService>,
        config: PipelineConfig,
    ) -> (IngestPipeline, Vec<PipelineProducer>) {
        let producers = config.producers.max(1);
        let aggregators = config.aggregators.max(1);
        let drain_batch = config.drain_batch.clamp(1, 1024);
        let shared = Arc::new(PipelineShared {
            pushed: AtomicU64::new(0),
            processed: AtomicU64::new(0),
            offered: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            sheds_by_shard: (0..service.shard_count())
                .map(|_| AtomicU64::new(0))
                .collect(),
            paused: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        });

        // Build the N×M lane mesh: lanes[p][a] connects producer p to
        // aggregator a.
        let mut producer_handles = Vec::with_capacity(producers);
        let mut consumer_rows: Vec<Vec<spsc::Consumer<VscsiEvent>>> = (0..aggregators)
            .map(|_| Vec::with_capacity(producers))
            .collect();
        for _ in 0..producers {
            let mut lanes = Vec::with_capacity(aggregators);
            for row in consumer_rows.iter_mut() {
                let (tx, rx) = spsc::ring::<VscsiEvent>(config.ring_capacity);
                lanes.push(tx);
                row.push(rx);
            }
            producer_handles.push(PipelineProducer {
                service: Arc::clone(&service),
                shared: Arc::clone(&shared),
                lanes,
            });
        }

        let workers = consumer_rows
            .into_iter()
            .enumerate()
            .map(|(a, lanes)| {
                let service = Arc::clone(&service);
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("vscsi-agg-{a}"))
                    .spawn(move || aggregator_loop(service, shared, lanes, drain_batch))
                    .expect("spawn aggregator worker")
            })
            .collect();

        (
            IngestPipeline {
                service,
                shared,
                workers,
            },
            producer_handles,
        )
    }

    /// Stops the aggregators from draining (lanes fill up; lossy offers
    /// start shedding). Test/backpressure hook.
    pub fn pause(&self) {
        self.shared.paused.store(true, Ordering::Release);
    }

    /// Resumes draining after [`IngestPipeline::pause`].
    pub fn resume(&self) {
        self.shared.paused.store(false, Ordering::Release);
    }

    /// Blocks (yielding) until every event published so far has been
    /// applied by an aggregator. Call before reading histograms or health
    /// snapshots mid-run; the producers may keep publishing afterwards.
    pub fn wait_idle(&self) {
        while self.shared.processed.load(Ordering::Acquire)
            < self.shared.pushed.load(Ordering::Acquire)
        {
            thread::yield_now();
        }
    }

    /// Events dropped at full lanes so far.
    pub fn shed_so_far(&self) -> u64 {
        self.shared.shed.load(Ordering::Relaxed)
    }

    /// Drains and shuts down: drops the producer handles (closing every
    /// lane), joins the aggregators once all lanes are empty, folds the
    /// ring-full drops into the sentinel ledger, and reports the final
    /// event accounting. Producers that were already dropped elsewhere
    /// (e.g. moved into worker threads that have exited) may be omitted
    /// from `producers` — a lane also closes when its producer drops.
    pub fn finish(mut self, producers: Vec<PipelineProducer>) -> PipelineReport {
        drop(producers); // closes all lanes; aggregators drain and exit
        self.shared.paused.store(false, Ordering::Release);
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        let sheds: Vec<u64> = self
            .shared
            .sheds_by_shard
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect();
        self.service.absorb_ring_sheds(&sheds);
        PipelineReport {
            offered: self.shared.offered.load(Ordering::Relaxed),
            ingested: self.shared.processed.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
        }
    }
}

impl Drop for IngestPipeline {
    fn drop(&mut self) {
        // finish() already joined (workers is empty). Otherwise tell the
        // workers to exit at the next empty scan so threads don't leak,
        // even if some producer handle is still alive somewhere.
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.paused.store(false, Ordering::Release);
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Aggregator worker body: round-robin over this worker's lanes, moving
/// up to `drain_batch` events per visit into `handle_batch`. Exits when
/// every lane is closed and empty (normal finish) or on shutdown.
fn aggregator_loop(
    service: Arc<StatsService>,
    shared: Arc<PipelineShared>,
    mut lanes: Vec<spsc::Consumer<VscsiEvent>>,
    drain_batch: usize,
) {
    let mut buf: Vec<VscsiEvent> = Vec::with_capacity(drain_batch);
    loop {
        if shared.paused.load(Ordering::Acquire) {
            thread::yield_now();
            continue;
        }
        let mut drained = false;
        let mut all_done = true;
        for lane in lanes.iter_mut() {
            let n = lane.pop_chunk(&mut buf, drain_batch);
            if n > 0 {
                drained = true;
                service.handle_batch(&buf);
                shared.processed.fetch_add(n as u64, Ordering::Release);
                buf.clear();
            }
            if !(lane.is_closed() && lane.backlog() == 0) {
                all_done = false;
            }
        }
        if !drained {
            if all_done || shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::CollectorConfig;
    use crate::metrics::{Lens, Metric};
    use simkit::SimTime;
    use vscsi::{IoCompletion, IoDirection, IoRequest, Lba, RequestId, TargetId, VDiskId, VmId};

    fn event_script(targets: u32, per_target: u64) -> Vec<VscsiEvent> {
        let mut events = Vec::new();
        for i in 0..per_target {
            for t in 0..targets {
                let target = TargetId::new(VmId(t), VDiskId(0));
                let req = IoRequest::new(
                    RequestId(i * u64::from(targets) + u64::from(t)),
                    target,
                    if i % 3 == 0 {
                        IoDirection::Write
                    } else {
                        IoDirection::Read
                    },
                    Lba::new(i * 64),
                    16,
                    SimTime::from_micros(i * 50),
                );
                events.push(VscsiEvent::Issue(req));
                events.push(VscsiEvent::Complete(IoCompletion::new(
                    req,
                    SimTime::from_micros(i * 50 + 30),
                )));
            }
        }
        events
    }

    #[test]
    fn pipeline_matches_inline_ingest() {
        let events = event_script(4, 200);

        let inline = StatsService::new(CollectorConfig::default());
        inline.enable_all();
        inline.handle_batch(&events);

        let service = Arc::new(StatsService::new(CollectorConfig::default()));
        service.enable_all();
        let (pipeline, mut producers) =
            IngestPipeline::start(Arc::clone(&service), PipelineConfig::default());
        producers[0].offer_batch_blocking(&events);
        let report = pipeline.finish(producers);
        assert_eq!(report.shed, 0);
        assert_eq!(report.ingested, events.len() as u64);

        for target in inline.targets() {
            let a = inline.collector(target).expect("inline collector");
            let b = service.collector(target).expect("pipeline collector");
            for metric in Metric::ALL {
                for lens in [Lens::All, Lens::Reads, Lens::Writes] {
                    assert_eq!(
                        a.histogram(metric, lens),
                        b.histogram(metric, lens),
                        "{target}/{metric} diverged"
                    );
                }
            }
            assert_eq!(a.issued_commands(), b.issued_commands());
            assert_eq!(a.completed_commands(), b.completed_commands());
        }
    }

    #[test]
    fn wait_idle_sees_all_published_events() {
        let events = event_script(2, 50);
        let service = Arc::new(StatsService::new(CollectorConfig::default()));
        service.enable_all();
        let (pipeline, mut producers) = IngestPipeline::start(
            Arc::clone(&service),
            PipelineConfig {
                ring_capacity: 16,
                ..PipelineConfig::default()
            },
        );
        producers[0].offer_batch_blocking(&events);
        pipeline.wait_idle();
        let summaries = service.summaries();
        let total: u64 = summaries.iter().map(|s| s.issued).sum();
        assert_eq!(total, events.len() as u64 / 2);
        pipeline.finish(producers);
    }

    #[test]
    fn dropped_without_finish_does_not_hang() {
        let service = Arc::new(StatsService::new(CollectorConfig::default()));
        let (pipeline, producers) = IngestPipeline::start(service, PipelineConfig::default());
        // Keep producers alive past the drop: shutdown flag must stop the
        // workers even with open lanes.
        drop(pipeline);
        drop(producers);
    }
}
