//! The crash-consistency plane: durable `VSCKPT1` checkpoints of the
//! whole [`StatsService`], written atomically on a virtual-clock cadence,
//! restored on startup with zero loss up to the last durable snapshot.
//!
//! # The durability contract
//!
//! A checkpoint is one self-verifying file holding a complete
//! [`ServiceCheckpoint`]: every collector's exact state (the flat slab,
//! the exact aggregates, the seek window ring, the in-flight census, the
//! interval series, the 2-D correlation matrix), every shard governor's
//! posture and admission ledger, the retained salvage records, the
//! restart epoch, the fleet frame sequence, and each active tracer's
//! replay watermark. Restoring it rebuilds a service whose observable
//! surfaces — `FetchAllHistograms`, health, fleet frames — are
//! bit-identical to the checkpointed one.
//!
//! # Write discipline
//!
//! Every write follows the classic atomic-replace protocol:
//!
//! 1. encode the full frame (`VSCKPT1` magic ‖ length ‖ CRC ‖ payload);
//! 2. write it to a `.tmp` sibling;
//! 3. `fsync` the `.tmp` file;
//! 4. `rename` it over the final `ckpt-<seq>.vsckpt` name.
//!
//! A crash at any point leaves either the previous checkpoint intact or a
//! `.tmp` orphan that recovery ignores. A torn write, a dropped fsync, or
//! a reordered rename (all injectable through
//! [`CheckpointMedium`] — `faultkit` wraps it) at worst produces a file
//! whose CRC does not verify; [`load_latest`] skips it and falls back to
//! the next-newest durable checkpoint, so recovery *never* panics and
//! never loads a half-written snapshot.
//!
//! # Accounting
//!
//! Every attempt is booked in exactly one [`CheckpointLedger`] bucket:
//! `written + torn + fsync_dropped + io_errors == attempts`, always. The
//! taint channel ([`CheckpointWrite::taint`]) is how a fault-injecting
//! medium reports — for accounting only — that an apparently successful
//! write was silently sabotaged; the filesystem medium never taints.
//!
//! # Recovery invariant
//!
//! `recovered state == last durable checkpoint + replayable trace tail`.
//! The checkpoint stores, per traced target, the tracer's
//! `next_event_seq` watermark `W`. Trace records with `serial >= W` (and
//! completions with `complete_seq >= W`) happened after the snapshot;
//! replaying just those on top of the restored collectors reproduces the
//! pre-crash state exactly, because records below `W` are already inside
//! the checkpointed histograms and the checkpoint carries the in-flight
//! census needed to complete commands that were outstanding at snapshot
//! time. Only the tail *after the last durable trace block* is lost, and
//! it is booked as lost — never silently absorbed.

use crate::collector::{CollectorConfig, CollectorState, HistogramState};
use crate::crc32::crc32;
use crate::sentinel::{DegradeLevel, LoadCounters, SalvageRecord, SalvagedTarget, SentinelState};
use crate::service::StatsService;
use crate::varint::{self, unzigzag, unzigzag128, zigzag, zigzag128};
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use vscsi::{TargetId, VDiskId, VmId};

/// Magic prefix of every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"VSCKPT1\0";

/// File extension of a durable checkpoint.
pub const CHECKPOINT_EXTENSION: &str = "vsckpt";

/// One target's slice of a checkpoint: its collector state (if histogram
/// collection ever touched it) and, when a trace is active, the tracer's
/// replay watermark.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetCheckpoint {
    /// The (VM, disk) pair.
    pub target: TargetId,
    /// Complete collector export, when the target has a collector.
    pub collector: Option<CollectorState>,
    /// The tracer's `next_event_seq` at snapshot time, when a trace is
    /// active: recovery replays durable trace records with sequence at or
    /// above this on top of the restored collector.
    pub tracer_watermark: Option<u64>,
}

/// A complete, plain-data snapshot of a [`StatsService`] — what the
/// `VSCKPT1` codec persists and [`StatsService::from_checkpoint`]
/// restores. Produced by [`StatsService::checkpoint_snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceCheckpoint {
    /// The shared collector configuration (every collector in a service is
    /// built from the same template, so it is stored once).
    pub config: CollectorConfig,
    /// Restart epoch at snapshot time.
    pub epoch: u64,
    /// Fleet frame sequence at snapshot time (continued on restore).
    pub frame_seq: u64,
    /// Whether collection was enabled.
    pub enabled: bool,
    /// Whether the sentinel supervision layer was armed. The *config* is
    /// operator policy and is re-supplied at restore time; this flag lets
    /// recovery assert the policy was re-attached.
    pub sentinel_on: bool,
    /// Shard table size (a power of two; targets re-route identically).
    pub shard_count: u32,
    /// Total quarantine salvages, including beyond the retention cap.
    pub salvages_total: u64,
    /// Watchdog trips against shards.
    pub shard_watchdog_trips: u64,
    /// One governor state per shard, in shard order.
    pub sentinels: Vec<SentinelState>,
    /// Retained quarantine salvage records.
    pub salvages: Vec<SalvageRecord>,
    /// Every target with state, in target order.
    pub targets: Vec<TargetCheckpoint>,
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

/// Streaming decoder over a checkpoint payload: varint reads with
/// total-error handling (truncation and overlong encodings surface as
/// `Err`, never panics).
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn u64(&mut self) -> Result<u64, String> {
        varint::decode_u64(self.buf, &mut self.pos).ok_or_else(|| "truncated varint".to_owned())
    }

    fn usize_bounded(&mut self, what: &str, max: u64) -> Result<usize, String> {
        let v = self.u64()?;
        if v > max {
            return Err(format!("{what} {v} exceeds bound {max}"));
        }
        Ok(v as usize)
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(unzigzag(self.u64()?))
    }

    fn i128(&mut self) -> Result<i128, String> {
        let lo = self.u64()?;
        let hi = self.u64()?;
        Ok(unzigzag128(u128::from(lo) | (u128::from(hi) << 64)))
    }

    fn bool(&mut self) -> Result<bool, String> {
        match self.u64()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("invalid bool {other}")),
        }
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, String> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        u32::try_from(self.u64()?).map_err(|_| format!("{what} overflows u32"))
    }

    fn vec_u64(&mut self, what: &str, max: u64) -> Result<Vec<u64>, String> {
        let n = self.usize_bounded(what, max)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    fn done(&self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after checkpoint payload",
                self.buf.len() - self.pos
            ))
        }
    }
}

fn put_u64(v: u64, out: &mut Vec<u8>) {
    varint::encode_u64(v, out);
}

fn put_i64(v: i64, out: &mut Vec<u8>) {
    put_u64(zigzag(v), out);
}

fn put_i128(v: i128, out: &mut Vec<u8>) {
    let z = zigzag128(v);
    put_u64(z as u64, out);
    put_u64((z >> 64) as u64, out);
}

fn put_bool(v: bool, out: &mut Vec<u8>) {
    put_u64(u64::from(v), out);
}

fn put_opt_u64(v: Option<u64>, out: &mut Vec<u8>) {
    match v {
        Some(v) => {
            put_bool(true, out);
            put_u64(v, out);
        }
        None => put_bool(false, out),
    }
}

fn put_vec_u64(values: &[u64], out: &mut Vec<u8>) {
    put_u64(values.len() as u64, out);
    for &v in values {
        put_u64(v, out);
    }
}

/// Sanity bound on decoded collection lengths: no legitimate checkpoint
/// holds more than this many elements in any one vector, so a corrupt
/// length varint fails fast instead of attempting a huge allocation.
const MAX_LEN: u64 = 1 << 24;

fn put_histogram_state(h: &HistogramState, out: &mut Vec<u8>) {
    put_vec_u64(&h.counts, out);
    put_i128(h.sum, out);
    match h.min_max {
        Some((min, max)) => {
            put_bool(true, out);
            put_i64(min, out);
            put_i64(max, out);
        }
        None => put_bool(false, out),
    }
}

fn get_histogram_state(d: &mut Dec<'_>) -> Result<HistogramState, String> {
    let counts = d.vec_u64("interval bins", MAX_LEN)?;
    let sum = d.i128()?;
    let min_max = if d.bool()? {
        Some((d.i64()?, d.i64()?))
    } else {
        None
    };
    Ok(HistogramState {
        counts,
        sum,
        min_max,
    })
}

fn put_collector_state(s: &CollectorState, out: &mut Vec<u8>) {
    // The config is intentionally absent: all of a service's collectors
    // share its config template, stored once at the checkpoint level.
    put_vec_u64(&s.slab, out);
    put_u64(s.aggs.len() as u64, out);
    for a in &s.aggs {
        put_u64(a.total, out);
        put_i128(a.sum, out);
        put_i64(a.min, out);
        put_i64(a.max, out);
    }
    put_vec_u64(&s.window_ends, out);
    put_u64(s.window_cursor, out);
    put_u64(s.window_filled, out);
    put_opt_u64(s.last_end_block, out);
    put_opt_u64(s.last_end_block_by_dir[0], out);
    put_opt_u64(s.last_end_block_by_dir[1], out);
    put_opt_u64(s.last_arrival_ns, out);
    put_u64(u64::from(s.outstanding), out);
    put_u64(u64::from(s.outstanding_by_dir[0]), out);
    put_u64(u64::from(s.outstanding_by_dir[1]), out);
    put_u64(s.issued_commands, out);
    put_u64(s.completed_commands, out);
    put_u64(s.error_commands, out);
    put_u64(s.clock_anomalies, out);
    put_u64(s.bytes_read, out);
    put_u64(s.bytes_written, out);
    put_u64(s.latency_intervals.len() as u64, out);
    for h in &s.latency_intervals {
        put_histogram_state(h, out);
    }
    put_u64(s.outstanding_intervals.len() as u64, out);
    for h in &s.outstanding_intervals {
        put_histogram_state(h, out);
    }
    // In-flight census: keys are sorted, so delta-encode them.
    put_u64(s.inflight_seeks.len() as u64, out);
    let mut prev = 0u64;
    for &(key, seek) in &s.inflight_seeks {
        put_u64(varint::delta(prev, key), out);
        put_i64(seek, out);
        prev = key;
    }
    match &s.seek_latency_counts {
        Some(counts) => {
            put_bool(true, out);
            put_vec_u64(counts, out);
        }
        None => put_bool(false, out),
    }
}

fn get_collector_state(
    d: &mut Dec<'_>,
    config: &CollectorConfig,
) -> Result<CollectorState, String> {
    let slab = d.vec_u64("slab", MAX_LEN)?;
    let agg_count = d.usize_bounded("agg count", MAX_LEN)?;
    let mut aggs = Vec::with_capacity(agg_count);
    for _ in 0..agg_count {
        aggs.push(crate::collector::AggState {
            total: d.u64()?,
            sum: d.i128()?,
            min: d.i64()?,
            max: d.i64()?,
        });
    }
    let window_ends = d.vec_u64("window ring", MAX_LEN)?;
    let window_cursor = d.u64()?;
    let window_filled = d.u64()?;
    let last_end_block = d.opt_u64()?;
    let last_end_block_by_dir = [d.opt_u64()?, d.opt_u64()?];
    let last_arrival_ns = d.opt_u64()?;
    let outstanding = d.u32("outstanding")?;
    let outstanding_by_dir = [d.u32("outstanding[r]")?, d.u32("outstanding[w]")?];
    let issued_commands = d.u64()?;
    let completed_commands = d.u64()?;
    let error_commands = d.u64()?;
    let clock_anomalies = d.u64()?;
    let bytes_read = d.u64()?;
    let bytes_written = d.u64()?;
    let lat_count = d.usize_bounded("latency intervals", MAX_LEN)?;
    let mut latency_intervals = Vec::with_capacity(lat_count);
    for _ in 0..lat_count {
        latency_intervals.push(get_histogram_state(d)?);
    }
    let oio_count = d.usize_bounded("outstanding intervals", MAX_LEN)?;
    let mut outstanding_intervals = Vec::with_capacity(oio_count);
    for _ in 0..oio_count {
        outstanding_intervals.push(get_histogram_state(d)?);
    }
    let inflight_count = d.usize_bounded("inflight census", MAX_LEN)?;
    let mut inflight_seeks = Vec::with_capacity(inflight_count);
    let mut prev = 0u64;
    for _ in 0..inflight_count {
        let key = varint::apply_delta(prev, d.u64()?);
        let seek = d.i64()?;
        inflight_seeks.push((key, seek));
        prev = key;
    }
    let seek_latency_counts = if d.bool()? {
        Some(d.vec_u64("2-D matrix", MAX_LEN)?)
    } else {
        None
    };
    let state = CollectorState {
        config: config.clone(),
        slab,
        aggs,
        window_ends,
        window_cursor,
        window_filled,
        last_end_block,
        last_end_block_by_dir,
        last_arrival_ns,
        outstanding,
        outstanding_by_dir,
        issued_commands,
        completed_commands,
        error_commands,
        clock_anomalies,
        bytes_read,
        bytes_written,
        latency_intervals,
        outstanding_intervals,
        inflight_seeks,
        seek_latency_counts,
    };
    state.validate()?;
    Ok(state)
}

fn put_sentinel_state(s: &SentinelState, out: &mut Vec<u8>) {
    put_u64(s.level.index() as u64, out);
    put_u64(s.window_start_ns, out);
    put_u64(s.window_events, out);
    put_u64(u64::from(s.calm_windows), out);
    put_u64(s.level_transitions, out);
    put_u64(s.memory_bytes, out);
    put_u64(u64::from(s.chaos_fired), out);
    put_u64(s.generation, out);
    let c = &s.counters;
    put_u64(c.offered, out);
    put_u64(c.ingested, out);
    put_u64(c.sampled_out, out);
    put_u64(c.shed, out);
    for &v in &c.offered_at_level {
        put_u64(v, out);
    }
    put_u64(c.light_events, out);
    put_u64(c.light_bytes, out);
    put_u64(c.stale_completions, out);
    put_u64(c.quarantines, out);
}

fn get_sentinel_state(d: &mut Dec<'_>) -> Result<SentinelState, String> {
    let level = DegradeLevel::from_index(d.usize_bounded("degrade level", 3)?)
        .ok_or_else(|| "invalid degrade level".to_owned())?;
    let window_start_ns = d.u64()?;
    let window_events = d.u64()?;
    let calm_windows = d.u32("calm windows")?;
    let level_transitions = d.u64()?;
    let memory_bytes = d.u64()?;
    let chaos_fired = d.u32("chaos fired")?;
    let generation = d.u64()?;
    let counters = LoadCounters {
        offered: d.u64()?,
        ingested: d.u64()?,
        sampled_out: d.u64()?,
        shed: d.u64()?,
        offered_at_level: [d.u64()?, d.u64()?, d.u64()?, d.u64()?],
        light_events: d.u64()?,
        light_bytes: d.u64()?,
        stale_completions: d.u64()?,
        quarantines: d.u64()?,
    };
    Ok(SentinelState {
        level,
        window_start_ns,
        window_events,
        calm_windows,
        level_transitions,
        memory_bytes,
        chaos_fired,
        generation,
        counters,
    })
}

impl ServiceCheckpoint {
    /// Encodes this checkpoint (tagged with the monotonic checkpoint
    /// sequence number `seq`) as a complete self-verifying `VSCKPT1`
    /// frame: magic ‖ `payload_len:u32le` ‖
    /// `crc32(magic ‖ payload):u32le` ‖ payload.
    pub fn encode(&self, seq: u64) -> Vec<u8> {
        let mut p = Vec::with_capacity(4096);
        put_u64(seq, &mut p);
        put_u64(self.epoch, &mut p);
        put_u64(self.frame_seq, &mut p);
        put_bool(self.enabled, &mut p);
        put_bool(self.sentinel_on, &mut p);
        put_u64(u64::from(self.shard_count), &mut p);
        put_u64(self.salvages_total, &mut p);
        put_u64(self.shard_watchdog_trips, &mut p);
        put_u64(self.config.window_capacity as u64, &mut p);
        put_opt_u64(self.config.series_interval.map(|d| d.as_nanos()), &mut p);
        put_bool(self.config.correlate_seek_latency, &mut p);
        put_u64(self.sentinels.len() as u64, &mut p);
        for s in &self.sentinels {
            put_sentinel_state(s, &mut p);
        }
        put_u64(self.salvages.len() as u64, &mut p);
        for r in &self.salvages {
            put_u64(r.shard as u64, &mut p);
            put_u64(r.generation, &mut p);
            put_u64(r.at_ns, &mut p);
            put_u64(r.targets.len() as u64, &mut p);
            for t in &r.targets {
                put_u64(u64::from(t.target.vm.0), &mut p);
                put_u64(u64::from(t.target.disk.0), &mut p);
                put_u64(t.issued, &mut p);
                put_u64(t.completed, &mut p);
                put_u64(u64::from(t.outstanding), &mut p);
                put_vec_u64(&t.error_outcomes, &mut p);
            }
        }
        put_u64(self.targets.len() as u64, &mut p);
        for t in &self.targets {
            put_u64(u64::from(t.target.vm.0), &mut p);
            put_u64(u64::from(t.target.disk.0), &mut p);
            match &t.collector {
                Some(c) => {
                    put_bool(true, &mut p);
                    put_collector_state(c, &mut p);
                }
                None => put_bool(false, &mut p),
            }
            put_opt_u64(t.tracer_watermark, &mut p);
        }
        let mut out = Vec::with_capacity(16 + p.len());
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        let mut crc_input = Vec::with_capacity(8 + p.len());
        crc_input.extend_from_slice(&CHECKPOINT_MAGIC);
        crc_input.extend_from_slice(&p);
        out.extend_from_slice(&crc32(&crc_input).to_le_bytes());
        out.extend_from_slice(&p);
        out
    }

    /// Decodes a `VSCKPT1` frame into `(seq, checkpoint)`. Total: every
    /// corruption mode — truncation, bit flips, bad magic, bad lengths,
    /// structurally impossible states — returns `Err`, never panics, so a
    /// torn or sabotaged checkpoint file is safely skippable.
    pub fn decode(bytes: &[u8]) -> Result<(u64, ServiceCheckpoint), String> {
        if bytes.len() < 16 {
            return Err(format!("file too short ({} bytes)", bytes.len()));
        }
        if bytes[..8] != CHECKPOINT_MAGIC {
            return Err("bad magic".to_owned());
        }
        let payload_len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
        let crc_stored = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        let payload = bytes
            .get(16..16 + payload_len)
            .ok_or_else(|| "truncated payload".to_owned())?;
        if bytes.len() != 16 + payload_len {
            return Err(format!(
                "{} trailing bytes after frame",
                bytes.len() - 16 - payload_len
            ));
        }
        let mut crc_input = Vec::with_capacity(8 + payload.len());
        crc_input.extend_from_slice(&CHECKPOINT_MAGIC);
        crc_input.extend_from_slice(payload);
        if crc32(&crc_input) != crc_stored {
            return Err("CRC mismatch".to_owned());
        }
        let mut d = Dec {
            buf: payload,
            pos: 0,
        };
        let seq = d.u64()?;
        let epoch = d.u64()?;
        let frame_seq = d.u64()?;
        let enabled = d.bool()?;
        let sentinel_on = d.bool()?;
        let shard_count = d.u32("shard count")?;
        if shard_count == 0 || !shard_count.is_power_of_two() {
            return Err(format!("shard count {shard_count} not a power of two"));
        }
        let salvages_total = d.u64()?;
        let shard_watchdog_trips = d.u64()?;
        let window_capacity = d.usize_bounded("window capacity", MAX_LEN)?;
        if window_capacity == 0 {
            return Err("window capacity is zero".to_owned());
        }
        let series_interval = match d.opt_u64()? {
            Some(0) => return Err("zero series interval".to_owned()),
            Some(ns) => Some(simkit::SimDuration::from_nanos(ns)),
            None => None,
        };
        let correlate_seek_latency = d.bool()?;
        let config = CollectorConfig {
            window_capacity,
            series_interval,
            correlate_seek_latency,
        };
        let sentinel_count = d.usize_bounded("sentinel count", MAX_LEN)?;
        if sentinel_count != shard_count as usize {
            return Err(format!(
                "{sentinel_count} sentinel states for {shard_count} shards"
            ));
        }
        let mut sentinels = Vec::with_capacity(sentinel_count);
        for _ in 0..sentinel_count {
            sentinels.push(get_sentinel_state(&mut d)?);
        }
        let salvage_count = d.usize_bounded("salvage count", MAX_LEN)?;
        let mut salvages = Vec::with_capacity(salvage_count);
        for _ in 0..salvage_count {
            let shard = d.usize_bounded("salvage shard", MAX_LEN)?;
            let generation = d.u64()?;
            let at_ns = d.u64()?;
            let target_count = d.usize_bounded("salvage targets", MAX_LEN)?;
            let mut targets = Vec::with_capacity(target_count);
            for _ in 0..target_count {
                let vm = d.u32("salvage vm")?;
                let disk = d.u32("salvage disk")?;
                let issued = d.u64()?;
                let completed = d.u64()?;
                let outstanding = d.u32("salvage outstanding")?;
                let error_outcomes = d.vec_u64("salvage outcomes", MAX_LEN)?;
                targets.push(SalvagedTarget {
                    target: TargetId::new(VmId(vm), VDiskId(disk)),
                    issued,
                    completed,
                    outstanding,
                    error_outcomes,
                });
            }
            salvages.push(SalvageRecord {
                shard,
                generation,
                at_ns,
                targets,
            });
        }
        let target_count = d.usize_bounded("target count", MAX_LEN)?;
        let mut targets = Vec::with_capacity(target_count);
        for _ in 0..target_count {
            let vm = d.u32("target vm")?;
            let disk = d.u32("target disk")?;
            let collector = if d.bool()? {
                Some(get_collector_state(&mut d, &config)?)
            } else {
                None
            };
            let tracer_watermark = d.opt_u64()?;
            targets.push(TargetCheckpoint {
                target: TargetId::new(VmId(vm), VDiskId(disk)),
                collector,
                tracer_watermark,
            });
        }
        d.done()?;
        Ok((
            seq,
            ServiceCheckpoint {
                config,
                epoch,
                frame_seq,
                enabled,
                sentinel_on,
                shard_count,
                salvages_total,
                shard_watchdog_trips,
                sentinels,
                salvages,
                targets,
            },
        ))
    }
}

// ---------------------------------------------------------------------------
// Medium: the injectable I/O seam
// ---------------------------------------------------------------------------

/// How a fault-injecting medium classifies a write it silently sabotaged.
/// Purely an *accounting* channel: the sabotage itself (truncated bytes,
/// no-op fsync) is invisible at the I/O level, exactly as on real broken
/// storage, but the [`CheckpointLedger`] still partitions every attempt
/// honestly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteTaint {
    /// Some of the written bytes never reached the file (torn/short
    /// write).
    Torn,
    /// `sync_all` reported success without durably flushing.
    FsyncDropped,
}

/// An open checkpoint file being written.
pub trait CheckpointWrite: Write + Send {
    /// Durably flushes the file (`File::sync_all` on the real medium).
    fn sync_all(&mut self) -> io::Result<()>;

    /// For fault-injecting media only: whether this handle silently
    /// sabotaged the write, and how. The filesystem medium returns `None`.
    fn taint(&self) -> Option<WriteTaint> {
        None
    }
}

/// The storage seam the checkpoint daemon writes and recovery reads
/// through. [`FsMedium`] is the real filesystem; `faultkit` wraps any
/// medium to inject torn writes, dropped fsyncs, read errors, and
/// rename reordering, all deterministically.
pub trait CheckpointMedium: Send {
    /// Creates (truncating) a file for writing.
    fn create(&mut self, path: &Path) -> io::Result<Box<dyn CheckpointWrite>>;

    /// Atomically replaces `to` with `from`.
    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()>;

    /// Reads an entire file.
    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>>;

    /// Lists the files in a directory (any order; callers sort).
    fn list(&mut self, dir: &Path) -> io::Result<Vec<PathBuf>>;

    /// Removes a file (retention trimming; best-effort at call sites).
    fn remove(&mut self, path: &Path) -> io::Result<()>;
}

impl fmt::Debug for dyn CheckpointMedium {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("dyn CheckpointMedium")
    }
}

/// The real filesystem medium.
#[derive(Debug, Default, Clone, Copy)]
pub struct FsMedium;

struct FsCheckpointFile(fs::File);

impl Write for FsCheckpointFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.0.flush()
    }
}

impl CheckpointWrite for FsCheckpointFile {
    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl CheckpointMedium for FsMedium {
    fn create(&mut self, path: &Path) -> io::Result<Box<dyn CheckpointWrite>> {
        Ok(Box::new(FsCheckpointFile(fs::File::create(path)?)))
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn read(&mut self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn list(&mut self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        Ok(out)
    }

    fn remove(&mut self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }
}

// ---------------------------------------------------------------------------
// Files, ledger, health
// ---------------------------------------------------------------------------

/// A durable checkpoint file identified in a checkpoint directory:
/// `ckpt-<seq>.vsckpt`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CheckpointFile {
    /// The checkpoint sequence number from the file name.
    pub seq: u64,
    /// Full path.
    pub path: PathBuf,
}

impl CheckpointFile {
    /// The file name for checkpoint `seq`.
    pub fn name(seq: u64) -> String {
        format!("ckpt-{seq:010}.{CHECKPOINT_EXTENSION}")
    }

    /// Parses a directory entry; `None` for anything that is not a final
    /// checkpoint file (`.tmp` orphans, the trace segments, stray files).
    pub fn parse(path: &Path) -> Option<CheckpointFile> {
        if path.extension()? != CHECKPOINT_EXTENSION {
            return None;
        }
        let stem = path.file_stem()?.to_str()?;
        let seq = stem.strip_prefix("ckpt-")?.parse().ok()?;
        Some(CheckpointFile {
            seq,
            path: path.to_path_buf(),
        })
    }
}

/// Exact accounting for checkpoint I/O. Every attempt lands in exactly
/// one bucket, so [`CheckpointLedger::conserves`] holds at every instant:
/// `written + torn + fsync_dropped + io_errors == attempts`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointLedger {
    /// Checkpoint writes started.
    pub attempts: u64,
    /// Completed untainted: written, fsynced, renamed.
    pub written: u64,
    /// Completed but torn by the medium (bytes silently truncated).
    pub torn: u64,
    /// Completed but the fsync was silently dropped by the medium.
    pub fsync_dropped: u64,
    /// Failed with an I/O error at any stage.
    pub io_errors: u64,
}

impl CheckpointLedger {
    /// The conservation identity.
    pub fn conserves(&self) -> bool {
        self.written + self.torn + self.fsync_dropped + self.io_errors == self.attempts
    }
}

/// Shared health surface of a [`CheckpointDaemon`]: the live ledger, the
/// last durable checkpoint, the demotion flag, and the request channel
/// behind `command("checkpoint")`. All atomics — readable from any thread
/// while the daemon runs.
#[derive(Debug)]
pub struct CheckpointHealth {
    attempts: AtomicU64,
    written: AtomicU64,
    torn: AtomicU64,
    fsync_dropped: AtomicU64,
    io_errors: AtomicU64,
    /// Sequence of the last checkpoint that completed untainted
    /// (`u64::MAX` = none yet).
    last_durable_seq: AtomicU64,
    /// Virtual timestamp of that checkpoint.
    last_durable_ns: AtomicU64,
    /// Virtual timestamp of the last daemon tick (for age rendering).
    last_tick_ns: AtomicU64,
    /// Set by `command("checkpoint")`; consumed by the next tick.
    requested: AtomicBool,
    /// Virtual timestamp at which the current write began (`u64::MAX`
    /// while idle) — the watchdog heartbeat.
    busy_since_ns: AtomicU64,
    /// Watchdog demotion: once set, the daemon stops attempting
    /// checkpoints (the data path is never held hostage by a wedged
    /// checkpoint medium).
    demoted: AtomicBool,
    /// Watchdog trips recorded against the daemon.
    watchdog_trips: AtomicU64,
}

impl Default for CheckpointHealth {
    /// Nothing attempted, nothing durable (`u64::MAX` sentinel), idle.
    fn default() -> Self {
        CheckpointHealth {
            attempts: AtomicU64::new(0),
            written: AtomicU64::new(0),
            torn: AtomicU64::new(0),
            fsync_dropped: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            last_durable_seq: AtomicU64::new(u64::MAX),
            last_durable_ns: AtomicU64::new(0),
            last_tick_ns: AtomicU64::new(0),
            requested: AtomicBool::new(false),
            busy_since_ns: AtomicU64::new(u64::MAX),
            demoted: AtomicBool::new(false),
            watchdog_trips: AtomicU64::new(0),
        }
    }
}

impl CheckpointHealth {
    /// Snapshot of the I/O ledger.
    pub fn ledger(&self) -> CheckpointLedger {
        CheckpointLedger {
            attempts: self.attempts.load(Ordering::Acquire),
            written: self.written.load(Ordering::Acquire),
            torn: self.torn.load(Ordering::Acquire),
            fsync_dropped: self.fsync_dropped.load(Ordering::Acquire),
            io_errors: self.io_errors.load(Ordering::Acquire),
        }
    }

    /// The last durable checkpoint sequence, if any completed untainted.
    pub fn last_durable_seq(&self) -> Option<u64> {
        match self.last_durable_seq.load(Ordering::Acquire) {
            u64::MAX => None,
            seq => Some(seq),
        }
    }

    /// Virtual nanoseconds between the last tick and the last durable
    /// checkpoint — how stale a restore-right-now would be.
    pub fn age_ns(&self) -> Option<u64> {
        self.last_durable_seq()?;
        Some(
            self.last_tick_ns
                .load(Ordering::Acquire)
                .saturating_sub(self.last_durable_ns.load(Ordering::Acquire)),
        )
    }

    /// Whether the watchdog demoted the daemon.
    pub fn demoted(&self) -> bool {
        self.demoted.load(Ordering::Acquire)
    }

    /// Watchdog trips recorded against the daemon.
    pub fn watchdog_trips(&self) -> u64 {
        self.watchdog_trips.load(Ordering::Acquire)
    }

    /// Requests an immediate checkpoint from the daemon's next tick
    /// (the seam behind `command("checkpoint")`).
    pub fn request_now(&self) {
        self.requested.store(true, Ordering::Release);
    }

    fn take_request(&self) -> bool {
        self.requested.swap(false, Ordering::AcqRel)
    }

    /// One-line operator rendering: last durable seq, age, and failure
    /// counters — the row `command("health")` and `EsxTop` display.
    pub fn render(&self) -> String {
        let l = self.ledger();
        let (seq, age) = match (self.last_durable_seq(), self.age_ns()) {
            (Some(seq), Some(age)) => (seq.to_string(), format!("{}us", age / 1_000)),
            _ => ("none".to_owned(), "-".to_owned()),
        };
        format!(
            "last_durable_seq={seq} age={age} attempts={} written={} torn={} \
             fsync_dropped={} io_errors={} demoted={} trips={} conserved={}",
            l.attempts,
            l.written,
            l.torn,
            l.fsync_dropped,
            l.io_errors,
            self.demoted(),
            self.watchdog_trips(),
            l.conserves(),
        )
    }
}

// ---------------------------------------------------------------------------
// Daemon
// ---------------------------------------------------------------------------

/// Configuration for a [`CheckpointDaemon`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Directory checkpoints are written into (must exist).
    pub dir: PathBuf,
    /// Virtual-clock cadence between checkpoints.
    pub interval_ns: u64,
    /// Durable checkpoints to retain (older ones are trimmed;
    /// minimum 1).
    pub retain: usize,
    /// Watchdog budget: a write stuck in the medium longer than this
    /// (virtual time) demotes the daemon.
    pub watchdog_budget_ns: u64,
}

impl CheckpointConfig {
    /// A sensible default: 1-second virtual cadence, keep 3, 5-second
    /// watchdog budget.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            interval_ns: 1_000_000_000,
            retain: 3,
            watchdog_budget_ns: 5_000_000_000,
        }
    }
}

/// The checkpoint writer: snapshots the service and persists it with the
/// write-tmp → fsync → rename discipline, on a virtual-clock cadence.
///
/// Deterministic core: drive [`CheckpointDaemon::tick`] from a simulation
/// or poll loop. Supervised background operation:
/// [`CheckpointDaemon::supervise`] spawns a named thread that polls a
/// shared virtual clock, and the returned supervisor's watchdog can
/// demote a daemon wedged in a stuck medium — mirroring the trace
/// writer's demotion discipline: checkpointing degrades, ingestion never
/// blocks.
#[derive(Debug)]
pub struct CheckpointDaemon {
    service: Arc<StatsService>,
    config: CheckpointConfig,
    medium: Box<dyn CheckpointMedium>,
    health: Arc<CheckpointHealth>,
    next_seq: u64,
    next_due_ns: Option<u64>,
}

impl CheckpointDaemon {
    /// Creates a daemon writing through the real filesystem.
    pub fn new(service: Arc<StatsService>, config: CheckpointConfig) -> Self {
        CheckpointDaemon::with_medium(service, config, Box::new(FsMedium))
    }

    /// Creates a daemon writing through an arbitrary medium (the fault
    /// injection seam). Resumes the sequence numbering after any
    /// checkpoints already present in the directory, so a restarted
    /// daemon never reuses a sequence number.
    pub fn with_medium(
        service: Arc<StatsService>,
        config: CheckpointConfig,
        mut medium: Box<dyn CheckpointMedium>,
    ) -> Self {
        let next_seq = medium
            .list(&config.dir)
            .unwrap_or_default()
            .iter()
            .filter_map(|p| CheckpointFile::parse(p))
            .map(|f| f.seq + 1)
            .max()
            .unwrap_or(0);
        CheckpointDaemon {
            service,
            config,
            medium,
            health: Arc::new(CheckpointHealth::default()),
            next_seq,
            next_due_ns: None,
        }
    }

    /// The shared health surface (attach it to the service to light up
    /// `command("checkpoint")` and the health row).
    pub fn health(&self) -> Arc<CheckpointHealth> {
        Arc::clone(&self.health)
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &CheckpointConfig {
        &self.config
    }

    /// One scheduler step at virtual time `now_ns`: writes a checkpoint
    /// if the cadence is due or one was requested, otherwise does
    /// nothing. Returns `None` when no write was attempted. The first
    /// tick anchors the cadence (and writes a baseline checkpoint).
    ///
    /// A demoted daemon never writes again.
    pub fn tick(&mut self, now_ns: u64) -> Option<io::Result<u64>> {
        self.health.last_tick_ns.store(now_ns, Ordering::Release);
        if self.health.demoted() {
            return None;
        }
        let requested = self.health.take_request();
        let due = match self.next_due_ns {
            None => true,
            Some(due) => now_ns >= due,
        };
        if !due && !requested {
            return None;
        }
        self.next_due_ns = Some(now_ns.saturating_add(self.config.interval_ns));
        Some(self.checkpoint_now(now_ns))
    }

    /// Unconditionally writes a checkpoint at virtual time `now_ns`,
    /// returning its sequence number. Books exactly one ledger bucket.
    pub fn checkpoint_now(&mut self, now_ns: u64) -> io::Result<u64> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.health.attempts.fetch_add(1, Ordering::AcqRel);
        self.health.busy_since_ns.store(now_ns, Ordering::Release);
        let result = self.write_checkpoint(seq, now_ns);
        self.health.busy_since_ns.store(u64::MAX, Ordering::Release);
        match &result {
            Ok(_) => self.trim_retention(),
            Err(_) => {
                self.health.io_errors.fetch_add(1, Ordering::AcqRel);
            }
        }
        result
    }

    fn write_checkpoint(&mut self, seq: u64, now_ns: u64) -> io::Result<u64> {
        let snapshot = self.service.checkpoint_snapshot();
        let bytes = snapshot.encode(seq);
        let final_path = self.config.dir.join(CheckpointFile::name(seq));
        let tmp_path = final_path.with_extension(format!("{CHECKPOINT_EXTENSION}.tmp"));
        let mut file = self.medium.create(&tmp_path)?;
        file.write_all(&bytes)?;
        file.flush()?;
        file.sync_all()?;
        let taint = file.taint();
        drop(file);
        self.medium.rename(&tmp_path, &final_path)?;
        match taint {
            None => {
                self.health.written.fetch_add(1, Ordering::AcqRel);
                self.health.last_durable_seq.store(seq, Ordering::Release);
                self.health.last_durable_ns.store(now_ns, Ordering::Release);
            }
            Some(WriteTaint::Torn) => {
                self.health.torn.fetch_add(1, Ordering::AcqRel);
            }
            Some(WriteTaint::FsyncDropped) => {
                self.health.fsync_dropped.fetch_add(1, Ordering::AcqRel);
            }
        }
        Ok(seq)
    }

    /// Removes final checkpoint files beyond the retention count, oldest
    /// first. Best-effort: removal failures are ignored (the files are
    /// merely stale, and recovery skips anything corrupt anyway).
    fn trim_retention(&mut self) {
        let Ok(paths) = self.medium.list(&self.config.dir) else {
            return;
        };
        let mut files: Vec<CheckpointFile> = paths
            .iter()
            .filter_map(|p| CheckpointFile::parse(p))
            .collect();
        files.sort();
        let retain = self.config.retain.max(1);
        if files.len() > retain {
            let excess = files.len() - retain;
            for f in &files[..excess] {
                let _ = self.medium.remove(&f.path);
            }
        }
    }

    /// Spawns the supervised background thread: polls `clock` (a shared
    /// virtual-clock register, nanoseconds) every `poll` of real time and
    /// ticks the daemon. Returns the supervisor handle; call
    /// [`CheckpointSupervisor::finish`] to stop and reclaim the daemon.
    pub fn supervise(self, clock: Arc<AtomicU64>, poll: Duration) -> CheckpointSupervisor {
        let health = self.health();
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&shutdown);
        let mut daemon = self;
        let thread = thread::Builder::new()
            .name("vsckpt-writer".to_owned())
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    let now_ns = clock.load(Ordering::Acquire);
                    let _ = daemon.tick(now_ns);
                    thread::sleep(poll);
                }
                daemon
            })
            .expect("spawn checkpoint writer thread");
        CheckpointSupervisor {
            thread: Some(thread),
            shutdown,
            health,
        }
    }
}

/// Handle to a supervised [`CheckpointDaemon`] thread: watchdog sweeps
/// and orderly shutdown.
#[derive(Debug)]
pub struct CheckpointSupervisor {
    thread: Option<thread::JoinHandle<CheckpointDaemon>>,
    shutdown: Arc<AtomicBool>,
    health: Arc<CheckpointHealth>,
}

impl CheckpointSupervisor {
    /// The daemon's shared health surface.
    pub fn health(&self) -> Arc<CheckpointHealth> {
        Arc::clone(&self.health)
    }

    /// Watchdog sweep at virtual time `now_ns`: if a checkpoint write
    /// entered the medium more than the configured budget of virtual time
    /// ago and has not left, the daemon is demoted — it finishes (or
    /// stays stuck in) the current write but never starts another, and
    /// the trip is booked. Returns whether this sweep demoted it.
    pub fn watchdog_check(&self, now_ns: u64, budget_ns: u64) -> bool {
        let busy = self.health.busy_since_ns.load(Ordering::Acquire);
        if busy != u64::MAX && now_ns.saturating_sub(busy) > budget_ns && !self.health.demoted() {
            self.health.demoted.store(true, Ordering::Release);
            self.health.watchdog_trips.fetch_add(1, Ordering::AcqRel);
            return true;
        }
        false
    }

    /// Stops the thread and returns the daemon (blocks until the current
    /// tick finishes).
    pub fn finish(mut self) -> CheckpointDaemon {
        self.shutdown.store(true, Ordering::Release);
        self.thread
            .take()
            .expect("finish called once")
            .join()
            .expect("checkpoint writer thread panicked")
    }
}

impl Drop for CheckpointSupervisor {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// Result of scanning a checkpoint directory for the newest durable
/// checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredCheckpoint {
    /// The recovered checkpoint's sequence number.
    pub seq: u64,
    /// The decoded checkpoint.
    pub checkpoint: ServiceCheckpoint,
    /// Newer checkpoint files that were present but failed to decode
    /// (torn writes, dropped fsyncs, read errors) and were skipped.
    pub skipped_corrupt: u32,
}

/// Finds and decodes the newest durable checkpoint in `dir`, newest
/// first, skipping (and counting) anything that fails to read or decode.
/// Total: torn files, CRC mismatches, and read errors all fall through
/// to the next-newest candidate; `Ok(None)` means no durable checkpoint
/// exists (including a missing directory — the cold-start case).
pub fn load_latest(medium: &mut dyn CheckpointMedium, dir: &Path) -> Option<RecoveredCheckpoint> {
    let paths = medium.list(dir).unwrap_or_default();
    let mut files: Vec<CheckpointFile> = paths
        .iter()
        .filter_map(|p| CheckpointFile::parse(p))
        .collect();
    files.sort();
    let mut skipped = 0u32;
    for f in files.iter().rev() {
        let Ok(bytes) = medium.read(&f.path) else {
            skipped += 1;
            continue;
        };
        match ServiceCheckpoint::decode(&bytes) {
            Ok((seq, checkpoint)) => {
                return Some(RecoveredCheckpoint {
                    seq,
                    checkpoint,
                    skipped_corrupt: skipped,
                });
            }
            Err(_) => skipped += 1,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::VscsiEvent;
    use simkit::SimTime;
    use vscsi::{IoCompletion, IoDirection, IoRequest, Lba, RequestId};

    fn target(vm: u32, disk: u32) -> TargetId {
        TargetId::new(VmId(vm), VDiskId(disk))
    }

    fn feed(service: &StatsService, n: u64) {
        let mut events = Vec::new();
        for i in 0..n {
            let t = target((i % 3) as u32, 0);
            let req = IoRequest::new(
                RequestId(i),
                t,
                if i % 4 == 0 {
                    IoDirection::Write
                } else {
                    IoDirection::Read
                },
                Lba::new((i * 97) % (1 << 20)),
                8 << (i % 4),
                SimTime::from_micros(i * 120),
            );
            events.push(VscsiEvent::Issue(req));
            if i % 5 != 0 {
                events.push(VscsiEvent::Complete(IoCompletion::new(
                    req,
                    SimTime::from_micros(i * 120 + 300),
                )));
            }
        }
        service.handle_batch(&events);
    }

    fn busy_service() -> Arc<StatsService> {
        let service = Arc::new(StatsService::new(CollectorConfig::paper_figures()));
        service.enable_all();
        feed(&service, 500);
        service
    }

    #[test]
    fn snapshot_roundtrips_through_codec() {
        let service = busy_service();
        let snap = service.checkpoint_snapshot();
        let bytes = snap.encode(7);
        let (seq, decoded) = ServiceCheckpoint::decode(&bytes).expect("decode");
        assert_eq!(seq, 7);
        assert_eq!(decoded, snap);
    }

    #[test]
    fn restore_is_bit_identical() {
        let service = busy_service();
        let snap = service.checkpoint_snapshot();
        let restored = StatsService::from_checkpoint(&snap, None);
        assert_eq!(restored.checkpoint_snapshot(), snap);
        assert_eq!(
            restored.fetch_all_histograms(),
            service.fetch_all_histograms()
        );
        // And the restored service keeps *collecting* identically.
        feed(&service, 40);
        feed(&restored, 40);
        assert_eq!(
            restored.fetch_all_histograms(),
            service.fetch_all_histograms()
        );
    }

    #[test]
    fn decode_never_panics_on_corruption() {
        let service = busy_service();
        let bytes = service.checkpoint_snapshot().encode(1);
        // Truncations at every prefix length.
        for len in 0..bytes.len().min(64) {
            assert!(ServiceCheckpoint::decode(&bytes[..len]).is_err());
        }
        assert!(ServiceCheckpoint::decode(&bytes[..bytes.len() - 1]).is_err());
        // Single-byte corruption anywhere is caught by the CRC.
        for idx in [0, 8, 12, 16, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[idx] ^= 0x41;
            assert!(ServiceCheckpoint::decode(&bad).is_err(), "byte {idx}");
        }
    }

    #[test]
    fn daemon_writes_atomically_and_recovers() {
        let dir = std::env::temp_dir().join(format!(
            "vsckpt-test-{}-{}",
            std::process::id(),
            std::thread::current().name().unwrap_or("t").len()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        let service = busy_service();
        let mut cfg = CheckpointConfig::new(&dir);
        cfg.retain = 2;
        let mut daemon = CheckpointDaemon::new(Arc::clone(&service), cfg);
        assert!(daemon.tick(0).expect("first tick writes").is_ok());
        assert!(daemon.tick(100).is_none(), "not due yet");
        feed(&service, 100);
        assert!(daemon.tick(2_000_000_000).expect("due").is_ok());
        assert!(daemon.tick(4_000_000_000).expect("due").is_ok());
        let ledger = daemon.health().ledger();
        assert_eq!(ledger.written, 3);
        assert!(ledger.conserves());
        // Retention trimmed to 2, no tmp orphans.
        let names: Vec<_> = fs::read_dir(&dir)
            .expect("readdir")
            .map(|e| e.expect("entry").file_name().into_string().expect("utf8"))
            .collect();
        assert_eq!(names.len(), 2, "{names:?}");
        assert!(names.iter().all(|n| n.ends_with(".vsckpt")), "{names:?}");
        // Recovery loads the newest and matches the live service.
        let rec = load_latest(&mut FsMedium, &dir).expect("recover");
        assert_eq!(rec.seq, 2);
        assert_eq!(rec.skipped_corrupt, 0);
        assert_eq!(rec.checkpoint, service.checkpoint_snapshot());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_skips_corrupt_newest() {
        let dir = std::env::temp_dir().join(format!("vsckpt-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        let service = busy_service();
        let mut daemon = CheckpointDaemon::new(Arc::clone(&service), CheckpointConfig::new(&dir));
        let good = service.checkpoint_snapshot();
        daemon.tick(0).expect("write").expect("ok");
        // A newer, torn checkpoint: valid prefix, truncated tail.
        let torn = good.encode(9);
        fs::write(dir.join(CheckpointFile::name(9)), &torn[..torn.len() / 2]).expect("write torn");
        let rec = load_latest(&mut FsMedium, &dir).expect("recover");
        assert_eq!(rec.seq, 0, "fell back past the torn file");
        assert_eq!(rec.skipped_corrupt, 1);
        assert_eq!(rec.checkpoint, good);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn command_surface_requests_checkpoints() {
        let service = busy_service();
        assert!(service.command("checkpoint").is_err(), "nothing attached");
        let dir = std::env::temp_dir().join(format!("vsckpt-cmd-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        let mut daemon = CheckpointDaemon::new(Arc::clone(&service), CheckpointConfig::new(&dir));
        service.attach_checkpoint_health(daemon.health());
        daemon.tick(0).expect("baseline").expect("ok");
        assert!(daemon.tick(10).is_none());
        let out = service.command("checkpoint").expect("request");
        assert!(out.contains("checkpoint requested"), "{out}");
        assert!(
            daemon.tick(20).expect("requested write").is_ok(),
            "request forces an off-cadence write"
        );
        let health = service.command("health").expect("health");
        assert!(
            health.contains("checkpoint: last_durable_seq=1"),
            "{health}"
        );
        assert!(health.contains("conserved=true"), "{health}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn watchdog_demotes_stuck_daemon() {
        let service = busy_service();
        let dir = std::env::temp_dir().join(format!("vsckpt-wd-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("mkdir");
        let daemon = CheckpointDaemon::new(Arc::clone(&service), CheckpointConfig::new(&dir));
        let clock = Arc::new(AtomicU64::new(0));
        let sup = daemon.supervise(Arc::clone(&clock), Duration::from_millis(1));
        // Simulate a wedged write by faking the heartbeat, then sweep.
        sup.health().busy_since_ns.store(5, Ordering::Release);
        assert!(sup.watchdog_check(10_000_000_000, 1_000_000_000));
        assert!(sup.health().demoted());
        assert_eq!(sup.health().watchdog_trips(), 1);
        sup.health()
            .busy_since_ns
            .store(u64::MAX, Ordering::Release);
        let mut daemon = sup.finish();
        assert!(
            daemon.tick(20_000_000_000).is_none(),
            "demoted: never again"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_file_names_parse() {
        let f = CheckpointFile::parse(Path::new("/x/ckpt-0000000042.vsckpt")).expect("parse");
        assert_eq!(f.seq, 42);
        assert_eq!(CheckpointFile::name(42), "ckpt-0000000042.vsckpt");
        assert!(CheckpointFile::parse(Path::new("/x/ckpt-1.vsckpt.tmp")).is_none());
        assert!(CheckpointFile::parse(Path::new("/x/seg-1.vseg")).is_none());
        assert!(CheckpointFile::parse(Path::new("/x/other.vsckpt")).is_none());
    }
}
