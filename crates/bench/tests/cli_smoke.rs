//! Smoke tests for the `vscsistats` CLI and the experiment binaries'
//! argument handling, run against the real compiled binaries.

use std::process::Command;

fn vscsistats() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vscsistats"))
}

#[test]
fn list_prints_all_workloads() {
    let out = vscsistats().arg("--list").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for name in [
        "oltp-ufs",
        "oltp-zfs",
        "oltp-ext3",
        "oltp-ntfs",
        "dbt2",
        "copy-xp",
        "copy-vista",
        "interfere",
    ] {
        assert!(text.contains(name), "missing workload {name} in:\n{text}");
    }
}

#[test]
fn help_exits_zero() {
    let out = vscsistats().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("--fingerprint"));
}

#[test]
fn unknown_arguments_are_rejected() {
    let out = vscsistats().arg("--bogus").output().expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--bogus"));
}

#[test]
fn unknown_workload_is_rejected() {
    let out = vscsistats()
        .args(["--workload", "nope", "--seconds", "1"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn copy_workload_fingerprints_as_streaming() {
    let out = vscsistats()
        .args(["--workload", "copy-xp", "--seconds", "2", "--fingerprint"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("class: streaming"), "output:\n{text}");
    assert!(text.contains("advice:"));
}

#[test]
fn csv_output_is_parseable() {
    let out = vscsistats()
        .args(["--workload", "copy-xp", "--seconds", "1", "--csv"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let csv_start = text
        .find("metric,lens,bin,count")
        .expect("csv header present");
    for line in text[csv_start..].lines().skip(1) {
        if line.is_empty() {
            continue;
        }
        assert_eq!(line.split(',').count(), 4, "bad csv row: {line}");
    }
}
