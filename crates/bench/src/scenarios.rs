//! Shared experiment scenarios: one builder per paper workload, reused by
//! the figure binaries, the integration tests, and the Criterion benches.

use esx::{RobustnessParams, Simulation, VmBuilder};
use faultkit::{FaultPlan, FaultPlanBuilder};
use guests::filebench::{oltp_model, parse_model, FilebenchWorkload};
use guests::fs::{Ext3Params, NtfsParams, Ufs, UfsParams, Zfs, ZfsParams};
use guests::{
    AccessSpec, BlockIo, Dbt2Params, Dbt2Workload, Delayed, FileCopyParams, FileCopyWorkload,
    IometerWorkload, ReplayWorkload, ScheduledIo,
};
use simkit::{SimDuration, SimTime};
use std::sync::Arc;
use storage::presets;
use vscsi::Lba;
use vscsi_stats::{CollectorConfig, IoStatsCollector, StatsService, TraceSink};

/// Outcome of one scenario run: the per-attachment collectors plus
/// throughput counters.
#[derive(Debug)]
pub struct RunResult {
    /// One entry per attachment, in attachment order.
    pub collectors: Vec<IoStatsCollector>,
    /// Completed commands per attachment.
    pub completed: Vec<u64>,
    /// Mean IOps per attachment over the run.
    pub iops: Vec<f64>,
    /// Mean MB/s per attachment over the run.
    pub mbps: Vec<f64>,
    /// Mean device latency per attachment, microseconds.
    pub mean_latency_us: Vec<f64>,
    /// Simulated horizon.
    pub horizon: SimTime,
    /// Completions per second, per attachment (IOps over time).
    pub per_second: Vec<Vec<u64>>,
    /// Commands issued per attachment.
    pub issued: Vec<u64>,
    /// Error-status deliveries per attachment.
    pub failed: Vec<u64>,
    /// Abort deliveries (timeout or quarantine drain) per attachment.
    pub aborted: Vec<u64>,
    /// Retry dispatches per attachment.
    pub retries: Vec<u64>,
    /// Commands issued but not yet delivered when the horizon was reached.
    pub in_flight: Vec<u64>,
    /// Whether each attachment ended the run quarantined.
    pub quarantined: Vec<bool>,
}

fn collect(sim: &Simulation, service: &StatsService, horizon: SimTime) -> RunResult {
    let mut out = RunResult {
        collectors: Vec::new(),
        completed: Vec::new(),
        iops: Vec::new(),
        mbps: Vec::new(),
        mean_latency_us: Vec::new(),
        horizon,
        per_second: Vec::new(),
        issued: Vec::new(),
        failed: Vec::new(),
        aborted: Vec::new(),
        retries: Vec::new(),
        in_flight: Vec::new(),
        quarantined: Vec::new(),
    };
    for idx in 0..sim.attachment_count() {
        let target = sim.attachment_target(idx);
        let collector = service
            .collector(target)
            .unwrap_or_else(|| IoStatsCollector::new(CollectorConfig::paper_figures()));
        let stats = sim.attachment_stats(idx);
        out.collectors.push(collector);
        out.completed.push(stats.completed);
        out.iops.push(stats.iops(horizon));
        out.mbps.push(stats.mbps(horizon));
        out.mean_latency_us.push(stats.mean_latency_us());
        out.per_second.push(stats.per_second.counts().to_vec());
        out.issued.push(stats.issued);
        out.failed.push(stats.failed);
        out.aborted.push(stats.aborted);
        out.retries.push(stats.retries);
        out.in_flight.push(sim.in_flight(idx) as u64);
        out.quarantined.push(sim.quarantined(idx));
    }
    out
}

/// A scenario that has been built but not yet run. The simulation and
/// service are held open so callers can attach per-target tracers — in
/// particular streaming [`TraceSink`] backends — before the clock starts;
/// [`Prepared::run`] then drives the workload to its horizon, stops any
/// traces (flushing streaming sinks' in-flight tails), and collects.
pub struct Prepared {
    sim: Simulation,
    service: Arc<StatsService>,
    horizon: SimTime,
}

impl Prepared {
    /// Number of disk attachments the scenario created.
    pub fn attachment_count(&self) -> usize {
        self.sim.attachment_count()
    }

    /// The stats service driving this scenario.
    pub fn service(&self) -> &Arc<StatsService> {
        &self.service
    }

    /// Streams attachment `idx`'s trace into `sink` for the whole run.
    pub fn stream_trace(&self, idx: usize, sink: Box<dyn TraceSink>) {
        self.sim.stream_trace(idx, sink);
    }

    /// Mutable access to the underlying simulation, for pre-run
    /// configuration: attaching a fault plan, tuning the robustness
    /// policy, or overriding per-target timeouts.
    pub fn sim_mut(&mut self) -> &mut Simulation {
        &mut self.sim
    }

    /// Runs the scenario to its horizon and collects the results. Any
    /// active traces are stopped first, so streaming sinks receive their
    /// in-flight tails before the caller finalizes the backing store.
    pub fn run(mut self) -> RunResult {
        self.sim.run_until(self.horizon);
        for idx in 0..self.sim.attachment_count() {
            let _ = self.service.stop_trace(self.sim.attachment_target(idx));
        }
        collect(&self.sim, &self.service, self.horizon)
    }
}

/// Which filesystem model backs the Filebench OLTP run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsKind {
    /// UFS in-place model (Figure 2).
    Ufs,
    /// ZFS copy-on-write model (Figure 3).
    Zfs,
    /// ext3 journalling model (ablation).
    Ext3,
    /// NTFS run-based model (ablation).
    Ntfs,
}

/// Builds Filebench OLTP on the chosen filesystem (Figures 2 and 3):
/// Solaris-like VM, 32 GiB virtual disk, Symmetrix-like array.
pub fn prepare_filebench_oltp(fs: FsKind, duration: SimTime, seed: u64) -> Prepared {
    let service = Arc::new(StatsService::new(CollectorConfig::paper_figures()));
    service.enable_all();
    let mut sim = Simulation::new(presets::symmetrix(), Arc::clone(&service), seed);
    let spec = parse_model(&oltp_model()).expect("oltp model parses");
    let disk_bytes = match fs {
        FsKind::Ntfs | FsKind::Ext3 => 64 * 1024 * 1024 * 1024,
        _ => 32 * 1024 * 1024 * 1024,
    };
    let vm =
        VmBuilder::new(0)
            .with_disk(disk_bytes)
            .attach(sim.rng().fork("filebench"), move |rng| {
                let fs_model: Box<dyn guests::fs::Filesystem> = match fs {
                    FsKind::Ufs => Box::new(Ufs::new(UfsParams::default())),
                    FsKind::Zfs => Box::new(Zfs::new(ZfsParams::default())),
                    FsKind::Ext3 => Box::new(guests::fs::Ext3::new(Ext3Params::default())),
                    FsKind::Ntfs => Box::new(guests::fs::Ntfs::new(NtfsParams::default())),
                };
                Box::new(FilebenchWorkload::new(
                    "filebench-oltp",
                    spec,
                    fs_model,
                    rng,
                ))
            });
    sim.add_vm(vm);
    Prepared {
        sim,
        service,
        horizon: duration,
    }
}

/// Runs Filebench OLTP on the chosen filesystem (Figures 2 and 3).
pub fn run_filebench_oltp(fs: FsKind, duration: SimTime, seed: u64) -> RunResult {
    prepare_filebench_oltp(fs, duration, seed).run()
}

/// Builds the DBT-2/PostgreSQL model (Figure 4): Linux-like VM, 52 GiB
/// virtual disk, Symmetrix-like array, paper parameters (250-warehouse-
/// scale database, 50 connections).
pub fn prepare_dbt2(duration: SimTime, seed: u64) -> Prepared {
    let service = Arc::new(StatsService::new(CollectorConfig::paper_figures()));
    service.enable_all();
    let mut sim = Simulation::new(presets::symmetrix(), Arc::clone(&service), seed);
    let vm = VmBuilder::new(0)
        .with_disk(52 * 1024 * 1024 * 1024)
        .attach(sim.rng().fork("dbt2"), |rng| {
            Box::new(Dbt2Workload::new("dbt2", Dbt2Params::default(), rng))
        });
    sim.add_vm(vm);
    Prepared {
        sim,
        service,
        horizon: duration,
    }
}

/// Runs the DBT-2/PostgreSQL model (Figure 4).
pub fn run_dbt2(duration: SimTime, seed: u64) -> RunResult {
    prepare_dbt2(duration, seed).run()
}

/// Which copy engine the file-copy run models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyOs {
    /// Windows XP Pro: 64 KiB chunks.
    Xp,
    /// Windows Vista Enterprise: 1 MiB chunks.
    Vista,
}

/// Builds the large-file-copy scenario (Figure 5).
pub fn prepare_filecopy(os: CopyOs, duration: SimTime, seed: u64) -> Prepared {
    let service = Arc::new(StatsService::new(CollectorConfig::paper_figures()));
    service.enable_all();
    let mut sim = Simulation::new(presets::symmetrix(), Arc::clone(&service), seed);
    let file_bytes = 2u64 * 1024 * 1024 * 1024;
    let params = match os {
        CopyOs::Xp => FileCopyParams::xp(file_bytes),
        CopyOs::Vista => FileCopyParams::vista(file_bytes),
    };
    let vm = VmBuilder::new(0).with_disk(8 * 1024 * 1024 * 1024).attach(
        sim.rng().fork("copy"),
        move |_rng| {
            Box::new(FileCopyWorkload::new(
                match os {
                    CopyOs::Xp => "xp-copy",
                    CopyOs::Vista => "vista-copy",
                },
                params,
            ))
        },
    );
    sim.add_vm(vm);
    Prepared {
        sim,
        service,
        horizon: duration,
    }
}

/// Runs the large-file-copy scenario (Figure 5) for 10 simulated seconds
/// by default, like the paper's caption says.
pub fn run_filecopy(os: CopyOs, duration: SimTime, seed: u64) -> RunResult {
    prepare_filecopy(os, duration, seed).run()
}

/// One row of the Table 2 microbenchmark.
#[derive(Debug, Clone, Copy)]
pub struct MicrobenchRow {
    /// Whether the histogram service was enabled.
    pub service_enabled: bool,
    /// Completions per second.
    pub iops: f64,
    /// MB per second.
    pub mbps: f64,
    /// Mean device latency, milliseconds.
    pub latency_ms: f64,
    /// Host wall-clock seconds spent running the simulation (the CPU-cost
    /// proxy for the paper's "CPU out of 800" column).
    pub host_seconds: f64,
    /// Simulated host CPU utilization in the paper's "out of 800" form,
    /// from the hypervisor's per-command cost model.
    pub cpu_out_of_800: f64,
    /// Simulated commands completed.
    pub completed: u64,
}

/// Runs the §5 microbenchmark: Iometer 4 KiB sequential reads against the
/// Symmetrix-like array, with the histogram service on or off, measuring
/// host CPU cost as wall-clock time.
pub fn run_microbench(service_enabled: bool, duration: SimTime, seed: u64) -> MicrobenchRow {
    let service = Arc::new(StatsService::default());
    if service_enabled {
        service.enable_all();
    }
    let mut sim = Simulation::new(presets::symmetrix(), Arc::clone(&service), seed);
    let vm = VmBuilder::new(0).with_disk(8 * 1024 * 1024 * 1024).attach(
        sim.rng().fork("iometer"),
        |rng| {
            Box::new(IometerWorkload::new(
                "4k-seq-read",
                AccessSpec::seq_read_4k(16, 4 * 1024 * 1024 * 1024),
                rng,
            ))
        },
    );
    sim.add_vm(vm);
    let t0 = std::time::Instant::now();
    sim.run_until(duration);
    let host_seconds = t0.elapsed().as_secs_f64();
    let stats = sim.attachment_stats(0);
    MicrobenchRow {
        service_enabled,
        iops: stats.iops(duration),
        mbps: stats.mbps(duration),
        latency_ms: stats.mean_latency_us() / 1000.0,
        host_seconds,
        cpu_out_of_800: sim.cpu_out_of_n(duration),
        completed: stats.completed,
    }
}

/// Interference experiment phases (Figure 6, §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterferenceMode {
    /// The 8 KiB random reader alone.
    SoloRandom,
    /// The 8 KiB sequential reader alone.
    SoloSequential,
    /// Both VMs from t = 0.
    Dual,
    /// Sequential from t = 0; random joins at `duration / 3` (the Figure
    /// 6(c) phase-shift view).
    Staggered,
}

/// Builds the two-VM interference experiment: two 6 GiB virtual disks on
/// the same CLARiiON-CX3-like array, 32 outstanding I/Os each, read cache
/// on or off. Attachment 0 is the random reader, attachment 1 the
/// sequential one (whichever are present for the mode).
pub fn prepare_interference(
    mode: InterferenceMode,
    cache_on: bool,
    duration: SimTime,
    seed: u64,
) -> Prepared {
    let service = Arc::new(StatsService::new(CollectorConfig::paper_figures()));
    service.enable_all();
    let array = if cache_on {
        presets::clariion_cx3()
    } else {
        presets::clariion_cx3_cache_off()
    };
    let mut sim = Simulation::new(array, Arc::clone(&service), seed);
    let disk_bytes = 6u64 * 1024 * 1024 * 1024;
    let region = disk_bytes;
    let random = |rng: simkit::SimRng| -> Box<dyn guests::Workload> {
        Box::new(IometerWorkload::new(
            "8k-random-read",
            AccessSpec::random_read_8k(32, region),
            rng,
        ))
    };
    let sequential = |rng: simkit::SimRng| -> Box<dyn guests::Workload> {
        Box::new(IometerWorkload::new(
            "8k-seq-read",
            AccessSpec::seq_read_8k(32, region),
            rng,
        ))
    };
    match mode {
        InterferenceMode::SoloRandom => {
            sim.add_vm(
                VmBuilder::new(0)
                    .with_disk(disk_bytes)
                    .attach(sim.rng().fork("rand"), random),
            );
        }
        InterferenceMode::SoloSequential => {
            sim.add_vm(
                VmBuilder::new(1)
                    .with_disk(disk_bytes)
                    .attach(sim.rng().fork("seq"), sequential),
            );
        }
        InterferenceMode::Dual => {
            sim.add_vm(
                VmBuilder::new(0)
                    .with_disk(disk_bytes)
                    .attach(sim.rng().fork("rand"), random),
            );
            sim.add_vm(
                VmBuilder::new(1)
                    .with_disk(disk_bytes)
                    .attach(sim.rng().fork("seq"), sequential),
            );
        }
        InterferenceMode::Staggered => {
            let join_at = SimTime::from_nanos(duration.as_nanos() / 3);
            sim.add_vm(
                VmBuilder::new(0)
                    .with_disk(disk_bytes)
                    .attach(sim.rng().fork("rand"), move |rng| {
                        Box::new(Delayed::new(random(rng), join_at))
                    }),
            );
            sim.add_vm(
                VmBuilder::new(1)
                    .with_disk(disk_bytes)
                    .attach(sim.rng().fork("seq"), sequential),
            );
        }
    }
    Prepared {
        sim,
        service,
        horizon: duration,
    }
}

/// The LBA band (inclusive) the demo fault plans mark as unreadable media.
pub const FAULT_MEDIA_BAND: (u64, u64) = (1_000_000, 1_000_999);

/// Issue period of the open-loop fault-demo schedule. Chosen so the
/// worst-case faulted delivery (a BUSY retry chain at the default backoff,
/// or a media error at its 8 ms fixed cost) finishes well before the next
/// command is issued: the issue-side histograms then cannot observe the
/// faults at all, which is what `ext_faults` demonstrates.
pub const FAULT_REPLAY_PERIOD: SimDuration = SimDuration::from_millis(50);

/// The fault plan for the open-loop `ext_faults` phase: a bad-media band,
/// a probabilistic BUSY window, a latency-spike window and a path flap.
/// Deliberately no hangs — every command is delivered inside one
/// [`FAULT_REPLAY_PERIOD`].
pub fn fault_demo_plan(seed: u64) -> FaultPlan {
    FaultPlanBuilder::new(seed)
        .media_error(
            Lba::new(FAULT_MEDIA_BAND.0),
            Lba::new(FAULT_MEDIA_BAND.1),
            None,
        )
        .transient_busy(SimTime::from_secs(2), SimTime::from_secs(3), 0.6)
        .latency_spike(SimTime::from_secs(4), SimTime::from_secs(5), 3.0)
        .path_flap(SimTime::from_secs(6), SimTime::from_millis(6_200))
        .build()
}

/// The fault plan for the closed-loop `ext_faults` storm phase: every
/// command hangs during the first half second, forcing the timeout/abort
/// path and then target quarantine.
pub fn fault_storm_plan(seed: u64) -> FaultPlan {
    FaultPlanBuilder::new(seed)
        .hang(SimTime::ZERO, SimTime::from_millis(500), 1.0)
        .build()
}

/// The deterministic open-loop schedule behind the `ext_faults`
/// bit-stability demonstration. Pure arithmetic — no RNG — so the issue
/// stream is identical by construction across runs and across fault
/// plans: one command per [`FAULT_REPLAY_PERIOD`], mostly a sequential
/// read run with periodic far seeks, writes mixed in, and every 11th
/// command aimed into [`FAULT_MEDIA_BAND`].
pub fn fault_replay_schedule(duration: SimTime) -> Vec<ScheduledIo> {
    let period = FAULT_REPLAY_PERIOD;
    let count = duration.as_nanos() / period.as_nanos();
    let mut schedule = Vec::with_capacity(count as usize);
    for k in 0..count {
        let at = SimTime::ZERO + period * (k + 1);
        let lba = if k % 11 == 10 {
            // Probe the bad-media band.
            Lba::new(FAULT_MEDIA_BAND.0 + (k % 1000))
        } else if k % 7 == 6 {
            // Far seek.
            Lba::new(10_000_000 + k * 8)
        } else {
            // Sequential run.
            Lba::new(4_096 + k * 8)
        };
        let sectors = if k % 5 == 0 { 16 } else { 8 };
        let io = if k % 3 == 2 {
            BlockIo::write(lba, sectors, k)
        } else {
            BlockIo::read(lba, sectors, k)
        };
        schedule.push(ScheduledIo { at, io });
    }
    schedule
}

/// Builds the open-loop fault-demo scenario: one VM replaying
/// [`fault_replay_schedule`] against the Symmetrix-like array, with
/// [`fault_demo_plan`] attached when `faulted` is true. Everything the
/// guest does is timer-driven, so the issue stream — and with it every
/// device-independent histogram — is identical whether or not the plan
/// is attached.
pub fn prepare_fault_replay(duration: SimTime, seed: u64, faulted: bool) -> Prepared {
    let service = Arc::new(StatsService::new(CollectorConfig::paper_figures()));
    service.enable_all();
    let mut sim = Simulation::new(presets::symmetrix(), Arc::clone(&service), seed);
    let schedule = fault_replay_schedule(duration);
    let vm = VmBuilder::new(0)
        .with_disk(8 * 1024 * 1024 * 1024)
        .attach(sim.rng().fork("replay"), move |_rng| {
            Box::new(ReplayWorkload::new("fault-replay", schedule))
        });
    sim.add_vm(vm);
    if faulted {
        sim.attach_fault_plan(fault_demo_plan(seed));
    }
    Prepared {
        sim,
        service,
        horizon: duration,
    }
}

/// Builds the closed-loop fault-storm scenario: an Iometer random reader
/// at 32 outstanding I/Os against an array where every command hangs for
/// the first half second ([`fault_storm_plan`]). A short command timeout
/// makes the abort path carry the whole load; the target quarantines once
/// the error rate crosses the threshold, and the drain path keeps the
/// closed loop live instead of wedging it.
pub fn prepare_fault_storm(duration: SimTime, seed: u64) -> Prepared {
    let service = Arc::new(StatsService::new(CollectorConfig::paper_figures()));
    service.enable_all();
    let mut sim = Simulation::new(presets::symmetrix(), Arc::clone(&service), seed);
    sim.set_robustness(RobustnessParams {
        command_timeout: SimDuration::from_millis(50),
        ..RobustnessParams::default()
    });
    let vm = VmBuilder::new(0).with_disk(8 * 1024 * 1024 * 1024).attach(
        sim.rng().fork("storm"),
        |rng| {
            Box::new(IometerWorkload::new(
                "8k-random-read",
                AccessSpec::random_read_8k(32, 4 * 1024 * 1024 * 1024),
                rng,
            ))
        },
    );
    sim.add_vm(vm);
    sim.attach_fault_plan(fault_storm_plan(seed));
    Prepared {
        sim,
        service,
        horizon: duration,
    }
}

/// Runs the two-VM interference experiment (Figure 6, §5.3).
pub fn run_interference(
    mode: InterferenceMode,
    cache_on: bool,
    duration: SimTime,
    seed: u64,
) -> RunResult {
    prepare_interference(mode, cache_on, duration, seed).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vscsi_stats::{Lens, Metric};

    #[test]
    fn filebench_ufs_produces_small_random_io() {
        let r = run_filebench_oltp(FsKind::Ufs, SimTime::from_secs(5), 1);
        let c = &r.collectors[0];
        let len = c.histogram(Metric::IoLength, Lens::All);
        assert!(len.total() > 200, "too few I/Os: {}", len.total());
        // Mode at 4 KiB or 8 KiB.
        let mode = len.mode_bin().unwrap();
        let i4 = len.edges().bin_index(4096);
        let i8 = len.edges().bin_index(8192);
        assert!(mode == i4 || mode == i8, "mode bin {mode}");
    }

    #[test]
    fn dbt2_all_8k() {
        let r = run_dbt2(SimTime::from_secs(5), 2);
        let c = &r.collectors[0];
        let len = c.histogram(Metric::IoLength, Lens::All);
        assert!(len.total() > 100);
        let i8 = len.edges().bin_index(8192);
        assert!(
            len.count(i8) as f64 / len.total() as f64 > 0.95,
            "DBT-2 must be ~all 8 KiB"
        );
    }

    #[test]
    fn filecopy_chunk_sizes_differ() {
        let xp = run_filecopy(CopyOs::Xp, SimTime::from_secs(2), 3);
        let vista = run_filecopy(CopyOs::Vista, SimTime::from_secs(2), 3);
        let lx = xp.collectors[0].histogram(Metric::IoLength, Lens::All);
        let lv = vista.collectors[0].histogram(Metric::IoLength, Lens::All);
        assert_eq!(lx.mode_bin(), Some(lx.edges().bin_index(65_536)));
        assert_eq!(
            lv.mode_bin(),
            Some(lv.edges().bin_index(524_288 + 1)),
            "1 MiB lands in the >524288 overflow bin"
        );
        // Vista completes far fewer commands.
        assert!(xp.completed[0] > vista.completed[0] * 4);
    }

    #[test]
    fn microbench_runs_both_ways() {
        let on = run_microbench(true, SimTime::from_millis(500), 4);
        let off = run_microbench(false, SimTime::from_millis(500), 4);
        assert!(on.completed > 1_000);
        // Identical simulated behaviour regardless of the service state.
        assert_eq!(on.completed, off.completed);
        assert!((on.iops - off.iops).abs() < 1.0);
    }

    #[test]
    fn fault_replay_issue_stream_is_device_independent() {
        let horizon = SimTime::from_millis(3_500); // covers the BUSY window
        let clean = prepare_fault_replay(horizon, 11, false).run();
        let faulted = prepare_fault_replay(horizon, 11, true).run();
        for metric in [
            Metric::IoLength,
            Metric::OutstandingIos,
            Metric::SeekDistance,
            Metric::SeekDistanceWindowed,
        ] {
            for lens in Lens::ALL {
                assert_eq!(
                    clean.collectors[0].histogram(metric, lens).counts(),
                    faulted.collectors[0].histogram(metric, lens).counts(),
                    "{metric}/{lens} must be bit-stable under faults"
                );
            }
        }
        assert_eq!(
            clean.collectors[0]
                .histogram(Metric::Errors, Lens::All)
                .total(),
            0
        );
        assert!(
            faulted.collectors[0]
                .histogram(Metric::Errors, Lens::All)
                .total()
                > 0,
            "media band and BUSY window must surface errors"
        );
        assert!(faulted.retries[0] > 0, "BUSY window must trigger retries");
        assert!(faulted.failed[0] > 0, "media band must fail commands");
        assert!(!faulted.quarantined[0], "error rate stays below threshold");
    }

    #[test]
    fn fault_storm_quarantines_without_wedging() {
        let r = prepare_fault_storm(SimTime::from_secs(1), 13).run();
        assert!(r.quarantined[0], "hang storm must quarantine the target");
        assert!(r.aborted[0] > 0, "timeouts must abort hung commands");
        assert_eq!(r.completed[0], 0, "nothing completes during the storm");
        assert_eq!(
            r.completed[0] + r.failed[0] + r.aborted[0] + r.in_flight[0],
            r.issued[0],
            "every issued command is accounted for"
        );
    }

    #[test]
    fn interference_mode_attachment_counts() {
        let solo = run_interference(
            InterferenceMode::SoloRandom,
            false,
            SimTime::from_millis(300),
            5,
        );
        assert_eq!(solo.collectors.len(), 1);
        let dual = run_interference(InterferenceMode::Dual, false, SimTime::from_millis(300), 5);
        assert_eq!(dual.collectors.len(), 2);
        assert!(dual.completed.iter().all(|&c| c > 0));
    }
}
