//! # vscsistats-bench — experiment harness
//!
//! Shared scenario builders and report rendering for the experiment
//! binaries (one per paper table/figure) and the Criterion benches. See
//! `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for the
//! recorded paper-vs-measured results.
//!
//! Binaries:
//!
//! | target | artifact |
//! |---|---|
//! | `fig2_filebench_ufs` | Figure 2 — Filebench OLTP on UFS |
//! | `fig3_filebench_zfs` | Figure 3 — Filebench OLTP on ZFS |
//! | `fig4_dbt2` | Figure 4 — DBT-2 on ext3/PostgreSQL model |
//! | `fig5_filecopy` | Figure 5 — XP vs Vista large file copy |
//! | `table2_microbench` | Table 2 — service overhead microbenchmark |
//! | `fig6_interference` | Figure 6 / §5.3 — multi-VM interference |
//! | `contention_multi_vm` | sharded vs global-lock ingestion scaling (`BENCH_contention.json`) |
//! | `vscsistats --bench-overhead` | Table 2 — ns/command per config (`BENCH_percommand.json`) |
//! | `ext_overload` | sentinel governor / watchdog / quarantine chaos suite (`BENCH_overload.json`) |

#![warn(missing_docs)]

pub mod contention;
pub mod legacy;
pub mod overload;
pub mod percommand;
pub mod reporting;
pub mod scenarios;
