//! Report rendering for the experiment binaries: paper-style histogram
//! panels plus PASS/FAIL shape checks against the paper's claims.

use histo::Histogram;
use std::fmt::Write as _;

/// Renders one labelled histogram panel (the analogue of one sub-figure).
pub fn panel(title: &str, h: &Histogram) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "--- {title} ---");
    let _ = writeln!(out, "{h}");
    out
}

/// Renders two histograms side by side for comparison figures (e.g.
/// Figure 5's XP vs Vista overlays).
pub fn panel2(title: &str, label_a: &str, a: &Histogram, label_b: &str, b: &Histogram) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "--- {title} ---");
    let width = (0..a.edges().bin_count())
        .map(|i| a.edges().bin_label(i).len())
        .max()
        .unwrap_or(4)
        .max(4);
    let _ = writeln!(out, "{:>width$} {:>12} {:>12}", "bin", label_a, label_b);
    if a.edges() == b.edges() {
        for (i, (la, ca)) in a.iter_labeled().enumerate() {
            let _ = writeln!(out, "{la:>width$} {ca:>12} {:>12}", b.count(i));
        }
    } else {
        let _ = writeln!(out, "(layouts differ; showing separately)");
        out.push_str(&panel(label_a, a));
        out.push_str(&panel(label_b, b));
    }
    out
}

/// One paper-vs-measured shape check.
#[derive(Debug, Clone)]
pub struct ShapeCheck {
    /// What the paper claims (human-readable).
    pub claim: String,
    /// What we measured (human-readable).
    pub measured: String,
    /// Did the measured shape match?
    pub pass: bool,
}

impl ShapeCheck {
    /// Builds a check.
    pub fn new(claim: impl Into<String>, measured: impl Into<String>, pass: bool) -> Self {
        ShapeCheck {
            claim: claim.into(),
            measured: measured.into(),
            pass,
        }
    }
}

/// Renders the shape-check table and returns `(rendered, all_passed)`.
pub fn shape_report(checks: &[ShapeCheck]) -> (String, bool) {
    let mut out = String::new();
    let mut all = true;
    let _ = writeln!(out, "=== paper-vs-measured shape checks ===");
    for c in checks {
        let mark = if c.pass { "PASS" } else { "FAIL" };
        all &= c.pass;
        let _ = writeln!(out, "[{mark}] {}", c.claim);
        let _ = writeln!(out, "       measured: {}", c.measured);
    }
    let _ = writeln!(
        out,
        "result: {}",
        if all {
            "ALL SHAPES MATCH"
        } else {
            "SHAPE MISMATCH"
        }
    );
    (out, all)
}

/// Percentage-formats a fraction.
pub fn pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist() -> Histogram {
        let mut h = Histogram::with_edges(vec![0, 10]).unwrap();
        h.record(5);
        h
    }

    #[test]
    fn panel_contains_title_and_bars() {
        let p = panel("I/O Length Histogram", &hist());
        assert!(p.contains("I/O Length Histogram"));
        assert!(p.contains('#'));
    }

    #[test]
    fn panel2_same_layout_columns() {
        let a = hist();
        let mut b = Histogram::with_edges(vec![0, 10]).unwrap();
        b.record(100);
        let p = panel2("cmp", "XP", &a, "Vista", &b);
        assert!(p.contains("XP"));
        assert!(p.contains("Vista"));
        assert!(p.lines().count() >= 5);
    }

    #[test]
    fn panel2_mismatched_layouts_fall_back() {
        let a = hist();
        let b = Histogram::with_edges(vec![7]).unwrap();
        let p = panel2("cmp", "a", &a, "b", &b);
        assert!(p.contains("layouts differ"));
    }

    #[test]
    fn shape_report_flags_failures() {
        let (text, ok) = shape_report(&[
            ShapeCheck::new("x", "y", true),
            ShapeCheck::new("z", "w", false),
        ]);
        assert!(!ok);
        assert!(text.contains("[PASS] x"));
        assert!(text.contains("[FAIL] z"));
        assert!(text.contains("SHAPE MISMATCH"));
        let (text, ok) = shape_report(&[ShapeCheck::new("x", "y", true)]);
        assert!(ok);
        assert!(text.contains("ALL SHAPES MATCH"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.915), "91.5%");
    }
}
