//! Per-command overhead measurement — the paper's Table 2, re-measured.
//!
//! Table 2 reports the CPU cost vscsiStats adds to each SCSI command for a
//! handful of collection configurations. This module is the shared harness
//! behind the two consumers that reproduce it:
//!
//! * the `table2_overhead` Criterion bench (statistical, interactive), and
//! * `vscsistats --bench-overhead`, which emits `BENCH_percommand.json`
//!   with one ns/command figure per configuration in a single run.
//!
//! Both drive the same synthetic stream of issue/completion pairs (seeded,
//! so every mode sees identical commands) through the real
//! [`StatsService`] front-end, plus the pre-slab [`LegacyCollector`]
//! baseline so the flat-slab rewrite's win is measured in the same report
//! that claims it.

use crate::legacy::LegacyCollector;
use simkit::{SimDuration, SimRng, SimTime};
use std::fmt::Write as _;
use std::time::Instant;
use vscsi::{IoCompletion, IoDirection, IoRequest, Lba, RequestId, TargetId};
use vscsi_stats::{CollectorConfig, StatsService, TraceCapacity};

/// One measured collection configuration (a Table 2 row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverheadMode {
    /// Service constructed but disabled: the always-on hook cost every
    /// command pays even when nobody is characterizing the workload.
    Off,
    /// Online histograms only (the paper's default mode).
    Histograms,
    /// Histograms plus the 6-second over-time histogram series
    /// ([`CollectorConfig::paper_figures`]).
    HistogramsSeries,
    /// Histograms plus a flight-recorder trace ring on the target.
    HistogramsTrace,
    /// The pre-slab collector driven directly: per-lens bin-index
    /// recomputation and linear in-flight scans, as the hot path worked
    /// before the flat-slab rewrite.
    LegacyHistograms,
}

impl OverheadMode {
    /// The four service configurations of the Table 2 reproduction.
    pub const TABLE2: [OverheadMode; 4] = [
        OverheadMode::Off,
        OverheadMode::Histograms,
        OverheadMode::HistogramsSeries,
        OverheadMode::HistogramsTrace,
    ];

    /// Every mode, Table 2 rows first, baseline last.
    pub const ALL: [OverheadMode; 5] = [
        OverheadMode::Off,
        OverheadMode::Histograms,
        OverheadMode::HistogramsSeries,
        OverheadMode::HistogramsTrace,
        OverheadMode::LegacyHistograms,
    ];

    /// Stable row name used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            OverheadMode::Off => "off",
            OverheadMode::Histograms => "histograms",
            OverheadMode::HistogramsSeries => "histograms_series",
            OverheadMode::HistogramsTrace => "histograms_trace",
            OverheadMode::LegacyHistograms => "legacy_histograms",
        }
    }
}

/// One ns/command result.
#[derive(Debug, Clone, Copy)]
pub struct OverheadRow {
    /// Which configuration was measured.
    pub mode: OverheadMode,
    /// Best-of-repeats nanoseconds per command (issue + completion).
    pub ns_per_command: f64,
}

/// Builds `n` issue/completion pairs: seeded random LBAs over a 10M-sector
/// span, 4 KiB commands, one write per three commands, 100 µs apart, each
/// completing 500 µs after issue (the `collector_overhead` bench stream).
pub fn make_pairs(n: usize) -> Vec<(IoRequest, IoCompletion)> {
    let mut rng = SimRng::seed_from(3);
    let mut t = SimTime::ZERO;
    (0..n)
        .map(|i| {
            t += SimDuration::from_micros(100);
            let req = IoRequest::new(
                RequestId(i as u64),
                TargetId::default(),
                if i % 3 == 0 {
                    IoDirection::Write
                } else {
                    IoDirection::Read
                },
                Lba::new(rng.range_inclusive(0, 10_000_000)),
                8,
                t,
            );
            (
                req,
                IoCompletion::new(req, t + SimDuration::from_micros(500)),
            )
        })
        .collect()
}

/// Builds the fully configured service for a mode — enabled and, for the
/// trace mode, with a flight-recorder ring installed on the default
/// target. Returns `None` for the direct-collector modes.
pub fn build_harness_service(mode: OverheadMode) -> Option<StatsService> {
    let service = match mode {
        OverheadMode::Off => StatsService::default(),
        OverheadMode::Histograms => StatsService::default(),
        OverheadMode::HistogramsSeries => StatsService::new(CollectorConfig::paper_figures()),
        OverheadMode::HistogramsTrace => StatsService::default(),
        OverheadMode::LegacyHistograms => return None,
    };
    if mode != OverheadMode::Off {
        service.enable_all();
    }
    if mode == OverheadMode::HistogramsTrace {
        service.start_trace(TargetId::default(), TraceCapacity::Ring(4096));
    }
    Some(service)
}

/// Runs every pair through a fresh instance of `mode` once and returns the
/// wall-clock nanoseconds per command.
fn run_once(mode: OverheadMode, pairs: &[(IoRequest, IoCompletion)]) -> f64 {
    let elapsed_ns = match build_harness_service(mode) {
        Some(service) => {
            let start = Instant::now();
            for (req, completion) in pairs {
                service.handle_issue(req);
                service.handle_complete(completion);
            }
            start.elapsed().as_nanos()
        }
        None => {
            let mut legacy = LegacyCollector::new(CollectorConfig::default());
            let start = Instant::now();
            for (req, completion) in pairs {
                legacy.on_issue(req);
                legacy.on_complete(completion);
            }
            let elapsed = start.elapsed().as_nanos();
            assert_eq!(legacy.completed_commands(), pairs.len() as u64);
            elapsed
        }
    };
    elapsed_ns as f64 / pairs.len() as f64
}

/// Measures one mode: `repeats` fresh runs over the same pairs, keeping
/// the fastest (the run least disturbed by the host).
pub fn measure(mode: OverheadMode, pairs: &[(IoRequest, IoCompletion)], repeats: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats.max(1) {
        best = best.min(run_once(mode, pairs));
    }
    best
}

/// Measures every mode over one shared stream of `commands` pairs.
pub fn measure_all(commands: usize, repeats: usize) -> Vec<OverheadRow> {
    let pairs = make_pairs(commands);
    // One throwaway warm-up pass so lazily initialized statics (layout
    // registry, allocator arenas) are charged to nobody.
    let _ = run_once(OverheadMode::Histograms, &pairs);
    OverheadMode::ALL
        .into_iter()
        .map(|mode| OverheadRow {
            mode,
            ns_per_command: measure(mode, &pairs, repeats),
        })
        .collect()
}

/// Renders rows as `BENCH_percommand.json` (hand-rolled: the workspace
/// carries no JSON dependency).
pub fn to_json(rows: &[OverheadRow], commands: usize, repeats: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"table2_percommand_overhead\",");
    let _ = writeln!(out, "  \"commands\": {commands},");
    let _ = writeln!(out, "  \"repeats\": {repeats},");
    let _ = writeln!(out, "  \"rows\": [");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"config\": \"{}\", \"ns_per_command\": {:.1}}}{comma}",
            row.mode.name(),
            row.ns_per_command
        );
    }
    let _ = writeln!(out, "  ],");
    let hist = rows
        .iter()
        .find(|r| r.mode == OverheadMode::Histograms)
        .map_or(f64::NAN, |r| r.ns_per_command);
    let legacy = rows
        .iter()
        .find(|r| r.mode == OverheadMode::LegacyHistograms)
        .map_or(f64::NAN, |r| r.ns_per_command);
    let _ = writeln!(
        out,
        "  \"slab_speedup_vs_legacy\": {:.2}",
        legacy / hist.max(1e-9)
    );
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every mode produces a finite positive per-command figure, and the
    /// JSON report carries one row per mode.
    #[test]
    fn measure_all_covers_every_mode() {
        let rows = measure_all(2_000, 1);
        assert_eq!(rows.len(), OverheadMode::ALL.len());
        for row in &rows {
            assert!(
                row.ns_per_command.is_finite() && row.ns_per_command > 0.0,
                "{}: {}",
                row.mode.name(),
                row.ns_per_command
            );
        }
        let json = to_json(&rows, 2_000, 1);
        for mode in OverheadMode::ALL {
            assert!(json.contains(mode.name()), "missing {}", mode.name());
        }
        assert!(json.contains("slab_speedup_vs_legacy"));
    }

    /// The shared stream is deterministic: two builds are identical.
    #[test]
    fn pairs_are_deterministic() {
        let a = make_pairs(64);
        let b = make_pairs(64);
        for ((ra, ca), (rb, cb)) in a.iter().zip(&b) {
            assert_eq!(ra.id, rb.id);
            assert_eq!(ra.lba, rb.lba);
            assert_eq!(ra.direction, rb.direction);
            assert_eq!(ca.complete_time, cb.complete_time);
        }
    }
}
