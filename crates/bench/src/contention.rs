//! Shared harness for the multi-threaded ingestion experiments: event
//! generation and a crossbeam-scoped-thread driver that replays
//! pre-generated per-VM event streams against any [`IngestionPath`].
//!
//! Used by the `service_contention` Criterion bench and the
//! `contention_multi_vm` experiment binary.

use crate::legacy::IngestionPath;
use simkit::{SimRng, SimTime};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vscsi::{IoCompletion, IoDirection, IoRequest, Lba, RequestId, TargetId, VDiskId, VmId};
use vscsi_stats::{IngestPipeline, PipelineConfig, StatsService, VscsiEvent};

/// Builds one VM's event stream: `commands` issue/complete pairs with a
/// deterministic mixed random/sequential access pattern.
pub fn make_events(vm: u32, commands: u64, seed: u64) -> Vec<VscsiEvent> {
    let target = TargetId::new(VmId(vm), VDiskId(0));
    let mut rng = SimRng::seed_from(seed ^ (u64::from(vm) << 17));
    let mut events = Vec::with_capacity(commands as usize * 2);
    let mut now_us = 0u64;
    for i in 0..commands {
        now_us += rng.range_inclusive(10, 200);
        let req = IoRequest::new(
            RequestId(u64::from(vm) << 40 | i),
            target,
            if i % 3 == 0 {
                IoDirection::Write
            } else {
                IoDirection::Read
            },
            Lba::new(rng.range_inclusive(0, 10_000_000)),
            8,
            SimTime::from_micros(now_us),
        );
        events.push(VscsiEvent::Issue(req));
        events.push(VscsiEvent::Complete(IoCompletion::new(
            req,
            SimTime::from_micros(now_us + rng.range_inclusive(100, 2_000)),
        )));
    }
    events
}

/// Pre-generated per-thread event streams: `threads` workers, `targets`
/// VMs assigned round-robin, `commands_per_target` commands each.
pub fn make_workload(
    threads: usize,
    targets: u32,
    commands_per_target: u64,
    seed: u64,
) -> Vec<Vec<VscsiEvent>> {
    let mut per_thread: Vec<Vec<VscsiEvent>> = (0..threads).map(|_| Vec::new()).collect();
    for vm in 0..targets {
        per_thread[vm as usize % threads].extend(make_events(vm, commands_per_target, seed));
    }
    per_thread
}

/// Replays each stream on its own crossbeam scoped thread, ingesting in
/// chunks of `batch` events (1 = the per-event hook path). Returns the
/// wall-clock time from first event to last thread joined.
pub fn run_threads<S: IngestionPath>(
    service: &S,
    per_thread: &[Vec<VscsiEvent>],
    batch: usize,
) -> Duration {
    let batch = batch.max(1);
    let start = Instant::now();
    crossbeam::thread::scope(|scope| {
        for events in per_thread {
            scope.spawn(move |_| {
                for chunk in events.chunks(batch) {
                    service.ingest_batch(chunk);
                }
            });
        }
    })
    .expect("ingestion worker panicked");
    start.elapsed()
}

/// Replays each stream through the thread-per-core pipeline: one
/// [`PipelineProducer`](vscsi_stats::PipelineProducer) per stream thread
/// publishing into lock-free SPSC lanes, `config.aggregators` workers
/// applying the events batched. Blocking (lossless) offers, so every
/// event lands; returns wall-clock time from first publish to pipeline
/// drained and joined.
pub fn run_pipeline(
    service: &Arc<StatsService>,
    per_thread: &[Vec<VscsiEvent>],
    config: PipelineConfig,
    batch: usize,
) -> Duration {
    let batch = batch.max(1);
    let config = PipelineConfig {
        producers: per_thread.len().max(1),
        ..config
    };
    let start = Instant::now();
    let (pipeline, producers) = IngestPipeline::start(Arc::clone(service), config);
    crossbeam::thread::scope(|scope| {
        for (mut producer, events) in producers.into_iter().zip(per_thread) {
            scope.spawn(move |_| {
                for chunk in events.chunks(batch) {
                    producer.offer_batch_blocking(chunk);
                }
                producer
            });
        }
    })
    .expect("pipeline producer panicked");
    let report = pipeline.finish(Vec::new());
    let elapsed = start.elapsed();
    let total: usize = per_thread.iter().map(Vec::len).sum();
    assert_eq!(
        report.ingested, total as u64,
        "blocking pipeline ingest must be lossless"
    );
    elapsed
}

/// Events per second for a run over `per_thread` streams.
pub fn events_per_second(per_thread: &[Vec<VscsiEvent>], elapsed: Duration) -> f64 {
    let total: usize = per_thread.iter().map(Vec::len).sum();
    total as f64 / elapsed.as_secs_f64().max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legacy::GlobalLockService;
    use vscsi_stats::StatsService;

    #[test]
    fn driver_ingests_every_command_on_both_paths() {
        let threads = 4;
        let targets = 8u32;
        let per_target = 200u64;
        let workload = make_workload(threads, targets, per_target, 7);

        let sharded = StatsService::default();
        sharded.enable_all();
        run_threads(&sharded, &workload, 32);

        let legacy = GlobalLockService::default();
        legacy.enable_all();
        run_threads(&legacy, &workload, 32);

        for vm in 0..targets {
            let target = TargetId::new(VmId(vm), VDiskId(0));
            assert_eq!(sharded.issued(target), per_target, "sharded vm{vm}");
            assert_eq!(legacy.issued(target), per_target, "legacy vm{vm}");
        }
    }

    #[test]
    fn pipeline_driver_ingests_every_command() {
        let threads = 4;
        let targets = 8u32;
        let per_target = 200u64;
        let workload = make_workload(threads, targets, per_target, 7);

        let service = Arc::new(StatsService::default());
        service.enable_all();
        run_pipeline(
            &service,
            &workload,
            PipelineConfig {
                aggregators: 2,
                ring_capacity: 256,
                drain_batch: 16,
                ..PipelineConfig::default()
            },
            32,
        );
        for vm in 0..targets {
            let target = TargetId::new(VmId(vm), VDiskId(0));
            assert_eq!(service.issued(target), per_target, "threadpercore vm{vm}");
        }
    }
}
