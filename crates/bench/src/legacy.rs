//! Superseded hot-path implementations, preserved as measurement baselines.
//!
//! Two generations live here:
//!
//! * [`GlobalLockService`] — the original `StatsService` design: one global
//!   `Mutex<BTreeMap<…>>` that every issue and completion from every
//!   (VM, vdisk) pair serializes through, with the collector configuration
//!   cloned on each issue. The `service_contention` Criterion bench and the
//!   `contention_multi_vm` driver measure what the sharded rewrite buys.
//! * [`LegacyCollector`] — the original per-disk collector: one
//!   `Vec<Histogram>` indexed by (metric, lens), each lens recorded with
//!   its own `Histogram::record` call (so the bin index for a value is
//!   computed twice per event), and a linear-scan `Vec` for in-flight
//!   seek tracking. The `table2_overhead` bench and the `vscsistats
//!   --bench-overhead` driver measure what the flat-slab index-once
//!   rewrite buys per command.
//!
//! Neither is part of the library proper and neither should be used
//! outside benchmarks.

use histo::{layouts, signed_distance, Histogram, Histogram2d, HistogramSeries, SeekWindow};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use vscsi::{IoCompletion, IoRequest, RequestId, TargetId};
use vscsi_stats::{CollectorConfig, IoStatsCollector, Lens, Metric, VscsiEvent};

struct Inner {
    enabled: bool,
    config: CollectorConfig,
    targets: BTreeMap<TargetId, IoStatsCollector>,
}

/// Global-single-lock statistics service (the seed implementation).
pub struct GlobalLockService {
    inner: Mutex<Inner>,
}

impl Default for GlobalLockService {
    fn default() -> Self {
        GlobalLockService::new(CollectorConfig::default())
    }
}

impl GlobalLockService {
    /// Creates a disabled service that builds collectors with `config`.
    pub fn new(config: CollectorConfig) -> Self {
        GlobalLockService {
            inner: Mutex::new(Inner {
                enabled: false,
                config,
                targets: BTreeMap::new(),
            }),
        }
    }

    /// Turns collection on.
    pub fn enable_all(&self) {
        self.inner.lock().enabled = true;
    }

    /// Hot-path hook: command issue. Takes the one global lock and clones
    /// the config, exactly as the seed implementation did.
    pub fn handle_issue(&self, req: &IoRequest) {
        let mut inner = self.inner.lock();
        if !inner.enabled {
            return;
        }
        let config = inner.config.clone();
        inner
            .targets
            .entry(req.target)
            .or_insert_with(|| IoStatsCollector::new(config))
            .on_issue(req);
    }

    /// Hot-path hook: command completion. Takes the one global lock.
    pub fn handle_complete(&self, completion: &IoCompletion) {
        let mut inner = self.inner.lock();
        if let Some(collector) = inner.targets.get_mut(&completion.request.target) {
            collector.on_complete(completion);
        }
    }

    /// Clones out a target's collector, blocking all ingestion meanwhile.
    pub fn collector(&self, target: TargetId) -> Option<IoStatsCollector> {
        self.inner.lock().targets.get(&target).cloned()
    }
}

const LENSES: usize = 3;

fn lens_index(lens: Lens) -> usize {
    match lens {
        Lens::All => 0,
        Lens::Reads => 1,
        Lens::Writes => 2,
    }
}

fn metric_index(metric: Metric) -> usize {
    match metric {
        Metric::IoLength => 0,
        Metric::SeekDistance => 1,
        Metric::SeekDistanceWindowed => 2,
        Metric::Interarrival => 3,
        Metric::OutstandingIos => 4,
        Metric::Latency => 5,
        Metric::Errors => 6,
    }
}

fn layout_for(metric: Metric) -> histo::BinEdges {
    match metric {
        Metric::IoLength => layouts::io_length_bytes(),
        Metric::SeekDistance | Metric::SeekDistanceWindowed => layouts::seek_distance_sectors(),
        Metric::Interarrival => layouts::interarrival_us(),
        Metric::OutstandingIos => layouts::outstanding_ios(),
        Metric::Latency => layouts::latency_us(),
        Metric::Errors => layouts::scsi_outcomes(),
    }
}

fn direction_lens(req: &IoRequest) -> Lens {
    if req.direction.is_read() {
        Lens::Reads
    } else {
        Lens::Writes
    }
}

/// The pre-slab per-disk collector, kept bit-for-bit faithful to the old
/// hot path: 21 independent [`Histogram`]s in a `Vec`, every lens recorded
/// through its own `Histogram::record` (each of which re-derives the bin
/// index by scanning the edge list), and in-flight seek tracking through a
/// linearly scanned `Vec<(RequestId, i64)>`.
///
/// The `legacy_collector_matches_slab_collector` test pins this
/// implementation to [`IoStatsCollector`]: identical histogram counts on a
/// shared request stream, so the `table2_overhead` numbers compare two
/// routes to the same answer.
#[derive(Debug, Clone)]
pub struct LegacyCollector {
    /// `histograms[metric * 3 + lens]`.
    histograms: Vec<Histogram>,
    window: SeekWindow,
    last_end_block: Option<u64>,
    last_end_block_by_dir: [Option<u64>; 2],
    last_arrival: Option<simkit::SimTime>,
    outstanding: u32,
    outstanding_by_dir: [u32; 2],
    issued_commands: u64,
    completed_commands: u64,
    error_commands: u64,
    clock_anomalies: u64,
    bytes_read: u64,
    bytes_written: u64,
    latency_series: Option<HistogramSeries>,
    outstanding_series: Option<HistogramSeries>,
    inflight_seeks: Vec<(RequestId, i64)>,
    seek_latency: Option<Histogram2d>,
}

impl Default for LegacyCollector {
    fn default() -> Self {
        LegacyCollector::new(CollectorConfig::default())
    }
}

impl LegacyCollector {
    /// Creates a collector with the same semantics `IoStatsCollector::new`
    /// had before the flat-slab rewrite.
    pub fn new(config: CollectorConfig) -> Self {
        let mut histograms = Vec::with_capacity(Metric::ALL.len() * LENSES);
        for metric in Metric::ALL {
            for _ in 0..LENSES {
                histograms.push(Histogram::new(layout_for(metric)));
            }
        }
        let latency_series = config
            .series_interval
            .map(|w| HistogramSeries::new(layouts::latency_us(), w));
        let outstanding_series = config
            .series_interval
            .map(|w| HistogramSeries::new(layouts::outstanding_ios(), w));
        let seek_latency = config
            .correlate_seek_latency
            .then(|| Histogram2d::new(layouts::seek_distance_sectors(), layouts::latency_us()));
        LegacyCollector {
            window: SeekWindow::new(config.window_capacity),
            histograms,
            last_end_block: None,
            last_end_block_by_dir: [None, None],
            last_arrival: None,
            outstanding: 0,
            outstanding_by_dir: [0, 0],
            issued_commands: 0,
            completed_commands: 0,
            error_commands: 0,
            clock_anomalies: 0,
            bytes_read: 0,
            bytes_written: 0,
            latency_series,
            outstanding_series,
            inflight_seeks: Vec::new(),
            seek_latency,
        }
    }

    /// Observes a command at issue time (old hot path, verbatim).
    pub fn on_issue(&mut self, req: &IoRequest) {
        let lens = direction_lens(req);
        let first = req.lba.sector();

        let len = req.len_bytes() as i64;
        self.record(Metric::IoLength, lens, len);

        if let Some(prev_end) = self.last_end_block {
            self.record_single(
                Metric::SeekDistance,
                Lens::All,
                signed_distance(prev_end, first),
            );
        }
        let dir_idx = usize::from(req.direction.is_write());
        if let Some(prev_end) = self.last_end_block_by_dir[dir_idx] {
            let lens_hist = if req.direction.is_read() {
                Lens::Reads
            } else {
                Lens::Writes
            };
            self.record_single(
                Metric::SeekDistance,
                lens_hist,
                signed_distance(prev_end, first),
            );
        }

        let windowed = self.window.observe(first, u64::from(req.num_sectors));
        if let Some(d) = windowed {
            self.record(Metric::SeekDistanceWindowed, lens, d);
        }

        if let Some(prev) = self.last_arrival {
            if req.issue_time < prev {
                self.clock_anomalies += 1;
            }
            let dt = req.issue_time.saturating_since(prev).as_micros() as i64;
            self.record(Metric::Interarrival, lens, dt);
        }

        let oio = i64::from(self.outstanding);
        self.record_single(Metric::OutstandingIos, Lens::All, oio);
        self.record_single(
            Metric::OutstandingIos,
            lens,
            i64::from(self.outstanding_by_dir[dir_idx]),
        );
        if let Some(series) = &mut self.outstanding_series {
            series.record(req.issue_time, oio);
        }

        self.last_end_block = Some(req.last_lba().sector());
        self.last_end_block_by_dir[dir_idx] = Some(req.last_lba().sector());
        self.last_arrival = Some(req.issue_time);
        self.outstanding += 1;
        self.outstanding_by_dir[dir_idx] += 1;
        self.issued_commands += 1;
        if req.direction.is_read() {
            self.bytes_read += req.len_bytes();
        } else {
            self.bytes_written += req.len_bytes();
        }
        if self.seek_latency.is_some() {
            if let Some(prev_seek) = windowed {
                self.inflight_seeks.push((req.id, prev_seek));
            }
        }
    }

    /// Observes a command at completion time (old hot path, verbatim).
    pub fn on_complete(&mut self, completion: &IoCompletion) {
        let req = &completion.request;
        let lens = direction_lens(req);
        if completion.complete_time < req.issue_time {
            self.clock_anomalies += 1;
        }
        let lat_us = completion.saturating_latency().as_micros() as i64;
        if completion.status.is_good() {
            self.record(Metric::Latency, lens, lat_us);
            if let Some(series) = &mut self.latency_series {
                series.record(completion.complete_time, lat_us);
            }
        } else {
            self.error_commands += 1;
            self.record(Metric::Errors, lens, completion.status.outcome_code());
        }
        if let Some(h2) = &mut self.seek_latency {
            if let Some(pos) = self.inflight_seeks.iter().position(|(id, _)| *id == req.id) {
                let (_, seek) = self.inflight_seeks.swap_remove(pos);
                if completion.status.is_good() {
                    h2.record(seek, lat_us);
                }
            }
        }
        self.outstanding = self.outstanding.saturating_sub(1);
        let dir_idx = usize::from(req.direction.is_write());
        self.outstanding_by_dir[dir_idx] = self.outstanding_by_dir[dir_idx].saturating_sub(1);
        self.completed_commands += 1;
    }

    fn record(&mut self, metric: Metric, lens: Lens, value: i64) {
        self.record_single(metric, Lens::All, value);
        if lens != Lens::All {
            self.record_single(metric, lens, value);
        }
    }

    fn record_single(&mut self, metric: Metric, lens: Lens, value: i64) {
        self.histograms[metric_index(metric) * LENSES + lens_index(lens)].record(value);
    }

    /// The histogram for a metric/lens pair.
    pub fn histogram(&self, metric: Metric, lens: Lens) -> &Histogram {
        &self.histograms[metric_index(metric) * LENSES + lens_index(lens)]
    }

    /// Commands issued so far.
    pub fn issued_commands(&self) -> u64 {
        self.issued_commands
    }

    /// Commands completed so far.
    pub fn completed_commands(&self) -> u64 {
        self.completed_commands
    }

    /// Completions with a non-`GOOD` status.
    pub fn error_commands(&self) -> u64 {
        self.error_commands
    }

    /// Non-monotonic timestamp pairs observed.
    pub fn clock_anomalies(&self) -> u64 {
        self.clock_anomalies
    }

    /// Total bytes read and written.
    pub fn bytes_io(&self) -> (u64, u64) {
        (self.bytes_read, self.bytes_written)
    }

    /// The 2-D seek/latency correlation, when enabled.
    pub fn seek_latency_histogram(&self) -> Option<&Histogram2d> {
        self.seek_latency.as_ref()
    }
}

/// A uniform ingestion front-end so drivers and benches can run the same
/// workload against either service implementation.
pub trait IngestionPath: Sync {
    /// Applies one event.
    fn ingest(&self, event: &VscsiEvent);

    /// Applies a slice of events (defaults to per-event ingestion; the
    /// sharded service overrides this with its batch path).
    fn ingest_batch(&self, events: &[VscsiEvent]) {
        for event in events {
            self.ingest(event);
        }
    }

    /// Total commands issued for `target`, for end-of-run verification.
    fn issued(&self, target: TargetId) -> u64;
}

impl IngestionPath for GlobalLockService {
    fn ingest(&self, event: &VscsiEvent) {
        match event {
            VscsiEvent::Issue(req) => self.handle_issue(req),
            VscsiEvent::Complete(completion) => self.handle_complete(completion),
        }
    }

    fn issued(&self, target: TargetId) -> u64 {
        self.collector(target).map_or(0, |c| c.issued_commands())
    }
}

impl IngestionPath for vscsi_stats::StatsService {
    fn ingest(&self, event: &VscsiEvent) {
        match event {
            VscsiEvent::Issue(req) => self.handle_issue(req),
            VscsiEvent::Complete(completion) => self.handle_complete(completion),
        }
    }

    fn ingest_batch(&self, events: &[VscsiEvent]) {
        self.handle_batch(events);
    }

    fn issued(&self, target: TargetId) -> u64 {
        self.collector(target).map_or(0, |c| c.issued_commands())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simkit::SimTime;
    use vscsi::{IoDirection, Lba, RequestId, VDiskId, VmId};

    #[test]
    fn legacy_matches_sharded_single_threaded() {
        let legacy = GlobalLockService::default();
        legacy.enable_all();
        let sharded = vscsi_stats::StatsService::default();
        sharded.enable_all();
        let target = TargetId::new(VmId(3), VDiskId(1));
        for i in 0..500u64 {
            let req = IoRequest::new(
                RequestId(i),
                target,
                if i % 3 == 0 {
                    IoDirection::Write
                } else {
                    IoDirection::Read
                },
                Lba::new((i * 769) % 100_000),
                8,
                SimTime::from_micros(i * 12),
            );
            let events = [
                VscsiEvent::Issue(req),
                VscsiEvent::Complete(IoCompletion::new(req, SimTime::from_micros(i * 12 + 6))),
            ];
            legacy.ingest_batch(&events);
            sharded.ingest_batch(&events);
        }
        let a = legacy.collector(target).unwrap();
        let b = sharded.collector(target).unwrap();
        assert_eq!(a.issued_commands(), b.issued_commands());
        assert_eq!(a.completed_commands(), b.completed_commands());
        use vscsi_stats::{Lens, Metric};
        for metric in Metric::ALL {
            assert_eq!(
                a.histogram(metric, Lens::All).counts(),
                b.histogram(metric, Lens::All).counts(),
                "{metric}"
            );
        }
    }

    /// The flat-slab collector and the pre-slab baseline are two routes to
    /// the same numbers: drive both with one stream of mixed sizes,
    /// directions, overlapping lifetimes, and error completions, and every
    /// histogram must agree bit-for-bit.
    #[test]
    fn legacy_collector_matches_slab_collector() {
        use simkit::SimDuration;
        use vscsi::{ScsiStatus, SenseKey};

        let config = CollectorConfig {
            series_interval: Some(SimDuration::from_secs(1)),
            correlate_seek_latency: true,
            ..CollectorConfig::default()
        };
        let mut legacy = LegacyCollector::new(config.clone());
        let mut slab = IoStatsCollector::new(config);

        // Queue-depth-4 stream: issue i completes at i-3, so completions
        // interleave with later issues and out of lba order.
        let mut pending: Vec<IoRequest> = Vec::new();
        for i in 0..4_000u64 {
            let req = IoRequest::new(
                RequestId(i),
                TargetId::default(),
                if i % 3 == 0 {
                    IoDirection::Write
                } else {
                    IoDirection::Read
                },
                Lba::new((i * 7919) % 2_000_000),
                8 + (i % 4) as u32 * 8,
                SimTime::from_micros(i * 37),
            );
            legacy.on_issue(&req);
            slab.on_issue(&req);
            pending.push(req);
            if pending.len() == 4 {
                let done = pending.remove(1);
                let at = SimTime::from_micros(done.issue_time.as_micros() + 250 + (i % 5) * 90);
                let completion = if i % 17 == 0 {
                    IoCompletion::with_status(
                        done,
                        at,
                        ScsiStatus::CheckCondition(SenseKey::MediumError),
                    )
                } else {
                    IoCompletion::new(done, at)
                };
                legacy.on_complete(&completion);
                slab.on_complete(&completion);
            }
        }

        assert_eq!(legacy.issued_commands(), slab.issued_commands());
        assert_eq!(legacy.completed_commands(), slab.completed_commands());
        assert_eq!(legacy.error_commands(), slab.error_commands());
        for metric in Metric::ALL {
            for lens in Lens::ALL {
                let a = legacy.histogram(metric, lens);
                let b = slab.histogram(metric, lens);
                assert_eq!(a.counts(), b.counts(), "{metric}/{lens} counts");
                assert_eq!(a.min(), b.min(), "{metric}/{lens} min");
                assert_eq!(a.max(), b.max(), "{metric}/{lens} max");
                assert_eq!(a.mean(), b.mean(), "{metric}/{lens} mean");
            }
        }
        let (la, lb) = (
            legacy.seek_latency_histogram().unwrap(),
            slab.seek_latency_histogram().unwrap(),
        );
        assert_eq!(la.marginal_x().counts(), lb.marginal_x().counts());
        assert_eq!(la.marginal_y().counts(), lb.marginal_y().counts());
    }
}
